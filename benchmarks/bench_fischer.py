"""E13 — Fischer's mutual exclusion (the Section 8 application).

Exact safety verdicts across the (a, b) plane — safe iff b > a in the
textbook (unbounded critical section) setting — plus the bounded-e
ablation.  Benchmarks one full safety decision.
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import time_of_boundmap
from repro.sim import ExtremalStrategy, Simulator, UniformStrategy
from repro.systems.extensions import (
    FischerParams,
    fischer_system,
    mutual_exclusion_violated,
)
from repro.zones.analysis import find_reachable_state

from conftest import emit


def decide(params: FischerParams):
    return find_reachable_state(
        fischer_system(params), mutual_exclusion_violated, max_nodes=400_000
    )


def test_e13_fischer_safety(benchmark):
    table = Table(
        "E13 — Fischer safety across the (a, b) plane (n=2, e=inf unless noted)",
        ["a", "b", "e", "theory (b>a)", "zone verdict", "agree"],
    )
    for a, b in [
        (F(1), F(2)),
        (F(1), F(3, 2)),
        (F(2), F(3)),
        (F(1), F(1)),
        (F(2), F(1)),
        (F(3), F(2)),
    ]:
        params = FischerParams(n=2, a=a, b=b)
        bad = decide(params)
        zone_safe = bad is None
        table.add_row(a, b, "inf", params.safe,
                      "safe" if zone_safe else "violable", zone_safe == params.safe)
        assert zone_safe == params.safe

    # Ablation: a bounded critical section rescues a=3 > b=2.
    rescued = FischerParams(n=2, a=F(3), b=F(2), e=F(1))
    bad = decide(rescued)
    table.add_row(F(3), F(2), F(1), False,
                  "safe" if bad is None else "violable", "(ablation)")
    assert bad is None

    # Contention timing (all processes start setting): first entry is
    # exactly [b, a + 2b] — the last setter wins, then waits b…2b.
    from repro.systems.extensions.fischer import ENTER
    from repro.zones.analysis import event_separation_bounds

    contending = FischerParams(n=2, a=F(1), b=F(2), contending=True)
    entry = event_separation_bounds(
        fischer_system(contending), {ENTER(1), ENTER(2)}, occurrence=1,
        max_nodes=300_000,
    )
    table.add_row(F(1), F(2), "inf", "-",
                  "first entry {!r} = [b, a+2b]".format(entry), "(timing)")
    assert entry.lo == contending.b and entry.hi == contending.a + 2 * contending.b

    # Simulation never violates in a safe configuration.
    params = FischerParams(n=2, a=F(1), b=F(2), e=F(1))
    automaton = time_of_boundmap(fischer_system(params))
    for seed in range(8):
        run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
            max_steps=150
        )
        assert all(not mutual_exclusion_violated(s.astate) for s in run.states)
    emit(table)

    target = FischerParams(n=2, a=F(1), b=F(2))
    benchmark(lambda: decide(target))
