"""E8 — Section 5 dummification.

Shows Lemma 5.1 (dummified executions never quiesce) against the raw
relay (which stops after SIGNAL_n), and Lemmas 5.2/5.3 (undum maps
dummified executions to executions of the original system, preserving
condition satisfaction).  Benchmarks the undum transformation.
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import dummify_condition, project, time_of_boundmap, undum
from repro.sim import Simulator, UniformStrategy
from repro.systems import RelayParams, RelaySystem, relay_condition
from repro.timed import Interval
from repro.timed.satisfaction import (
    find_boundmap_violation,
    find_condition_violation,
)

from conftest import emit


def test_e8_dummification(benchmark):
    params = RelayParams(n=3, d1=F(1), d2=F(2))
    system = RelaySystem(params, dummy_interval=Interval(F(1, 2), F(1)))
    raw = time_of_boundmap(system.timed)
    cond = relay_condition(params, 0)
    lifted = dummify_condition(cond)

    table = Table(
        "E8 / Section 5 — dummification (requested steps: 100)",
        ["seed", "raw run len (finite)", "dummified run len",
         "undum is (A,b) semi-exec", "U ⇔ Ũ satisfaction agrees"],
    )
    runs = []
    for seed in range(8):
        raw_run = Simulator(raw, UniformStrategy(random.Random(seed))).run(
            max_steps=100
        )
        dummified_run = Simulator(
            system.algorithm, UniformStrategy(random.Random(seed))
        ).run(max_steps=100)
        runs.append(dummified_run)
        seq = undum(project(dummified_run))
        semi_ok = find_boundmap_violation(system.timed, seq, semi=True) is None
        agree = (
            find_condition_violation(project(dummified_run), lifted, semi=True) is None
        ) == (find_condition_violation(seq, cond, semi=True) is None)
        table.add_row(seed, len(raw_run), len(dummified_run), semi_ok, agree)
        assert len(raw_run) < 100  # Lemma 4.2's converse: relay quiesces
        assert len(dummified_run) == 100  # Lemma 5.1: dummified never does
        assert semi_ok and agree
    emit(table)

    run = runs[0]
    benchmark(lambda: undum(project(run)))
