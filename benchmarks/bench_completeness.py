"""E9 — Theorem 7.1 completeness: the canonical mapping.

Builds the Ext(s)-based canonical mapping with the exhaustive
first-occurrence estimator and checks it on every grid execution of the
dummified resource manager and relay; benchmarks the estimator.
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import (
    CanonicalMapping,
    ExhaustiveFirstEstimator,
    SamplingFirstEstimator,
    check_mapping_exhaustive,
    check_mapping_on_run,
    dummify,
    dummify_conditions,
    time_of_boundmap,
    time_of_conditions,
)
from repro.sim import Simulator, UniformStrategy
from repro.systems import (
    RelayParams,
    RelaySystem,
    ResourceManagerParams,
    ResourceManagerSystem,
)
from repro.timed import Interval

from conftest import emit


def rm_case():
    system = ResourceManagerSystem(
        ResourceManagerParams(k=1, c1=F(2), c2=F(2), l=F(1))
    )
    dummified = dummify(system.timed, Interval(1, 1))
    algorithm = time_of_boundmap(dummified)
    target = time_of_conditions(
        dummified.automaton, dummify_conditions([system.g1, system.g2]), name="B~"
    )
    return "resource manager k=1", algorithm, target, F(8), F(6)


def relay_case():
    system = RelaySystem(RelayParams(n=2, d1=F(1), d2=F(1)), dummy_interval=Interval(1, 1))
    return "relay n=2", system.algorithm, system.requirements, F(6), F(4)


def test_e9_canonical_mapping(benchmark):
    table = Table(
        "E9 / Theorem 7.1 — canonical mapping, exhaustive grid check",
        ["system", "estimator window", "grid steps checked", "verdict"],
    )
    cases = [rm_case(), relay_case()]
    for name, algorithm, target, window, horizon in cases:
        estimator = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=window)
        mapping = CanonicalMapping(algorithm, target, estimator)
        outcome = check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=horizon)
        table.add_row(name, window, outcome.steps_checked,
                      "holds" if outcome.ok else "FAILS")
        assert outcome.ok, outcome.detail

    # Monte-Carlo estimator row.
    name, algorithm, target, _w, _h = rm_case()
    sampled = SamplingFirstEstimator(
        algorithm,
        strategy_factory=lambda seed: UniformStrategy(random.Random(seed)),
        runs=20,
        max_steps=40,
    )
    approx = CanonicalMapping(
        algorithm, target, sampled, upper_slack=F(1, 2), lower_slack=F(1, 2)
    )
    run = Simulator(algorithm, UniformStrategy(random.Random(77))).run(max_steps=40)
    outcome = check_mapping_on_run(approx, run)
    table.add_row(name + " (sampled, slack 1/2)", "-", outcome.steps_checked,
                  "holds" if outcome.ok else "FAILS")
    assert outcome.ok
    emit(table)

    estimator = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=F(8))
    (start,) = list(algorithm.start_states())
    g1 = target.condition("G1")
    benchmark(lambda: ExhaustiveFirstEstimator(
        algorithm, grid=F(1, 2), window=F(8)
    ).first_bounds(start, g1))
