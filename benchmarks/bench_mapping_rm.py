"""E3 — Lemma 4.3: the Section 4.3 mapping is a strong possibilities
mapping.

Checks the mapping along seeded runs and exhaustively on a rational
grid; the mutation rows confirm that *tighter-than-true* requirement
bounds are refuted (the check is not vacuous).  Benchmarks the lockstep
checker.
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import check_mapping_exhaustive, check_mapping_on_run
from repro.core.mappings import InequalityMapping
from repro.core.time_automaton import time_of_conditions
from repro.sim import ExtremalStrategy, Simulator, UniformStrategy
from repro.systems import (
    GRANT,
    ResourceManagerParams,
    ResourceManagerSystem,
    resource_manager_mapping,
)
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval

from conftest import emit


def refute_with_runs(system, mapping, seeds=range(30)):
    for seed in seeds:
        run = Simulator(system.algorithm, ExtremalStrategy(random.Random(seed))).run(
            max_steps=250
        )
        if not check_mapping_on_run(mapping, run).ok:
            return True
    return False


def permissive_mapping_against(system, g1_interval, g2_interval):
    g1 = TimingCondition.from_start("G1", g1_interval, [GRANT])
    g2 = TimingCondition.after_action("G2", g2_interval, GRANT, [GRANT])
    bad = time_of_conditions(system.timed.automaton, [g1, g2], name="mutant")
    return InequalityMapping(system.algorithm, bad, lambda u, s: True, name="mutant")


def test_e3_mapping_rm(benchmark):
    params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
    system = ResourceManagerSystem(params)
    mapping = resource_manager_mapping(system)

    table = Table(
        "E3 / Lemma 4.3 — mapping check results",
        ["case", "method", "steps", "verdict (expected)"],
    )

    run_steps = 0
    all_ok = True
    for seed in range(15):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=200
        )
        outcome = check_mapping_on_run(mapping, run)
        run_steps += outcome.steps_checked
        all_ok = all_ok and outcome.ok
    table.add_row("paper mapping", "15 seeded runs", run_steps,
                  "holds (holds)" if all_ok else "FAILS (holds)")
    assert all_ok

    exhaustive = check_mapping_exhaustive(mapping, grid=F(1), horizon=F(10))
    table.add_row("paper mapping", "exhaustive grid=1 horizon=10",
                  exhaustive.steps_checked,
                  "holds (holds)" if exhaustive.ok else "FAILS (holds)")
    assert exhaustive.ok

    # Ground truth, mapping-free: direct semantic behavior inclusion
    # (the conclusion of Theorem 3.4) agrees with the mapping verdict.
    from repro.core import check_semantic_inclusion

    semantic = check_semantic_inclusion(
        system.algorithm, [system.g1, system.g2], grid=F(1), horizon=F(9),
        max_executions=150_000,
    )
    table.add_row("requirements G1, G2", "semantic inclusion (no mapping)",
                  semantic.executions_checked,
                  "holds (holds)" if semantic.ok else "FAILS (holds)")
    assert semantic.ok

    # Mutation 1: claim G1's upper bound without the +l slack.  The
    # Section 4.3 inequalities cannot even be established in the start
    # state (min Lt = k·c2 < Lt(TICK) + (k−1)·c2 + l), so the check
    # refutes the mutant immediately.
    g1 = TimingCondition.from_start(
        "G1", Interval(params.k * params.c1, params.k * params.c2), [GRANT]
    )
    g2 = TimingCondition.after_action("G2", params.grant_gap_interval, GRANT, [GRANT])
    mutant_req = time_of_conditions(system.timed.automaton, [g1, g2], name="mutant")
    algorithm = system.algorithm
    c1, c2, l = params.c1, params.c2, params.l

    def section_4_3_inequalities(u, s):
        from repro.systems.resource_manager import timer_of

        min_lt = min(mutant_req.lt(u, "G1"), mutant_req.lt(u, "G2"))
        max_ft = max(mutant_req.ft(u, "G1"), mutant_req.ft(u, "G2"))
        timer = timer_of(s.astate)
        if timer > 0:
            return (
                min_lt >= algorithm.lt(s, "TICK") + (timer - 1) * c2 + l
                and max_ft <= algorithm.ft(s, "TICK") + (timer - 1) * c1
            )
        return min_lt >= algorithm.lt(s, "LOCAL") and max_ft <= s.now

    tight_upper = InequalityMapping(
        algorithm, mutant_req, section_4_3_inequalities, name="mutant-upper"
    )
    run = Simulator(system.algorithm, UniformStrategy(random.Random(0))).run(max_steps=50)
    refuted = not check_mapping_on_run(tight_upper, run).ok
    table.add_row("G1 upper −l (mutant)", "Section 4.3 inequalities", "-",
                  "refuted (refuted)" if refuted else "NOT refuted (refuted)")
    assert refuted

    # Mutation 2: claim a G1 lower bound above the true infimum.  Some
    # extremal run reaches a first GRANT below the claimed bound, so
    # even the fully permissive mapping fails target enabledness.
    tight_lower = permissive_mapping_against(
        system,
        Interval(params.k * params.c1 + F(1, 2), params.k * params.c2 + params.l),
        params.grant_gap_interval,
    )
    refuted = refute_with_runs(system, tight_lower)
    table.add_row("G1 lower +1/2 (mutant)", "extremal runs, permissive f", "-",
                  "refuted (refuted)" if refuted else "NOT refuted (refuted)")
    assert refuted

    emit(table)

    run = Simulator(system.algorithm, UniformStrategy(random.Random(0))).run(
        max_steps=200
    )
    benchmark(lambda: check_mapping_on_run(mapping, run))
