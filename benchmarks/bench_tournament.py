"""E16 — the full [PF77] tournament algorithm (the paper's named
future-work example).

Mutual exclusion is checked exhaustively (untimed reachability, which
subsumes every timed execution) for n = 2, 4 and bounded for n = 8;
the contention bound generalises Peterson's: simulated first-entry
times stay within the recurrence interval ``3·h·[s1, s2]`` (three
winner steps per tournament level), and the deterministic-step case is
zone-exact at ``3·h·s``.
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import BoundsAccumulator
from repro.analysis.report import Table
from repro.core.time_automaton import time_of_boundmap
from repro.ioa.explorer import check_invariant
from repro.sim import ExtremalStrategy, Simulator, UniformStrategy
from repro.systems.extensions.tournament import (
    ADVANCE,
    TournamentParams,
    tournament_automaton,
    tournament_mutex_violated,
    tournament_system,
)
from repro.timed import Interval
from repro.zones.analysis import event_separation_bounds

from conftest import emit


def enter_group(n: int):
    height = n.bit_length() - 1
    return {ADVANCE(i, height - 1) for i in range(n)}


def simulated_first_entries(params: TournamentParams, seeds=range(20), steps=250):
    automaton = time_of_boundmap(tournament_system(params))
    group = enter_group(params.n)
    acc = BoundsAccumulator()
    for seed in seeds:
        strategy = (
            UniformStrategy(random.Random(seed))
            if seed % 2
            else ExtremalStrategy(random.Random(seed))
        )
        run = Simulator(automaton, strategy).run(max_steps=steps)
        entries = [ev.time for ev in run.events if ev.action in group]
        if entries:
            acc.add(entries[0])
    return acc


def test_e16_tournament(benchmark):
    safety = Table(
        "E16a — tournament mutual exclusion (untimed reachability ⊇ timed)",
        ["n", "reachable states", "exhaustive", "mutex"],
    )
    for n, cap in [(2, 100_000), (4, 100_000), (8, 60_000)]:
        params = TournamentParams(n=n, s1=F(1), s2=F(2), repeat=True)
        report = check_invariant(
            tournament_automaton(params),
            lambda s: not tournament_mutex_violated(s),
            max_states=cap,
        )
        safety.add_row(
            n, report.states_checked,
            not report.truncated, "holds" if report.holds else "VIOLATED",
        )
        assert report.holds
    emit(safety)

    timing = Table(
        "E16b — first entry under full contention vs the 3·h·[s1,s2] recurrence",
        ["n", "h", "recurrence", "simulated span (20 runs)", "within", "zone-exact (s1=s2)"],
    )
    for n in (2, 4, 8):
        params = TournamentParams(n=n, s1=F(1), s2=F(2), e=F(1), repeat=True)
        h = params.height
        recurrence = Interval(3 * h * params.s1, 3 * h * params.s2)
        acc = simulated_first_entries(params)
        det = TournamentParams(n=n, s1=F(1), s2=F(1))
        if n <= 4:
            exact = event_separation_bounds(
                tournament_system(det), enter_group(n), occurrence=1,
                max_nodes=150_000,
            )
            exact_text = repr(exact)
            assert exact.lo == exact.hi == 3 * h * det.s1
        else:
            exact_text = "(budget exceeded; see EXPERIMENTS)"
        timing.add_row(
            n, h, repr(recurrence), repr(acc.span()),
            acc.all_within(recurrence), exact_text,
        )
        assert acc.count > 0 and acc.all_within(recurrence)
    emit(timing)

    params = TournamentParams(n=4, s1=F(1), s2=F(2), e=F(1), repeat=True)
    benchmark(lambda: simulated_first_entries(params, seeds=range(4), steps=150))
