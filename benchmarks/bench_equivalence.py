"""E6 — Lemma 2.1 / Corollary 2.2: the direct boundmap semantics and
the cond(C) timing-condition semantics agree.

Runs both checkers over valid runs and systematically perturbed
(time-scaled) variants; every verdict pair must agree.  Benchmarks one
agreement check.
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import project, time_of_boundmap
from repro.sim import Simulator, UniformStrategy
from repro.systems import (
    RelayParams,
    ResourceManagerParams,
    resource_manager,
    signal_relay,
)
from repro.core.dummification import dummify
from repro.timed.semantics import check_lemma_2_1
from repro.timed.timed_sequence import TimedSequence

from conftest import emit

SCALES = [F(1, 10), F(1, 2), F(9, 10), F(1), F(11, 10), F(2), F(10)]


def systems():
    yield "resource-manager", resource_manager(
        ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
    )
    yield "relay (dummified)", dummify(
        signal_relay(RelayParams(n=3, d1=F(1), d2=F(2)))
    )


def agreement_counts(timed, seeds=range(8)):
    automaton = time_of_boundmap(timed)
    agreements = 0
    accepted = 0
    rejected = 0
    for seed in seeds:
        run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
            max_steps=60
        )
        seq = project(run)
        for scale in SCALES:
            scaled = TimedSequence(
                seq.states, [(ev.action, ev.time * scale) for ev in seq.events]
            )
            report = check_lemma_2_1(timed, scaled, semi=True)
            assert report.agree, "Lemma 2.1 equivalence broken"
            agreements += 1
            if report.accepted:
                accepted += 1
            else:
                rejected += 1
    return agreements, accepted, rejected


def test_e6_lemma_2_1(benchmark):
    table = Table(
        "E6 / Lemma 2.1 — Definition 2.1 vs cond(C) verdicts on scaled runs",
        ["system", "verdict pairs", "agreements", "accepted", "rejected"],
    )
    first = None
    for name, timed in systems():
        total, accepted, rejected = agreement_counts(timed)
        table.add_row(name, total, total, accepted, rejected)
        if first is None:
            first = timed
    emit(table)

    automaton = time_of_boundmap(first)
    run = Simulator(automaton, UniformStrategy(random.Random(0))).run(max_steps=60)
    seq = project(run)
    benchmark(lambda: check_lemma_2_1(first, seq, semi=True))
