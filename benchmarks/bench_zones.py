"""E10 — exact bound *shape*: the paper's intervals are tight.

Zone-graph reachability computes the exact min/max of every measured
quantity; the paper's formulas must be attained at both ends.  Includes
the footnote-7 interrupt-manager ablation (its gap interval coincides
with the polling variant's).  Benchmarks one zone query.
"""

from fractions import Fraction as F

from repro.analysis.report import Table
from repro.systems import (
    GRANT,
    SIGNAL,
    RelayParams,
    ResourceManagerParams,
    resource_manager,
    signal_relay,
)
from repro.systems.extensions import interrupt_resource_manager
from repro.zones import absolute_event_bounds, event_separation_bounds

from conftest import emit

RM_SWEEP = [
    ResourceManagerParams(k=1, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=2, c1=F(5), c2=F(8), l=F(3)),
]

RELAY_SWEEP = [
    RelayParams(n=1, d1=F(1), d2=F(2)),
    RelayParams(n=2, d1=F(1), d2=F(2)),
    RelayParams(n=4, d1=F(1), d2=F(3)),
    RelayParams(n=6, d1=F(2), d2=F(5)),
]


def test_e10_exact_bounds(benchmark):
    table = Table(
        "E10 — exact zone bounds vs paper formulas (all tight)",
        ["system", "quantity", "paper", "exact", "tight", "zone nodes"],
    )
    for params in RM_SWEEP:
        timed = resource_manager(params)
        first = absolute_event_bounds(timed, GRANT)
        table.add_row(
            "RM k={}".format(params.k), "first GRANT",
            repr(params.first_grant_interval), repr(first),
            first.tight(params.first_grant_interval), first.nodes,
        )
        assert first.tight(params.first_grant_interval)
        gap = event_separation_bounds(timed, GRANT, occurrence=2, reset_on=[GRANT])
        table.add_row(
            "RM k={}".format(params.k), "GRANT gap",
            repr(params.grant_gap_interval), repr(gap),
            gap.tight(params.grant_gap_interval), gap.nodes,
        )
        assert gap.tight(params.grant_gap_interval)

    for params in RELAY_SWEEP:
        bounds = event_separation_bounds(
            signal_relay(params), SIGNAL(params.n), occurrence=1, reset_on=[SIGNAL(0)]
        )
        table.add_row(
            "relay n={}".format(params.n), "SIGNAL_0→SIGNAL_n",
            repr(params.end_to_end_interval), repr(bounds),
            bounds.tight(params.end_to_end_interval), bounds.nodes,
        )
        assert bounds.tight(params.end_to_end_interval)

    # Ablation: the interrupt-driven manager (footnote 7).
    params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
    interrupt = interrupt_resource_manager(params)
    gap = event_separation_bounds(interrupt, GRANT, occurrence=2, reset_on=[GRANT])
    table.add_row(
        "RM k=2 interrupt-driven", "GRANT gap",
        repr(params.grant_gap_interval), repr(gap),
        gap.tight(params.grant_gap_interval), gap.nodes,
    )
    assert gap.tight(params.grant_gap_interval)
    emit(table)

    timed = resource_manager(RM_SWEEP[1])
    benchmark(lambda: absolute_event_bounds(timed, GRANT))
