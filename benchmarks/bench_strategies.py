"""E14 — scheduling-strategy ablation.

How well does each strategy explore the *exact* bound interval (from
E10's zone analysis)?  Coverage = observed span / exact span, per
strategy with a fixed simulation budget — quantifying the design choice
that boundary-seeking (extremal/eager/lazy) samplers find tight ends
that uniform sampling approaches only slowly.
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import gaps, occurrence_times
from repro.analysis.report import Table
from repro.analysis.stats import interval_coverage
from repro.sim import (
    EagerStrategy,
    ExtremalStrategy,
    LazyStrategy,
    Simulator,
    UniformStrategy,
)
from repro.sim.trace import timed_behavior_of_run
from repro.systems import GRANT, ResourceManagerParams, ResourceManagerSystem
from repro.timed import Interval
from repro.zones import event_separation_bounds

from conftest import emit

STRATEGIES = {
    "uniform": UniformStrategy,
    "eager": EagerStrategy,
    "lazy": LazyStrategy,
    "extremal": ExtremalStrategy,
}

RUNS = 12
STEPS = 200


def gap_samples(system, strategy_cls, runs=RUNS, steps=STEPS):
    samples = []
    for seed in range(runs):
        run = Simulator(system.algorithm, strategy_cls(random.Random(seed))).run(
            max_steps=steps
        )
        times = occurrence_times(
            timed_behavior_of_run(system.timed.automaton, run), GRANT
        )
        samples.extend(gaps(times))
    return samples


def test_e14_strategy_coverage(benchmark):
    params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
    system = ResourceManagerSystem(params)
    exact = event_separation_bounds(
        system.timed, GRANT, occurrence=2, reset_on=[GRANT]
    )
    exact_interval = Interval(exact.lo, exact.hi)

    table = Table(
        "E14 — GRANT-gap interval coverage per strategy "
        "({} runs x {} steps; exact interval {!r})".format(
            RUNS, STEPS, exact_interval
        ),
        ["strategy", "samples", "observed min", "observed max", "coverage"],
    )
    coverages = {}
    for name, strategy_cls in sorted(STRATEGIES.items()):
        samples = gap_samples(system, strategy_cls)
        coverage = interval_coverage(samples, exact_interval)
        coverages[name] = coverage
        table.add_row(
            name, len(samples),
            min(samples) if samples else None,
            max(samples) if samples else None,
            "{:.0%}".format(float(coverage)),
        )
        assert samples, "strategy {} produced no gaps".format(name)
    emit(table)

    # The boundary-seeking sampler must dominate uniform sampling.
    assert coverages["extremal"] >= coverages["uniform"]

    benchmark(lambda: gap_samples(system, ExtremalStrategy, runs=3, steps=100))
