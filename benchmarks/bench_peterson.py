"""E15 — Peterson's mutual exclusion: the paper's named future-work
example ([PF77] via the [LG89] recurrence analysis).

Asynchronous safety holds for every boundmap (exhaustive check); the
contention bound — the time until *someone* enters when both processes
compete — is exactly ``[3·s1, 3·s2]``, matching the three-milestone
recurrence argument, across a parameter sweep.
"""

import random
from fractions import Fraction as F

from repro.analysis.recurrence import peterson_first_entry_chain
from repro.analysis.report import Table
from repro.ioa.explorer import check_invariant
from repro.systems.extensions.peterson import (
    ENTER,
    PetersonParams,
    both_critical,
    peterson_automaton,
    peterson_system,
)
from repro.zones.analysis import event_separation_bounds, find_reachable_state

from conftest import emit

SWEEP = [
    (F(1), F(2)),
    (F(0), F(1)),
    (F(1), F(10)),
    (F(2), F(3)),
    (F(1, 2), F(5, 2)),
]


def first_entry(params: PetersonParams):
    return event_separation_bounds(
        peterson_system(params),
        {ENTER(1), ENTER(2)},
        occurrence=1,
        max_nodes=200_000,
    )


def test_e15_peterson(benchmark):
    table = Table(
        "E15 — Peterson 2-process: contention bound, recurrence vs exact",
        ["s1", "s2", "recurrence 3·[s1,s2]", "exact (zones)", "tight", "mutex"],
    )
    untimed = check_invariant(
        peterson_automaton(PetersonParams(s1=F(1), s2=F(2), repeat=True)),
        lambda s: not both_critical(s),
    )
    assert untimed.holds
    for s1, s2 in SWEEP:
        params = PetersonParams(s1=s1, s2=s2)
        operational = peterson_first_entry_chain(params.step_interval).total()
        exact = first_entry(params)
        tight = (exact.lo, exact.hi) == (operational.lo, operational.hi)
        timed_bad = find_reachable_state(
            peterson_system(PetersonParams(s1=s1, s2=s2, e=F(1), repeat=True)),
            both_critical,
            max_nodes=300_000,
        )
        table.add_row(
            s1, s2, repr(operational), repr(exact), tight,
            "holds" if timed_bad is None else "VIOLATED",
        )
        assert tight and timed_bad is None
    emit(table)

    params = PetersonParams(s1=F(1), s2=F(2))
    benchmark(lambda: first_entry(params))
