"""E11 — assertional (mapping) vs operational (recurrence) styles.

The Section 8 discussion: the paper's mapping method and the
traditional milestone/recurrence analysis must derive the same
intervals.  The rows compare the recurrence totals against the exact
zone values; the benchmark contrasts the cost of the recurrence
computation with a zone query (the recurrence is cheap but offers no
machine-checked per-step guarantee).
"""

from fractions import Fraction as F

from repro.analysis.recurrence import (
    relay_chain,
    rm_first_grant_chain,
    rm_grant_gap_chain,
)
from repro.analysis.report import Table
from repro.systems import (
    GRANT,
    SIGNAL,
    RelayParams,
    ResourceManagerParams,
    resource_manager,
    signal_relay,
)
from repro.zones import absolute_event_bounds, event_separation_bounds

from conftest import emit


def test_e11_recurrence_vs_exact(benchmark):
    table = Table(
        "E11 — operational recurrence totals vs exact zone bounds",
        ["system", "quantity", "recurrence", "exact", "agree"],
    )
    rm = ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))
    timed = resource_manager(rm)

    first_chain = rm_first_grant_chain(rm).total()
    first_exact = absolute_event_bounds(timed, GRANT)
    agree = (first_exact.lo, first_exact.hi) == (first_chain.lo, first_chain.hi)
    table.add_row("RM k=3", "first GRANT", repr(first_chain), repr(first_exact), agree)
    assert agree

    gap_chain = rm_grant_gap_chain(rm).total()
    gap_exact = event_separation_bounds(timed, GRANT, occurrence=2, reset_on=[GRANT])
    agree = (gap_exact.lo, gap_exact.hi) == (gap_chain.lo, gap_chain.hi)
    table.add_row("RM k=3", "GRANT gap", repr(gap_chain), repr(gap_exact), agree)
    assert agree

    relay = RelayParams(n=4, d1=F(1), d2=F(2))
    relay_total = relay_chain(relay).total()
    relay_exact = event_separation_bounds(
        signal_relay(relay), SIGNAL(relay.n), occurrence=1, reset_on=[SIGNAL(0)]
    )
    agree = (relay_exact.lo, relay_exact.hi) == (relay_total.lo, relay_total.hi)
    table.add_row("relay n=4", "end-to-end", repr(relay_total), repr(relay_exact), agree)
    assert agree
    emit(table)

    benchmark(lambda: rm_grant_gap_chain(rm).total())
