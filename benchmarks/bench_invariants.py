"""E2 — Lemma 4.1: the resource manager's predictive-state invariant.

Checks ``TIMER ≥ 0`` and ``TIMER = 0 ⇒ Ft(TICK) ≥ Lt(LOCAL) + c1 − l``
exhaustively over the grid-reachable states of time(A, b) and along
seeded runs; benchmarks the exhaustive sweep.
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core.discretize import discrete_options
from repro.sim import Simulator, UniformStrategy
from repro.systems import (
    ResourceManagerParams,
    ResourceManagerSystem,
    lemma_4_1_predicate,
)

from conftest import emit

SWEEP = [
    (ResourceManagerParams(k=1, c1=F(2), c2=F(3), l=F(1)), F(8)),
    (ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1)), F(10)),
    (ResourceManagerParams(k=3, c1=F(2), c2=F(2), l=F(1)), F(10)),
]


def exhaustive_states(system, grid, horizon):
    seen = set()
    frontier = list(system.algorithm.start_states())
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        for action, t in discrete_options(system.algorithm, state, grid, horizon):
            frontier.extend(system.algorithm.successors(state, action, t))
    return seen


def test_e2_lemma_4_1(benchmark):
    table = Table(
        "E2 / Lemma 4.1 — invariant over reachable predictive states",
        ["k", "c1", "c2", "l", "grid states", "invariant holds",
         "run states", "holds on runs"],
    )
    for params, horizon in SWEEP:
        system = ResourceManagerSystem(params)
        predicate = lemma_4_1_predicate(system)
        states = exhaustive_states(system, F(1, 2), horizon)
        grid_ok = all(predicate(s) for s in states)
        run_states = 0
        run_ok = True
        for seed in range(10):
            run = Simulator(
                system.algorithm, UniformStrategy(random.Random(seed))
            ).run(max_steps=200)
            run_states += len(run.states)
            run_ok = run_ok and all(predicate(s) for s in run.states)
        table.add_row(
            params.k, params.c1, params.c2, params.l,
            len(states), grid_ok, run_states, run_ok,
        )
        assert grid_ok and run_ok
    emit(table)

    system = ResourceManagerSystem(SWEEP[0][0])
    benchmark(lambda: exhaustive_states(system, F(1, 2), F(8)))
