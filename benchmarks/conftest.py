"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*.py`` file regenerates one experiment from EXPERIMENTS.md:
it prints the paper-vs-measured rows (via :func:`emit`, which suspends
pytest's output capture so the tables appear in ``bench_output.txt``)
and times the underlying machinery with pytest-benchmark.
"""

import sys

from repro.analysis.report import Table

_CONFIG = None


def pytest_configure(config):
    global _CONFIG
    _CONFIG = config


def _uncaptured_write(text: str) -> None:
    capman = None
    if _CONFIG is not None:
        capman = _CONFIG.pluginmanager.getplugin("capturemanager")
    if capman is not None:
        with capman.global_and_fixture_disabled():
            sys.stdout.write(text)
            sys.stdout.flush()
    else:
        sys.stdout.write(text)
        sys.stdout.flush()


def emit(table: Table) -> None:
    """Print a report table around pytest's output capture."""
    _uncaptured_write("\n" + table.render() + "\n")


def emit_line(text: str) -> None:
    _uncaptured_write(text + "\n")
