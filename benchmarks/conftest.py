"""Shared helpers for the benchmark/experiment harness.

Each ``bench_*.py`` file regenerates one experiment from EXPERIMENTS.md:
it prints the paper-vs-measured rows (via :func:`emit`, which suspends
pytest's output capture so the tables appear in ``bench_output.txt``)
and times the underlying machinery with pytest-benchmark.

:func:`emit` additionally appends each table as one machine-readable
JSON row to ``benchmarks/bench_rows.jsonl`` (truncated at the start of
every pytest run); ``repro.obs.bench`` folds those rows into the
``BENCH_<n>.json`` perf-trajectory reports.
"""

import json
import os
import sys

from repro.analysis.report import Table

_CONFIG = None

#: Machine-readable sibling of bench_output.txt, one JSON object per
#: emitted table/line, consumed by repro.obs.bench.load_suite_rows.
ROWS_PATH = os.path.join(os.path.dirname(__file__), "bench_rows.jsonl")


def pytest_configure(config):
    global _CONFIG
    _CONFIG = config
    # Start each benchmark run with a fresh rows file so stale tables
    # from a previous run never leak into a new BENCH report.
    try:
        with open(ROWS_PATH, "w"):
            pass
    except OSError:
        pass


def _uncaptured_write(text: str) -> None:
    capman = None
    if _CONFIG is not None:
        capman = _CONFIG.pluginmanager.getplugin("capturemanager")
    if capman is not None:
        with capman.global_and_fixture_disabled():
            sys.stdout.write(text)
            sys.stdout.flush()
    else:
        sys.stdout.write(text)
        sys.stdout.flush()


def _append_row(payload: dict) -> None:
    try:
        with open(ROWS_PATH, "a") as fh:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
    except OSError:
        pass


def emit(table: Table) -> None:
    """Print a report table around pytest's output capture and append
    its machine-readable form to ``bench_rows.jsonl``."""
    _uncaptured_write("\n" + table.render() + "\n")
    _append_row({"kind": "table", **table.to_dict()})


def emit_line(text: str) -> None:
    _uncaptured_write(text + "\n")
    _append_row({"kind": "line", "text": text})
