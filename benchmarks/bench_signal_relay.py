"""E4 — Theorem 6.4: signal relay end-to-end delay bounds.

Per (n, d1, d2), compares the paper's [n·d1, n·d2] against simulated
delay spans; benchmarks the relay simulation.
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import BoundsAccumulator, separations_after
from repro.analysis.report import Table
from repro.core import project, undum
from repro.sim import ExtremalStrategy, Simulator, UniformStrategy
from repro.systems import SIGNAL, RelayParams, RelaySystem
from repro.timed import Interval

from conftest import emit

SWEEP = [
    RelayParams(n=1, d1=F(1), d2=F(2)),
    RelayParams(n=2, d1=F(1), d2=F(2)),
    RelayParams(n=3, d1=F(1), d2=F(2)),
    RelayParams(n=5, d1=F(1), d2=F(2)),
    RelayParams(n=8, d1=F(1), d2=F(2)),
    RelayParams(n=4, d1=F(2), d2=F(7)),
]


def measure(params, seeds=range(16), steps=120):
    system = RelaySystem(params, dummy_interval=Interval(F(1, 2), F(1)))
    delays = BoundsAccumulator()
    for seed in seeds:
        strategy = (
            UniformStrategy(random.Random(seed))
            if seed % 2 == 0
            else ExtremalStrategy(random.Random(seed))
        )
        run = Simulator(system.algorithm, strategy).run(max_steps=steps)
        seq = undum(project(run))
        delays.add_all(separations_after(seq.events, SIGNAL(0), SIGNAL(params.n)))
    return delays


def test_e4_relay_bounds_sweep(benchmark):
    table = Table(
        "E4 / Theorem 6.4 — relay delay, paper vs simulation (16 seeded runs each)",
        ["n", "d1", "d2", "paper [n·d1, n·d2]", "measured span", "samples", "ok"],
    )
    for params in SWEEP:
        delays = measure(params)
        table.add_row(
            params.n, params.d1, params.d2,
            repr(params.end_to_end_interval),
            repr(delays.span()),
            delays.count,
            delays.all_within(params.end_to_end_interval),
        )
        assert delays.count > 0
        assert delays.all_within(params.end_to_end_interval)
    emit(table)

    benchmark(lambda: measure(SWEEP[2], seeds=range(4), steps=80))
