"""E12 — scaling of the machinery itself.

Simulator event throughput, mapping-checker throughput and zone-graph
size as the paper's systems grow (relay length n, manager count k).
"""

import random
import time
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import check_chain_on_run
from repro.sim import Simulator, UniformStrategy
from repro.systems import (
    GRANT,
    SIGNAL,
    RelayParams,
    RelaySystem,
    ResourceManagerParams,
    relay_hierarchy,
    resource_manager,
    signal_relay,
)
from repro.timed import Interval
from repro.zones import event_separation_bounds

from conftest import emit


def test_e12_simulator_scaling(benchmark):
    table = Table(
        "E12a — simulator and chain-checker scaling with relay length",
        ["n", "events simulated", "sim time (s)", "events/s",
         "chain levels", "check time (s)"],
    )
    for n in [1, 2, 4, 8, 12]:
        system = RelaySystem(
            RelayParams(n=n, d1=F(1), d2=F(2)), dummy_interval=Interval(F(1, 2), F(1))
        )
        started = time.perf_counter()
        run = Simulator(system.algorithm, UniformStrategy(random.Random(0))).run(
            max_steps=400
        )
        sim_elapsed = time.perf_counter() - started
        chain = relay_hierarchy(system)
        started = time.perf_counter()
        outcome = check_chain_on_run(chain, run)
        check_elapsed = time.perf_counter() - started
        assert outcome.ok
        table.add_row(
            n, len(run), sim_elapsed,
            int(len(run) / sim_elapsed) if sim_elapsed else "-",
            len(chain), check_elapsed,
        )
    emit(table)

    system = RelaySystem(
        RelayParams(n=4, d1=F(1), d2=F(2)), dummy_interval=Interval(F(1, 2), F(1))
    )
    benchmark(
        lambda: Simulator(system.algorithm, UniformStrategy(random.Random(1))).run(
            max_steps=200
        )
    )


def test_e12_zone_scaling(benchmark):
    table = Table(
        "E12b — zone-graph size with system scale",
        ["system", "quantity", "zone nodes", "transitions"],
    )
    for k in [1, 2, 4, 6]:
        params = ResourceManagerParams(k=k, c1=F(2), c2=F(3), l=F(1))
        bounds = event_separation_bounds(
            resource_manager(params), GRANT, occurrence=2, reset_on=[GRANT]
        )
        table.add_row("RM k={}".format(k), "GRANT gap", bounds.nodes, bounds.transitions)
    for n in [2, 4, 6, 8]:
        params = RelayParams(n=n, d1=F(1), d2=F(2))
        bounds = event_separation_bounds(
            signal_relay(params), SIGNAL(n), occurrence=1, reset_on=[SIGNAL(0)]
        )
        table.add_row(
            "relay n={}".format(n), "end-to-end", bounds.nodes, bounds.transitions
        )
    emit(table)

    params = ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))
    timed = resource_manager(params)
    benchmark(
        lambda: event_separation_bounds(timed, GRANT, occurrence=2, reset_on=[GRANT])
    )
