"""E17 — timing-tolerance search across every shipped system.

How much proportional drift ``ε`` can each system's bounds absorb
before its proofs (mappings, Lemma 2.1, zone bounds, safety) first
fail?  The perturbation harness binary-searches the threshold; theory
predicts it exactly from the bound ratios, so the measured bracket
must contain the predicted breaking point:

* resource manager (tighten):  (c2 - c1)/(c2 + c1) = 1/5
* signal relay     (tighten):  (d2 - d1)/(d2 + d1) = 1/3
* two-stage chain  (tighten):  1/5  (the [2, 3] stage inverts first)
* Fischer          (widen):    (b - a)/(a + b)     = 1/3
* Fischer a = b    (widen):    broken at ε = 0 (zero tolerance)
* Peterson / tournament:       untimed mutex — immune, ceiling hit
"""

from fractions import Fraction as F

from repro.analysis.report import Table
from repro.faults import Budget, build_perturb_target, perturb_names

from conftest import emit

RESOLUTION = F(1, 32)

PREDICTED = {
    "rm": F(1, 5),
    "relay": F(1, 3),
    "chain": F(1, 5),
    "fischer": F(1, 3),
    "fischer-tight": F(0),
    "peterson": None,
    "tournament": None,
}


def budget():
    return Budget(max_states=100_000, max_steps=1_000_000, wall_time=30)


def search(name, resolution=RESOLUTION):
    target = build_perturb_target(name, seeds=2, steps=60)
    return target.search(resolution=resolution, budget_factory=budget)


def verdict_of(report):
    if report.broken:
        return "BROKEN at eps=0"
    if report.ceiling_hit:
        return "immune (ceiling {} hit)".format(report.ceiling)
    return "tolerance in [{}, {})".format(report.tolerance, report.breaking_epsilon)


def test_e17_tolerance_matches_theory(benchmark):
    table = Table(
        "E17 — timing tolerance per system "
        "(binary search, resolution {})".format(RESOLUTION),
        ["system", "direction", "predicted eps*", "measured", "probes"],
    )
    reports = {}
    for name in perturb_names():
        report = search(name)
        reports[name] = report
        predicted = PREDICTED[name]
        table.add_row(
            name,
            "{} {}".format(report.direction, report.mode),
            str(predicted) if predicted is not None else "∞ (untimed)",
            verdict_of(report),
            report.probes,
        )
    emit(table)

    for name, predicted in PREDICTED.items():
        report = reports[name]
        assert not report.exhausted_budget, name
        if predicted is None:
            assert report.ceiling_hit, name
        elif predicted == 0:
            assert report.broken, name
        else:
            # The bracket [tolerance, breaking_epsilon) straddles the
            # theoretical threshold and is one resolution step wide.
            assert report.tolerance < predicted <= report.breaking_epsilon, name
            assert report.breaking_epsilon - report.tolerance <= RESOLUTION, name

    benchmark(lambda: search("fischer", resolution=F(1, 8)))
