"""E5 — Lemma 6.2 / Corollary 6.3: the relay mapping hierarchy.

Checks every level of ``time(Ã, b̃) → B_{n-1} → … → B_0 → B`` in
lockstep along seeded runs, for increasing line lengths; benchmarks the
chain checker (the cost grows with the number of levels — the price of
the recurrence-structured proof, paid once per hop).
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import check_chain_on_run
from repro.sim import Simulator, UniformStrategy
from repro.systems import RelayParams, RelaySystem, relay_hierarchy
from repro.timed import Interval

from conftest import emit

LENGTHS = [1, 2, 3, 5, 8]


def check_hierarchy(system, chain, seeds=range(8), steps=100):
    total = 0
    for seed in seeds:
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=steps
        )
        outcome = check_chain_on_run(chain, run)
        outcome.raise_if_failed()
        total += outcome.steps_checked
    return total


def test_e5_hierarchy(benchmark):
    table = Table(
        "E5 / Lemma 6.2 — hierarchical mapping chain, all levels lockstep",
        ["n", "levels", "per-level obligations checked", "verdict"],
    )
    systems = {}
    for n in LENGTHS:
        params = RelayParams(n=n, d1=F(1), d2=F(2))
        system = RelaySystem(params, dummy_interval=Interval(F(1, 2), F(1)))
        systems[n] = system
        chain = relay_hierarchy(system)
        steps = check_hierarchy(system, chain)
        table.add_row(n, len(chain), steps * len(chain), "holds")
    emit(table)

    system = systems[3]
    chain = relay_hierarchy(system)
    run = Simulator(system.algorithm, UniformStrategy(random.Random(0))).run(
        max_steps=100
    )
    benchmark(lambda: check_chain_on_run(chain, run))
