"""E1 — Theorem 4.4: resource manager GRANT bounds.

Regenerates, per parameter point, the paper's claims (first-GRANT time
in [k·c1, k·c2 + l], gaps in [k·c1 − l, k·c2 + l]) against seeded
simulation spans, and benchmarks the simulation kernel.
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import BoundsAccumulator, gaps, occurrence_times
from repro.analysis.report import Table
from repro.sim import ExtremalStrategy, Simulator, UniformStrategy
from repro.sim.trace import timed_behavior_of_run
from repro.systems import GRANT, ResourceManagerParams, ResourceManagerSystem

from conftest import emit

SWEEP = [
    ResourceManagerParams(k=1, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=4, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=6, c1=F(2), c2=F(3), l=F(1)),
    ResourceManagerParams(k=2, c1=F(5), c2=F(8), l=F(3)),
]


def measure(params: ResourceManagerParams, seeds=range(12), steps=250):
    system = ResourceManagerSystem(params)
    first = BoundsAccumulator()
    gap = BoundsAccumulator()
    for seed in seeds:
        strategy = (
            UniformStrategy(random.Random(seed))
            if seed % 2 == 0
            else ExtremalStrategy(random.Random(seed))
        )
        run = Simulator(system.algorithm, strategy).run(max_steps=steps)
        behavior = timed_behavior_of_run(system.timed.automaton, run)
        times = occurrence_times(behavior, GRANT)
        if times:
            first.add(times[0])
            gap.add_all(gaps(times))
    return first, gap


def test_e1_grant_bounds_sweep(benchmark):
    results = []
    for params in SWEEP:
        first, gap = measure(params)
        results.append((params, first, gap))

    table = Table(
        "E1 / Theorem 4.4 — GRANT bounds, paper vs simulation (12 seeded runs each)",
        ["k", "c1", "c2", "l", "paper first", "measured first", "ok",
         "paper gap", "measured gap", "ok "],
    )
    for params, first, gap in results:
        table.add_row(
            params.k, params.c1, params.c2, params.l,
            repr(params.first_grant_interval),
            repr(first.span()),
            first.all_within(params.first_grant_interval),
            repr(params.grant_gap_interval),
            repr(gap.span()),
            gap.all_within(params.grant_gap_interval),
        )
    emit(table)

    benchmark(lambda: measure(SWEEP[1], seeds=range(4), steps=150))
