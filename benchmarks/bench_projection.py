"""E7 — Lemmas 3.2/3.3: projection/lifting round trips.

Every simulated execution of time(A, b) projects to a timed
semi-execution of (A, b), and lifting the projection reconstructs the
original execution uniquely.  Benchmarks the round trip.
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import lift, project, time_of_boundmap
from repro.sim import Simulator, UniformStrategy
from repro.systems import ResourceManagerParams, resource_manager
from repro.timed.satisfaction import find_boundmap_violation

from conftest import emit


def test_e7_projection_round_trip(benchmark):
    timed = resource_manager(ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1)))
    automaton = time_of_boundmap(timed)

    table = Table(
        "E7 / Lemmas 3.2–3.3 — projection and lifting",
        ["seed", "steps", "projection is semi-execution", "lift reconstructs run"],
    )
    runs = []
    for seed in range(10):
        run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
            max_steps=150
        )
        runs.append(run)
        seq = project(run)
        semi_ok = find_boundmap_violation(timed, seq, semi=True) is None
        lifted = lift(automaton, seq)
        round_trip = lifted == run
        table.add_row(seed, len(run), semi_ok, round_trip)
        assert semi_ok and round_trip
    emit(table)

    run = runs[0]
    benchmark(lambda: lift(automaton, project(run)))
