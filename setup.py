"""Setup shim for environments without the ``wheel`` package, where
``pip install -e .`` must fall back to the legacy (non-PEP-517) editable
install.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
