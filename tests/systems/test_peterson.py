"""Peterson's 2-process mutual exclusion with step-time bounds.

Safety is asynchronous (holds for every boundmap); the timing question
— first entry under contention — is exactly ``[3·s1, 3·s2]``, the
[LG89]-style recurrence bound, proven tight by the zone engine.
"""

import random
from fractions import Fraction as F

import pytest

from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.ioa.explorer import check_invariant
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy
from repro.systems.extensions.peterson import (
    CRITICAL,
    ENTER,
    EXIT,
    SETFLAG,
    SETTURN,
    TEST,
    PetersonParams,
    both_critical,
    peterson_automaton,
    peterson_system,
    someone_critical,
)
from repro.analysis.recurrence import peterson_first_entry_chain
from repro.timed.satisfaction import find_boundmap_violation
from repro.zones.analysis import event_separation_bounds, find_reachable_state


class TestParams:
    def test_ordering(self):
        with pytest.raises(Exception):
            PetersonParams(s1=2, s2=1)

    def test_s2_positive(self):
        with pytest.raises(Exception):
            PetersonParams(s1=0, s2=0)

    def test_e_positive(self):
        with pytest.raises(Exception):
            PetersonParams(s1=1, s2=2, e=0)


class TestUntimedSafety:
    def test_mutex_invariant_exhaustive(self):
        # Asynchronous safety: checked over the full untimed state graph.
        auto = peterson_automaton(PetersonParams(s1=F(1), s2=F(2), repeat=True))
        report = check_invariant(auto, lambda s: not both_critical(s))
        assert report.holds

    def test_mutex_under_timed_semantics(self):
        params = PetersonParams(s1=F(1), s2=F(2), e=F(1), repeat=True)
        bad = find_reachable_state(
            peterson_system(params), both_critical, max_nodes=300_000
        )
        assert bad is None

    def test_mutex_for_degenerate_bounds(self):
        # Unlike Fischer, no timing discipline is needed: even with the
        # laziest/fastest extremes the invariant holds.
        params = PetersonParams(s1=F(0), s2=F(10), e=F(10), repeat=True)
        bad = find_reachable_state(
            peterson_system(params), both_critical, max_nodes=300_000
        )
        assert bad is None


class TestContentionBound:
    @pytest.mark.parametrize(
        "s1,s2",
        [(F(1), F(2)), (F(0), F(1)), (F(1), F(10)), (F(2), F(3))],
    )
    def test_first_entry_exactly_three_steps(self, s1, s2):
        params = PetersonParams(s1=s1, s2=s2)
        bounds = event_separation_bounds(
            peterson_system(params),
            {ENTER(1), ENTER(2)},
            occurrence=1,
            max_nodes=200_000,
        )
        assert bounds.lo == 3 * s1
        assert bounds.hi == 3 * s2
        assert not bounds.lo_strict and not bounds.hi_strict

    def test_matches_recurrence_baseline(self):
        params = PetersonParams(s1=F(1), s2=F(2))
        operational = peterson_first_entry_chain(params.step_interval).total()
        exact = event_separation_bounds(
            peterson_system(params), {ENTER(1), ENTER(2)}, occurrence=1,
            max_nodes=200_000,
        )
        assert (exact.lo, exact.hi) == (operational.lo, operational.hi)

    def test_handover_within_one_step(self):
        # After the winner exits, the loser's next check admits it:
        # handover within [0, s2].
        params = PetersonParams(s1=F(1), s2=F(2), e=F(1))
        bounds = event_separation_bounds(
            peterson_system(params),
            {ENTER(1), ENTER(2)},
            occurrence=2,
            reset_on={EXIT(1), EXIT(2)},
            max_nodes=400_000,
        )
        assert bounds.lo == 0 and bounds.hi == params.s2

    def test_second_entry_absolute(self):
        # 3 steps + critical section + one more check.
        params = PetersonParams(s1=F(1), s2=F(2), e=F(1))
        bounds = event_separation_bounds(
            peterson_system(params), {ENTER(1), ENTER(2)}, occurrence=2,
            max_nodes=400_000,
        )
        assert bounds.lo == 3 * params.s1
        assert bounds.hi == 3 * params.s2 + params.e + params.s2


class TestSimulation:
    def test_runs_are_semi_executions(self):
        params = PetersonParams(s1=F(1), s2=F(2), e=F(1), repeat=True)
        timed = peterson_system(params)
        automaton = time_of_boundmap(timed)
        for seed in range(4):
            run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
                max_steps=100
            )
            assert find_boundmap_violation(timed, project(run), semi=True) is None
            assert all(not both_critical(s.astate) for s in run.states)

    def test_someone_enters_within_three_slow_steps(self):
        params = PetersonParams(s1=F(1), s2=F(2), e=F(1), repeat=True)
        automaton = time_of_boundmap(peterson_system(params))
        for seed in range(6):
            run = Simulator(automaton, ExtremalStrategy(random.Random(seed))).run(
                max_steps=60
            )
            entries = [
                ev.time for ev in run.events if ev.action in (ENTER(1), ENTER(2))
            ]
            assert entries and entries[0] <= 3 * params.s2

    def test_one_shot_variant_quiesces(self):
        params = PetersonParams(s1=F(1), s2=F(2), e=F(1), repeat=False)
        automaton = time_of_boundmap(peterson_system(params))
        run = Simulator(automaton, UniformStrategy(random.Random(0))).run(
            max_steps=100
        )
        assert len(run) < 100  # both processes reach DONE and stop
        exits = [ev for ev in run.events if ev.action in (EXIT(1), EXIT(2))]
        assert len(exits) == 2
