"""Property-based testing of the heterogeneous chain hierarchy.

For random per-stage intervals, the generalised Section 6 machinery
must hold end to end: the hierarchy checks on simulated runs, the
derived requirement is the Minkowski sum, and the zone engine confirms
the bound tight.
"""

import random
from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import check_chain_on_run
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy
from repro.systems.extensions.chain import EVENT, ChainSystem, partial_sum_interval
from repro.timed.interval import Interval
from repro.zones.analysis import event_separation_bounds


@st.composite
def stage_lists(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    stages = []
    for _ in range(count):
        lo = draw(st.fractions(min_value=0, max_value=3, max_denominator=2))
        width = draw(st.fractions(min_value=0, max_value=3, max_denominator=2))
        hi = lo + width
        if hi == 0:
            hi = F(1, 2)
        stages.append(Interval(lo, hi))
    return stages


@settings(max_examples=12, deadline=None)
@given(stages=stage_lists(), seed=st.integers(min_value=0, max_value=1000))
def test_hierarchy_holds_on_random_chains(stages, seed):
    system = ChainSystem(stages, dummy_interval=Interval(F(1, 2), F(1)))
    chain = system.hierarchy()
    strategy = (
        UniformStrategy(random.Random(seed))
        if seed % 2
        else ExtremalStrategy(random.Random(seed))
    )
    run = Simulator(system.algorithm, strategy).run(max_steps=50)
    outcome = check_chain_on_run(chain, run)
    assert outcome.ok, outcome.detail


@settings(max_examples=12, deadline=None)
@given(stages=stage_lists())
def test_requirement_is_partial_sum(stages):
    system = ChainSystem(stages)
    assert system.requirement.interval == partial_sum_interval(stages, 0)


@settings(max_examples=10, deadline=None)
@given(stages=stage_lists())
def test_end_to_end_bound_exact(stages):
    system = ChainSystem(stages)
    m = len(stages)
    bounds = event_separation_bounds(
        system.timed, EVENT(m), occurrence=1, reset_on=[EVENT(0)], max_nodes=30_000
    )
    expected = partial_sum_interval(stages, 0)
    assert bounds.lo == expected.lo
    assert bounds.hi == expected.hi
    assert not bounds.lo_strict and not bounds.hi_strict
