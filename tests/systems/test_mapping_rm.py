"""Lemma 4.3: the Section 4.3 mapping is a strong possibilities mapping
— checked on runs, exhaustively on a grid, and refuted under mutation."""

import random
from fractions import Fraction as F

import pytest

from repro.core.checker import check_mapping_exhaustive, check_mapping_on_run
from repro.core.mappings import InequalityMapping
from repro.core.time_automaton import time_of_conditions
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, LazyStrategy, UniformStrategy
from repro.systems.mappings_rm import resource_manager_mapping
from repro.systems.resource_manager import (
    ResourceManagerParams,
    ResourceManagerSystem,
    grant_conditions,
    timer_of,
)
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval


class TestMappingOnRuns:
    def test_uniform_runs(self, rm_system):
        mapping = resource_manager_mapping(rm_system)
        for seed in range(8):
            run = Simulator(
                rm_system.algorithm, UniformStrategy(random.Random(seed))
            ).run(max_steps=150)
            outcome = check_mapping_on_run(mapping, run)
            assert outcome.ok, outcome.detail

    def test_extremal_runs(self, rm_system):
        mapping = resource_manager_mapping(rm_system)
        for seed in range(8):
            run = Simulator(
                rm_system.algorithm, ExtremalStrategy(random.Random(seed))
            ).run(max_steps=150)
            assert check_mapping_on_run(mapping, run).ok

    def test_lazy_runs(self, rm_system):
        mapping = resource_manager_mapping(rm_system)
        run = Simulator(rm_system.algorithm, LazyStrategy(random.Random(0))).run(
            max_steps=200
        )
        assert check_mapping_on_run(mapping, run).ok

    @pytest.mark.parametrize(
        "k,c1,c2,l",
        [(1, F(2), F(3), F(1)), (3, F(2), F(2), F(1)), (2, F(5), F(7), F(2))],
    )
    def test_other_parameterisations(self, k, c1, c2, l):
        system = ResourceManagerSystem(ResourceManagerParams(k=k, c1=c1, c2=c2, l=l))
        mapping = resource_manager_mapping(system)
        for seed in range(4):
            run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
                max_steps=120
            )
            assert check_mapping_on_run(mapping, run).ok


class TestMappingExhaustive:
    def test_small_grid_exhaustive(self):
        system = ResourceManagerSystem(
            ResourceManagerParams(k=1, c1=F(2), c2=F(3), l=F(1))
        )
        mapping = resource_manager_mapping(system)
        outcome = check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=F(8))
        assert outcome.ok, outcome.detail
        assert outcome.steps_checked > 100

    def test_k2_grid_exhaustive(self, rm_system):
        mapping = resource_manager_mapping(rm_system)
        outcome = check_mapping_exhaustive(mapping, grid=F(1), horizon=F(10))
        assert outcome.ok, outcome.detail


def _mutated_requirements(system, g1_interval=None, g2_interval=None):
    g1, g2 = grant_conditions(system.params)
    if g1_interval is not None:
        g1 = TimingCondition.from_start("G1", g1_interval, [g1])
        # rebuild with the same Π
        from repro.systems.resource_manager import GRANT

        g1 = TimingCondition.from_start("G1", g1_interval, [GRANT])
    if g2_interval is not None:
        from repro.systems.resource_manager import GRANT

        g2 = TimingCondition.after_action("G2", g2_interval, GRANT, [GRANT])
    return time_of_conditions(system.timed.automaton, [g1, g2], name="B-mutated")


def _mapping_against(system, requirements):
    """The Section 4.3 inequalities pointed at a (possibly wrong)
    requirements automaton."""
    algorithm = system.algorithm
    c1, c2, l = system.params.c1, system.params.c2, system.params.l

    def predicate(u, s):
        min_lt = min(requirements.lt(u, "G1"), requirements.lt(u, "G2"))
        max_ft = max(requirements.ft(u, "G1"), requirements.ft(u, "G2"))
        timer = timer_of(s.astate)
        if timer > 0:
            return (
                min_lt >= algorithm.lt(s, "TICK") + (timer - 1) * c2 + l
                and max_ft <= algorithm.ft(s, "TICK") + (timer - 1) * c1
            )
        return min_lt >= algorithm.lt(s, "LOCAL") and max_ft <= s.now

    return InequalityMapping(algorithm, requirements, predicate, name="mutated")


class TestMutations:
    """Wrong requirement bounds must be *refuted* by the checker — this
    is what distinguishes a proof check from a vacuous pass."""

    def _refuted(self, system, mapping, seeds=range(12)):
        for seed in seeds:
            run = Simulator(
                system.algorithm, ExtremalStrategy(random.Random(seed))
            ).run(max_steps=200)
            if not check_mapping_on_run(mapping, run).ok:
                return True
        return False

    def test_too_tight_g1_upper_refuted(self, rm_system):
        params = rm_system.params
        bad = _mutated_requirements(
            rm_system,
            g1_interval=Interval(params.k * params.c1, params.k * params.c2),  # no +l
        )
        assert self._refuted(rm_system, _mapping_against(rm_system, bad))

    def test_too_high_g1_lower_refuted(self, rm_system):
        params = rm_system.params
        bad = _mutated_requirements(
            rm_system,
            g1_interval=Interval(
                params.k * params.c1 + 1, params.k * params.c2 + params.l
            ),
        )
        assert self._refuted(rm_system, _mapping_against(rm_system, bad))

    def test_too_tight_g2_refuted(self, rm_system):
        params = rm_system.params
        bad = _mutated_requirements(
            rm_system,
            g2_interval=Interval(
                params.k * params.c1, params.k * params.c2  # gap lower misses −l
            ),
        )
        assert self._refuted(rm_system, _mapping_against(rm_system, bad))

    def test_exhaustive_refutation(self):
        system = ResourceManagerSystem(
            ResourceManagerParams(k=1, c1=F(2), c2=F(3), l=F(1))
        )
        # True first-grant supremum is k·c2 + l = 4; claim 3 instead.
        bad = _mutated_requirements(system, g1_interval=Interval(2, 3))
        outcome = check_mapping_exhaustive(
            _mapping_against(system, bad), grid=F(1, 2), horizon=F(8)
        )
        assert not outcome.ok

    def test_wrong_inequality_constant_refuted(self, rm_system):
        # Break the mapping itself (drop the +l in the Lt inequality so
        # it demands too much): containment must fail somewhere.
        algorithm = rm_system.algorithm
        requirements = rm_system.requirements
        c1, c2, l = rm_system.params.c1, rm_system.params.c2, rm_system.params.l

        def too_strong(u, s):
            min_lt = min(requirements.lt(u, "G1"), requirements.lt(u, "G2"))
            timer = timer_of(s.astate)
            if timer > 0:
                return min_lt >= algorithm.lt(s, "TICK") + (timer - 1) * c2 + l + 1
            return min_lt >= algorithm.lt(s, "LOCAL")

        mapping = InequalityMapping(algorithm, requirements, too_strong)
        assert self._refuted(rm_system, mapping)
