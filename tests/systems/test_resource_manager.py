"""Section 4 resource manager: structure, Lemma 4.1, Theorem 4.4
measurements."""

import random
from fractions import Fraction as F

import pytest

from repro.errors import AutomatonError
from repro.core.discretize import discrete_options
from repro.core.projection import project
from repro.sim.scheduler import Simulator
from repro.sim.strategies import EagerStrategy, LazyStrategy, UniformStrategy
from repro.sim.trace import timed_behavior_of_run
from repro.systems.resource_manager import (
    ELSE,
    GRANT,
    TICK,
    ResourceManagerParams,
    ResourceManagerSystem,
    lemma_4_1_predicate,
    manager_automaton,
    resource_manager,
    timer_of,
)
from repro.analysis.bounds import gaps, occurrence_times
from repro.timed.satisfaction import find_boundmap_violation


class TestParams:
    def test_k_positive(self):
        with pytest.raises(AutomatonError):
            ResourceManagerParams(k=0, c1=2, c2=3, l=1)

    def test_c1_le_c2(self):
        with pytest.raises(AutomatonError):
            ResourceManagerParams(k=1, c1=3, c2=2, l=1)

    def test_c1_greater_than_l(self):
        with pytest.raises(AutomatonError):
            ResourceManagerParams(k=1, c1=1, c2=2, l=1)

    def test_l_positive(self):
        with pytest.raises(AutomatonError):
            ResourceManagerParams(k=1, c1=2, c2=3, l=0)

    def test_paper_intervals(self, rm_params):
        assert rm_params.first_grant_interval.lo == 2 * rm_params.c1
        assert rm_params.first_grant_interval.hi == 2 * rm_params.c2 + rm_params.l
        assert rm_params.grant_gap_interval.lo == 2 * rm_params.c1 - rm_params.l


class TestStructure:
    def test_manager_effects(self):
        mgr = manager_automaton(3)
        assert list(mgr.transitions(3, TICK)) == [2]
        assert list(mgr.transitions(0, GRANT)) == [3]

    def test_grant_enabled_iff_timer_nonpositive(self):
        mgr = manager_automaton(2)
        assert not mgr.is_enabled(1, GRANT)
        assert mgr.is_enabled(0, GRANT)
        assert mgr.is_enabled(-1, GRANT)

    def test_else_complements_grant(self):
        mgr = manager_automaton(2)
        for timer in (-1, 0, 1, 2):
            assert mgr.is_enabled(timer, ELSE) != mgr.is_enabled(timer, GRANT)

    def test_tick_hidden_in_composition(self, rm_params):
        ta = resource_manager(rm_params)
        assert TICK in ta.automaton.signature.internals
        assert ta.automaton.signature.external == {GRANT}

    def test_local_class_always_enabled(self, rm_params):
        # The LOCAL class (GRANT or ELSE) is enabled in every reachable state.
        ta = resource_manager(rm_params)
        local = ta.automaton.partition["LOCAL"]
        for timer in range(-1, rm_params.k + 1):
            state = ("clockstate", timer)
            assert ta.automaton.class_enabled(state, local)

    def test_start_state(self, rm_system):
        assert timer_of(rm_system.start_astate()) == rm_system.params.k


class TestLemma41:
    def test_along_random_runs(self, rm_system):
        predicate = lemma_4_1_predicate(rm_system)
        for seed in range(8):
            run = Simulator(
                rm_system.algorithm, UniformStrategy(random.Random(seed))
            ).run(max_steps=120)
            assert all(predicate(state) for state in run.states)

    def test_exhaustive_on_grid(self, rm_system):
        predicate = lemma_4_1_predicate(rm_system)
        seen = set()
        frontier = list(rm_system.algorithm.start_states())
        grid = F(1, 2)
        while frontier:
            state = frontier.pop()
            if state in seen:
                continue
            seen.add(state)
            assert predicate(state), state
            for action, t in discrete_options(rm_system.algorithm, state, grid, F(9)):
                frontier.extend(rm_system.algorithm.successors(state, action, t))
        assert len(seen) > 50

    def test_timer_never_negative(self, rm_system):
        predicate = lemma_4_1_predicate(rm_system)
        run = Simulator(rm_system.algorithm, EagerStrategy(random.Random(0))).run(
            max_steps=200
        )
        assert all(timer_of(s.astate) >= 0 for s in run.states)
        assert all(predicate(s) for s in run.states)


class TestTheorem44Measurements:
    def _grant_times(self, system, strategy, steps=400):
        run = Simulator(system.algorithm, strategy).run(max_steps=steps)
        behavior = timed_behavior_of_run(system.timed.automaton, run)
        return occurrence_times(behavior, GRANT)

    def test_uniform_runs_within_bounds(self, rm_system):
        params = rm_system.params
        for seed in range(6):
            times = self._grant_times(rm_system, UniformStrategy(random.Random(seed)))
            assert times, "expected several grants"
            assert times[0] in params.first_grant_interval
            for gap in gaps(times):
                assert gap in params.grant_gap_interval

    def test_eager_attains_lower_bound(self, rm_system):
        times = self._grant_times(rm_system, EagerStrategy(random.Random(0)))
        assert times[0] == rm_system.params.first_grant_interval.lo

    def test_lazy_stays_within_bounds(self, rm_system):
        # Lazy scheduling delays each *event* maximally; interestingly
        # that forces TICKs early (the LOCAL deadline is always the
        # binding one), so it probes the bounds rather than attaining
        # the supremum — attainment is covered by the extremal sweep
        # below and exactly by the zone analysis.
        params = rm_system.params
        times = self._grant_times(rm_system, LazyStrategy(random.Random(0)))
        assert times and times[0] in params.first_grant_interval
        for gap in gaps(times):
            assert gap in params.grant_gap_interval

    def test_extremal_attains_upper_bound(self, rm_system):
        from repro.sim.strategies import ExtremalStrategy

        params = rm_system.params
        best = max(
            self._grant_times(
                rm_system, ExtremalStrategy(random.Random(seed), p_low=0.3)
            )[0]
            for seed in range(40)
        )
        assert best == params.first_grant_interval.hi

    def test_projections_are_semi_executions(self, rm_system):
        run = Simulator(rm_system.algorithm, UniformStrategy(random.Random(1))).run(
            max_steps=100
        )
        assert find_boundmap_violation(rm_system.timed, project(run), semi=True) is None

    def test_requirements_satisfied_semantically(self, rm_system):
        from repro.timed.satisfaction import semi_satisfies_all

        run = Simulator(rm_system.algorithm, UniformStrategy(random.Random(2))).run(
            max_steps=150
        )
        assert semi_satisfies_all(project(run), [rm_system.g1, rm_system.g2]) is None

    def test_lemma_4_2_runs_never_quiesce(self, rm_system):
        # Lemma 4.2: all timed executions are infinite — the simulator
        # always finds a next event.
        run = Simulator(rm_system.algorithm, UniformStrategy(random.Random(3))).run(
            max_steps=300
        )
        assert len(run) == 300
