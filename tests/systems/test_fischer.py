"""Fischer's timed mutual exclusion: safety is a timing property.

The protocol is safe exactly when the wait-before-check exceeds the
maximum set delay (b > a); with this model's closed bounds, b = a
already admits a same-instant interleaving that violates mutex.
"""

import random
from fractions import Fraction as F

import pytest

from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy
from repro.systems.extensions.fischer import (
    CRITICAL,
    ENTER,
    EXIT,
    FischerParams,
    IDLE,
    SET,
    TRY,
    critical_processes,
    fischer_automaton,
    fischer_system,
    mutual_exclusion_violated,
)
from repro.timed.satisfaction import find_boundmap_violation
from repro.zones.analysis import find_reachable_state


class TestParams:
    def test_needs_two_processes(self):
        with pytest.raises(Exception):
            FischerParams(n=1, a=1, b=2, e=1)

    def test_positive_delays(self):
        with pytest.raises(Exception):
            FischerParams(n=2, a=0, b=2, e=1)

    def test_safe_predicate(self):
        assert FischerParams(n=2, a=1, b=2, e=1).safe
        assert not FischerParams(n=2, a=2, b=2, e=1).safe


class TestAutomaton:
    def setup_method(self):
        self.params = FischerParams(n=2, a=F(1), b=F(2), e=F(1))
        self.auto = fischer_automaton(self.params)
        (self.start,) = list(self.auto.start_states())

    def test_start_state(self):
        assert self.start == (0, (IDLE, IDLE))

    def test_try_requires_free_variable(self):
        assert self.auto.is_enabled(self.start, TRY(1))
        after_set = (1, ("waiting", IDLE))
        assert not self.auto.is_enabled(after_set, TRY(2))

    def test_set_writes_variable(self):
        setting = (0, ("setting", IDLE))
        (post,) = list(self.auto.transitions(setting, SET(1)))
        assert post == (1, ("waiting", IDLE))

    def test_enter_requires_ownership(self):
        waiting_owned = (1, ("waiting", IDLE))
        assert self.auto.is_enabled(waiting_owned, ENTER(1))
        waiting_lost = (2, ("waiting", "setting"))
        assert not self.auto.is_enabled(waiting_lost, ENTER(1))

    def test_exit_frees_variable(self):
        critical = (1, (CRITICAL, IDLE))
        (post,) = list(self.auto.transitions(critical, EXIT(1)))
        assert post == (0, (IDLE, IDLE))

    def test_partition_classes(self):
        names = set(self.auto.partition.names)
        assert {"TRY_1", "SET_1", "CHECK_1", "EXIT_1"} <= names
        assert len(names) == 4 * self.params.n


class TestSafetyViaZones:
    """Textbook setting: unbounded critical sections (e = ∞).  Safety
    holds iff b > a — both directions decided exactly."""

    @pytest.mark.parametrize("a,b", [(F(1), F(2)), (F(1), F(3, 2)), (F(3), F(4))])
    def test_safe_when_b_exceeds_a(self, a, b):
        params = FischerParams(n=2, a=a, b=b)
        bad = find_reachable_state(
            fischer_system(params), mutual_exclusion_violated, max_nodes=300_000
        )
        assert bad is None

    @pytest.mark.parametrize("a,b", [(F(2), F(1)), (F(1), F(1)), (F(3), F(2))])
    def test_unsafe_when_b_at_most_a(self, a, b):
        params = FischerParams(n=2, a=a, b=b)
        bad = find_reachable_state(
            fischer_system(params), mutual_exclusion_violated, max_nodes=300_000
        )
        assert bad is not None
        assert critical_processes(bad) == 2

    def test_three_processes_safe(self):
        params = FischerParams(n=3, a=F(1), b=F(2))
        bad = find_reachable_state(
            fischer_system(params), mutual_exclusion_violated, max_nodes=400_000
        )
        assert bad is None

    def test_bounded_critical_section_rescues_a_violating_config(self):
        # Ablation: a = 3 > b = 2 is unsafe in the textbook setting, but
        # with e = 1 < b the first process always leaves before the late
        # setter's mandatory wait elapses — safe again.
        unsafe = FischerParams(n=2, a=F(3), b=F(2))
        assert (
            find_reachable_state(
                fischer_system(unsafe), mutual_exclusion_violated, max_nodes=300_000
            )
            is not None
        )
        rescued = FischerParams(n=2, a=F(3), b=F(2), e=F(1))
        assert (
            find_reachable_state(
                fischer_system(rescued), mutual_exclusion_violated, max_nodes=300_000
            )
            is None
        )


class TestContentionBound:
    """The contending variant (all processes start setting): the first
    entry lands exactly in [b, a + 2b] — the last setter wins, and its
    check follows its set by [b, 2b]."""

    @pytest.mark.parametrize(
        "a,b",
        [(F(1), F(2)), (F(1), F(3)), (F(1, 2), F(2))],
    )
    def test_first_entry_exact(self, a, b):
        from repro.zones.analysis import event_separation_bounds

        params = FischerParams(n=2, a=a, b=b, contending=True)
        bounds = event_separation_bounds(
            fischer_system(params),
            {ENTER(1), ENTER(2)},
            occurrence=1,
            max_nodes=300_000,
        )
        assert bounds.lo == b and bounds.hi == a + 2 * b
        assert not bounds.lo_strict and not bounds.hi_strict

    def test_matches_recurrence_baseline(self):
        from repro.analysis.recurrence import fischer_first_entry_chain
        from repro.zones.analysis import event_separation_bounds

        a, b = F(1), F(2)
        operational = fischer_first_entry_chain(a, b).total()
        exact = event_separation_bounds(
            fischer_system(FischerParams(n=2, a=a, b=b, contending=True)),
            {ENTER(1), ENTER(2)},
            occurrence=1,
            max_nodes=300_000,
        )
        assert (exact.lo, exact.hi) == (operational.lo, operational.hi)

    def test_contending_start_state(self):
        params = FischerParams(n=2, a=F(1), b=F(2), contending=True)
        auto = fischer_automaton(params)
        (start,) = list(auto.start_states())
        assert start == (0, ("setting", "setting"))


class TestSimulation:
    def test_safe_runs_never_violate(self):
        params = FischerParams(n=2, a=F(1), b=F(2), e=F(1))
        automaton = time_of_boundmap(fischer_system(params))
        for seed in range(6):
            run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
                max_steps=150
            )
            assert all(not mutual_exclusion_violated(s.astate) for s in run.states)

    def test_runs_are_semi_executions(self):
        params = FischerParams(n=2, a=F(1), b=F(2), e=F(1))
        timed = fischer_system(params)
        automaton = time_of_boundmap(timed)
        run = Simulator(automaton, UniformStrategy(random.Random(1))).run(max_steps=120)
        assert find_boundmap_violation(timed, project(run), semi=True) is None

    def test_extremal_search_finds_unsafe_interleaving(self):
        # With a > b, some extremal schedule reaches a double-critical
        # state — the simulation-side witness of the zone verdict.
        params = FischerParams(n=2, a=F(2), b=F(1), e=F(1))
        automaton = time_of_boundmap(fischer_system(params))
        found = False
        for seed in range(60):
            run = Simulator(automaton, ExtremalStrategy(random.Random(seed))).run(
                max_steps=120
            )
            if any(mutual_exclusion_violated(s.astate) for s in run.states):
                found = True
                break
        assert found

    def test_progress_someone_enters(self):
        params = FischerParams(n=2, a=F(1), b=F(2), e=F(1))
        automaton = time_of_boundmap(fischer_system(params))
        run = Simulator(automaton, UniformStrategy(random.Random(2))).run(max_steps=200)
        entered = sum(
            1
            for ev in run.events
            if ev.action in (ENTER(1), ENTER(2))
        )
        assert entered >= 2
