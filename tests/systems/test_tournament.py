"""The [PF77] tournament mutual exclusion — the paper's named
future-work example, generalising Peterson to n = 2^h processes."""

import random
from fractions import Fraction as F

import pytest

from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.ioa.explorer import check_invariant
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy
from repro.systems.extensions.tournament import (
    ADVANCE,
    RELEASE,
    TournamentParams,
    critical_count,
    tournament_automaton,
    tournament_mutex_violated,
    tournament_system,
)
from repro.timed.satisfaction import find_boundmap_violation
from repro.zones.analysis import event_separation_bounds, find_reachable_state


def enter_group(n: int):
    """Top-level ADVANCEs = critical-section entries."""
    height = n.bit_length() - 1
    return {ADVANCE(i, height - 1) for i in range(n)}


class TestParams:
    def test_power_of_two_required(self):
        with pytest.raises(Exception):
            TournamentParams(n=3, s1=1, s2=2)
        with pytest.raises(Exception):
            TournamentParams(n=1, s1=1, s2=2)

    def test_height(self):
        assert TournamentParams(n=2, s1=1, s2=2).height == 1
        assert TournamentParams(n=4, s1=1, s2=2).height == 2
        assert TournamentParams(n=8, s1=1, s2=2).height == 3


class TestUntimedSafety:
    @pytest.mark.parametrize("n", [2, 4])
    def test_mutex_exhaustive(self, n):
        params = TournamentParams(n=n, s1=F(1), s2=F(2), repeat=True)
        report = check_invariant(
            tournament_automaton(params),
            lambda s: not tournament_mutex_violated(s),
            max_states=200_000,
        )
        assert report.holds and not report.truncated

    def test_n8_mutex_bounded(self):
        params = TournamentParams(n=8, s1=F(1), s2=F(2), repeat=True)
        report = check_invariant(
            tournament_automaton(params),
            lambda s: not tournament_mutex_violated(s),
            max_states=60_000,
        )
        assert report.holds  # possibly truncated; no violation found


class TestTimedAnalysis:
    def test_n2_matches_peterson(self):
        params = TournamentParams(n=2, s1=F(1), s2=F(2))
        bounds = event_separation_bounds(
            tournament_system(params), enter_group(2), occurrence=1,
            max_nodes=200_000,
        )
        assert bounds.lo == 3 and bounds.hi == 6  # = Peterson's [3·s1, 3·s2]

    def test_n4_first_entry_deterministic_steps(self):
        # With deterministic step times the zone graph stays small and
        # the winner's 3-steps-per-level bound is exact: 3·h·s at both
        # ends.  (With jittered steps the losers' busy-wait spins blow
        # the zone graph past practical budgets — the scaling limit
        # recorded in EXPERIMENTS E16; simulation covers that regime.)
        params = TournamentParams(n=4, s1=F(1), s2=F(1))
        bounds = event_separation_bounds(
            tournament_system(params), enter_group(4), occurrence=1,
            max_nodes=150_000,
        )
        expected = 3 * params.height * params.s1
        assert bounds.lo == expected and bounds.hi == expected
        assert not bounds.lo_strict and not bounds.hi_strict

    def test_n4_timed_mutex_via_untimed(self):
        # Timed reachability is a subset of untimed reachability, so the
        # exhaustive untimed check (TestUntimedSafety) already covers
        # every timed execution; spot-check the containment direction on
        # the n=2 instance where the timed graph is affordable.
        params = TournamentParams(n=2, s1=F(1), s2=F(2), e=F(1), repeat=True)
        bad = find_reachable_state(
            tournament_system(params), tournament_mutex_violated,
            max_nodes=300_000,
        )
        assert bad is None


class TestSimulation:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_runs_safe_and_semi_executions(self, n):
        params = TournamentParams(n=n, s1=F(1), s2=F(2), e=F(1), repeat=True)
        timed = tournament_system(params)
        automaton = time_of_boundmap(timed)
        for seed in range(3):
            run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
                max_steps=120
            )
            assert all(critical_count(s.astate) <= 1 for s in run.states)
            assert find_boundmap_violation(timed, project(run), semi=True) is None

    def test_entries_keep_happening(self):
        params = TournamentParams(n=4, s1=F(1), s2=F(2), e=F(1), repeat=True)
        automaton = time_of_boundmap(tournament_system(params))
        run = Simulator(automaton, UniformStrategy(random.Random(7))).run(
            max_steps=300
        )
        entries = [ev for ev in run.events if ev.action in enter_group(4)]
        assert len(entries) >= 3

    def test_exit_releases_both_levels(self):
        params = TournamentParams(n=4, s1=F(1), s2=F(2), e=F(1), repeat=False)
        automaton = time_of_boundmap(tournament_system(params))
        run = Simulator(automaton, UniformStrategy(random.Random(1))).run(
            max_steps=200
        )
        # One-shot: all four processes eventually finish (pc = done),
        # which requires releasing the root and leaf on each path.
        final = run.last_state.astate
        assert all(pc == ("done",) for pc in final[1])
        # All node flags are down again.
        assert all(not fa and not fb for fa, fb, _turn in final[0])
