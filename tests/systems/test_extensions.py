"""Tests for the Section 8 extensions: interrupt-driven manager,
request/grant closed system, heterogeneous event chain."""

import random
from fractions import Fraction as F

import pytest

from repro.core.checker import check_chain_on_run
from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.systems.extensions.chain import (
    EVENT,
    ChainSystem,
    partial_sum_interval,
)
from repro.systems.extensions.interrupt_manager import (
    interrupt_manager_automaton,
    interrupt_resource_manager,
)
from repro.systems.extensions.request_grant import (
    REPLY,
    REQUEST,
    RequestGrantParams,
    request_grant_system,
    response_condition,
)
from repro.systems.resource_manager import GRANT, ResourceManagerParams
from repro.analysis.bounds import separations_after
from repro.timed.interval import Interval
from repro.timed.satisfaction import find_condition_violation
from repro.zones.analysis import absolute_event_bounds, event_separation_bounds


class TestInterruptManager:
    def test_no_else_action(self):
        mgr = interrupt_manager_automaton(2)
        assert mgr.signature.locally_controlled == {GRANT}

    def test_local_disabled_while_counting(self):
        mgr = interrupt_manager_automaton(2)
        local = mgr.partition["LOCAL"]
        assert not mgr.class_enabled(2, local)
        assert mgr.class_enabled(0, local)

    def test_first_grant_same_interval_exact(self):
        # Footnote 7: the variants have slightly different timing
        # properties; for the *first grant* the interval happens to
        # coincide — verified exactly via zones.
        params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
        bounds = absolute_event_bounds(interrupt_resource_manager(params), GRANT)
        assert bounds.tight(params.first_grant_interval)

    def test_gap_interval_coincides_with_polling_variant(self):
        # Perhaps surprisingly, the exact gap interval is the same
        # [k·c1 − l, k·c2 + l] as the polling manager's: a grant may
        # still trail its k-th tick by up to l, so the next window of
        # ticks can start c1 − l after the grant.  The footnote's
        # "slightly different timing properties" shows up structurally
        # (the Lemma 4.1 invariant below), not in this interval.
        params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
        bounds = event_separation_bounds(
            interrupt_resource_manager(params), GRANT, occurrence=2, reset_on=[GRANT]
        )
        assert bounds.tight(params.grant_gap_interval)

    def test_lemma_4_1_shape_differs(self):
        # In the polling variant LOCAL is enabled in every reachable
        # state; here it is disabled whenever TIMER > 0 — the state
        # invariant that powered Lemma 4.1's second clause has no
        # counterpart.
        params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
        ta = interrupt_resource_manager(params)
        local = ta.automaton.partition["LOCAL"]
        assert not ta.automaton.class_enabled(("clockstate", 2), local)
        assert ta.automaton.class_enabled(("clockstate", 0), local)

    def test_simulation_matches_zone_bounds(self):
        params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
        auto = time_of_boundmap(interrupt_resource_manager(params))
        gaps_seen = []
        for seed in range(6):
            run = Simulator(auto, UniformStrategy(random.Random(seed))).run(
                max_steps=150
            )
            seq = project(run)
            times = [ev.time for ev in seq.events if ev.action == GRANT]
            gaps_seen.extend(b - a for a, b in zip(times, times[1:]))
        assert gaps_seen
        assert all(g in params.grant_gap_interval for g in gaps_seen)


class TestRequestGrant:
    def test_params_validation(self):
        with pytest.raises(Exception):
            RequestGrantParams(r1=0, r2=1, l=1)
        with pytest.raises(Exception):
            RequestGrantParams(r1=2, r2=1, l=1)

    def test_well_separated_flag(self):
        assert RequestGrantParams(r1=3, r2=4, l=1).well_separated
        assert not RequestGrantParams(r1=1, r2=4, l=2).well_separated

    def test_closed_system(self):
        ta = request_grant_system(RequestGrantParams(r1=3, r2=4, l=1))
        assert ta.automaton.signature.inputs == frozenset()

    def test_response_condition_holds_on_runs(self):
        params = RequestGrantParams(r1=3, r2=4, l=1)
        auto = time_of_boundmap(request_grant_system(params))
        cond = response_condition(params)
        for seed in range(6):
            run = Simulator(auto, UniformStrategy(random.Random(seed))).run(
                max_steps=120
            )
            assert find_condition_violation(project(run), cond, semi=True) is None

    def test_response_bound_exact_via_zones(self):
        params = RequestGrantParams(r1=3, r2=4, l=1)
        bounds = event_separation_bounds(
            request_grant_system(params), REPLY, occurrence=1, reset_on=[REQUEST]
        )
        assert bounds.within(params.response_interval)

    def test_mapping_proof_of_the_response_bound(self):
        # A third complete mapping proof: with well-separated requests
        # the condition R coincides, prediction-for-prediction, with the
        # boundmap condition of the SERVE class (requests never overlap
        # a pending service, so R's re-trigger case never fires), making
        # the trivial projection mapping a strong possibilities mapping
        # from time(A, b) to time(A, {R}).
        from repro.core import check_mapping_on_run, time_of_conditions
        from repro.core.mappings import ProjectionMapping

        params = RequestGrantParams(r1=3, r2=4, l=1)
        timed = request_grant_system(params)
        algorithm = time_of_boundmap(timed)
        requirements = time_of_conditions(
            timed.automaton, [response_condition(params)], name="R-spec"
        )
        mapping = ProjectionMapping(
            algorithm, requirements, name_map={"R": "SERVE"}
        )
        for seed in range(6):
            run = Simulator(algorithm, UniformStrategy(random.Random(seed))).run(
                max_steps=120
            )
            outcome = check_mapping_on_run(mapping, run)
            assert outcome.ok, outcome.detail

    def test_every_request_answered(self):
        params = RequestGrantParams(r1=3, r2=4, l=1)
        auto = time_of_boundmap(request_grant_system(params))
        run = Simulator(auto, UniformStrategy(random.Random(1))).run(max_steps=100)
        seq = project(run)
        separations = separations_after(seq.events, REQUEST, REPLY)
        assert len(separations) >= 10
        assert all(s <= params.l for s in separations)


class TestChainSystem:
    def test_partial_sums(self):
        stages = [Interval(1, 2), Interval(F(1, 2), 3), Interval(2, 2)]
        assert partial_sum_interval(stages, 0) == Interval(F(7, 2), 7)
        assert partial_sum_interval(stages, 2) == Interval(2, 2)

    def test_requirement_is_minkowski_sum(self):
        stages = [Interval(1, 2), Interval(F(1, 2), 3)]
        system = ChainSystem(stages)
        assert system.requirement.interval == Interval(F(3, 2), 5)

    def test_empty_chain_rejected(self):
        with pytest.raises(Exception):
            ChainSystem([])

    def test_hierarchy_checks_on_runs(self):
        stages = [Interval(1, 2), Interval(F(1, 2), 3), Interval(2, 2)]
        system = ChainSystem(stages, dummy_interval=Interval(F(1, 2), 1))
        chain = system.hierarchy()
        for seed in range(6):
            run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
                max_steps=70
            )
            outcome = check_chain_on_run(chain, run)
            assert outcome.ok, outcome.detail

    def test_two_event_chain_of_the_conclusions(self):
        # π triggers φ within [a1,a2], φ triggers ψ within [b1,b2]:
        # the chain proves π-to-ψ within [a1+b1, a2+b2].
        a, b = Interval(1, 2), Interval(3, 4)
        system = ChainSystem([a, b])
        assert system.requirement.interval == Interval(4, 6)
        run = Simulator(system.algorithm, UniformStrategy(random.Random(0))).run(
            max_steps=60
        )
        assert check_chain_on_run(system.hierarchy(), run).ok

    def test_end_to_end_exact_via_zones(self):
        stages = [Interval(1, 2), Interval(3, 4)]
        system = ChainSystem(stages)
        bounds = event_separation_bounds(
            system.timed, EVENT(2), occurrence=1, reset_on=[EVENT(0)]
        )
        assert bounds.tight(Interval(4, 6))

    def test_heterogeneous_matches_relay_when_equal(self):
        from repro.systems.signal_relay import RelayParams, signal_relay, SIGNAL

        stages = [Interval(1, 2)] * 3
        chain_bounds = event_separation_bounds(
            ChainSystem(stages).timed, EVENT(3), occurrence=1, reset_on=[EVENT(0)]
        )
        relay_bounds = event_separation_bounds(
            signal_relay(RelayParams(n=3, d1=1, d2=2)),
            SIGNAL(3),
            occurrence=1,
            reset_on=[SIGNAL(0)],
        )
        assert (chain_bounds.lo, chain_bounds.hi) == (relay_bounds.lo, relay_bounds.hi)
