"""Lemma 6.2 / Corollary 6.3: the relay mapping hierarchy — per level,
as a full chain, exhaustively, and refuted under mutation."""

import math
import random
from fractions import Fraction as F

import pytest

from repro.core.checker import (
    check_chain_on_run,
    check_mapping_exhaustive,
    check_mapping_on_run,
)
from repro.core.mappings import InequalityMapping, MappingChain
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy
from repro.systems.mappings_relay import (
    entry_mapping,
    exit_mapping,
    level_mapping,
    relay_hierarchy,
)
from repro.systems.signal_relay import (
    RelayParams,
    RelaySystem,
    flags_of,
    signal_class_name,
)
from repro.timed.interval import Interval


def run_of(system, seed, steps=80, strategy_cls=UniformStrategy):
    return Simulator(system.algorithm, strategy_cls(random.Random(seed))).run(
        max_steps=steps
    )


class TestChain:
    def test_full_hierarchy_on_uniform_runs(self, relay_system):
        chain = relay_hierarchy(relay_system)
        assert len(chain) == relay_system.params.n + 1
        for seed in range(8):
            outcome = check_chain_on_run(chain, run_of(relay_system, seed))
            assert outcome.ok, outcome.detail

    def test_full_hierarchy_on_extremal_runs(self, relay_system):
        chain = relay_hierarchy(relay_system)
        for seed in range(6):
            outcome = check_chain_on_run(
                chain, run_of(relay_system, seed, strategy_cls=ExtremalStrategy)
            )
            assert outcome.ok, outcome.detail

    def test_n_equals_one_degenerate_chain(self):
        system = RelaySystem(RelayParams(n=1, d1=F(1), d2=F(2)))
        chain = relay_hierarchy(system)
        assert len(chain) == 2  # entry + exit, no f_k levels
        outcome = check_chain_on_run(chain, run_of(system, 0))
        assert outcome.ok, outcome.detail

    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_various_lengths(self, n):
        system = RelaySystem(RelayParams(n=n, d1=F(1), d2=F(2)))
        chain = relay_hierarchy(system)
        outcome = check_chain_on_run(chain, run_of(system, 1, steps=60))
        assert outcome.ok, outcome.detail


class TestLevels:
    def test_entry_mapping_alone(self, relay_system):
        mapping = entry_mapping(relay_system)
        outcome = check_mapping_on_run(mapping, run_of(relay_system, 2))
        assert outcome.ok, outcome.detail

    def test_each_level_via_chain_prefix(self, relay_system):
        # Check f_2 on its own by running the chain up to B_2's witness.
        n = relay_system.params.n
        mappings = [entry_mapping(relay_system)]
        for k in range(n - 1, 0, -1):
            mappings.append(level_mapping(relay_system, k))
            outcome = check_chain_on_run(
                MappingChain(list(mappings)), run_of(relay_system, 3)
            )
            assert outcome.ok, outcome.detail

    def test_exit_mapping_composes(self, relay_system):
        chain = MappingChain(
            [entry_mapping(relay_system)]
            + [
                level_mapping(relay_system, k)
                for k in range(relay_system.params.n - 1, 0, -1)
            ]
            + [exit_mapping(relay_system)]
        )
        assert check_chain_on_run(chain, run_of(relay_system, 4)).ok


class TestExhaustive:
    def test_small_relay_exhaustive(self):
        system = RelaySystem(
            RelayParams(n=2, d1=F(1), d2=F(2)), dummy_interval=Interval(F(1), F(2))
        )
        mapping = level_mapping(system, 1)
        # Source is B_1, which runs on the same dummified automaton; the
        # exhaustive checker explores all grid executions of B_1.
        outcome = check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=F(5))
        assert outcome.ok, outcome.detail


class TestMutations:
    def _refuted_on_runs(self, system, chain_or_mapping, seeds=range(20)):
        for seed in seeds:
            run = run_of(system, seed, strategy_cls=ExtremalStrategy)
            if isinstance(chain_or_mapping, MappingChain):
                ok = check_chain_on_run(chain_or_mapping, run).ok
            else:
                ok = check_mapping_on_run(chain_or_mapping, run).ok
            if not ok:
                return True
        return False

    def test_wrong_partial_sum_refuted(self, relay_system):
        """Claiming (n−k)·d2 − 1 instead of (n−k)·d2 in f_k's inequality
        demands an unsatisfiable Lt and must fail containment."""
        n = relay_system.params.n
        d1, d2 = relay_system.params.d1, relay_system.params.d2
        k = 1
        source = relay_system.intermediate(k)
        target = relay_system.intermediate(k - 1)
        src_u = relay_system.condition_name(k)
        tgt_u = relay_system.condition_name(k - 1)
        shared = [signal_class_name(j) for j in range(k)] + ["NULL"]

        def wrong(u, s):
            for name in shared:
                if u.preds[target.index_of(name)] != s.preds[source.index_of(name)]:
                    return False
            flags = flags_of(s.astate)
            if any(flags[i] for i in range(k + 1, n + 1)):
                need_lt = source.lt(s, src_u)
                need_ft = source.ft(s, src_u)
            elif flags[k]:
                need_lt = source.lt(s, signal_class_name(k)) + (n - k) * d2 + 1
                need_ft = source.ft(s, signal_class_name(k)) + (n - k) * d1
            else:
                need_lt, need_ft = math.inf, 0
            return target.lt(u, tgt_u) >= need_lt and target.ft(u, tgt_u) <= need_ft

        bad = InequalityMapping(source, target, wrong, name="broken f_1")
        chain = MappingChain(
            [entry_mapping(relay_system)]
            + [
                level_mapping(relay_system, j) if j != k else bad
                for j in range(n - 1, 0, -1)
            ]
            + [exit_mapping(relay_system)]
        )
        assert self._refuted_on_runs(relay_system, chain)

    def test_too_tight_requirement_refuted(self):
        """A requirements automaton claiming [n·d1, n·d2 − 1] must be
        refuted by some run reaching the true supremum."""
        params = RelayParams(n=2, d1=F(1), d2=F(2))
        system = RelaySystem(params)
        from repro.core.dummification import dummify_condition
        from repro.core.time_automaton import time_of_conditions
        from repro.systems.signal_relay import SIGNAL
        from repro.timed.conditions import TimingCondition

        tight = dummify_condition(
            TimingCondition.after_action(
                "U[0,2]", Interval(2, 3), SIGNAL(0), [SIGNAL(2)]
            )
        )
        bad_req = time_of_conditions(system.dummified.automaton, [tight], name="badB")
        mapping = InequalityMapping(
            system.algorithm, bad_req, lambda u, s: True, name="permissive"
        )
        assert self._refuted_on_runs(system, mapping, seeds=range(40))
