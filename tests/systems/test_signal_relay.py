"""Section 6 signal relay: structure, Lemma 6.1, Theorem 6.4
measurements."""

import random
from fractions import Fraction as F

import pytest

from repro.errors import AutomatonError
from repro.core.dummification import NULL, undum
from repro.core.projection import project
from repro.ioa.explorer import check_invariant
from repro.sim.scheduler import Simulator
from repro.sim.strategies import EagerStrategy, ExtremalStrategy, UniformStrategy
from repro.systems.signal_relay import (
    SIGNAL,
    RelayParams,
    RelaySystem,
    flags_of,
    lemma_6_1_predicate,
    relay_automaton,
    relay_condition,
    sender_automaton,
    signal_relay,
)
from repro.analysis.bounds import separations_after
from repro.timed.interval import Interval
from repro.timed.satisfaction import find_condition_violation


class TestParams:
    def test_n_positive(self):
        with pytest.raises(AutomatonError):
            RelayParams(n=0, d1=1, d2=2)

    def test_d1_le_d2(self):
        with pytest.raises(AutomatonError):
            RelayParams(n=1, d1=3, d2=2)

    def test_d2_positive(self):
        with pytest.raises(AutomatonError):
            RelayParams(n=1, d1=0, d2=0)

    def test_end_to_end_interval(self, relay_params):
        assert relay_params.end_to_end_interval == Interval(3, 6)

    def test_hop_interval(self, relay_params):
        assert relay_params.hop_interval(1) == Interval(2, 4)
        with pytest.raises(AutomatonError):
            relay_params.hop_interval(3)


class TestStructure:
    def test_sender_fires_once(self):
        p0 = sender_automaton()
        assert p0.is_enabled(True, SIGNAL(0))
        assert list(p0.transitions(True, SIGNAL(0))) == [False]
        assert not p0.is_enabled(False, SIGNAL(0))

    def test_relay_raises_flag_on_input(self):
        p2 = relay_automaton(2)
        assert list(p2.transitions(False, SIGNAL(1))) == [True]

    def test_relay_index_validation(self):
        with pytest.raises(AutomatonError):
            relay_automaton(0)

    def test_hidden_signals(self, relay_params):
        ta = signal_relay(relay_params)
        sig = ta.automaton.signature
        assert sig.external == {SIGNAL(0), SIGNAL(relay_params.n)}
        for i in range(1, relay_params.n):
            assert SIGNAL(i) in sig.internals

    def test_boundmap_entries(self, relay_params):
        ta = signal_relay(relay_params)
        assert ta.boundmap["SIGNAL_0"].is_trivial  # [0, ∞]: unconstrained
        assert ta.boundmap["SIGNAL_1"] == Interval(relay_params.d1, relay_params.d2)

    def test_n_equals_one(self):
        ta = signal_relay(RelayParams(n=1, d1=F(1), d2=F(2)))
        assert ta.automaton.signature.external == {SIGNAL(0), SIGNAL(1)}


class TestLemma61:
    def test_exhaustive_at_most_one_flag(self, relay_params):
        ta = signal_relay(relay_params)
        predicate = lemma_6_1_predicate(relay_params)
        report = check_invariant(ta.automaton, predicate)
        assert report.holds

    def test_along_dummified_runs(self, relay_system):
        predicate = lemma_6_1_predicate(relay_system.params)
        for seed in range(5):
            run = Simulator(
                relay_system.algorithm, UniformStrategy(random.Random(seed))
            ).run(max_steps=60)
            assert all(predicate(flags_of(s.astate)) for s in run.states)


class TestTheorem64Measurements:
    def _delay(self, system, strategy, steps=80):
        run = Simulator(system.algorithm, strategy).run(max_steps=steps)
        seq = undum(project(run))
        n = system.params.n
        separations = separations_after(
            seq.events, SIGNAL(0), SIGNAL(n)
        )
        return separations

    def test_uniform_within_bounds(self, relay_system):
        interval = relay_system.params.end_to_end_interval
        found = 0
        for seed in range(8):
            for separation in self._delay(
                relay_system, UniformStrategy(random.Random(seed))
            ):
                found += 1
                assert separation in interval
        assert found >= 6

    def test_eager_attains_lower_bound(self, relay_system):
        # Prefer SIGNAL actions over the dummy's NULL so the relay
        # advances at every hop's earliest instant.
        from repro.sim.strategies import BiasedActionStrategy

        strategy = BiasedActionStrategy(
            EagerStrategy(random.Random(0)),
            prefer=lambda a: a != NULL,
        )
        separations = self._delay(relay_system, strategy)
        assert separations
        assert min(separations) == relay_system.params.end_to_end_interval.lo

    def test_extremal_attains_upper_bound(self, relay_system):
        interval = relay_system.params.end_to_end_interval
        best = 0
        for seed in range(60):
            for separation in self._delay(
                relay_system, ExtremalStrategy(random.Random(seed), p_low=0.2)
            ):
                best = max(best, separation)
        assert best == interval.hi

    def test_requirement_condition_semi_satisfied(self, relay_system):
        cond = relay_condition(relay_system.params, 0)
        for seed in range(5):
            run = Simulator(
                relay_system.algorithm, UniformStrategy(random.Random(seed))
            ).run(max_steps=60)
            seq = undum(project(run))
            assert find_condition_violation(seq, cond, semi=True) is None

    def test_signal_n_occurs_exactly_once(self, relay_system):
        run = Simulator(relay_system.algorithm, UniformStrategy(random.Random(3))).run(
            max_steps=100
        )
        seq = undum(project(run))
        n = relay_system.params.n
        count = sum(1 for ev in seq.events if ev.action == SIGNAL(n))
        assert count == 1


class TestRelaySystemBundle:
    def test_intermediate_caching(self, relay_system):
        assert relay_system.intermediate(1) is relay_system.intermediate(1)

    def test_intermediate_range(self, relay_system):
        with pytest.raises(AutomatonError):
            relay_system.intermediate(relay_system.params.n)

    def test_intermediate_conditions(self, relay_system):
        b1 = relay_system.intermediate(1)
        names = [c.name for c in b1.conditions]
        assert names == ["U[1,3]", "SIGNAL_0", "SIGNAL_1", "NULL"]

    def test_requirements_single_condition(self, relay_system):
        assert [c.name for c in relay_system.requirements.conditions] == ["U[0,3]"]
