"""Tests for the rational time grid."""

import math
from fractions import Fraction as F

import pytest

from repro.errors import TimingConditionError
from repro.core.discretize import discrete_options, grid_aligned, grid_times
from repro.core.time_automaton import time_of_boundmap

from tests.timed.test_conditions import pulse_timed


class TestGridTimes:
    def test_inclusive_ends(self):
        assert grid_times(1, 2, F(1, 2)) == [1, F(3, 2), 2]

    def test_misaligned_lower(self):
        assert grid_times(F(3, 4), 2, F(1, 2)) == [1, F(3, 2), 2]

    def test_misaligned_upper(self):
        assert grid_times(0, F(5, 4), F(1, 2)) == [0, F(1, 2), 1]

    def test_empty_when_inverted(self):
        assert grid_times(3, 2, F(1, 2)) == []

    def test_point(self):
        assert grid_times(2, 2, F(1, 2)) == [2]

    def test_point_misaligned(self):
        assert grid_times(F(1, 3), F(1, 3), F(1, 2)) == []

    def test_infinite_hi_rejected(self):
        with pytest.raises(TimingConditionError):
            grid_times(0, math.inf, F(1, 2))

    def test_nonpositive_grid_rejected(self):
        with pytest.raises(TimingConditionError):
            grid_times(0, 1, 0)

    def test_grid_aligned(self):
        assert grid_aligned(F(3, 2), F(1, 2))
        assert not grid_aligned(F(1, 3), F(1, 2))
        assert grid_aligned(math.inf, F(1, 2))


class TestDiscreteOptions:
    def test_options_respect_windows(self):
        auto = time_of_boundmap(pulse_timed())
        init = auto.initial("on")
        options = list(discrete_options(auto, init, F(1, 2), 10))
        # FIRE window is [1, 2]
        assert ("fire", 1) in options and ("fire", 2) in options
        assert ("fire", F(1, 2)) not in options

    def test_horizon_prunes(self):
        auto = time_of_boundmap(pulse_timed())
        init = auto.initial("on")
        options = list(discrete_options(auto, init, F(1, 2), F(3, 2)))
        assert options == [("fire", 1), ("fire", F(3, 2))]

    def test_every_option_is_a_real_step(self):
        auto = time_of_boundmap(pulse_timed())
        init = auto.initial("on")
        for action, t in discrete_options(auto, init, F(1, 2), 10):
            assert auto.successors(init, action, t)
