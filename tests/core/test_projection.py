"""Lemmas 3.2/3.3: projection and lifting between executions of
time(A, U) and timed (semi-)executions of (A, U)."""

import random
from fractions import Fraction as F

import pytest

from repro.errors import ExecutionError, TimingViolationError
from repro.core.projection import lift, project, validate_run
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.timed.satisfaction import find_boundmap_violation
from repro.timed.timed_sequence import TimedSequence

from tests.timed.test_conditions import pulse_timed


def make_run(seed=0, steps=30):
    timed = pulse_timed()
    automaton = time_of_boundmap(timed)
    run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(max_steps=steps)
    return timed, automaton, run


class TestProject:
    def test_projection_keeps_events(self):
        _timed, _auto, run = make_run()
        seq = project(run)
        assert seq.events == run.events

    def test_projection_maps_states(self):
        _timed, _auto, run = make_run()
        seq = project(run)
        assert all(s in ("on", "off") for s in seq.states)

    def test_projection_rejects_plain_states(self):
        with pytest.raises(ExecutionError):
            project(TimedSequence(("plain",), ()))

    def test_lemma_3_2_part_2(self):
        # project of a finite execution is a timed semi-execution.
        for seed in range(6):
            timed, _auto, run = make_run(seed)
            seq = project(run)
            assert find_boundmap_violation(timed, seq, semi=True) is None


class TestLift:
    def test_lemma_3_2_part_1_round_trip(self):
        _timed, automaton, run = make_run(1)
        seq = project(run)
        lifted = lift(automaton, seq)
        assert lifted == run  # the lifting is unique

    def test_lift_rejects_non_semi_executions(self):
        _timed, automaton, run = make_run(2)
        seq = project(run)
        squeezed = TimedSequence(
            seq.states, [(ev.action, ev.time * F(1, 100)) for ev in seq.events]
        )
        with pytest.raises(TimingViolationError):
            lift(automaton, squeezed)

    def test_lift_rejects_late_events(self):
        _timed, automaton, run = make_run(3)
        seq = project(run)
        if len(seq) == 0:
            pytest.skip("empty run")
        stretched = TimedSequence(
            seq.states, [(ev.action, ev.time * 100) for ev in seq.events]
        )
        with pytest.raises(TimingViolationError):
            lift(automaton, stretched)


class TestValidateRun:
    def test_simulated_runs_validate(self):
        _timed, automaton, run = make_run(4)
        validate_run(automaton, run)

    def test_tampered_prediction_rejected(self):
        _timed, automaton, run = make_run(5)
        if len(run) < 2:
            pytest.skip("run too short")
        states = list(run.states)
        bad = states[1]
        from repro.core.time_state import Prediction, TimeState

        states[1] = TimeState(bad.astate, bad.now, (Prediction(0, 999),) * len(bad.preds))
        tampered = TimedSequence(tuple(states), run.events)
        with pytest.raises(ExecutionError):
            validate_run(automaton, tampered)

    def test_non_start_rejected(self):
        _timed, automaton, run = make_run(6)
        if len(run) < 1:
            pytest.skip("run too short")
        suffix = TimedSequence(run.states[1:], run.events[1:])
        with pytest.raises(ExecutionError):
            validate_run(automaton, suffix)
