"""Property-based fuzzing of the core semantics over random systems.

For randomly generated closed timed automata (repro.testkit), every
simulated execution must exhibit the invariants the paper's definitions
promise — regardless of system shape, boundmap values, or scheduling
strategy.
"""

import random
from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundmap_time import ExplicitBoundmapTime
from repro.core.projection import lift, project
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import EagerStrategy, ExtremalStrategy, UniformStrategy
from repro.testkit import INC, random_system
from repro.timed.satisfaction import find_boundmap_violation
from repro.timed.semantics import check_lemma_2_1
from repro.timed.timed_sequence import TimedSequence

STRATEGIES = {
    "uniform": UniformStrategy,
    "eager": EagerStrategy,
    "extremal": ExtremalStrategy,
}


def simulate(seed, strategy_name="uniform", steps=40):
    rng = random.Random(seed)
    system = random_system(rng)
    automaton = time_of_boundmap(system.timed)
    strategy = STRATEGIES[strategy_name](random.Random(seed + 1))
    run = Simulator(automaton, strategy).run(max_steps=steps)
    return system, automaton, run


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    strategy_name=st.sampled_from(sorted(STRATEGIES)),
)
def test_simulated_runs_are_semi_executions(seed, strategy_name):
    system, _automaton, run = simulate(seed, strategy_name)
    violation = find_boundmap_violation(system.timed, project(run), semi=True)
    assert violation is None, "{}\n{}".format(violation, system.describe())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_general_and_explicit_time_automata_agree(seed):
    system, automaton, run = simulate(seed)
    explicit = ExplicitBoundmapTime(system.timed)
    state = explicit.initial(run.first_state.astate)
    assert state == run.first_state
    for _pre, event, post in run.triples():
        matches = [
            s
            for s in explicit.successors(state, event.action, event.time)
            if s.astate == post.astate
        ]
        assert len(matches) == 1, system.describe()
        state = matches[0]
        assert state == post, system.describe()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lift_round_trip(seed):
    _system, automaton, run = simulate(seed)
    assert lift(automaton, project(run)) == run


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    numerator=st.integers(min_value=1, max_value=30),
)
def test_lemma_2_1_agreement_under_scaling(seed, numerator):
    system, _automaton, run = simulate(seed, steps=25)
    seq = project(run)
    scaled = TimedSequence(
        seq.states, [(ev.action, ev.time * F(numerator, 10)) for ev in seq.events]
    )
    report = check_lemma_2_1(system.timed, scaled, semi=True)
    assert report.agree, system.describe()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_event_times_within_deadlines(seed):
    """No event ever fires after the automaton-wide deadline, and time
    is nondecreasing — the executable reading of conditions 2 and 4(a)."""
    _system, automaton, run = simulate(seed)
    for pre, event, _post in run.triples():
        assert event.time >= pre.now
        assert event.time <= automaton.deadline(pre)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_progress_anchor_keeps_running(seed):
    """Cell 0 is always enabled with a finite upper bound, so runs never
    stop early (the testkit's dummy-component guarantee)."""
    _system, _automaton, run = simulate(seed, steps=30)
    assert len(run) == 30


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=3_000))
def test_always_enabled_class_gap_within_bounds(seed):
    """Consecutive firings of an always-enabled class are separated by a
    value inside the class's bound interval (Definition 2.1 applied to
    back-to-back triggers)."""
    system, _automaton, run = simulate(seed, steps=60)
    seq = project(run)
    for cell in system.always_enabled_cells():
        times = [ev.time for ev in seq.events if ev.action == INC(cell.index)]
        for earlier, later in zip(times, times[1:]):
            gap = later - earlier
            assert cell.interval.contains(gap), system.describe()
