"""Tests of the time(A, U) construction rules (Section 3.1)."""

import math
from fractions import Fraction as F

import pytest

from repro.errors import TimingConditionError, TimingViolationError
from repro.ioa.actions import Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.core.time_automaton import PredictiveTimeAutomaton, time_of_conditions
from repro.core.time_state import DEFAULT_PREDICTION, Prediction


def flow_automaton():
    """req -> work -> done, plus a free-running 'noise' internal action."""
    return GuardedAutomaton(
        "flow",
        ["idle"],
        [
            ActionSpec(
                "req",
                Kind.OUTPUT,
                precondition=lambda s: s == "idle",
                effect=lambda _s: "busy",
            ),
            ActionSpec(
                "done",
                Kind.OUTPUT,
                precondition=lambda s: s == "busy",
                effect=lambda _s: "idle",
            ),
            ActionSpec("noise", Kind.INTERNAL),
        ],
    )


def response_condition(lo=1, hi=3, disabling=None):
    return TimingCondition.build(
        "R",
        Interval(lo, hi),
        actions={"done"},
        step_predicate=lambda pre, a, post: a == "req",
        disabling=disabling,
    )


def startup_condition(lo=2, hi=4):
    return TimingCondition.from_start("S", Interval(lo, hi), {"req"})


class TestInitialStates:
    def test_triggered_start_condition_gets_bounds(self):
        auto = time_of_conditions(flow_automaton(), [startup_condition(2, 4)])
        init = auto.initial("idle")
        assert auto.ft(init, "S") == 2 and auto.lt(init, "S") == 4

    def test_untriggered_condition_gets_defaults(self):
        auto = time_of_conditions(flow_automaton(), [response_condition()])
        init = auto.initial("idle")
        assert init.preds[0] == DEFAULT_PREDICTION

    def test_ct_starts_at_zero(self):
        auto = time_of_conditions(flow_automaton(), [response_condition()])
        assert auto.initial("idle").now == 0

    def test_duplicate_condition_names_rejected(self):
        with pytest.raises(TimingConditionError):
            time_of_conditions(
                flow_automaton(), [response_condition(), response_condition()]
            )

    def test_index_of_unknown(self):
        auto = time_of_conditions(flow_automaton(), [response_condition()])
        with pytest.raises(TimingConditionError):
            auto.index_of("ZZZ")


class TestStepRules:
    def setup_method(self):
        self.auto = time_of_conditions(
            flow_automaton(), [response_condition(1, 3), startup_condition(2, 4)]
        )
        self.init = self.auto.initial("idle")

    def test_condition_2_time_monotone(self):
        s1 = self.auto.successor(self.init, "req", 2)
        assert s1.now == 2
        assert self.auto.successors(s1, "done", 1) == []  # t < Ct

    def test_condition_3a_window_enforced_for_pi(self):
        s1 = self.auto.successor(self.init, "req", 2)
        # R predicts done in [3, 5]
        assert self.auto.successors(s1, "done", F(5, 2)) == []  # too early
        assert self.auto.successors(s1, "done", 6) == []  # too late
        assert self.auto.successors(s1, "done", 4) != []

    def test_condition_3b_trigger_with_pi_action(self):
        # 'req' is in Π(S) and S has no step triggers: rule 3(c) applies.
        s1 = self.auto.successor(self.init, "req", 2)
        assert s1.preds[self.auto.index_of("S")] == DEFAULT_PREDICTION

    def test_condition_4b_trigger_sets_predictions(self):
        s1 = self.auto.successor(self.init, "req", 2)
        assert self.auto.ft(s1, "R") == 3 and self.auto.lt(s1, "R") == 5

    def test_condition_4a_deadline_blocks_other_actions(self):
        s1 = self.auto.successor(self.init, "req", 2)  # R deadline 5
        assert self.auto.successors(s1, "noise", 6) == []
        assert self.auto.successors(s1, "noise", 5) != []

    def test_condition_4c_non_trigger_preserves_predictions(self):
        s1 = self.auto.successor(self.init, "req", 2)
        s2 = self.auto.successor(s1, "noise", 3)
        assert s2.preds[self.auto.index_of("R")] == s1.preds[self.auto.index_of("R")]

    def test_condition_4d_disabling_resets(self):
        cond = response_condition(1, 3, disabling=lambda s: s == "idle")
        auto = time_of_conditions(flow_automaton(), [cond])
        init = auto.initial("idle")
        s1 = auto.successor(init, "req", 2)
        assert auto.lt(s1, "R") == 5
        # noise in 'busy' keeps predictions; 'done' is in Π so 3(c)
        # resets anyway — test disabling via a non-Π action instead:
        cond2 = TimingCondition.build(
            "D",
            Interval(0, 10),
            actions={"never"},
            step_predicate=lambda pre, a, post: a == "req",
            disabling=lambda s: s == "idle",
        )
        auto2 = time_of_conditions(flow_automaton(), [cond2])
        s1 = auto2.successor(auto2.initial("idle"), "req", 2)
        assert auto2.lt(s1, "D") == 12
        s2 = auto2.successor(s1, "done", 3)  # back to idle: disabling
        assert s2.preds[0] == DEFAULT_PREDICTION

    def test_condition_4b_min_rule(self):
        # Two overlapping triggers: the earlier deadline must survive.
        cond = TimingCondition.build(
            "M",
            Interval(0, 10),
            actions={"never"},
            step_predicate=lambda pre, a, post: a == "noise",
        )
        auto = time_of_conditions(flow_automaton(), [cond])
        s1 = auto.successor(auto.initial("idle"), "noise", 1)  # Lt = 11
        s2 = auto.successor(s1, "noise", 2)  # new deadline 12, min keeps 11
        assert auto.lt(s2, "M") == 11
        assert auto.ft(s2, "M") == 2  # Ft is overwritten, per the definition

    def test_successor_matching_picks_astate(self):
        s1 = self.auto.successor_matching(self.init, "req", 2, "busy")
        assert s1.astate == "busy"

    def test_successor_matching_missing(self):
        with pytest.raises(TimingViolationError):
            self.auto.successor_matching(self.init, "req", 2, "bogus")

    def test_successor_raises_with_reason(self):
        s1 = self.auto.successor(self.init, "req", 2)
        with pytest.raises(TimingViolationError):
            self.auto.successor(s1, "done", 100)

    def test_is_step(self):
        s1 = self.auto.successor(self.init, "req", 2)
        assert self.auto.is_step(self.init, "req", 2, s1)
        assert not self.auto.is_step(self.init, "req", 3, s1)


class TestSchedulingHelpers:
    def setup_method(self):
        self.auto = time_of_conditions(
            flow_automaton(), [response_condition(1, 3), startup_condition(2, 4)]
        )
        self.init = self.auto.initial("idle")

    def test_deadline_is_min_lt(self):
        assert self.auto.deadline(self.init) == 4  # S's Lt; R default inf
        s1 = self.auto.successor(self.init, "req", 2)
        assert self.auto.deadline(s1) == 5

    def test_time_window_lower_respects_ft(self):
        window = self.auto.time_window(self.init, "req")
        assert window == (2, 4)

    def test_time_window_upper_includes_foreign_deadlines(self):
        window = self.auto.time_window(self.init, "noise")
        assert window == (0, 4)

    def test_time_window_empty(self):
        cond = TimingCondition.from_start("T", Interval(10, 20), {"req"})
        blocker = TimingCondition.from_start("B", Interval(0, 5), {"noise"})
        auto = time_of_conditions(flow_automaton(), [cond, blocker])
        # req cannot happen before 10, but B forces an event by 5 —
        # req's window [10, 5] is empty.
        assert auto.time_window(auto.initial("idle"), "req") is None

    def test_schedulable_actions(self):
        options = dict(
            (action, (lo, hi))
            for action, lo, hi in self.auto.schedulable_actions(self.init)
        )
        assert set(options) == {"req", "noise"}
        assert options["req"] == (2, 4)

    def test_time_violation_reports_reason(self):
        reason = self.auto.time_violation(self.init, "req", 1)
        assert reason is not None and "S" in reason
