"""Semantic inclusion (the conclusion of Theorem 3.4) agrees with the
mapping method's verdicts."""

from fractions import Fraction as F

import pytest

from repro.core.checker import check_mapping_exhaustive
from repro.core.inclusion import check_semantic_inclusion
from repro.core.mappings import InequalityMapping
from repro.core.time_automaton import time_of_boundmap, time_of_conditions
from repro.systems.mappings_rm import resource_manager_mapping
from repro.systems.resource_manager import (
    GRANT,
    ResourceManagerParams,
    ResourceManagerSystem,
)
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval

from tests.timed.test_conditions import pulse_timed


def small_rm():
    return ResourceManagerSystem(ResourceManagerParams(k=1, c1=F(2), c2=F(3), l=F(1)))


class TestInclusionHolds:
    def test_rm_requirements_hold_semantically(self):
        system = small_rm()
        outcome = check_semantic_inclusion(
            system.algorithm, [system.g1, system.g2], grid=F(1), horizon=F(5),
            max_executions=20_000,
        )
        assert outcome.ok, outcome.violation
        assert outcome.executions_checked > 50

    def test_pulse_gap_holds(self):
        timed = pulse_timed()
        algorithm = time_of_boundmap(timed)
        gap = TimingCondition.after_action("GAP", Interval(1, 7), "fire", {"fire"})
        outcome = check_semantic_inclusion(
            algorithm, [gap], grid=F(1), horizon=F(9)
        )
        assert outcome.ok

    def test_truncation_reported(self):
        system = small_rm()
        outcome = check_semantic_inclusion(
            system.algorithm, [system.g1], grid=F(1, 2), horizon=F(8),
            max_executions=30,
        )
        assert outcome.ok and outcome.truncated


class TestInclusionFails:
    def test_too_tight_bound_has_counterexample(self):
        system = small_rm()
        tight = TimingCondition.from_start("G1", Interval(2, 3), [GRANT])
        outcome = check_semantic_inclusion(
            system.algorithm, [tight], grid=F(1), horizon=F(8)
        )
        assert not outcome.ok
        assert outcome.violation.condition == "G1"
        assert outcome.counterexample is not None

    def test_counterexample_is_a_projection(self):
        system = small_rm()
        tight = TimingCondition.from_start("G1", Interval(3, 7), [GRANT])
        outcome = check_semantic_inclusion(
            system.algorithm, [tight], grid=F(1), horizon=F(8)
        )
        assert not outcome.ok
        # The counterexample's states are plain A-states.
        assert all(isinstance(s, tuple) for s in outcome.counterexample.states)


class TestAgreementWithMappingMethod:
    def test_correct_system_agrees(self):
        system = small_rm()
        mapping = resource_manager_mapping(system)
        mapping_ok = check_mapping_exhaustive(mapping, grid=F(1), horizon=F(8)).ok
        semantic_ok = check_semantic_inclusion(
            system.algorithm, [system.g1, system.g2], grid=F(1), horizon=F(5),
            max_executions=20_000,
        ).ok
        assert mapping_ok and semantic_ok

    def test_wrong_bound_agrees(self):
        # A requirements bound whose upper end is too small: semantic
        # inclusion fails AND the (permissive) mapping check fails —
        # Theorem 3.4's soundness observed from both sides.
        system = small_rm()
        params = system.params
        tight = TimingCondition.from_start(
            "G1", Interval(params.k * params.c1, params.k * params.c2), [GRANT]
        )
        g2 = system.g2
        requirements = time_of_conditions(
            system.timed.automaton, [tight, g2], name="bad"
        )
        mapping = InequalityMapping(
            system.algorithm, requirements, lambda u, s: True
        )
        mapping_ok = check_mapping_exhaustive(mapping, grid=F(1), horizon=F(8)).ok
        semantic_ok = check_semantic_inclusion(
            system.algorithm, [tight, g2], grid=F(1), horizon=F(8),
            max_executions=100_000,
        ).ok
        assert not mapping_ok and not semantic_ok
