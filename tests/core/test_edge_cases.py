"""Edge-case coverage for the core construction: nondeterministic
bases, boundary times, prediction helpers, and rule interactions not
exercised by the main systems."""

import math
from fractions import Fraction as F

import pytest

from repro.errors import TimingViolationError
from repro.ioa.actions import Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.core.time_automaton import time_of_conditions
from repro.core.time_state import DEFAULT_PREDICTION, Prediction, TimeState


def nondet_base():
    """One action, two possible successors."""
    return GuardedAutomaton(
        "nd",
        ["root"],
        [
            ActionSpec(
                "fork",
                Kind.OUTPUT,
                effects=lambda s: ["left", "right"] if s == "root" else [s],
            )
        ],
    )


def fork_condition():
    return TimingCondition.from_start("S", Interval(1, 2), {"fork"})


class TestNondeterministicBase:
    def test_successors_fan_out(self):
        auto = time_of_conditions(nondet_base(), [fork_condition()])
        init = auto.initial("root")
        posts = auto.successors(init, "fork", 1)
        assert {p.astate for p in posts} == {"left", "right"}

    def test_successor_raises_on_ambiguity(self):
        auto = time_of_conditions(nondet_base(), [fork_condition()])
        with pytest.raises(TimingViolationError):
            auto.successor(auto.initial("root"), "fork", 1)

    def test_successor_matching_resolves(self):
        auto = time_of_conditions(nondet_base(), [fork_condition()])
        post = auto.successor_matching(auto.initial("root"), "fork", 1, "right")
        assert post.astate == "right"

    def test_both_branches_same_predictions(self):
        auto = time_of_conditions(nondet_base(), [fork_condition()])
        left, right = auto.successors(auto.initial("root"), "fork", 1)
        assert left.preds == right.preds


class TestBoundaryTimes:
    def setup_method(self):
        base = GuardedAutomaton(
            "one", ["s"], [ActionSpec("go", Kind.OUTPUT)]
        )
        self.auto = time_of_conditions(
            base, [TimingCondition.from_start("W", Interval(1, 2), {"go"})]
        )
        self.init = self.auto.initial("s")

    def test_exactly_ft_allowed(self):
        assert self.auto.successors(self.init, "go", 1)

    def test_exactly_lt_allowed(self):
        assert self.auto.successors(self.init, "go", 2)

    def test_just_inside_allowed(self):
        assert self.auto.successors(self.init, "go", F(3, 2))

    def test_strictly_outside_rejected(self):
        assert self.auto.successors(self.init, "go", F(1, 2)) == []
        assert self.auto.successors(self.init, "go", F(5, 2)) == []

    def test_time_equal_to_now_allowed_when_window_open(self):
        s1 = self.auto.successor(self.init, "go", 1)
        # W reset to defaults after its Π event fired untriggered.
        assert s1.preds[0] == DEFAULT_PREDICTION
        assert self.auto.successors(s1, "go", 1)  # zero-delay re-fire


class TestSelfRetriggeringCondition:
    """The G2 shape: the trigger action is also in Π — rules 3(a) and
    3(b) interact at the same step."""

    def setup_method(self):
        base = GuardedAutomaton("loop", ["s"], [ActionSpec("beat", Kind.OUTPUT)])
        self.cond = TimingCondition.after_action(
            "B", Interval(2, 3), "beat", {"beat"}
        )
        self.auto = time_of_conditions(base, [self.cond])
        self.init = self.auto.initial("s")

    def test_first_beat_unconstrained(self):
        # No trigger yet: defaults, any time allowed.
        assert self.auto.successors(self.init, "beat", 100)

    def test_retrigger_sets_fresh_window(self):
        s1 = self.auto.successor(self.init, "beat", 5)
        assert self.auto.ft(s1, "B") == 7 and self.auto.lt(s1, "B") == 8

    def test_window_enforced_between_beats(self):
        s1 = self.auto.successor(self.init, "beat", 5)
        assert self.auto.successors(s1, "beat", 6) == []  # too early
        assert self.auto.successors(s1, "beat", 9) == []  # too late
        s2 = self.auto.successor(s1, "beat", 7)
        assert self.auto.ft(s2, "B") == 9  # retriggered again


class TestTimeStateHelpers:
    def test_default_prediction(self):
        assert DEFAULT_PREDICTION.is_default
        assert not Prediction(0, 5).is_default
        assert not Prediction(1, math.inf).is_default

    def test_with_astate(self):
        state = TimeState("a", 1, (DEFAULT_PREDICTION,))
        other = state.with_astate("b")
        assert other.astate == "b"
        assert other.now == state.now and other.preds == state.preds

    def test_repr_mentions_components(self):
        state = TimeState("a", 1, (Prediction(0, 2),))
        text = repr(state)
        assert "As='a'" in text and "Ct=1" in text

    def test_prediction_repr_inf(self):
        assert "inf" in repr(Prediction(0, math.inf))


class TestDeadlineAndWindows:
    def test_no_conditions_means_no_deadline(self):
        base = GuardedAutomaton("free", ["s"], [ActionSpec("go", Kind.OUTPUT)])
        auto = time_of_conditions(base, [])
        init = auto.initial("s")
        assert math.isinf(auto.deadline(init))
        assert auto.time_window(init, "go") == (0, math.inf)

    def test_disabled_action_has_window_but_no_step(self):
        base = GuardedAutomaton(
            "gated",
            [False],
            [
                ActionSpec(
                    "go", Kind.OUTPUT, precondition=lambda s: s, effect=lambda s: s
                )
            ],
        )
        auto = time_of_conditions(base, [])
        init = auto.initial(False)
        # schedulable_actions consults the base automaton's enabledness.
        assert auto.schedulable_actions(init) == []
