"""Tests of the completeness construction (Section 7, Theorem 7.1)."""

import math
import random
from fractions import Fraction as F

import pytest

from repro.timed.interval import Interval
from repro.core.checker import check_mapping_exhaustive, check_mapping_on_run
from repro.core.completeness import (
    CanonicalMapping,
    ExhaustiveFirstEstimator,
    SamplingFirstEstimator,
)
from repro.core.dummification import dummify, dummify_conditions
from repro.core.time_automaton import time_of_boundmap, time_of_conditions
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.systems.resource_manager import (
    ResourceManagerParams,
    ResourceManagerSystem,
)
from repro.systems.signal_relay import RelayParams, RelaySystem


def tiny_rm_setup():
    params = ResourceManagerParams(k=1, c1=F(2), c2=F(2), l=F(1))
    system = ResourceManagerSystem(params)
    dummified = dummify(system.timed, Interval(1, 1))
    algorithm = time_of_boundmap(dummified)
    conditions = dummify_conditions([system.g1, system.g2])
    target = time_of_conditions(dummified.automaton, conditions, name="B~")
    return algorithm, target


class TestExhaustiveEstimator:
    def test_sup_first_matches_paper_bound_at_start(self):
        algorithm, target = tiny_rm_setup()
        estimator = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=F(8))
        (start,) = list(algorithm.start_states())
        g1 = target.condition("G1")
        sup_first, inf_first = estimator.first_bounds(start, g1)
        # G1's Π = {GRANT}, S = ∅: first = first GRANT time ∈ [k·c1, k·c2+l] = [2, 3]
        assert sup_first == 3
        assert inf_first == 2

    def test_untriggered_condition_unbounded(self):
        algorithm, target = tiny_rm_setup()
        estimator = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=F(8))
        (start,) = list(algorithm.start_states())
        g2 = target.condition("G2")
        # G2 also measures to the next GRANT — from the start the first
        # GRANT resolves it, same values as G1.
        sup_first, inf_first = estimator.first_bounds(start, g2)
        assert sup_first == 3 and inf_first == 2

    def test_canonical_mapping_passes_exhaustively(self):
        algorithm, target = tiny_rm_setup()
        estimator = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=F(8))
        mapping = CanonicalMapping(algorithm, target, estimator)
        outcome = check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=F(6))
        assert outcome.ok, outcome.detail

    def test_canonical_mapping_relay(self):
        system = RelaySystem(
            RelayParams(n=2, d1=F(1), d2=F(1)), dummy_interval=Interval(1, 1)
        )
        estimator = ExhaustiveFirstEstimator(system.algorithm, grid=F(1, 2), window=F(6))
        mapping = CanonicalMapping(system.algorithm, system.requirements, estimator)
        outcome = check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=F(4))
        assert outcome.ok, outcome.detail

    def test_memoisation_is_per_query(self):
        algorithm, target = tiny_rm_setup()
        estimator = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=F(8))
        (start,) = list(algorithm.start_states())
        g1 = target.condition("G1")
        assert estimator.first_bounds(start, g1) == estimator.first_bounds(start, g1)


class TestSamplingEstimator:
    def test_sampling_brackets_exhaustive(self):
        algorithm, target = tiny_rm_setup()
        exact = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=F(8))
        sampled = SamplingFirstEstimator(
            algorithm,
            strategy_factory=lambda seed: UniformStrategy(random.Random(seed)),
            runs=30,
            max_steps=40,
        )
        (start,) = list(algorithm.start_states())
        g1 = target.condition("G1")
        sup_exact, inf_exact = exact.first_bounds(start, g1)
        sup_est, inf_est = sampled.first_bounds(start, g1)
        assert sup_est <= sup_exact
        assert inf_est >= inf_exact

    def test_sampled_canonical_mapping_with_slack(self):
        algorithm, target = tiny_rm_setup()
        sampled = SamplingFirstEstimator(
            algorithm,
            strategy_factory=lambda seed: UniformStrategy(random.Random(seed)),
            runs=20,
            max_steps=40,
        )
        mapping = CanonicalMapping(
            algorithm, target, sampled, upper_slack=F(1, 2), lower_slack=F(1, 2)
        )
        run = Simulator(algorithm, UniformStrategy(random.Random(99))).run(max_steps=30)
        outcome = check_mapping_on_run(mapping, run)
        assert outcome.ok, outcome.detail

    def test_memoised(self):
        algorithm, target = tiny_rm_setup()
        sampled = SamplingFirstEstimator(
            algorithm,
            strategy_factory=lambda seed: UniformStrategy(random.Random(seed)),
            runs=3,
            max_steps=20,
        )
        (start,) = list(algorithm.start_states())
        g1 = target.condition("G1")
        first = sampled.first_bounds(start, g1)
        assert sampled.first_bounds(start, g1) is first or sampled.first_bounds(
            start, g1
        ) == first
