"""Fuzzed invariant: dropping conditions is always a valid mapping.

For any system, the identity projection from ``time(A, U_b)`` to
``time(A, V)`` with ``V ⊆ U_b`` is a strong possibilities mapping —
fewer conditions only remove constraints, and shared predictions evolve
identically.  The checker must accept it on every random system, every
subset, every strategy — a broad soundness net over the whole
construction + checker stack.
"""

import random
from fractions import Fraction as F

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import check_mapping_on_run
from repro.core.mappings import ProjectionMapping
from repro.core.time_automaton import time_of_boundmap, time_of_conditions
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy
from repro.testkit import random_system
from repro.timed.conditions import boundmap_conditions


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    subset_mask=st.integers(min_value=0, max_value=15),
    extremal=st.booleans(),
)
def test_condition_subsets_always_project(seed, subset_mask, extremal):
    system = random_system(random.Random(seed))
    source = time_of_boundmap(system.timed)
    conditions = boundmap_conditions(system.timed)
    kept = [c for i, c in enumerate(conditions) if subset_mask & (1 << i)]
    target = time_of_conditions(system.timed.automaton, kept, name="subset")
    mapping = ProjectionMapping(source, target)
    strategy_cls = ExtremalStrategy if extremal else UniformStrategy
    run = Simulator(source, strategy_cls(random.Random(seed + 1))).run(max_steps=30)
    outcome = check_mapping_on_run(mapping, run)
    assert outcome.ok, "{}\n{}".format(outcome.detail, system.describe())


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_identity_projection_full_set(seed):
    """The identity mapping time(A, b) → time(A, U_b) (same conditions,
    rebuilt) always checks — the reflexivity baseline."""
    system = random_system(random.Random(seed))
    source = time_of_boundmap(system.timed)
    target = time_of_conditions(
        system.timed.automaton, boundmap_conditions(system.timed), name="rebuilt"
    )
    mapping = ProjectionMapping(source, target)
    run = Simulator(source, UniformStrategy(random.Random(seed + 1))).run(max_steps=30)
    assert check_mapping_on_run(mapping, run).ok
