"""Cross-validation of the two independent time(A, b) implementations.

The general construction ``time(A, U_b)`` (Section 3.1 applied to the
boundmap conditions) and the explicit Section 3.2 rules must agree
step-for-step on reachable states — the paper remarks that the only
textual difference (the min in rule 4(b)) vanishes on reachable states.
"""

import random
from fractions import Fraction as F

import pytest

from repro.core.boundmap_time import ExplicitBoundmapTime
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy

from tests.timed.test_conditions import pulse_timed


def systems():
    from repro.systems.resource_manager import ResourceManagerParams, resource_manager
    from repro.systems.signal_relay import RelayParams, signal_relay
    from repro.core.dummification import dummify

    yield pulse_timed()
    yield resource_manager(ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1)))
    yield dummify(signal_relay(RelayParams(n=2, d1=F(1), d2=F(2))))


@pytest.mark.parametrize("seed", range(6))
def test_general_and_explicit_agree_along_runs(seed):
    for timed in systems():
        general = time_of_boundmap(timed)
        explicit = ExplicitBoundmapTime(timed)
        run = Simulator(general, UniformStrategy(random.Random(seed))).run(max_steps=60)
        state_e = explicit.initial(run.first_state.astate)
        # Class order equals condition order, so states are comparable.
        assert state_e == run.first_state
        for _pre, event, post in run.triples():
            candidates = [
                s
                for s in explicit.successors(state_e, event.action, event.time)
                if s.astate == post.astate
            ]
            assert len(candidates) == 1, "explicit automaton rejects a general step"
            state_e = candidates[0]
            assert state_e == post, (
                "prediction mismatch after ({!r}, {!r}): general {!r} vs "
                "explicit {!r}".format(event.action, event.time, post, state_e)
            )


@pytest.mark.parametrize("seed", range(4))
def test_agreement_under_extremal_scheduling(seed):
    for timed in systems():
        general = time_of_boundmap(timed)
        explicit = ExplicitBoundmapTime(timed)
        run = Simulator(general, ExtremalStrategy(random.Random(seed))).run(max_steps=40)
        state_e = explicit.initial(run.first_state.astate)
        for _pre, event, post in run.triples():
            state_e = next(
                s
                for s in explicit.successors(state_e, event.action, event.time)
                if s.astate == post.astate
            )
            assert state_e == post


def test_explicit_rejects_what_general_rejects():
    timed = pulse_timed()
    general = time_of_boundmap(timed)
    explicit = ExplicitBoundmapTime(timed)
    init_g = general.initial("on")
    init_e = explicit.initial("on")
    # FIRE bound is [1, 2]: firing at 1/2 must be rejected by both.
    assert general.successors(init_g, "fire", F(1, 2)) == []
    assert explicit.successors(init_e, "fire", F(1, 2)) == []
    # And firing at 3 exceeds the deadline in both.
    assert general.successors(init_g, "fire", 3) == []
    assert explicit.successors(init_e, "fire", 3) == []


def test_initial_states_agree():
    for timed in systems():
        general = time_of_boundmap(timed)
        explicit = ExplicitBoundmapTime(timed)
        for astate in timed.automaton.start_states():
            assert general.initial(astate) == explicit.initial(astate)
