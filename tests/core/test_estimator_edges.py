"""Edge cases of the completeness first-occurrence estimators."""

import math
from fractions import Fraction as F

from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.core.completeness import ExhaustiveFirstEstimator
from repro.core.dummification import dummify
from repro.core.time_automaton import time_of_boundmap
from repro.systems.signal_relay import SIGNAL, RelayParams, signal_relay


def relay_setup():
    timed = dummify(signal_relay(RelayParams(n=2, d1=F(1), d2=F(1))), Interval(1, 1))
    return time_of_boundmap(timed)


class TestExhaustiveEstimatorEdges:
    def test_disabling_start_state_yields_now_and_inf(self):
        automaton = relay_setup()
        (start,) = list(automaton.start_states())
        cond = TimingCondition.build(
            "D",
            Interval(0, 10),
            actions={SIGNAL(2)},
            disabling=lambda astate: True,  # every state disables
        )
        estimator = ExhaustiveFirstEstimator(automaton, grid=F(1, 2), window=F(4))
        sup_first, inf_first = estimator.first_bounds(start, cond)
        # first_Ũ resolves at j = 0 (the state itself is in S):
        assert sup_first == start.now == 0
        # and no Π action can precede the S-state:
        assert math.isinf(inf_first)

    def test_never_occurring_action_is_unbounded(self):
        automaton = relay_setup()
        (start,) = list(automaton.start_states())
        cond = TimingCondition.build(
            "N", Interval(0, 10), actions={"no-such-action"}
        )
        estimator = ExhaustiveFirstEstimator(automaton, grid=F(1, 2), window=F(4))
        sup_first, inf_first = estimator.first_bounds(start, cond)
        assert math.isinf(sup_first) and math.isinf(inf_first)

    def test_forced_event_resolves_exactly(self):
        # SIGNAL_2 fires exactly at time 2 in this deterministic relay
        # (d1 = d2 = 1, SIGNAL_0 forced at its class's trivial window…
        # which is [0, ∞] — so the *sup* is unbounded but the *inf* is
        # the fastest path: SIGNAL_0 at 0, two unit hops).
        automaton = relay_setup()
        (start,) = list(automaton.start_states())
        cond = TimingCondition.build("T", Interval(0, 10), actions={SIGNAL(2)})
        estimator = ExhaustiveFirstEstimator(automaton, grid=F(1, 2), window=F(6))
        sup_first, inf_first = estimator.first_bounds(start, cond)
        assert inf_first == 2
        assert math.isinf(sup_first)  # SIGNAL_0 may be delayed forever

    def test_window_is_relative_to_state(self):
        automaton = relay_setup()
        (start,) = list(automaton.start_states())
        estimator = ExhaustiveFirstEstimator(automaton, grid=F(1, 2), window=F(6))
        cond = TimingCondition.build("T", Interval(0, 10), actions={SIGNAL(2)})
        # Advance one NULL step and re-query from the later state.
        from repro.core.dummification import NULL

        later = automaton.successor(start, NULL, 1)
        _sup, inf_first = estimator.first_bounds(later, cond)
        assert inf_first >= later.now
