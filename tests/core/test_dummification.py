"""Tests of dummification (Section 5, Lemmas 5.1–5.3)."""

import random
from fractions import Fraction as F

import pytest

from repro.errors import ExecutionError
from repro.ioa.composition import Composition
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.timed.satisfaction import (
    find_boundmap_violation,
    find_condition_violation,
)
from repro.core.dummification import (
    DUMMY_STATE,
    NULL,
    dummify,
    dummify_condition,
    dummify_conditions,
    dummy_automaton,
    undum,
)
from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.systems.signal_relay import SIGNAL, RelayParams, relay_condition, signal_relay


def dummified_relay():
    params = RelayParams(n=2, d1=F(1), d2=F(2))
    timed = signal_relay(params)
    return params, timed, dummify(timed, Interval(F(1, 2), F(1)))


class TestDummyAutomaton:
    def test_single_state_always_enabled(self):
        dummy = dummy_automaton()
        assert list(dummy.start_states()) == [DUMMY_STATE]
        assert dummy.is_enabled(DUMMY_STATE, NULL)

    def test_null_is_output(self):
        assert NULL in dummy_automaton().signature.outputs

    def test_null_partition_class(self):
        assert dummy_automaton().partition.names == ("NULL",)


class TestDummify:
    def test_composed_state_shape(self):
        _params, timed, dummified = dummified_relay()
        (start,) = dummified.automaton.start_states()
        assert start[1] == DUMMY_STATE
        assert start[0] in set(timed.automaton.start_states())

    def test_boundmap_extended(self):
        _params, _timed, dummified = dummified_relay()
        assert dummified.boundmap["NULL"] == Interval(F(1, 2), F(1))

    def test_unbounded_dummy_rejected(self):
        _params, timed, _d = dummified_relay()
        with pytest.raises(ExecutionError):
            dummify(timed, Interval.at_least(1))

    def test_dummified_never_quiescent(self):
        # Lemma 5.1: the dummy always has NULL enabled, so simulation
        # never stops early.
        _params, _timed, dummified = dummified_relay()
        automaton = time_of_boundmap(dummified)
        run = Simulator(automaton, UniformStrategy(random.Random(0))).run(max_steps=120)
        assert len(run) == 120

    def test_raw_relay_is_quiescent(self):
        # Contrast: without the dummy, the relay stops after SIGNAL_n.
        params, timed, _d = dummified_relay()
        automaton = time_of_boundmap(timed)
        run = Simulator(automaton, UniformStrategy(random.Random(0))).run(max_steps=120)
        assert len(run) < 120
        actions = [ev.action for ev in run.events]
        assert actions[-1] == SIGNAL(params.n)


class TestUndum:
    def test_undum_drops_null_and_dummy_state(self):
        _params, timed, dummified = dummified_relay()
        automaton = time_of_boundmap(dummified)
        run = Simulator(automaton, UniformStrategy(random.Random(1))).run(max_steps=80)
        seq = undum(project(run))
        assert all(ev.action != NULL for ev in seq.events)
        assert all(not isinstance(s, tuple) or s[-1] != DUMMY_STATE for s in [seq.first_state])

    def test_lemma_5_2_part_1(self):
        # undum of a (semi-)execution of (Ã, b̃) is one of (A, b).
        params, timed, dummified = dummified_relay()
        automaton = time_of_boundmap(dummified)
        for seed in range(6):
            run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
                max_steps=80
            )
            seq = undum(project(run))
            assert find_boundmap_violation(timed, seq, semi=True) is None

    def test_undum_preserves_times(self):
        _params, _timed, dummified = dummified_relay()
        automaton = time_of_boundmap(dummified)
        run = Simulator(automaton, UniformStrategy(random.Random(2))).run(max_steps=60)
        seq = undum(project(run))
        original = [ev for ev in project(run).events if ev.action != NULL]
        assert list(seq.events) == original

    def test_undum_rejects_state_changing_null(self):
        from repro.timed.timed_sequence import TimedSequence

        bad = TimedSequence(
            ((("a",), DUMMY_STATE), (("b",), DUMMY_STATE)), ((NULL, 1),)
        )
        with pytest.raises(ExecutionError):
            undum(bad)


class TestDummifyCondition:
    def test_lifted_predicates_see_a_component(self):
        cond = TimingCondition.build(
            "U",
            Interval(1, 2),
            actions={"g"},
            start_states={"s0"},
            disabling={"dead"},
        )
        lifted = dummify_condition(cond)
        assert lifted.starts(("s0", DUMMY_STATE))
        assert not lifted.starts(("s1", DUMMY_STATE))
        assert lifted.disables(("dead", DUMMY_STATE))

    def test_null_never_triggers_nor_in_pi(self):
        cond = TimingCondition.build(
            "U",
            Interval(1, 2),
            actions=lambda a: True,
            step_predicate=lambda pre, a, post: True,
        )
        lifted = dummify_condition(cond)
        assert not lifted.in_pi(NULL)
        assert not lifted.triggers(("s", DUMMY_STATE), NULL, ("s", DUMMY_STATE))
        assert lifted.in_pi("g")
        assert lifted.triggers(("s", DUMMY_STATE), "g", ("t", DUMMY_STATE))

    def test_lemma_5_3_satisfaction_transfers(self):
        # A dummified run satisfies Ũ iff its undum satisfies U.
        params, timed, dummified = dummified_relay()
        automaton = time_of_boundmap(dummified)
        cond = relay_condition(params, 0)
        lifted = dummify_condition(cond)
        for seed in range(6):
            run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
                max_steps=80
            )
            on_dummified = find_condition_violation(project(run), lifted, semi=True)
            on_plain = find_condition_violation(undum(project(run)), cond, semi=True)
            assert (on_dummified is None) == (on_plain is None)

    def test_dummify_conditions_plural(self):
        c1 = TimingCondition.build("A", Interval(1, 2), actions={"x"})
        c2 = TimingCondition.build("B", Interval(1, 2), actions={"y"})
        lifted = dummify_conditions([c1, c2])
        assert [c.name for c in lifted] == ["A", "B"]
