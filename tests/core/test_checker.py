"""Tests of the mapping checkers: runs, chains, exhaustive grids —
including mutation tests where wrong requirement bounds must fail."""

import random
from fractions import Fraction as F

import pytest

from repro.errors import MappingCheckError
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.core.checker import (
    check_chain_on_run,
    check_mapping_exhaustive,
    check_mapping_on_run,
)
from repro.core.mappings import InequalityMapping, MappingChain, ProjectionMapping
from repro.core.time_automaton import time_of_boundmap, time_of_conditions
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy

from tests.timed.test_conditions import pulse_timed


def pulse_setup(fire_interval=Interval(1, 2)):
    """time(A, b) for the pulse system, and a requirements automaton
    bounding fire-to-fire separations."""
    timed = pulse_timed()  # FIRE [1,2], ARM [0,5]
    algorithm = time_of_boundmap(timed)
    # Between consecutive fires: arm within [0,5] then fire within [1,2]
    # of re-enabling ⇒ separation in [1, 7].
    gap = TimingCondition.after_action("GAP", Interval(1, 7), "fire", {"fire"})
    requirements = time_of_conditions(timed.automaton, [gap], name="req")
    mapping = InequalityMapping(
        algorithm,
        requirements,
        predicate=_pulse_predicate(algorithm, requirements),
        name="pulse-gap",
    )
    return timed, algorithm, requirements, mapping


def _pulse_predicate(algorithm, requirements):
    def predicate(u, s):
        lt_gap = requirements.lt(u, "GAP")
        ft_gap = requirements.ft(u, "GAP")
        if s.astate == "off":
            # arm within Lt(ARM), then fire within 2 more.
            need_lt = algorithm.lt(s, "ARM") + 2
            need_ft = algorithm.ft(s, "ARM") + 1
        else:
            need_lt = algorithm.lt(s, "FIRE")
            need_ft = algorithm.ft(s, "FIRE")
        return lt_gap >= need_lt and ft_gap <= need_ft

    return predicate


def run_of(algorithm, seed=0, steps=40):
    return Simulator(algorithm, UniformStrategy(random.Random(seed))).run(max_steps=steps)


class TestRunChecker:
    def test_correct_mapping_passes(self):
        _t, algorithm, _r, mapping = pulse_setup()
        for seed in range(5):
            outcome = check_mapping_on_run(mapping, run_of(algorithm, seed))
            assert outcome.ok, outcome.detail

    def test_steps_counted(self):
        _t, algorithm, _r, mapping = pulse_setup()
        run = run_of(algorithm, 1, steps=25)
        assert check_mapping_on_run(mapping, run).steps_checked == len(run)

    def test_too_tight_upper_bound_fails_enabledness(self):
        timed = pulse_timed()
        algorithm = time_of_boundmap(timed)
        gap = TimingCondition.after_action("GAP", Interval(1, 3), "fire", {"fire"})
        requirements = time_of_conditions(timed.automaton, [gap], name="req")
        mapping = InequalityMapping(algorithm, requirements, lambda u, s: True)
        failures = 0
        for seed in range(10):
            outcome = check_mapping_on_run(mapping, run_of(algorithm, seed, steps=60))
            if not outcome.ok:
                failures += 1
                assert "not enabled" in outcome.detail
        assert failures > 0, "a 3-unit gap bound cannot hold; some run must refute it"

    def test_too_loose_lower_bound_fails_enabledness(self):
        timed = pulse_timed()
        algorithm = time_of_boundmap(timed)
        gap = TimingCondition.after_action("GAP", Interval(4, 10), "fire", {"fire"})
        requirements = time_of_conditions(timed.automaton, [gap], name="req")
        mapping = InequalityMapping(algorithm, requirements, lambda u, s: True)
        failures = sum(
            0 if check_mapping_on_run(mapping, run_of(algorithm, seed, steps=60)).ok else 1
            for seed in range(10)
        )
        assert failures > 0, "gaps of length < 4 are reachable and must refute the bound"

    def test_wrong_inequalities_fail_containment(self):
        _t, algorithm, requirements, _m = pulse_setup()
        bad = InequalityMapping(
            algorithm, requirements, lambda u, s: requirements.lt(u, "GAP") >= 10**6
        )
        outcome = check_mapping_on_run(bad, run_of(algorithm, 0))
        assert not outcome.ok
        assert "initial" in outcome.detail or "containment" in outcome.detail

    def test_raise_if_failed(self):
        _t, algorithm, requirements, _m = pulse_setup()
        bad = InequalityMapping(algorithm, requirements, lambda u, s: False)
        with pytest.raises(MappingCheckError):
            check_mapping_on_run(bad, run_of(algorithm, 0)).raise_if_failed()

    def test_outcome_truthiness(self):
        _t, algorithm, _r, mapping = pulse_setup()
        assert check_mapping_on_run(mapping, run_of(algorithm, 2))


class TestChainChecker:
    def test_two_level_chain(self):
        timed = pulse_timed()
        algorithm = time_of_boundmap(timed)
        gap_mid = TimingCondition.after_action("GAP", Interval(1, 7), "fire", {"fire"})
        middle = time_of_conditions(
            timed.automaton,
            [gap_mid] + list(algorithm.conditions),
            name="mid",
        )
        top = time_of_conditions(timed.automaton, [gap_mid], name="top")
        m1 = InequalityMapping(
            algorithm,
            middle,
            predicate=_chain_mid_predicate(algorithm, middle),
            name="to-mid",
        )
        m2 = ProjectionMapping(middle, top, name="to-top")
        chain = MappingChain([m1, m2])
        for seed in range(4):
            outcome = check_chain_on_run(chain, run_of(algorithm, seed))
            assert outcome.ok, outcome.detail


def _chain_mid_predicate(algorithm, middle):
    def predicate(u, s):
        for name in ("FIRE", "ARM"):
            if u.preds[middle.index_of(name)] != s.preds[algorithm.index_of(name)]:
                return False
        lt_gap = middle.lt(u, "GAP")
        ft_gap = middle.ft(u, "GAP")
        if s.astate == "off":
            return (
                lt_gap >= algorithm.lt(s, "ARM") + 2
                and ft_gap <= algorithm.ft(s, "ARM") + 1
            )
        return lt_gap >= algorithm.lt(s, "FIRE") and ft_gap <= algorithm.ft(s, "FIRE")

    return predicate


class TestExhaustiveChecker:
    def test_correct_mapping_exhaustive(self):
        _t, _a, _r, mapping = pulse_setup()
        outcome = check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=F(10))
        assert outcome.ok, outcome.detail
        assert outcome.steps_checked > 50

    def test_wrong_bound_found_exhaustively(self):
        timed = pulse_timed()
        algorithm = time_of_boundmap(timed)
        gap = TimingCondition.after_action("GAP", Interval(1, 3), "fire", {"fire"})
        requirements = time_of_conditions(timed.automaton, [gap], name="req")
        mapping = InequalityMapping(algorithm, requirements, lambda u, s: True)
        outcome = check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=F(10))
        assert not outcome.ok

    def test_truncation_reported(self):
        _t, _a, _r, mapping = pulse_setup()
        outcome = check_mapping_exhaustive(
            mapping, grid=F(1, 4), horizon=F(10), max_pairs=20
        )
        assert outcome.ok and "truncated" in outcome.detail


class TestFailurePaths:
    """raise_if_failed and the MappingCheckError diagnostics: both proof
    obligations (enabledness, containment) must fail with a message a
    user can act on, carrying the failing state pair."""

    def test_raise_if_failed_returns_self_on_success(self):
        _t, algorithm, _r, mapping = pulse_setup()
        outcome = check_mapping_on_run(mapping, run_of(algorithm, 3))
        assert outcome.raise_if_failed() is outcome

    def test_raise_if_failed_carries_states(self):
        from repro.core.checker import CheckOutcome

        outcome = CheckOutcome(
            False, 7, "boom", failing_source_state="s", failing_target_state="u"
        )
        with pytest.raises(MappingCheckError) as excinfo:
            outcome.raise_if_failed()
        assert str(excinfo.value) == "boom"
        assert excinfo.value.source_state == "s"
        assert excinfo.value.target_state == "u"

    def _failing_enabledness_outcome(self):
        timed = pulse_timed()
        algorithm = time_of_boundmap(timed)
        gap = TimingCondition.after_action("GAP", Interval(1, 3), "fire", {"fire"})
        requirements = time_of_conditions(timed.automaton, [gap], name="req")
        mapping = InequalityMapping(
            algorithm, requirements, lambda u, s: True, name="too-tight"
        )
        for seed in range(10):
            outcome = check_mapping_on_run(mapping, run_of(algorithm, seed, steps=60))
            if not outcome.ok:
                return outcome
        pytest.fail("a 3-unit gap bound cannot hold on every run")

    def test_enabledness_failure_message_and_states(self):
        outcome = self._failing_enabledness_outcome()
        assert "target step not enabled" in outcome.detail
        assert "too-tight" in outcome.detail
        assert outcome.failing_source_state is not None
        assert outcome.failing_target_state is not None
        with pytest.raises(MappingCheckError) as excinfo:
            outcome.raise_if_failed()
        assert "target step not enabled" in str(excinfo.value)
        assert excinfo.value.source_state is outcome.failing_source_state
        assert excinfo.value.target_state is outcome.failing_target_state

    def test_containment_failure_message_uses_explain(self):
        _t, algorithm, requirements, _m = pulse_setup()
        bad = InequalityMapping(
            algorithm,
            requirements,
            predicate=lambda u, s: s.now == 0,  # holds initially, fails later
            name="decays",
            explain=lambda u, s: "custom-explanation at Ct={!r}".format(s.now),
        )
        outcome = check_mapping_on_run(bad, run_of(algorithm, 0))
        assert not outcome.ok
        assert "containment fails" in outcome.detail
        assert "custom-explanation" in outcome.detail
        with pytest.raises(MappingCheckError) as excinfo:
            outcome.raise_if_failed()
        assert "custom-explanation" in str(excinfo.value)
        assert excinfo.value.source_state is not None
        assert excinfo.value.target_state is not None

    def test_initial_condition_failure_states(self):
        _t, algorithm, requirements, _m = pulse_setup()
        bad = InequalityMapping(
            algorithm, requirements, lambda u, s: False, name="never"
        )
        outcome = check_mapping_on_run(bad, run_of(algorithm, 0))
        assert not outcome.ok and outcome.steps_checked == 0
        assert "initial condition fails" in outcome.detail
        assert outcome.failing_source_state is not None
        assert outcome.failing_target_state is not None
