"""Tests of the mapping framework (Definition 3.2 infrastructure)."""

import pytest

from repro.errors import MappingError
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.core.mappings import (
    InequalityMapping,
    MappingChain,
    ProjectionMapping,
)
from repro.core.time_automaton import time_of_conditions

from tests.core.test_time_automaton import (
    flow_automaton,
    response_condition,
    startup_condition,
)


def automata_pair():
    base = flow_automaton()
    source = time_of_conditions(base, [response_condition(), startup_condition()])
    target = time_of_conditions(base, [startup_condition()], name="target")
    return source, target


class TestIdentityOnAState:
    def test_contains_requires_matching_astate(self):
        source, target = automata_pair()
        mapping = InequalityMapping(source, target, lambda u, s: True)
        s = source.initial("idle")
        u_same = target.initial("idle")
        assert mapping.contains(u_same, s)
        u_other = u_same.with_astate("busy")
        assert not mapping.contains(u_other, s)

    def test_describe_failure_mentions_astate(self):
        source, target = automata_pair()
        mapping = InequalityMapping(source, target, lambda u, s: True)
        s = source.initial("idle")
        u = target.initial("idle").with_astate("busy")
        assert "A-state" in mapping.describe_failure(u, s)


class TestInequalityMapping:
    def test_predicate_consulted(self):
        source, target = automata_pair()
        mapping = InequalityMapping(source, target, lambda u, s: False)
        assert not mapping.contains(target.initial("idle"), source.initial("idle"))

    def test_custom_explanation(self):
        source, target = automata_pair()
        mapping = InequalityMapping(
            source, target, lambda u, s: False, explain=lambda u, s: "because"
        )
        assert (
            mapping.describe_failure(target.initial("idle"), source.initial("idle"))
            == "because"
        )


class TestProjectionMapping:
    def test_identity_name_projection(self):
        source, target = automata_pair()
        mapping = ProjectionMapping(source, target)
        assert mapping.contains(target.initial("idle"), source.initial("idle"))

    def test_unknown_source_condition_rejected(self):
        base = flow_automaton()
        source = time_of_conditions(base, [response_condition()])
        target = time_of_conditions(base, [startup_condition()], name="t")
        with pytest.raises(Exception):
            ProjectionMapping(source, target)

    def test_renaming(self):
        base = flow_automaton()
        clone = TimingCondition.from_start("S2", Interval(2, 4), {"req"})
        source = time_of_conditions(base, [startup_condition()])
        target = time_of_conditions(base, [clone], name="t")
        mapping = ProjectionMapping(source, target, name_map={"S2": "S"})
        assert mapping.contains(target.initial("idle"), source.initial("idle"))

    def test_prediction_mismatch_detected(self):
        base = flow_automaton()
        different = TimingCondition.from_start("S", Interval(1, 9), {"req"})
        source = time_of_conditions(base, [startup_condition()])  # S = [2,4]
        target = time_of_conditions(base, [different], name="t")
        mapping = ProjectionMapping(source, target)
        assert not mapping.contains(target.initial("idle"), source.initial("idle"))
        assert "S" in mapping.describe_failure(
            target.initial("idle"), source.initial("idle")
        )


class TestMappingChain:
    def test_empty_chain_rejected(self):
        with pytest.raises(MappingError):
            MappingChain([])

    def test_mismatched_chain_rejected(self):
        source, target = automata_pair()
        m1 = InequalityMapping(source, target, lambda u, s: True)
        other = time_of_conditions(flow_automaton(), [response_condition()], name="x")
        m2 = InequalityMapping(other, target, lambda u, s: True)
        with pytest.raises(MappingError):
            MappingChain([m1, m2])

    def test_chain_endpoints(self):
        source, target = automata_pair()
        m1 = InequalityMapping(source, target, lambda u, s: True)
        m2 = InequalityMapping(target, target, lambda u, s: True)
        chain = MappingChain([m1, m2])
        assert chain.source is source and chain.target is target
        assert len(chain) == 2
