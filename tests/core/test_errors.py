"""Machine-readable error projections (``to_dict``)."""

import json
from fractions import Fraction as F

from repro.errors import (
    MappingCheckError,
    ReproError,
    SchedulingDeadlockError,
)


class TestBaseProjection:
    def test_base_error_carries_type_and_message(self):
        body = ReproError("it broke").to_dict()
        assert body == {"type": "ReproError", "message": "it broke"}

    def test_subclass_name_is_the_type(self):
        class CustomError(ReproError):
            pass

        assert CustomError("x").to_dict()["type"] == "CustomError"


class TestSchedulingDeadlock:
    def test_fields_are_projected_to_strings(self):
        exc = SchedulingDeadlockError(
            "stuck",
            state=("s", F(1, 2)),
            condition="c2",
            deadline=F(7, 3),
        )
        body = exc.to_dict()
        assert body["type"] == "SchedulingDeadlockError"
        assert body["message"] == "stuck"
        assert body["state"] == repr(("s", F(1, 2)))
        assert body["condition"] == "c2"
        assert body["deadline"] == "7/3"
        json.dumps(body)  # JSON-native throughout

    def test_missing_fields_stay_none(self):
        body = SchedulingDeadlockError("stuck").to_dict()
        assert body["state"] is None
        assert body["condition"] is None
        assert body["deadline"] is None


class TestMappingCheck:
    def test_fields_are_projected(self):
        exc = MappingCheckError(
            "no cover",
            step=3,
            source_state={"x": F(1)},
            target_state={"y": F(2)},
        )
        body = exc.to_dict()
        assert body["type"] == "MappingCheckError"
        assert body["step"] == "3"
        assert body["source_state"] == repr({"x": F(1)})
        assert body["target_state"] == repr({"y": F(2)})
        json.dumps(body)

    def test_round_trips_through_json(self):
        body = MappingCheckError("m", step=1).to_dict()
        assert json.loads(json.dumps(body)) == body
