"""Property-based cross-validation of the zone engine.

On random closed systems (repro.testkit), the zone engine's exact
answers must bracket everything simulation observes, and for
always-enabled classes the MMT semantics pins the consecutive-firing
separation to exactly the class's bound interval.
"""

import random
from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.errors import ZoneError
from repro.sim.scheduler import Simulator
from repro.sim.strategies import ExtremalStrategy, UniformStrategy
from repro.testkit import INC, random_system
from repro.zones.analysis import event_separation_bounds, find_reachable_state


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_anchor_gap_exactly_the_bound_interval(seed):
    """Cell 0 is always enabled: Definition 2.1 makes every firing a
    trigger for the next, so the exact separation interval equals the
    boundmap interval — and is tight."""
    system = random_system(random.Random(seed), n_cells=2, allow_unbounded=False)
    anchor = system.cells[0]
    try:
        bounds = event_separation_bounds(
            system.timed,
            INC(0),
            occurrence=2,
            reset_on=[INC(0)],
            max_nodes=60_000,
        )
    except ZoneError:
        pytest.skip("zone graph too large for this seed")
    assert bounds.lo == anchor.interval.lo, system.describe()
    assert bounds.hi == anchor.interval.hi, system.describe()
    assert not bounds.lo_strict and not bounds.hi_strict


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_simulated_separations_within_zone_bounds(seed):
    """Whatever separations simulation produces, the zone bounds cover
    them (the zone answer is an over-approximation of any sample)."""
    system = random_system(random.Random(seed), n_cells=2, allow_unbounded=False)
    try:
        bounds = event_separation_bounds(
            system.timed, INC(0), occurrence=2, reset_on=[INC(0)], max_nodes=60_000
        )
    except ZoneError:
        pytest.skip("zone graph too large for this seed")
    automaton = time_of_boundmap(system.timed)
    for run_seed in range(3):
        strategy = (
            UniformStrategy(random.Random(run_seed))
            if run_seed % 2
            else ExtremalStrategy(random.Random(run_seed))
        )
        run = Simulator(automaton, strategy).run(max_steps=40)
        times = [ev.time for ev in project(run).events if ev.action == INC(0)]
        for earlier, later in zip(times, times[1:]):
            gap = later - earlier
            assert bounds.lo <= gap <= bounds.hi, system.describe()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_simulated_states_are_zone_reachable(seed):
    """Every A-state visited by a simulation must be reachable in the
    zone graph (timed reachability over-approximates nothing)."""
    system = random_system(random.Random(seed), n_cells=2, allow_unbounded=False)
    automaton = time_of_boundmap(system.timed)
    run = Simulator(automaton, UniformStrategy(random.Random(seed + 1))).run(
        max_steps=25
    )
    visited = {state.astate for state in run.states}
    for astate in visited:
        try:
            found = find_reachable_state(
                system.timed, lambda s, target=astate: s == target, max_nodes=60_000
            )
        except ZoneError:
            pytest.skip("zone graph too large for this seed")
        assert found == astate, system.describe()
