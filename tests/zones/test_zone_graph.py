"""Tests for the MMT zone-graph explorer."""

from fractions import Fraction as F

import pytest

from repro.errors import ZoneError
from repro.ioa.actions import Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import Interval
from repro.zones.zone_graph import Observer, explore_zone_graph

from tests.timed.test_conditions import pulse_timed


class TestExploration:
    def test_pulse_graph_finite(self):
        result = explore_zone_graph(
            pulse_timed(), counted_actions={"fire": 3}
        )
        assert not result.truncated
        assert result.nodes > 1

    def test_firing_records_per_occurrence(self):
        result = explore_zone_graph(
            pulse_timed(),
            observers=[Observer("t")],
            counted_actions={"fire": 2},
        )
        assert ("fire", 1) in result.firings
        assert ("fire", 2) in result.firings

    def test_first_fire_bounds(self):
        result = explore_zone_graph(
            pulse_timed(),
            observers=[Observer("t")],
            counted_actions={"fire": 1},
        )
        record = result.firings[("fire", 1)]
        assert record.lower["t"] == (F(1), 0)
        assert record.upper["t"] == (F(2), 0)

    def test_gap_observer(self):
        result = explore_zone_graph(
            pulse_timed(),
            observers=[Observer("gap", frozenset(["fire"]))],
            counted_actions={"fire": 2},
        )
        record = result.firings[("fire", 2)]
        # arm in [0,5] then fire in [1,2] after re-enable: gap ∈ [1, 7]
        assert record.lower["gap"] == (F(1), 0)
        assert record.upper["gap"] == (F(7), 0)

    def test_open_system_rejected(self):
        listener = GuardedAutomaton(
            "open", [0], [ActionSpec("in", Kind.INPUT)]
        )
        ta = TimedAutomaton(listener, Boundmap({}))
        with pytest.raises(ZoneError):
            explore_zone_graph(ta)

    def test_truncation_flag(self):
        result = explore_zone_graph(
            pulse_timed(), counted_actions={"fire": 50}, max_nodes=5
        )
        assert result.truncated

    def test_occurrence_limit_prunes(self):
        shallow = explore_zone_graph(pulse_timed(), counted_actions={"fire": 1})
        deep = explore_zone_graph(pulse_timed(), counted_actions={"fire": 4})
        assert deep.nodes > shallow.nodes
