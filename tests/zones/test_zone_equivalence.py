"""Old-vs-new zone-engine differential suite (``-m zone_equivalence``).

Every test replays the same workload through the flat encoded-integer
engine (:class:`repro.zones.dbm.DBM`) and the retired object-based
oracle (:class:`repro.zones.dbm_reference.ReferenceDBM`) and asserts
the *observable* results are identical: reachable-node and transition
counts (canonical-form uniqueness makes zone dedup representation-
independent), firing-record bounds, separation bounds, verdicts, and
safety counterexamples.  CI runs the suite as its own step and
surfaces the timing of both engines.
"""

from fractions import Fraction as F

import pytest

from repro.gen import build_bundle
from repro.systems import (
    GRANT,
    RelayParams,
    RelaySystem,
    ResourceManagerParams,
    ResourceManagerSystem,
    SIGNAL,
)
from repro.systems.extensions import (
    FischerParams,
    fischer_system,
    mutual_exclusion_violated,
)
from repro.timed.interval import Interval
from repro.zones import analysis as _analysis
from repro.zones.analysis import (
    absolute_event_bounds,
    event_separation_bounds,
    search_reachable_state,
)
from repro.zones.dbm_reference import ReferenceDBM
from repro.zones.verify import verify_event_condition
from repro.zones.zone_graph import explore_zone_graph

pytestmark = pytest.mark.zone_equivalence


def _rm():
    return ResourceManagerSystem(
        ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))
    ).timed


def _relay():
    return RelaySystem(RelayParams(n=3, d1=F(1), d2=F(2))).timed


_SYSTEMS = {
    "rm": _rm,
    "relay": _relay,
    "fischer-safe": lambda: fischer_system(FischerParams(n=2, a=F(1), b=F(2))),
    "fischer-unsafe": lambda: fischer_system(FischerParams(n=2, a=F(2), b=F(1))),
    "gen:fischer-2": lambda: build_bundle("gen:fischer-2").timed(),
    "gen:fischer-3": lambda: build_bundle("gen:fischer-3").timed(),
    "gen:relay_line-4": lambda: build_bundle("gen:relay_line-4").timed(),
    "gen:relay_ring-4": lambda: build_bundle("gen:relay_ring-4").timed(),
    "gen:relay_tree-2x2": lambda: build_bundle("gen:relay_tree-2x2").timed(),
    "gen:tournament-2": lambda: build_bundle("gen:tournament-2").timed(),
}


def _firing_payload(result):
    return {
        key: (record.lower, record.upper, record.count)
        for key, record in result.firings.items()
    }


def _route_through_reference(monkeypatch):
    """Route the whole analysis layer through the reference DBM (call
    mid-test, *after* the flat-engine measurement)."""
    original = _analysis.explore_zone_graph

    def with_reference(*args, **kwargs):
        kwargs.setdefault("dbm_cls", ReferenceDBM)
        return original(*args, **kwargs)

    monkeypatch.setattr(_analysis, "explore_zone_graph", with_reference)


@pytest.mark.parametrize("name", sorted(_SYSTEMS))
def test_graphs_identical(name):
    """Node/transition counts and every firing record agree — the flat
    engine's canonical keys induce exactly the old dedup."""
    timed = _SYSTEMS[name]()
    flat = explore_zone_graph(timed, max_nodes=50_000)
    reference = explore_zone_graph(timed, max_nodes=50_000, dbm_cls=ReferenceDBM)
    assert flat.nodes == reference.nodes
    assert flat.transitions == reference.transitions
    assert flat.truncated == reference.truncated
    assert _firing_payload(flat) == _firing_payload(reference)


@pytest.mark.parametrize(
    "name,query",
    [
        ("rm", lambda t: absolute_event_bounds(t, GRANT)),
        (
            "rm",
            lambda t: event_separation_bounds(
                t, GRANT, occurrence=2, reset_on=[GRANT]
            ),
        ),
        (
            "relay",
            lambda t: event_separation_bounds(
                t, SIGNAL(3), occurrence=1, reset_on=[SIGNAL(0)]
            ),
        ),
    ],
)
def test_separation_bounds_identical(name, query, monkeypatch):
    timed = _SYSTEMS[name]()
    want = query(timed)
    _route_through_reference(monkeypatch)
    got = query(timed)  # this call runs on ReferenceDBM
    assert (got.lo, got.hi, got.lo_strict, got.hi_strict) == (
        want.lo,
        want.hi,
        want.lo_strict,
        want.hi_strict,
    )
    assert (got.nodes, got.transitions) == (want.nodes, want.transitions)


@pytest.mark.parametrize(
    "name,trigger,target,claimed",
    [
        ("rm", GRANT, GRANT, Interval(F(5), F(10))),
        ("rm", GRANT, GRANT, Interval(F(6), F(9))),
        ("relay", SIGNAL(0), SIGNAL(3), Interval(F(3), F(6))),
        ("relay", SIGNAL(0), SIGNAL(3), Interval(F(4), F(6))),
    ],
)
def test_verdicts_identical(name, trigger, target, claimed, monkeypatch):
    """Verification verdicts — including refutations with their exact
    counterexample bounds — are engine-independent."""
    timed = _SYSTEMS[name]()
    flat = verify_event_condition(timed, trigger, target, claimed)
    _route_through_reference(monkeypatch)
    reference = verify_event_condition(timed, trigger, target, claimed)
    assert flat.verdict == reference.verdict
    if flat.exact is None:
        assert reference.exact is None
    else:
        assert (flat.exact.lo, flat.exact.hi) == (
            reference.exact.lo,
            reference.exact.hi,
        )


@pytest.mark.parametrize(
    "params,expect_violation",
    [
        (FischerParams(n=2, a=F(1), b=F(2)), False),
        (FischerParams(n=2, a=F(2), b=F(1)), True),
        (FischerParams(n=2, a=F(3), b=F(2), e=F(1)), False),
    ],
)
def test_safety_counterexamples_identical(params, expect_violation, monkeypatch):
    """Reachability of mutual-exclusion violations — and the *witness
    state itself* — match between engines (BFS order is preserved)."""
    timed = fischer_system(params)
    flat = search_reachable_state(
        timed, mutual_exclusion_violated, max_nodes=300_000
    )
    _route_through_reference(monkeypatch)
    reference = search_reachable_state(
        timed, mutual_exclusion_violated, max_nodes=300_000
    )
    assert bool(flat) == bool(reference) == expect_violation
    assert flat.state == reference.state
    assert flat.nodes == reference.nodes


def test_untimed_fischer_counts_anchor():
    """The construction-predicted untimed reachable-state counts the
    bench gate relies on (28/152/752) still hold — they are computed by
    the untimed explorer and must be untouched by the zone rewrite."""
    from repro.ioa.explorer import explore

    for spec, want in [
        ("gen:fischer-2", 28),
        ("gen:fischer-3", 152),
        ("gen:fischer-4", 752),
    ]:
        bundle = build_bundle(spec)
        result = explore(bundle.timed().automaton, max_states=bundle.max_states)
        assert len(result.reachable) == want, spec
