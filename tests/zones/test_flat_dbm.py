"""The flat-storage DBM against its packed encoding and the reference
object-based engine.

Two layers of proof: encode/decode round-trips pin the bit-packing
(strict vs non-strict flags, infinity, negatives, rational grids), and
a hypothesis property test replays random constraint matrices through
both :class:`repro.zones.dbm.DBM` and the retired
:class:`repro.zones.dbm_reference.ReferenceDBM`, asserting the
canonical forms agree cell for cell.
"""

import math
from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ZoneError
from repro.zones.dbm import (
    DBM,
    INF_BOUND,
    INF_ENC,
    ZERO_BOUND,
    decode_bound,
    encode_bound,
    le_bound,
    lt_bound,
)
from repro.zones.dbm_reference import ReferenceDBM


class TestEncodeDecode:
    def test_zero(self):
        assert encode_bound(ZERO_BOUND) == 1
        assert decode_bound(1) == ZERO_BOUND

    def test_infinity(self):
        assert encode_bound(INF_BOUND) == INF_ENC
        assert decode_bound(INF_ENC) == INF_BOUND

    @pytest.mark.parametrize("value", [0, 1, 7, -1, -13, 1 << 30, -(1 << 30)])
    @pytest.mark.parametrize("strict", [False, True])
    def test_integer_round_trip(self, value, strict):
        bound = lt_bound(value) if strict else le_bound(value)
        assert decode_bound(encode_bound(bound)) == bound

    @pytest.mark.parametrize(
        "value", [F(1, 2), F(-3, 4), F(7, 12), F(-22, 7), F(1, 1000)]
    )
    @pytest.mark.parametrize("strict", [False, True])
    def test_fraction_round_trip(self, value, strict):
        bound = lt_bound(value) if strict else le_bound(value)
        scale = value.denominator
        assert decode_bound(encode_bound(bound, scale), scale) == bound

    def test_ordering_matches_bound_ordering(self):
        # The whole point of the packing: integer order == tightness.
        bounds = [
            lt_bound(-2), le_bound(-2), lt_bound(0), ZERO_BOUND,
            lt_bound(F(1, 2)), le_bound(F(1, 2)), lt_bound(3), le_bound(3),
            INF_BOUND,
        ]
        encoded = [encode_bound(b, 2) for b in bounds]
        assert encoded == sorted(encoded)

    def test_strict_encodes_below_nonstrict(self):
        assert encode_bound(lt_bound(5)) == encode_bound(le_bound(5)) - 1

    def test_off_grid_rejected(self):
        with pytest.raises(ZoneError):
            encode_bound(le_bound(F(1, 3)), scale=2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ZoneError):
            encode_bound(le_bound(1 << 55))

    def test_infinity_decode_ignores_scale(self):
        assert decode_bound(INF_ENC, 12) == INF_BOUND


def _random_bound(rng_value, strict, scale):
    if rng_value is None:
        return INF_BOUND
    value = F(rng_value, scale)
    return (value, -1 if strict else 0)


_cell = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
    st.booleans(),
)


class TestFlatMatchesReference:
    @settings(max_examples=200, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=4),
        cells=st.lists(_cell, min_size=25, max_size=25),
        scale=st.sampled_from([1, 2, 3, 6]),
        data=st.data(),
    )
    def test_canonicalization_agrees(self, n, cells, scale, data):
        """Random constraint matrices canonicalise identically in the
        flat engine and the reference engine — including emptiness."""
        size = n + 1
        flat = DBM.universe(n, scale)
        ref = ReferenceDBM.universe(n)
        it = iter(cells)
        for i in range(size):
            for j in range(size):
                if i == j:
                    continue
                raw, strict = next(it)
                bound = _random_bound(raw, strict, scale)
                if bound == INF_BOUND:
                    continue
                # Install raw (possibly inconsistent) constraints
                # directly, then canonicalise both.
                ref.m[i][j] = min(ref.m[i][j], bound)
                flat.cells[i * size + j] = min(
                    flat.cells[i * size + j], encode_bound(bound, scale)
                )
        flat.canonicalize()
        ref.canonicalize()
        assert flat.is_empty() == ref.is_empty()
        if not flat.is_empty():
            assert flat.m == ref.m

    @settings(max_examples=100, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=3),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["up", "reset", "constrain"]),
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=-8, max_value=12),
                st.booleans(),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_operation_sequences_agree(self, n, ops):
        """Whole zone-operation trajectories (delay, reset, constrain)
        stay in lock-step between the two engines."""
        flat = DBM.zero(n)
        ref = ReferenceDBM.zero(n)
        for op, clock, other, value, strict in ops:
            clock = min(clock, n)
            other = min(other, n)
            if op == "up":
                flat.up()
                ref.up()
            elif op == "reset":
                flat.reset(clock)
                ref.reset(clock)
            else:
                bound = lt_bound(value) if strict else le_bound(value)
                flat.constrain(clock, other, bound)
                ref.constrain(clock, other, bound)
            assert flat.is_empty() == ref.is_empty()
            if flat.is_empty():
                break
            assert flat.m == ref.m

    def test_reset_many_matches_sequential_resets(self):
        z = DBM.zero(3).up()
        z.constrain(1, 0, le_bound(9)).constrain(2, 0, le_bound(F(7, 2)))
        sequential = z.copy()
        for clock in (1, 3):
            sequential.reset(clock)
        batched = z.copy()
        batched.reset_many([1, 3])
        assert batched.key() == sequential.key()
        assert batched.m == sequential.m

    def test_cross_scale_equality(self):
        a = DBM.zero(2, scale=1).up()
        b = DBM.zero(2, scale=6).up()
        a.constrain(1, 0, le_bound(2))
        b.constrain(1, 0, le_bound(2))
        assert a == b
        assert a.key() == b.key()
        assert hash(a) == hash(b)
