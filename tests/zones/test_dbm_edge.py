"""Edge cases of the DBM layer: difference bounds, idempotence, bound
arithmetic corner cases."""

import math
from fractions import Fraction as F

import pytest

from repro.zones.dbm import (
    DBM,
    INF_BOUND,
    ZERO_BOUND,
    bound_add,
    le_bound,
    lt_bound,
)


class TestBoundArithmetic:
    def test_add_both_inf(self):
        assert bound_add(INF_BOUND, INF_BOUND) == INF_BOUND

    def test_add_strict_strict(self):
        assert bound_add(lt_bound(1), lt_bound(2)) == lt_bound(3)

    def test_add_zero_identity(self):
        assert bound_add(le_bound(5), ZERO_BOUND) == le_bound(5)

    def test_negative_values(self):
        assert bound_add(le_bound(-3), le_bound(1)) == le_bound(-2)

    def test_fraction_values(self):
        assert bound_add(le_bound(F(1, 3)), le_bound(F(1, 6))) == le_bound(F(1, 2))


class TestDifferenceBounds:
    def test_equal_clocks(self):
        z = DBM.zero(2).up()
        lo, hi = z.difference_bounds(1, 2)
        assert lo == (F(0), 0) and hi == ZERO_BOUND

    def test_offset_clocks(self):
        z = DBM.zero(2).up()
        z.constrain(1, 0, le_bound(5)).constrain(0, 1, le_bound(-5))  # x1 = 5
        z.reset(2)  # x2 = 0 while x1 = 5
        lo, hi = z.difference_bounds(1, 2)
        assert lo == (F(5), 0) and hi == le_bound(5)

    def test_unbounded_difference(self):
        z = DBM.universe(2)
        lo, hi = z.difference_bounds(1, 2)
        assert lo[0] == -math.inf and hi == INF_BOUND


class TestCanonicalisation:
    def test_idempotent(self):
        z = DBM.zero(3).up()
        z.constrain(1, 0, le_bound(4))
        first = z.key()
        z.canonicalize()
        assert z.key() == first

    def test_transitive_tightening(self):
        z = DBM.universe(2)
        z.constrain(1, 2, le_bound(1))
        z.constrain(2, 0, le_bound(2))
        # x1 ≤ x2 + 1 ≤ 3 must be derived.
        assert z.m[1][0] <= le_bound(3)

    def test_empty_propagates(self):
        z = DBM.zero(1)
        z.constrain(0, 1, lt_bound(0))  # x1 > 0 but x1 = 0
        assert z.is_empty()

    def test_zero_clock_count(self):
        z = DBM.zero(0)
        assert not z.is_empty()
        assert z.key() == DBM.zero(0).key()
        assert z.m == [[ZERO_BOUND]]


class TestRepr:
    def test_repr_readable(self):
        z = DBM.zero(1)
        text = repr(z)
        assert "x1-x0" in text and "<=" in text

    def test_universe_not_empty(self):
        assert not DBM.universe(3).is_empty()
