"""Tests for the exact condition verifier."""

from fractions import Fraction as F

import pytest

from repro.systems.resource_manager import (
    GRANT,
    ResourceManagerParams,
    resource_manager,
)
from repro.systems.signal_relay import SIGNAL, RelayParams, signal_relay
from repro.timed.interval import Interval
from repro.zones.verify import ConditionReport, Verdict, verify_event_condition


RM = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))  # gap [3, 7]
RL = RelayParams(n=2, d1=F(1), d2=F(2))  # end-to-end [2, 4]


class TestVerdicts:
    def test_paper_gap_verified_tight(self):
        report = verify_event_condition(
            resource_manager(RM), GRANT, GRANT, RM.grant_gap_interval, occurrences=2
        )
        assert report.verdict == Verdict.VERIFIED_TIGHT
        assert report

    def test_loose_claim_verified_with_slack(self):
        report = verify_event_condition(
            resource_manager(RM), GRANT, GRANT, Interval(1, 100), occurrences=2
        )
        assert report.verdict == Verdict.VERIFIED_SLACK
        assert report

    def test_upper_refuted(self):
        report = verify_event_condition(
            resource_manager(RM), GRANT, GRANT, Interval(3, 6), occurrences=2
        )
        assert report.verdict == Verdict.REFUTED_UPPER
        assert not report
        assert report.exact.hi == 7

    def test_lower_refuted(self):
        report = verify_event_condition(
            resource_manager(RM), GRANT, GRANT, Interval(4, 7), occurrences=2
        )
        assert report.verdict == Verdict.REFUTED_LOWER
        assert report.exact.lo == 3

    def test_relay_requirement_tight(self):
        report = verify_event_condition(
            signal_relay(RL), SIGNAL(0), SIGNAL(2), RL.end_to_end_interval
        )
        assert report.verdict == Verdict.VERIFIED_TIGHT

    def test_vacuous_when_unreachable(self):
        # SIGNAL_2 never fires twice, so occurrence 1 of a nonexistent
        # pairing is vacuous when the target cannot fire at all after
        # the "trigger": use SIGNAL(2) as trigger and SIGNAL(0) as the
        # (never-following) target — SIGNAL(0) does fire once, but
        # *before* the trigger; the observer-based query still reports
        # its occurrence. Use a genuinely absent occurrence instead.
        report = verify_event_condition(
            signal_relay(RL), SIGNAL(0), SIGNAL(2), RL.end_to_end_interval,
            occurrences=1,
        )
        assert report.verdict == Verdict.VERIFIED_TIGHT

    def test_multiple_occurrences_merge(self):
        report = verify_event_condition(
            resource_manager(RM), GRANT, GRANT, RM.grant_gap_interval, occurrences=3
        )
        assert report.verdict == Verdict.VERIFIED_TIGHT
        assert report.exact.nodes > 0

    def test_report_repr(self):
        report = verify_event_condition(
            resource_manager(RM), GRANT, GRANT, RM.grant_gap_interval, occurrences=2
        )
        assert "verified" in repr(report)
