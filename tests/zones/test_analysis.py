"""Exact zone bounds versus the paper's claimed intervals (E10)."""

from fractions import Fraction as F

import pytest

from repro.errors import ZoneError
from repro.systems.resource_manager import (
    GRANT,
    ResourceManagerParams,
    resource_manager,
)
from repro.systems.signal_relay import SIGNAL, RelayParams, signal_relay
from repro.timed.interval import Interval
from repro.zones.analysis import absolute_event_bounds, event_separation_bounds

from tests.timed.test_conditions import pulse_timed


class TestResourceManagerExact:
    @pytest.mark.parametrize(
        "k,c1,c2,l",
        [
            (1, F(2), F(3), F(1)),
            (2, F(2), F(3), F(1)),
            (3, F(2), F(2), F(1)),
            (2, F(5), F(7), F(2)),
        ],
    )
    def test_first_grant_tight(self, k, c1, c2, l):
        params = ResourceManagerParams(k=k, c1=c1, c2=c2, l=l)
        bounds = absolute_event_bounds(resource_manager(params), GRANT)
        assert bounds.tight(params.first_grant_interval)

    @pytest.mark.parametrize(
        "k,c1,c2,l",
        [
            (1, F(2), F(3), F(1)),
            (2, F(2), F(3), F(1)),
            (3, F(2), F(2), F(1)),
        ],
    )
    def test_grant_gap_tight(self, k, c1, c2, l):
        params = ResourceManagerParams(k=k, c1=c1, c2=c2, l=l)
        bounds = event_separation_bounds(
            resource_manager(params), GRANT, occurrence=2, reset_on=[GRANT]
        )
        assert bounds.tight(params.grant_gap_interval)

    def test_later_gaps_same_interval(self):
        params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
        third = event_separation_bounds(
            resource_manager(params), GRANT, occurrence=3, reset_on=[GRANT]
        )
        assert third.tight(params.grant_gap_interval)


class TestRelayExact:
    @pytest.mark.parametrize(
        "n,d1,d2",
        [(1, F(1), F(2)), (2, F(1), F(2)), (3, F(1), F(3)), (4, F(0), F(1))],
    )
    def test_end_to_end_tight(self, n, d1, d2):
        params = RelayParams(n=n, d1=d1, d2=d2)
        bounds = event_separation_bounds(
            signal_relay(params), SIGNAL(n), occurrence=1, reset_on=[SIGNAL(0)]
        )
        assert bounds.tight(params.end_to_end_interval)

    def test_absolute_signal_n_unbounded_above(self):
        # SIGNAL_0 may be delayed arbitrarily ([0, ∞]), so the absolute
        # time of SIGNAL_n is unbounded while the separation is not.
        import math

        params = RelayParams(n=2, d1=F(1), d2=F(2))
        bounds = absolute_event_bounds(signal_relay(params), SIGNAL(2))
        assert math.isinf(bounds.hi)
        assert bounds.lo == 2 * params.d1


class TestAPIErrors:
    def test_occurrence_must_be_positive(self):
        with pytest.raises(ZoneError):
            event_separation_bounds(pulse_timed(), "fire", occurrence=0)

    def test_unreachable_occurrence(self):
        params = RelayParams(n=2, d1=F(1), d2=F(2))
        with pytest.raises(ZoneError):
            # SIGNAL_n fires once only.
            event_separation_bounds(signal_relay(params), SIGNAL(2), occurrence=2)

    def test_within_vs_tight(self):
        params = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))
        bounds = absolute_event_bounds(resource_manager(params), GRANT)
        loose = Interval(1, 100)
        assert bounds.within(loose) and not bounds.tight(loose)
