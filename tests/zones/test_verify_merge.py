"""Edge cases of the verifier's multi-occurrence bound merging."""

import math
from fractions import Fraction as F

from repro.zones.analysis import SeparationBounds
from repro.zones.verify import _merge


def sb(lo, hi, lo_strict=False, hi_strict=False):
    return SeparationBounds(lo, hi, lo_strict, hi_strict, nodes=1, transitions=1)


class TestMerge:
    def test_first_operand_passthrough(self):
        b = sb(1, 2)
        assert _merge(None, b) is b

    def test_widening_both_ends(self):
        merged = _merge(sb(2, 3), sb(1, 4))
        assert merged.lo == 1 and merged.hi == 4

    def test_inner_operand_ignored(self):
        merged = _merge(sb(1, 4), sb(2, 3))
        assert merged.lo == 1 and merged.hi == 4
        assert not merged.lo_strict and not merged.hi_strict

    def test_attained_end_wins_on_tie(self):
        # Equal lo: one strict, one attained — the union attains it.
        merged = _merge(sb(1, 4, lo_strict=True), sb(1, 3, lo_strict=False))
        assert merged.lo == 1 and not merged.lo_strict
        merged = _merge(sb(1, 4, hi_strict=False), sb(2, 4, hi_strict=True))
        assert merged.hi == 4 and not merged.hi_strict

    def test_strict_preserved_when_both_strict(self):
        merged = _merge(sb(1, 4, hi_strict=True), sb(1, 4, hi_strict=True))
        assert merged.hi_strict

    def test_strictness_follows_the_wider_end(self):
        merged = _merge(sb(1, 3), sb(1, 5, hi_strict=True))
        assert merged.hi == 5 and merged.hi_strict

    def test_infinite_upper_dominates(self):
        merged = _merge(sb(1, 3), sb(2, math.inf))
        assert math.isinf(merged.hi)

    def test_node_counts_accumulate(self):
        merged = _merge(sb(1, 2), sb(1, 2))
        assert merged.nodes == 2 and merged.transitions == 2
