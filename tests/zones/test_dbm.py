"""Tests (incl. property-based) for the DBM implementation."""

import math
from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ZoneError
from repro.zones.dbm import (
    DBM,
    INF_BOUND,
    ZERO_BOUND,
    bound_add,
    le_bound,
    lt_bound,
)


class TestBounds:
    def test_ordering_strict_tighter(self):
        assert lt_bound(5) < le_bound(5)

    def test_ordering_by_value(self):
        assert le_bound(4) < lt_bound(5)

    def test_inf_largest(self):
        assert le_bound(10**9) < INF_BOUND

    def test_add(self):
        assert bound_add(le_bound(2), le_bound(3)) == le_bound(5)

    def test_add_strictness_propagates(self):
        assert bound_add(le_bound(2), lt_bound(3)) == lt_bound(5)

    def test_add_inf(self):
        assert bound_add(INF_BOUND, le_bound(1)) == INF_BOUND


class TestDBMBasics:
    def test_zero_zone(self):
        z = DBM.zero(2)
        assert not z.is_empty()
        assert z.clock_bounds(1) == ((F(0), 0), ZERO_BOUND)

    def test_universe(self):
        z = DBM.universe(2)
        lo, hi = z.clock_bounds(1)
        assert lo == (F(0), 0) and hi == INF_BOUND

    def test_up_releases_upper(self):
        z = DBM.zero(2).up()
        _lo, hi = z.clock_bounds(1)
        assert hi == INF_BOUND
        # but differences stay: both started at 0
        lo_d, hi_d = z.difference_bounds(1, 2)
        assert lo_d == (F(0), 0) and hi_d == ZERO_BOUND

    def test_constrain_and_bounds(self):
        z = DBM.zero(1).up()
        z.constrain(1, 0, le_bound(5))  # x1 <= 5
        z.constrain(0, 1, le_bound(-2))  # x1 >= 2
        lo, hi = z.clock_bounds(1)
        assert lo == (F(2), 0) and hi == le_bound(5)

    def test_empty_on_contradiction(self):
        z = DBM.zero(1).up()
        z.constrain(1, 0, le_bound(1))
        z.constrain(0, 1, lt_bound(-1))  # x1 > 1 and x1 <= 1
        assert z.is_empty()

    def test_reset(self):
        z = DBM.zero(2).up()
        z.constrain(1, 0, le_bound(5))
        z.constrain(0, 1, le_bound(-5))  # x1 = 5, x2 = x1
        z.reset(1)
        lo, hi = z.clock_bounds(1)
        assert lo == (F(0), 0) and hi == ZERO_BOUND
        # x2 keeps its value 5
        lo2, hi2 = z.clock_bounds(2)
        assert lo2 == (F(5), 0) and hi2 == le_bound(5)

    def test_reset_out_of_range(self):
        with pytest.raises(ZoneError):
            DBM.zero(1).reset(2)

    def test_copy_independent(self):
        z = DBM.zero(1)
        w = z.copy().up()
        assert z.clock_bounds(1)[1] == ZERO_BOUND
        assert w.clock_bounds(1)[1] == INF_BOUND

    def test_key_hashable_and_equal(self):
        assert DBM.zero(2).key() == DBM.zero(2).key()
        assert hash(DBM.zero(2)) == hash(DBM.zero(2))
        assert DBM.zero(2) == DBM.zero(2)

    def test_contains_point(self):
        z = DBM.zero(2).up()
        z.constrain(1, 0, le_bound(3))
        assert z.contains_point([2, 2])
        assert not z.contains_point([4, 4])
        assert not z.contains_point([1, 2])  # x1 - x2 must be 0

    def test_contains_point_arity(self):
        with pytest.raises(ZoneError):
            DBM.zero(2).contains_point([1])


values = st.fractions(min_value=0, max_value=10, max_denominator=4)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(values, values), min_size=1, max_size=4))
def test_delay_preserves_membership_shifted(points):
    """If v ∈ Z then v + d ∈ up(Z) for any delay d >= 0."""
    z = DBM.zero(2).up()
    z.constrain(1, 0, le_bound(6))
    z.constrain(2, 0, le_bound(6))
    for a, b in points:
        if z.contains_point([a, b]):
            w = z.copy().up()
            assert w.contains_point([a + 1, b + 1])


@settings(max_examples=60, deadline=None)
@given(values, values, values)
def test_constrain_is_intersection(a, b, bound):
    """A point is in the constrained zone iff it is in the original and
    satisfies the constraint."""
    z = DBM.zero(2).up()
    z.constrain(1, 0, le_bound(8))
    z.constrain(2, 0, le_bound(8))
    w = z.copy().constrain(1, 2, le_bound(bound))
    in_z = z.contains_point([a, b])
    satisfies = (a - b) <= bound
    assert w.contains_point([a, b]) == (in_z and satisfies)


@settings(max_examples=40, deadline=None)
@given(values, values)
def test_reset_semantics(a, b):
    """v ∈ Z implies v[x1 := 0] ∈ reset(Z, x1)."""
    z = DBM.zero(2).up()
    z.constrain(1, 0, le_bound(9))
    z.constrain(2, 0, le_bound(9))
    if z.contains_point([a, b]):
        w = z.copy().reset(1)
        assert w.contains_point([0, b])
