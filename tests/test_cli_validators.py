"""CLI argument validation: nonsense numerics must exit 2, up front.

A typo'd ``--timeout -5`` used to sail into the machinery and fail (or
worse, "work") somewhere deep; argparse type validators now reject
nonpositive and non-numeric values at parse time with the usage exit
code, before any engine spins up.
"""

import pytest

from repro.cli import main


@pytest.mark.parametrize(
    "argv",
    [
        # run: workers/timeout/retries
        ["run", "rm", "--workers", "-1"],
        ["run", "rm", "--workers", "two"],
        ["run", "rm", "--timeout", "0"],
        ["run", "rm", "--timeout", "-3"],
        ["run", "rm", "--timeout", "soon"],
        ["run", "rm", "--max-retries", "-1"],
        # bench: iterations
        ["bench", "rm", "--iterations", "0"],
        ["bench", "rm", "--iterations", "-2"],
        ["bench", "rm", "--iterations", "many"],
        # engine workers (any command that takes --engine)
        ["check", "rm", "--engine-workers", "0"],
        ["check", "rm", "--engine-workers", "-4"],
        # serve: every numeric knob
        ["serve", "--port", "-1"],
        ["serve", "--workers", "0"],
        ["serve", "--queue-depth", "0"],
        ["serve", "--timeout", "0"],
        ["serve", "--timeout", "nope"],
        ["serve", "--max-retries", "-1"],
        ["serve", "--breaker-threshold", "0"],
        ["serve", "--breaker-cooldown", "0"],
        ["serve", "--drain-grace", "-1"],
        # dist: lease/heartbeat intervals and the worker port
        ["run", "rm", "--lease-ms", "0"],
        ["run", "rm", "--lease-ms", "-5"],
        ["run", "rm", "--lease-ms", "soon"],
        ["run", "rm", "--heartbeat-ms", "0"],
        ["run", "rm", "--heartbeat-ms", "-100"],
        ["dist", "worker", "--port", "-1"],
        ["dist", "worker", "--port", "http"],
    ],
)
def test_nonsense_numerics_exit_2(capsys, argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "error" in capsys.readouterr().err


@pytest.mark.parametrize(
    "argv, fragment",
    [
        # A heartbeat that cannot beat inside the lease reclaims healthy
        # jobs; refused before any socket is dialed.
        (
            ["run", "rm", "--dist", "127.0.0.1:1", "--lease-ms", "100",
             "--heartbeat-ms", "100"],
            "heartbeat_ms",
        ),
        # Malformed worker address lists must not silently shrink the fleet.
        (["run", "rm", "--dist", "nonsense"], "host:port"),
        (["run", "rm", "--dist", "host:notaport"], "not an integer"),
        (["run", "rm", "--dist", "host:99999"], "out of range"),
        # The local chaos self-test and network chaos are different knobs.
        (["run", "rm", "--chaos", "--dist", "127.0.0.1:1"], "--chaos"),
        # A typo'd chaos plan must fail the worker loudly, not test nothing.
        (["dist", "worker", "--chaos", "bogus"], "op@kind:N"),
        (["dist", "worker", "--chaos", "melt@result:1"], "unknown fault op"),
    ],
)
def test_dist_semantic_validation_exits_2(capsys, argv, fragment):
    assert main(argv) == 2
    assert fragment in capsys.readouterr().err


def test_valid_values_still_parse(capsys):
    # Sanity: the validators must not reject the documented defaults.
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["run", "rm", "--workers", "0", "--timeout", "3/2"])
    assert args.workers == 0
    assert float(args.timeout) == 1.5
    args = parser.parse_args(["bench", "rm", "--iterations", "5"])
    assert args.iterations == 5
    args = parser.parse_args(["serve", "--port", "0", "--timeout", "0.5"])
    assert args.port == 0
    assert float(args.timeout) == 0.5
