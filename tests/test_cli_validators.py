"""CLI argument validation: nonsense numerics must exit 2, up front.

A typo'd ``--timeout -5`` used to sail into the machinery and fail (or
worse, "work") somewhere deep; argparse type validators now reject
nonpositive and non-numeric values at parse time with the usage exit
code, before any engine spins up.
"""

import pytest

from repro.cli import main


@pytest.mark.parametrize(
    "argv",
    [
        # run: workers/timeout/retries
        ["run", "rm", "--workers", "-1"],
        ["run", "rm", "--workers", "two"],
        ["run", "rm", "--timeout", "0"],
        ["run", "rm", "--timeout", "-3"],
        ["run", "rm", "--timeout", "soon"],
        ["run", "rm", "--max-retries", "-1"],
        # bench: iterations
        ["bench", "rm", "--iterations", "0"],
        ["bench", "rm", "--iterations", "-2"],
        ["bench", "rm", "--iterations", "many"],
        # engine workers (any command that takes --engine)
        ["check", "rm", "--engine-workers", "0"],
        ["check", "rm", "--engine-workers", "-4"],
        # serve: every numeric knob
        ["serve", "--port", "-1"],
        ["serve", "--workers", "0"],
        ["serve", "--queue-depth", "0"],
        ["serve", "--timeout", "0"],
        ["serve", "--timeout", "nope"],
        ["serve", "--max-retries", "-1"],
        ["serve", "--breaker-threshold", "0"],
        ["serve", "--breaker-cooldown", "0"],
        ["serve", "--drain-grace", "-1"],
    ],
)
def test_nonsense_numerics_exit_2(capsys, argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "error" in capsys.readouterr().err


def test_valid_values_still_parse(capsys):
    # Sanity: the validators must not reject the documented defaults.
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["run", "rm", "--workers", "0", "--timeout", "3/2"])
    assert args.workers == 0
    assert float(args.timeout) == 1.5
    args = parser.parse_args(["bench", "rm", "--iterations", "5"])
    assert args.iterations == 5
    args = parser.parse_args(["serve", "--port", "0", "--timeout", "0.5"])
    assert args.port == 0
    assert float(args.timeout) == 0.5
