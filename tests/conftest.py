"""Shared fixtures: small systems used across the test suite."""

from fractions import Fraction as F

import pytest


@pytest.fixture(autouse=True)
def _no_verdict_cache(monkeypatch):
    """Keep the on-disk verdict cache out of every test by default.

    Tests that exercise the cache itself opt back in by pointing
    ``REPRO_CACHE_DIR`` at a tmp_path and re-enabling ``REPRO_CACHE``.
    """
    monkeypatch.setenv("REPRO_CACHE", "0")

from repro.systems.resource_manager import ResourceManagerParams, ResourceManagerSystem
from repro.systems.signal_relay import RelayParams, RelaySystem
from repro.timed.interval import Interval


@pytest.fixture
def rm_params():
    return ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))


@pytest.fixture
def rm_system(rm_params):
    return ResourceManagerSystem(rm_params)


@pytest.fixture
def relay_params():
    return RelayParams(n=3, d1=F(1), d2=F(2))


@pytest.fixture
def relay_system(relay_params):
    return RelaySystem(relay_params, dummy_interval=Interval(F(1, 2), F(1)))
