"""Every ``examples/`` script must run clean.

The examples double as integration tests of the public API surface: a
script that crashes, asserts, or prints nothing means a documented
workflow broke even if the unit suite stayed green.
"""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "examples")
)
_SCRIPTS = sorted(
    name for name in os.listdir(_EXAMPLES_DIR) if name.endswith(".py")
)


def test_every_example_is_collected():
    # The parametrized list below must cover the directory: adding an
    # example without it running here would silently skip coverage.
    assert _SCRIPTS, "no example scripts found"


@pytest.mark.parametrize("script", _SCRIPTS)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(_EXAMPLES_DIR, "..", "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=_EXAMPLES_DIR,
    )
    assert proc.returncode == 0, "{} failed:\n{}".format(script, proc.stderr)
    assert proc.stdout.strip(), "{} printed nothing".format(script)
