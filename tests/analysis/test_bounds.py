"""Tests for behavior measurement helpers."""

import math

import pytest

from repro.analysis.bounds import (
    BoundsAccumulator,
    first_occurrence,
    gaps,
    occurrence_times,
    separations_after,
)
from repro.timed.interval import Interval
from repro.timed.timed_sequence import TimedEvent


def behavior(*pairs):
    return [TimedEvent(a, t) for a, t in pairs]


class TestOccurrences:
    def test_occurrence_times(self):
        b = behavior(("g", 1), ("x", 2), ("g", 3))
        assert occurrence_times(b, "g") == [1, 3]

    def test_occurrence_times_predicate(self):
        b = behavior(("g1", 1), ("g2", 2), ("x", 3))
        assert occurrence_times(b, lambda a: a.startswith("g")) == [1, 2]

    def test_first_occurrence(self):
        b = behavior(("x", 1), ("g", 2))
        assert first_occurrence(b, "g") == 2

    def test_first_occurrence_missing(self):
        assert first_occurrence(behavior(("x", 1)), "g") is None

    def test_gaps(self):
        assert gaps([1, 3, 6]) == [2, 3]
        assert gaps([5]) == []


class TestSeparations:
    def test_basic_pairing(self):
        b = behavior(("req", 1), ("rsp", 3), ("req", 10), ("rsp", 11))
        assert separations_after(b, "req", "rsp") == [2, 1]

    def test_unanswered_trigger_skipped(self):
        b = behavior(("req", 1), ("rsp", 3), ("req", 10))
        assert separations_after(b, "req", "rsp") == [2]

    def test_retrigger_resets_measurement(self):
        b = behavior(("req", 1), ("req", 2), ("rsp", 5))
        # The second req re-arms the measurement: separation from t=2.
        assert separations_after(b, "req", "rsp") == [3]

    def test_target_before_trigger_ignored(self):
        b = behavior(("rsp", 1), ("req", 2), ("rsp", 4))
        assert separations_after(b, "req", "rsp") == [2]


class TestAccumulator:
    def test_empty(self):
        acc = BoundsAccumulator()
        assert acc.count == 0
        assert acc.mean is None
        assert acc.span() is None
        assert acc.all_within(Interval(0, 1))  # vacuous

    def test_min_max_mean(self):
        acc = BoundsAccumulator().add_all([3, 1, 2])
        assert acc.minimum == 1 and acc.maximum == 3
        assert acc.mean == 2

    def test_all_within(self):
        acc = BoundsAccumulator().add_all([2, 3])
        assert acc.all_within(Interval(1, 4))
        assert not acc.all_within(Interval(1, 2))

    def test_span(self):
        acc = BoundsAccumulator().add_all([2, 5])
        assert acc.span() == Interval(2, 5)

    def test_repr_mentions_count(self):
        acc = BoundsAccumulator().add_all([1])
        assert "n=1" in repr(acc)
