"""Tests for the report table formatter."""

import math
from fractions import Fraction as F

import pytest

from repro.analysis.report import Table, format_value


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_inf(self):
        assert format_value(math.inf) == "inf"
        assert format_value(-math.inf) == "-inf"

    def test_integral_fraction(self):
        assert format_value(F(6, 2)) == "3"

    def test_small_fraction(self):
        assert format_value(F(1, 3)) == "1/3"

    def test_huge_denominator_becomes_decimal(self):
        assert format_value(F(1, 12345)) == "{:.4g}".format(1 / 12345)

    def test_float(self):
        assert format_value(1.25) == "1.25"


class TestTable:
    def test_arity_enforced(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_alignment(self):
        table = Table("Result", ["name", "value"])
        table.add_row("first", F(7, 2))
        table.add_row("second-longer", 10)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Result"
        assert "name" in lines[2] and "value" in lines[2]
        assert "7/2" in text and "second-longer" in text

    def test_strings_pass_through(self):
        table = Table("t", ["x"])
        table.add_row("[3, 7]")
        assert "[3, 7]" in table.render()
