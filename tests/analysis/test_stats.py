"""Tests for exact statistics."""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.analysis.stats import (
    exact_percentile,
    five_number_summary,
    interval_coverage,
    text_histogram,
)
from repro.timed.interval import Interval


class TestPercentiles:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            exact_percentile([], F(1, 2))

    def test_out_of_range_quantile(self):
        with pytest.raises(ReproError):
            exact_percentile([1], 2)

    def test_min_max(self):
        values = [F(3), F(1), F(2)]
        assert exact_percentile(values, 0) == 1
        assert exact_percentile(values, 1) == 3

    def test_median_odd(self):
        assert exact_percentile([1, 2, 9], F(1, 2)) == 2

    def test_median_even_interpolates_exactly(self):
        assert exact_percentile([1, 2], F(1, 2)) == F(3, 2)

    def test_quartile_interpolation(self):
        assert exact_percentile([0, 1, 2, 3], F(1, 4)) == F(3, 4)

    def test_singleton(self):
        assert exact_percentile([7], F(1, 3)) == 7

    def test_five_number_summary(self):
        summary = five_number_summary([0, 1, 2, 3, 4])
        assert summary == (0, 1, 2, 3, 4)


class TestCoverage:
    def test_full_coverage(self):
        assert interval_coverage([2, 5], Interval(2, 5)) == 1

    def test_half_coverage(self):
        assert interval_coverage([2, F(7, 2)], Interval(2, 5)) == F(1, 2)

    def test_empty_sample(self):
        assert interval_coverage([], Interval(2, 5)) == 0

    def test_point_sample(self):
        assert interval_coverage([3], Interval(2, 5)) == 0

    def test_escaping_sample_rejected(self):
        with pytest.raises(ReproError):
            interval_coverage([1, 3], Interval(2, 5))

    def test_unbounded_interval_rejected(self):
        with pytest.raises(ReproError):
            interval_coverage([3], Interval.at_least(2))

    def test_degenerate_interval(self):
        assert interval_coverage([2], Interval(2, 2)) == 1


class TestHistogram:
    def test_empty(self):
        assert text_histogram([]) == ["(empty sample)"]

    def test_constant_sample(self):
        (line,) = text_histogram([3, 3, 3])
        assert "3" in line and "(3 values)" in line

    def test_bin_count(self):
        lines = text_histogram([1, 2, 3, 4, 5], bins=4)
        assert len(lines) == 4

    def test_counts_sum(self):
        lines = text_histogram(list(range(10)), bins=5)
        total = sum(int(line.rsplit("(", 1)[1].rstrip(")")) for line in lines)
        assert total == 10

    def test_invalid_bins(self):
        with pytest.raises(ReproError):
            text_histogram([1], bins=0)


values = st.lists(
    st.fractions(min_value=0, max_value=10, max_denominator=8), min_size=1, max_size=20
)


@settings(max_examples=60, deadline=None)
@given(values=values)
def test_percentiles_monotone(values):
    quantiles = [F(0), F(1, 4), F(1, 2), F(3, 4), F(1)]
    results = [exact_percentile(values, q) for q in quantiles]
    assert results == sorted(results)
    assert results[0] == min(values) and results[-1] == max(values)


@settings(max_examples=60, deadline=None)
@given(values=values)
def test_histogram_total_matches_sample(values):
    lines = text_histogram(values, bins=4)
    if len(lines) == 1:
        # constant sample: single "(n values)" line
        assert "({} values)".format(len(values)) in lines[0]
        return
    total = sum(int(line.rsplit("(", 1)[1].rstrip(")")) for line in lines)
    assert total == len(values)
