"""Tests for the timeline renderer."""

import random

from repro.analysis.timeline import render_predictions, render_timeline, timeline_lines
from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy

from tests.timed.test_conditions import pulse_timed


def make_run(steps=8):
    automaton = time_of_boundmap(pulse_timed())
    run = Simulator(automaton, UniformStrategy(random.Random(0))).run(max_steps=steps)
    return automaton, run


class TestTimeline:
    def test_line_count(self):
        automaton, run = make_run()
        lines = timeline_lines(run, automaton)
        assert len(lines) == len(run) + 1  # START + one per event

    def test_start_line(self):
        automaton, run = make_run()
        assert timeline_lines(run, automaton)[0].startswith("t=0  START")

    def test_predictions_inlined(self):
        automaton, run = make_run()
        text = render_timeline(run, automaton)
        assert "FIRE∈[" in text

    def test_limit_elides(self):
        automaton, run = make_run(steps=10)
        lines = timeline_lines(run, automaton, limit=3)
        assert len(lines) == 5  # START + 3 + ellipsis
        assert "more events" in lines[-1]

    def test_projected_run_renders_without_automaton(self):
        _automaton, run = make_run()
        text = render_timeline(project(run))
        assert "START" in text and "fire" in text

    def test_render_predictions_defaults_elided(self):
        automaton, run = make_run()
        state = run.first_state
        text = render_predictions(automaton, state)
        # ARM is disabled initially: default prediction, not shown.
        assert "ARM" not in text
        assert "FIRE" in text

    def test_render_predictions_subset(self):
        automaton, run = make_run()
        text = render_predictions(automaton, run.first_state, only=["ARM"])
        assert text == "(all default)"
