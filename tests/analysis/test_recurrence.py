"""The operational recurrence baseline reproduces the paper's formulas
and agrees with the exact zone analysis (experiment E11)."""

from fractions import Fraction as F

import pytest

from repro.analysis.recurrence import (
    MilestoneChain,
    Milestone,
    chain_bound,
    relay_chain,
    rm_first_grant_chain,
    rm_grant_gap_chain,
)
from repro.systems.resource_manager import (
    GRANT,
    ResourceManagerParams,
    resource_manager,
)
from repro.systems.signal_relay import SIGNAL, RelayParams, signal_relay
from repro.timed.interval import Interval
from repro.zones.analysis import absolute_event_bounds, event_separation_bounds


RM = ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))
RL = RelayParams(n=4, d1=F(1), d2=F(2))


class TestFormulas:
    def test_rm_first_grant_formula(self):
        assert rm_first_grant_chain(RM).total() == RM.first_grant_interval

    def test_rm_gap_formula(self):
        assert rm_grant_gap_chain(RM).total() == RM.grant_gap_interval

    def test_relay_formula(self):
        assert relay_chain(RL).total() == RL.end_to_end_interval

    def test_chain_lengths(self):
        assert len(rm_first_grant_chain(RM)) == RM.k + 1
        assert len(rm_grant_gap_chain(RM)) == RM.k + 1
        assert len(relay_chain(RL)) == RL.n

    def test_explain_lines(self):
        lines = rm_first_grant_chain(RM).explain()
        assert len(lines) == RM.k + 2  # milestones + total
        assert lines[-1].startswith("total")

    def test_chain_bound_helper(self):
        assert chain_bound([Interval(1, 2), Interval(3, 4)]) == Interval(4, 6)


class TestAgreementWithZones:
    """The operational argument and the exact symbolic analysis land on
    the same interval — the E11 comparison."""

    def test_rm_first_grant(self):
        exact = absolute_event_bounds(resource_manager(RM), GRANT)
        operational = rm_first_grant_chain(RM).total()
        assert exact.lo == operational.lo and exact.hi == operational.hi

    def test_rm_gap(self):
        exact = event_separation_bounds(
            resource_manager(RM), GRANT, occurrence=2, reset_on=[GRANT]
        )
        operational = rm_grant_gap_chain(RM).total()
        assert exact.lo == operational.lo and exact.hi == operational.hi

    def test_relay(self):
        exact = event_separation_bounds(
            signal_relay(RL), SIGNAL(RL.n), occurrence=1, reset_on=[SIGNAL(0)]
        )
        operational = relay_chain(RL).total()
        assert exact.lo == operational.lo and exact.hi == operational.hi
