"""Tests for the P and Q property predicates on finite prefixes."""

from fractions import Fraction as F

from repro.analysis.properties import check_P_prefix, check_Q_prefix
from repro.systems.resource_manager import GRANT, ResourceManagerParams
from repro.systems.signal_relay import SIGNAL, RelayParams
from repro.timed.timed_sequence import TimedEvent


def events(*pairs):
    return [TimedEvent(a, t) for a, t in pairs]


RM = ResourceManagerParams(k=2, c1=F(2), c2=F(3), l=F(1))  # first [4,7], gap [3,7]
RL = RelayParams(n=2, d1=F(1), d2=F(2))  # end-to-end [2,4]


class TestP:
    def test_good_prefix(self):
        b = events((GRANT, 5), (GRANT, 10))
        assert check_P_prefix(b, RM, horizon=12)

    def test_first_grant_too_early(self):
        assert not check_P_prefix(events((GRANT, 3)), RM, horizon=5)

    def test_first_grant_too_late(self):
        assert not check_P_prefix(events((GRANT, 8)), RM, horizon=9)

    def test_bad_gap(self):
        b = events((GRANT, 5), (GRANT, 13))
        assert not check_P_prefix(b, RM, horizon=14)

    def test_progress_floor(self):
        # By time 20 at least floor(20/7) = 2 grants are forced.
        assert not check_P_prefix(events((GRANT, 5)), RM, horizon=20)

    def test_no_grant_due_yet(self):
        assert check_P_prefix(events(), RM, horizon=3)

    def test_missing_grant_after_deadline(self):
        assert not check_P_prefix(events(), RM, horizon=8)


class TestQ:
    def test_good_prefix(self):
        b = events((SIGNAL(0), 1), (SIGNAL(2), 4))
        assert check_Q_prefix(b, RL, horizon=5)

    def test_delay_out_of_bounds(self):
        b = events((SIGNAL(0), 1), (SIGNAL(2), 6))
        assert not check_Q_prefix(b, RL, horizon=7)

    def test_delay_too_small(self):
        b = events((SIGNAL(0), 1), (SIGNAL(2), 2))
        assert not check_Q_prefix(b, RL, horizon=3)

    def test_signal_n_missing_after_deadline(self):
        b = events((SIGNAL(0), 1))
        assert not check_Q_prefix(b, RL, horizon=10)

    def test_signal_n_not_due_yet(self):
        b = events((SIGNAL(0), 1))
        assert check_Q_prefix(b, RL, horizon=3)

    def test_duplicate_signal0_rejected(self):
        b = events((SIGNAL(0), 1), (SIGNAL(0), 2))
        assert not check_Q_prefix(b, RL, horizon=3)

    def test_signal_n_without_signal0(self):
        b = events((SIGNAL(2), 2))
        assert not check_Q_prefix(b, RL, horizon=3)

    def test_no_signals_at_all(self):
        assert check_Q_prefix(events(), RL, horizon=100)
