"""Replayable traces: ``trace_system`` and the ``repro trace`` CLI."""

import pytest

from repro.errors import ReproError
from repro.obs.tracing import trace_names, trace_system
from repro.serialize import events_from_jsonl, events_to_jsonl


class TestTraceSystem:
    def test_names_match_bench_profiles(self):
        from repro.obs.bench import bench_names

        # gen-scaling is a battery-wide scaling profile, not a
        # traceable system; every per-system profile has a tracer.
        assert set(trace_names()) == set(bench_names()) - {"gen-scaling"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            trace_system("nope")

    def test_rm_trace_shape(self):
        recorder, summary = trace_system("rm", seed=0, steps=30)
        assert summary["ok"] is True
        assert summary["events"] == len(recorder.events)
        names = [e.name for e in recorder.events]
        assert names[0] == "trace.begin"
        assert names[-1] == "trace.end"
        assert "check.outcome" in names
        assert names.count("sim.step") == summary["steps"] == 30

    def test_trace_is_seed_deterministic(self):
        first, _ = trace_system("relay", seed=3, steps=25)
        second, _ = trace_system("relay", seed=3, steps=25)
        assert [(e.name, e.fields) for e in first.events] == [
            (e.name, e.fields) for e in second.events
        ]
        third, _ = trace_system("relay", seed=4, steps=25)
        assert [(e.name, e.fields) for e in first.events] != [
            (e.name, e.fields) for e in third.events
        ]

    def test_safety_trace_has_verdict(self):
        recorder, summary = trace_system("fischer", seed=0, steps=20)
        verdicts = [e for e in recorder.events if e.name == "safety.verdict"]
        assert len(verdicts) == 1
        assert verdicts[0].fields["safe"] is True
        assert summary["safe"] is True

    def test_broken_system_trace_carries_violation(self):
        recorder, summary = trace_system("fischer-tight", seed=0, steps=20)
        verdict = [e for e in recorder.events if e.name == "safety.verdict"][0]
        assert verdict.fields["safe"] is False
        assert verdict.fields["state"] is not None
        assert summary["ok"] is False

    def test_trace_round_trips_through_jsonl(self):
        recorder, _ = trace_system("chain", seed=1, steps=20)
        restored = events_from_jsonl(events_to_jsonl(recorder.events))
        assert restored == recorder.events


class TestCli:
    def test_trace_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["trace", "rm", "--steps", "15"]) == 0
        out = capsys.readouterr().out
        events = events_from_jsonl(out)
        assert events[0].name == "trace.begin"
        assert events[-1].name == "trace.end"

    def test_trace_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "relay", "--steps", "15",
                     "--out", str(out_path)]) == 0
        events = events_from_jsonl(out_path.read_text())
        assert any(e.name == "sim.step" for e in events)
        assert "15" in capsys.readouterr().out or events

    def test_trace_exit_code_reflects_failure(self, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "fischer-tight", "--out", str(out_path)]) == 1
