"""The telemetry core: recorders, the process-wide switch, hot-path hooks."""

import random
from fractions import Fraction as F

import pytest

from repro.obs.instrument import (
    Recorder,
    TraceEvent,
    active,
    emit,
    gauge,
    incr,
    install,
    jsonable,
    recording,
    span,
    uninstall,
)


class TestRecorder:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.incr("x")
        rec.incr("x", 4)
        rec.incr("y")
        assert rec.counters == {"x": 5, "y": 1}

    def test_gauge_tracks_last_min_max(self):
        rec = Recorder()
        for value in [3, 1, 7, 5]:
            rec.gauge("g", value)
        stat = rec.gauges["g"]
        assert (stat.last, stat.lo, stat.hi, stat.updates) == (5, 1, 7, 4)

    def test_timer_counts_calls(self):
        rec = Recorder()
        for _ in range(3):
            with rec.timer("t"):
                pass
        assert rec.timers["t"].calls == 3
        assert rec.timers["t"].total >= 0.0

    def test_events_ordered_and_timestamped(self):
        rec = Recorder()
        first = rec.event("a", value=1)
        second = rec.event("b", value=F(1, 2))
        assert [e.seq for e in rec.events] == [0, 1]
        assert first.name == "a" and second.fields["value"] == F(1, 2)
        assert second.wall >= first.wall >= 0.0
        assert rec.counters == {"events.a": 1, "events.b": 1}

    def test_event_cap_drops_but_keeps_counting(self):
        rec = Recorder(max_events=2)
        assert rec.event("e") is not None
        assert rec.event("e") is not None
        assert rec.event("e") is None
        assert len(rec.events) == 2
        assert rec.dropped_events == 1
        assert rec.counters["events.e"] == 3

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Recorder(max_events=-1)

    def test_snapshot_is_sorted_and_jsonable(self):
        import json

        rec = Recorder(name="snap")
        rec.incr("b")
        rec.incr("a")
        rec.gauge("g", F(3, 2))
        with rec.timer("t"):
            pass
        rec.event("done")
        snap = rec.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert snap["gauges"]["g"]["last"] == "3/2"
        assert snap["events_recorded"] == 1
        json.dumps(snap)

    def test_clear_resets_everything(self):
        rec = Recorder()
        rec.incr("c")
        rec.event("e")
        rec.clear()
        assert rec.counters == {} and rec.events == []
        assert rec.event("e").seq == 0


class TestProcessWideSwitch:
    def test_off_by_default_and_helpers_noop(self):
        assert active() is None
        incr("nothing")
        gauge("nothing", 1)
        emit("nothing")
        with span("nothing") as rec:
            assert rec is None

    def test_install_uninstall(self):
        rec = install(Recorder())
        try:
            assert active() is rec
            incr("hit")
            assert rec.counters["hit"] == 1
        finally:
            uninstall()
        assert active() is None

    def test_recording_scopes_and_nests(self):
        with recording(name="outer") as outer:
            incr("seen")
            with recording(name="inner") as inner:
                incr("seen")
            assert active() is outer
            incr("seen")
        assert active() is None
        assert outer.counters["seen"] == 2
        assert inner.counters["seen"] == 1

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert active() is None


class TestJsonable:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (F(3), 3),
            (F(3, 2), "3/2"),
            (float("inf"), "inf"),
            (float("-inf"), "-inf"),
            ((1, F(1, 2)), [1, "1/2"]),
            ({"k": F(5)}, {"k": 5}),
            (None, None),
            (True, True),
        ],
    )
    def test_projection(self, value, expected):
        assert jsonable(value) == expected

    def test_unknown_type_reprs(self):
        assert jsonable(object()).startswith("<object")


class TestEngineHooks:
    """The instrumented hot paths actually feed a recorder."""

    def test_explorer_counts_states_and_transitions(self):
        from repro.ioa.explorer import explore
        from repro.systems import ResourceManagerParams, resource_manager

        automaton = resource_manager(ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))).automaton
        with recording() as rec:
            result = explore(automaton, max_states=500)
        assert rec.counters["explore.states"] == len(result.reachable)
        assert rec.counters["explore.transitions"] > 0
        assert rec.gauges["explore.frontier"].hi >= 1

    def test_simulator_steps_slack_and_end_event(self):
        from repro.sim import Simulator, UniformStrategy
        from repro.systems import ResourceManagerParams, ResourceManagerSystem

        system = ResourceManagerSystem(ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1)))
        with recording() as rec:
            run = Simulator(
                system.algorithm, UniformStrategy(random.Random(0))
            ).run(max_steps=40)
        assert rec.counters["sim.steps"] == len(run.events) == 40
        assert any(name.startswith("sim.slack.") for name in rec.gauges)
        assert rec.events[-1].name == "sim.end"
        assert rec.events[-1].fields["reason"] == "max_steps"

    def test_deadlock_emits_terminal_event(self):
        from repro.errors import SchedulingDeadlockError
        from repro.sim import Simulator, UniformStrategy
        from repro.systems.extensions import FischerParams, fischer_system
        from repro.core import time_of_boundmap

        # e=1 bounds the critical section but EXIT never fires in this
        # broken variant: a=b makes CHECK windows collapse on occasion.
        automaton = time_of_boundmap(
            fischer_system(FischerParams(n=2, a=F(1), b=F(2), e=F(1)))
        )
        with recording() as rec:
            try:
                for seed in range(20):
                    Simulator(
                        automaton, UniformStrategy(random.Random(seed))
                    ).run(max_steps=300)
            except SchedulingDeadlockError:
                assert rec.events[-1].name == "sim.deadlock"
                assert "condition" in rec.events[-1].fields

    def test_zone_graph_counters(self):
        from repro.systems import ResourceManagerParams, resource_manager
        from repro.zones.zone_graph import explore_zone_graph

        timed = resource_manager(ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1)))
        with recording() as rec:
            graph = explore_zone_graph(timed, max_nodes=10_000)
        assert rec.counters["zones.nodes"] == graph.nodes
        assert rec.counters["zones.canonicalize"] >= graph.nodes
        assert rec.counters["zones.transitions"] == graph.transitions > 0

    def test_checker_emits_outcome_and_mapping_evals(self):
        from repro.core import check_mapping_on_run
        from repro.sim import Simulator, UniformStrategy
        from repro.systems import (
            ResourceManagerParams,
            ResourceManagerSystem,
            resource_manager_mapping,
        )

        system = ResourceManagerSystem(ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1)))
        run = Simulator(system.algorithm, UniformStrategy(random.Random(1))).run(
            max_steps=30
        )
        with recording() as rec:
            outcome = check_mapping_on_run(resource_manager_mapping(system), run)
        assert outcome.ok
        assert rec.counters["check.steps"] == 30
        assert rec.counters["mapping.evals"] >= 30
        assert rec.events[-1].name == "check.outcome"
        assert rec.events[-1].fields["ok"] is True

    def test_disabled_recorder_changes_nothing(self):
        from repro.sim import Simulator, UniformStrategy
        from repro.systems import ResourceManagerParams, ResourceManagerSystem

        system = ResourceManagerSystem(ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1)))
        baseline = Simulator(
            system.algorithm, UniformStrategy(random.Random(2))
        ).run(max_steps=25)
        with recording():
            observed = Simulator(
                system.algorithm, UniformStrategy(random.Random(2))
            ).run(max_steps=25)
        assert baseline == observed


def test_trace_event_is_frozen():
    ev = TraceEvent(seq=0, name="x", wall=0.0, fields={})
    with pytest.raises(AttributeError):
        ev.name = "y"


class TestThreadSafety:
    def test_concurrent_increments_never_lose_updates(self):
        import threading

        rec = Recorder(max_events=0)
        per_thread = 2_000

        def hammer():
            for _ in range(per_thread):
                rec.incr("hits")
                rec.gauge("depth", 1)
                rec.event("tick")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counters["hits"] == 8 * per_thread
        assert rec.counters["events.tick"] == 8 * per_thread
        assert rec.gauges["depth"].updates == 8 * per_thread
        assert rec.dropped_events == 8 * per_thread  # max_events=0

    def test_lock_makes_recorder_unpicklable_by_design(self):
        import pickle

        with pytest.raises(TypeError):
            pickle.dumps(Recorder())


class TestMerge:
    def test_merge_folds_a_worker_snapshot(self):
        worker = Recorder(name="worker", max_events=0)
        worker.incr("sim.steps", 7)
        worker.gauge("frontier", 3)
        worker.gauge("frontier", 9)
        with worker.timer("zone.query"):
            pass
        worker.event("dropped")  # max_events=0 -> counted + dropped

        parent = Recorder(name="parent")
        parent.incr("sim.steps", 5)
        parent.gauge("frontier", 6)
        parent.merge(worker.snapshot())

        assert parent.counters["sim.steps"] == 12
        assert parent.counters["events.dropped"] == 1
        assert parent.dropped_events == 1
        stat = parent.gauges["frontier"]
        assert (stat.lo, stat.hi, stat.last) == (3, 9, 9)
        assert stat.updates == 3
        assert parent.timers["zone.query"].calls == 1

    def test_merge_accepts_a_recorder_directly_and_chains(self):
        a = Recorder()
        a.incr("x")
        b = Recorder()
        b.incr("x", 2)
        c = Recorder()
        c.incr("x", 4)
        assert a.merge(b).merge(c).counters["x"] == 7

    def test_merge_restores_exact_fraction_gauges(self):
        worker = Recorder()
        worker.gauge("slack", F(1, 3))
        worker.gauge("slack", F(5, 2))
        parent = Recorder()
        parent.gauge("slack", F(1, 2))
        parent.merge(worker.snapshot())  # rides as "1/3" / "5/2" strings
        stat = parent.gauges["slack"]
        assert stat.lo == F(1, 3)
        assert stat.hi == F(5, 2)

    def test_merge_tolerates_incomparable_gauges(self):
        worker = Recorder()
        worker.gauge("phase", "late")
        parent = Recorder()
        parent.gauge("phase", 2)
        parent.merge(worker.snapshot())  # no TypeError escape
        stat = parent.gauges["phase"]
        assert stat.last == "late"
        assert stat.lo == 2 and stat.hi == 2  # incomparable: ours kept

    def test_merge_adds_timers(self):
        snap = {"timers": {"t": {"total_s": 1.5, "calls": 3}}}
        rec = Recorder()
        rec.merge(snap)
        rec.merge(snap)
        assert rec.timers["t"].total == pytest.approx(3.0)
        assert rec.timers["t"].calls == 6


class TestMergeWorkerSnapshots:
    """The dist coordinator's usage: many worker snapshots, arriving in
    whatever order the network delivers them, some more than once."""

    @staticmethod
    def worker_snapshot(jobs, wall_each, depth):
        worker = Recorder()
        worker.incr("jobs", jobs)
        worker.gauge("queue_depth", depth)
        snap = worker.snapshot()
        snap["timers"] = {"job": {"total_s": wall_each * jobs, "calls": jobs}}
        return snap

    def test_overlapping_keys_accumulate_across_workers(self):
        parent = Recorder()
        for snap in (
            self.worker_snapshot(jobs=3, wall_each=0.5, depth=2),
            self.worker_snapshot(jobs=5, wall_each=0.2, depth=7),
            self.worker_snapshot(jobs=2, wall_each=1.0, depth=1),
        ):
            parent.merge(snap)
        assert parent.counters["jobs"] == 10
        assert parent.timers["job"].calls == 10
        assert parent.timers["job"].total == pytest.approx(4.5)
        stat = parent.gauges["queue_depth"]
        assert (stat.lo, stat.hi) == (1, 7)
        assert stat.updates == 3

    def test_merge_order_does_not_change_the_aggregate(self):
        # Results race in over sockets; whichever worker reports first
        # must not change the campaign totals.
        snaps = [
            self.worker_snapshot(jobs=1, wall_each=0.1, depth=4),
            self.worker_snapshot(jobs=6, wall_each=0.3, depth=9),
            self.worker_snapshot(jobs=4, wall_each=0.7, depth=3),
        ]
        forward, backward = Recorder(), Recorder()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        fs, bs = forward.snapshot(), backward.snapshot()
        assert fs["counters"] == bs["counters"]
        assert fs["timers"] == bs["timers"]
        for name in fs["gauges"]:
            assert fs["gauges"][name]["min"] == bs["gauges"][name]["min"]
            assert fs["gauges"][name]["max"] == bs["gauges"][name]["max"]
            assert fs["gauges"][name]["updates"] == bs["gauges"][name]["updates"]

    def test_duplicate_snapshot_double_counts_by_design(self):
        # merge() is additive, not idempotent: deduplicating duplicate
        # deliveries is the *caller's* job (the dist coordinator admits
        # one result per lease epoch before it ever merges telemetry).
        parent = Recorder()
        snap = self.worker_snapshot(jobs=3, wall_each=0.5, depth=2)
        parent.merge(snap)
        parent.merge(snap)
        assert parent.counters["jobs"] == 6

    def test_merge_snapshot_roundtrip_is_lossless_for_aggregates(self):
        # parent.merge(w1).merge(w2) then snapshot → re-merge into a
        # fresh recorder: totals survive serialization both hops.
        parent = Recorder()
        parent.merge(self.worker_snapshot(jobs=2, wall_each=0.25, depth=5))
        parent.merge(self.worker_snapshot(jobs=3, wall_each=0.25, depth=8))
        reloaded = Recorder()
        reloaded.merge(parent.snapshot())
        assert reloaded.counters["jobs"] == 5
        assert reloaded.timers["job"].calls == 5
        assert reloaded.gauges["queue_depth"].hi == 8

    def test_concurrent_merges_lose_nothing(self):
        import threading

        parent = Recorder()
        snaps = [
            self.worker_snapshot(jobs=1, wall_each=0.01, depth=i)
            for i in range(8)
        ]
        threads = [
            threading.Thread(target=parent.merge, args=(s,)) for s in snaps
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert parent.counters["jobs"] == 8
        assert parent.gauges["queue_depth"].updates == 8
