"""The perf-trajectory benchmark runner and its regression gates."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    BenchReport,
    bench_names,
    compare_reports,
    latest_bench_path,
    load_report,
    load_suite_rows,
    next_bench_path,
    run_bench,
    run_profile,
    write_report,
)
from repro.serialize import SerializationError


def _record(system="rm", wall=1.0, iterations=3, counters=None):
    return BenchRecord(
        system=system,
        wall_time=wall,
        iterations=iterations,
        counters=dict(counters or {}),
    )


def _report(records):
    return BenchReport(
        schema=BENCH_SCHEMA_VERSION,
        created="2026-01-01T00:00:00",
        python="3.11",
        platform="test",
        records=records,
    )


class TestProfiles:
    def test_default_battery_registered(self):
        assert set(bench_names()) == {
            "rm", "relay", "chain", "fischer", "fischer-tight",
            "peterson", "tournament", "gen-scaling",
        }

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            run_profile("nope")

    def test_rm_profile_collects_telemetry(self):
        record = run_profile("rm", iterations=1)
        assert record.system == "rm"
        assert record.wall_time > 0
        assert record.counters["explore.states"] > 0
        assert record.counters["zones.nodes"] > 0
        assert record.counters["mapping.evals"] > 0
        assert record.meta["ok"] is True

    def test_counters_deterministic_across_runs(self):
        first = run_profile("fischer", iterations=2)
        second = run_profile("fischer", iterations=2)
        assert first.counters == second.counters

    def test_fischer_tight_expects_violation(self):
        record = run_profile("fischer-tight", iterations=1)
        assert record.meta["ok"] is True
        assert record.meta["verdict"] == "violable"


class TestPersistence:
    def test_report_round_trip(self, tmp_path):
        report = run_bench(systems=["chain"], iterations=1)
        path = write_report(report, str(tmp_path / "BENCH_0.json"))
        restored = load_report(path)
        assert restored.schema == BENCH_SCHEMA_VERSION
        assert restored.record_for("chain").counters == (
            report.record_for("chain").counters
        )

    def test_bench_paths_increment(self, tmp_path):
        root = str(tmp_path)
        assert latest_bench_path(root) is None
        assert next_bench_path(root).endswith("BENCH_0.json")
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_2.json").write_text("{}")
        assert latest_bench_path(root).endswith("BENCH_2.json")
        assert next_bench_path(root).endswith("BENCH_3.json")

    def test_missing_root_is_empty(self, tmp_path):
        root = str(tmp_path / "nope")
        assert latest_bench_path(root) is None
        assert next_bench_path(root).endswith("BENCH_0.json")

    def test_unknown_schema_rejected(self):
        with pytest.raises(SerializationError):
            BenchReport.from_dict({"schema": 999})

    def test_missing_schema_rejected(self):
        with pytest.raises(SerializationError):
            BenchReport.from_dict({"records": []})

    def test_suite_rows_parsed(self, tmp_path):
        rows_path = tmp_path / "bench_rows.jsonl"
        rows_path.write_text(
            json.dumps({"kind": "line", "text": "hello"}) + "\n"
            + json.dumps({"kind": "table", "title": "t", "columns": [], "rows": []})
            + "\n"
        )
        rows = load_suite_rows(str(rows_path))
        assert [r["kind"] for r in rows] == ["line", "table"]


class TestComparison:
    def test_identical_reports_ok(self):
        old = _report([_record(counters={"explore.states": 100})])
        new = _report([_record(counters={"explore.states": 100})])
        comparison = compare_reports(old, new)
        assert comparison.ok and not comparison.regressions

    def test_counter_growth_regresses(self):
        old = _report([_record(counters={"explore.states": 100})])
        new = _report([_record(counters={"explore.states": 150})])
        comparison = compare_reports(old, new)
        assert not comparison.ok
        assert [d.metric for d in comparison.regressions] == ["explore.states"]

    def test_small_counter_growth_under_floor_ok(self):
        old = _report([_record(counters={"explore.states": 20})])
        new = _report([_record(counters={"explore.states": 25})])
        assert compare_reports(old, new).ok

    def test_counter_shrink_never_regresses(self):
        old = _report([_record(counters={"explore.states": 200})])
        new = _report([_record(counters={"explore.states": 50})])
        assert compare_reports(old, new).ok

    def test_wall_time_regression_needs_both_gates(self):
        old = _report([_record(wall=1.0)])
        slow = _report([_record(wall=2.0)])
        assert not compare_reports(old, slow).ok
        # Large relative growth under the absolute floor: noise, not a
        # regression (a 0.001s profile doubling costs nothing).
        tiny_old = _report([_record(wall=0.001)])
        tiny_new = _report([_record(wall=0.002)])
        assert compare_reports(tiny_old, tiny_new).ok

    def test_fewer_iterations_gate_wall_only(self):
        old = _report([_record(iterations=3, counters={"sim.steps": 300})])
        smoke = _report([_record(iterations=1, wall=1.1,
                                 counters={"sim.steps": 500})])
        comparison = compare_reports(old, smoke)
        assert comparison.ok  # counter growth ignored on a reduced smoke

    def test_missing_system_is_a_regression(self):
        old = _report([_record("rm"), _record("relay")])
        new = _report([_record("rm")])
        comparison = compare_reports(old, new)
        assert not comparison.ok and comparison.missing == ["relay"]

    def test_added_system_is_not(self):
        old = _report([_record("rm")])
        new = _report([_record("rm"), _record("relay")])
        comparison = compare_reports(old, new)
        assert comparison.ok and comparison.added == ["relay"]

    def test_render_and_to_dict(self):
        old = _report([_record(counters={"explore.states": 100})])
        new = _report([_record(counters={"explore.states": 150})])
        comparison = compare_reports(old, new)
        text = comparison.render()
        assert "REGRESSED" in text and "explore.states" in text
        payload = comparison.to_dict()
        assert payload["ok"] is False
        assert payload["regressions"][0]["metric"] == "explore.states"
        json.dumps(payload)


class TestCli:
    def test_bench_writes_and_compares(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path)
        assert main(["bench", "chain", "--root", root, "--iterations", "1"]) == 0
        assert (tmp_path / "BENCH_0.json").exists()
        capsys.readouterr()
        assert main([
            "bench", "chain", "--root", root, "--iterations", "1",
            "--fail-on-regress",
        ]) == 0
        out = capsys.readouterr().out
        assert "BENCH_1.json" in out and "verdict: ok" in out

    def test_bench_json_payload(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "bench", "fischer-tight", "--root", str(tmp_path),
            "--iterations", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["schema"] == BENCH_SCHEMA_VERSION
        assert payload["report"]["records"][0]["system"] == "fischer-tight"
        assert payload["comparison"] is None

    def test_bench_fail_on_regress_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path)
        main(["bench", "chain", "--root", root, "--iterations", "1"])
        # Drop a doctored "previous" report with impossible counters so
        # the next run must regress against it.
        doctored = load_report(str(tmp_path / "BENCH_0.json"))
        for record in doctored.records:
            record.counters = {k: 0 for k in record.counters}
            record.wall_time = 1e-9
        write_report(doctored, str(tmp_path / "BENCH_1.json"))
        capsys.readouterr()
        code = main([
            "bench", "chain", "--root", root, "--iterations", "1",
            "--fail-on-regress",
        ])
        assert code == 1
