"""Tests for ``python -m repro check`` (engine- and cache-aware sweep)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def warm_cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _check(args, capsys):
    code = main(["check"] + args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCheckCommand:
    def test_chain_passes(self, capsys):
        code, out, _ = _check(["chain"], capsys)
        assert code == 0
        assert "verdict: ok" in out

    def test_json_shape(self, capsys):
        code, out, _ = _check(["chain", "--json"], capsys)
        assert code == 0
        entry = json.loads(out)
        assert entry["system"] == "chain"
        assert entry["ok"] and entry["conclusive"]
        assert entry["cached"] is False
        assert entry["states"] > 0
        assert entry["mappings"] and all(m["ok"] for m in entry["mappings"])
        assert entry["battery"]["ok"]

    def test_expected_broken_system_keeps_exit_zero(self, capsys):
        # fischer-tight ships broken on purpose; finding it broken is
        # the *expected* outcome, not a failure.
        code, out, _ = _check(["fischer-tight", "--json"], capsys)
        assert code == 0
        entry = json.loads(out)
        assert not entry["ok"]
        assert entry["expected_broken"]

    def test_parallel_engine_matches_serial(self, capsys):
        code, serial_out, _ = _check(["chain", "--json"], capsys)
        assert code == 0
        code, parallel_out, _ = _check(
            ["chain", "--json", "--engine", "parallel", "--engine-workers", "2"],
            capsys,
        )
        assert code == 0
        serial = json.loads(serial_out)
        parallel = json.loads(parallel_out)
        serial.pop("wall"), parallel.pop("wall")
        assert serial == parallel

    def test_warm_rerun_hits_cache(self, warm_cache_env, capsys):
        code, _, err = _check(["chain", "--json"], capsys)
        assert code == 0
        assert "stores=1" in err
        code, out, err = _check(["chain", "--json"], capsys)
        assert code == 0
        assert "hits=1" in err
        assert json.loads(out)["cached"] is True

    def test_no_cache_flag(self, warm_cache_env, capsys):
        _check(["chain", "--json"], capsys)
        code, out, err = _check(["chain", "--json", "--no-cache"], capsys)
        assert code == 0
        assert json.loads(out)["cached"] is False
        assert err == ""

    def test_unknown_system_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "nonesuch"])
