"""Tests for the command-line interface."""

import pytest

from repro.cli import _fraction, build_parser, main
from fractions import Fraction as F


class TestFractionParsing:
    def test_integer(self):
        assert _fraction("3") == 3

    def test_slash(self):
        assert _fraction("3/2") == F(3, 2)

    def test_decimal(self):
        assert _fraction("1.5") == F(3, 2)


class TestCommands:
    def test_rm_runs(self, capsys):
        assert main(["rm", "--k", "1", "--seeds", "2", "--steps", "60"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.4" in out and "yes" in out

    def test_relay_runs(self, capsys):
        assert main(["relay", "--n", "2", "--seeds", "2", "--steps", "60"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 6.4" in out and "hierarchy" in out

    def test_zones_rm(self, capsys):
        assert main(["zones", "rm", "--k", "1"]) == 0
        assert "tight" in capsys.readouterr().out

    def test_zones_relay(self, capsys):
        assert main(["zones", "relay", "--n", "2"]) == 0
        assert "SIGNAL" in capsys.readouterr().out

    def test_verify_holds(self, capsys):
        assert main(["verify", "rm", "3", "7", "--k", "2"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_refuted_exit_code(self, capsys):
        assert main(["verify", "rm", "3", "6", "--k", "2"]) == 1
        assert "refuted" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["timeline", "rm", "--steps", "5", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "START" in out and "TICK∈[" in out

    def test_rm_seed_offsets_runs(self, capsys):
        assert main(["rm", "--k", "1", "--seeds", "2", "--steps", "60",
                     "--seed", "17"]) == 0
        first = capsys.readouterr().out
        assert main(["rm", "--k", "1", "--seeds", "2", "--steps", "60",
                     "--seed", "17"]) == 0
        assert capsys.readouterr().out == first

    def test_fischer_safe(self, capsys):
        assert main(["fischer", "--a", "1", "--b", "2"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_fischer_seeded_simulation(self, capsys):
        assert main(["fischer", "--a", "1", "--b", "2", "--sim-runs", "2",
                     "--sim-steps", "40", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "seed base 5" in out and "0 violation(s)" in out

    def test_peterson_seeded_simulation(self, capsys):
        assert main(["peterson", "--sim-runs", "2", "--sim-steps", "40"]) == 0
        assert "seeded runs" in capsys.readouterr().out

    def test_fischer_violable(self, capsys):
        assert main(["fischer", "--a", "2", "--b", "1"]) == 1
        assert "VIOLABLE" in capsys.readouterr().out

    def test_fischer_bounded_critical_section(self, capsys):
        assert main(["fischer", "--a", "3", "--b", "2", "--e", "1"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_peterson(self, capsys):
        assert main(["peterson", "--s1", "1", "--s2", "2"]) == 0
        out = capsys.readouterr().out
        assert "holds" in out and "agreement: yes" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPerturbCommand:
    def test_epsilon_probe_failure_sets_exit_code(self, capsys):
        assert main(["perturb", "fischer-tight", "--epsilon", "0"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_epsilon_probe_json(self, capsys):
        import json

        assert (
            main(
                [
                    "perturb",
                    "peterson",
                    "--epsilon",
                    "1",
                    "--json",
                    "--seeds",
                    "1",
                    "--steps",
                    "30",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "peterson"
        assert payload["ok"] is True
        assert payload["epsilon"] == "1"

    def test_search_broken_system_is_a_finding_not_a_failure(self, capsys):
        import json

        assert main(["perturb", "fischer-tight", "--search", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["broken"] is True and payload["fragile"] is True
        assert payload["tolerance"] is None

    def test_epsilon_and_search_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["perturb", "rm", "--epsilon", "1/8", "--search"]
            )
