"""Tests for the command-line interface."""

import pytest

from repro.cli import _fraction, build_parser, main
from fractions import Fraction as F


class TestFractionParsing:
    def test_integer(self):
        assert _fraction("3") == 3

    def test_slash(self):
        assert _fraction("3/2") == F(3, 2)

    def test_decimal(self):
        assert _fraction("1.5") == F(3, 2)


class TestCommands:
    def test_rm_runs(self, capsys):
        assert main(["rm", "--k", "1", "--seeds", "2", "--steps", "60"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 4.4" in out and "yes" in out

    def test_relay_runs(self, capsys):
        assert main(["relay", "--n", "2", "--seeds", "2", "--steps", "60"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 6.4" in out and "hierarchy" in out

    def test_zones_rm(self, capsys):
        assert main(["zones", "rm", "--k", "1"]) == 0
        assert "tight" in capsys.readouterr().out

    def test_zones_relay(self, capsys):
        assert main(["zones", "relay", "--n", "2"]) == 0
        assert "SIGNAL" in capsys.readouterr().out

    def test_verify_holds(self, capsys):
        assert main(["verify", "rm", "3", "7", "--k", "2"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_refuted_exit_code(self, capsys):
        assert main(["verify", "rm", "3", "6", "--k", "2"]) == 1
        assert "refuted" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["timeline", "rm", "--steps", "5", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "START" in out and "TICK∈[" in out

    def test_rm_seed_offsets_runs(self, capsys):
        assert main(["rm", "--k", "1", "--seeds", "2", "--steps", "60",
                     "--seed", "17"]) == 0
        first = capsys.readouterr().out
        assert main(["rm", "--k", "1", "--seeds", "2", "--steps", "60",
                     "--seed", "17"]) == 0
        assert capsys.readouterr().out == first

    def test_fischer_safe(self, capsys):
        assert main(["fischer", "--a", "1", "--b", "2"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_fischer_seeded_simulation(self, capsys):
        assert main(["fischer", "--a", "1", "--b", "2", "--sim-runs", "2",
                     "--sim-steps", "40", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "seed base 5" in out and "0 violation(s)" in out

    def test_peterson_seeded_simulation(self, capsys):
        assert main(["peterson", "--sim-runs", "2", "--sim-steps", "40"]) == 0
        assert "seeded runs" in capsys.readouterr().out

    def test_fischer_violable(self, capsys):
        assert main(["fischer", "--a", "2", "--b", "1"]) == 1
        assert "VIOLABLE" in capsys.readouterr().out

    def test_fischer_bounded_critical_section(self, capsys):
        assert main(["fischer", "--a", "3", "--b", "2", "--e", "1"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_peterson(self, capsys):
        assert main(["peterson", "--s1", "1", "--s2", "2"]) == 0
        out = capsys.readouterr().out
        assert "holds" in out and "agreement: yes" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPerturbCommand:
    def test_epsilon_probe_failure_sets_exit_code(self, capsys):
        assert main(["perturb", "fischer-tight", "--epsilon", "0"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_epsilon_probe_json(self, capsys):
        import json

        assert (
            main(
                [
                    "perturb",
                    "peterson",
                    "--epsilon",
                    "1",
                    "--json",
                    "--seeds",
                    "1",
                    "--steps",
                    "30",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "peterson"
        assert payload["ok"] is True
        assert payload["epsilon"] == "1"

    def test_search_broken_system_is_a_finding_not_a_failure(self, capsys):
        import json

        assert main(["perturb", "fischer-tight", "--search", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["broken"] is True and payload["fragile"] is True
        assert payload["tolerance"] is None

    def test_epsilon_and_search_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["perturb", "rm", "--epsilon", "1/8", "--search"]
            )


class TestPerturbExitCodeConvention:
    def test_unexpected_broken_system_fails_search_mode(self, capsys, monkeypatch):
        # Strip fischer-tight of its "deliberately broken" registration:
        # an *unexpected* BROKEN verdict must flip the exit code.
        import repro.faults.targets as targets

        monkeypatch.setattr(targets, "_EXPECTED_BROKEN", frozenset())
        assert main(["perturb", "fischer-tight", "--search", "--json"]) == 1

    def test_epsilon_mode_reports_the_raw_verdict(self, capsys):
        # Documented asymmetry: --epsilon is a raw probe, so the
        # expected-broken twist does not apply (see docs/api.md).
        assert main(["perturb", "fischer-tight", "--epsilon", "0"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestRunCommand:
    def _run(self, tmp_path, *extra):
        ledger = str(tmp_path / "ledger.jsonl")
        return (
            main(
                ["run", "chain", "--kinds", "lint,bench", "--workers", "0",
                 "--ledger", ledger] + list(extra)
            ),
            ledger,
        )

    def test_green_campaign_exits_zero(self, capsys, tmp_path):
        code, ledger = self._run(tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger: {}".format(ledger) in out
        assert "lint:chain" in out and "bench:chain" in out

    def test_json_report_shape(self, capsys, tmp_path):
        import json

        code, _ = self._run(tmp_path, "--json")
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["interrupted"] is False
        assert sorted(j["job_id"] for j in payload["jobs"]) == [
            "bench:chain", "lint:chain",
        ]
        assert all(j["status"] == "ok" for j in payload["jobs"])

    def test_expected_failure_keeps_campaign_green(self, capsys, tmp_path):
        import json

        ledger = str(tmp_path / "ft.jsonl")
        assert main(
            ["run", "fischer-tight", "--kinds", "check", "--workers", "0",
             "--seeds", "1", "--steps", "10", "--ledger", ledger, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"][0]["status"] == "expected-failure"

    def test_unexpected_verdict_failure_exits_one(self, capsys, tmp_path, monkeypatch):
        import repro.runner.jobs as jobs_mod

        monkeypatch.setattr(jobs_mod, "_EXPECTED_FAILURES", set())
        ledger = str(tmp_path / "fail.jsonl")
        assert main(
            ["run", "fischer-tight", "--kinds", "check", "--workers", "0",
             "--seeds", "1", "--steps", "10", "--ledger", ledger, "--json"]
        ) == 1

    def test_unknown_kind_is_a_usage_error(self, capsys, tmp_path):
        code, _ = self._run(tmp_path, "--kinds", "frobnicate")
        assert code == 2
        assert "unknown job kind" in capsys.readouterr().err

    def test_unknown_system_is_a_usage_error(self, capsys, tmp_path):
        ledger = str(tmp_path / "x.jsonl")
        assert main(["run", "no-such-system", "--workers", "0",
                     "--ledger", ledger]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_resume_of_missing_ledger_is_a_usage_error(self, capsys, tmp_path):
        assert main(["run", "--resume", str(tmp_path / "absent.jsonl")]) == 2
        assert "no ledger" in capsys.readouterr().err
