"""Tests for boundmaps and timed automata."""

import pytest

from repro.errors import TimingConditionError
from repro.ioa.actions import Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import Interval


def two_class_automaton():
    return GuardedAutomaton(
        "two",
        [0],
        [
            ActionSpec("a", Kind.OUTPUT, effect=lambda n: n + 1),
            ActionSpec("b", Kind.INTERNAL),
        ],
        partition=Partition.from_pairs([("A", ["a"]), ("B", ["b"])]),
    )


class TestBoundmap:
    def test_lookup(self):
        bm = Boundmap({"A": Interval(1, 2)})
        assert bm["A"] == Interval(1, 2)
        assert bm.lower("A") == 1 and bm.upper("A") == 2

    def test_missing_entry(self):
        bm = Boundmap({})
        with pytest.raises(TimingConditionError):
            bm["A"]

    def test_contains(self):
        bm = Boundmap({"A": Interval(1, 2)})
        assert "A" in bm and "B" not in bm

    def test_extended(self):
        bm = Boundmap({"A": Interval(1, 2)}).extended("B", Interval(0, 1))
        assert bm["B"] == Interval(0, 1)

    def test_extended_duplicate_rejected(self):
        bm = Boundmap({"A": Interval(1, 2)})
        with pytest.raises(TimingConditionError):
            bm.extended("A", Interval(0, 1))

    def test_validate_missing_class(self):
        bm = Boundmap({"A": Interval(1, 2)})
        with pytest.raises(TimingConditionError):
            bm.validate_against(two_class_automaton())

    def test_validate_extra_class(self):
        bm = Boundmap(
            {"A": Interval(1, 2), "B": Interval(1, 2), "C": Interval(1, 2)}
        )
        with pytest.raises(TimingConditionError):
            bm.validate_against(two_class_automaton())


class TestTimedAutomaton:
    def test_construction_validates(self):
        with pytest.raises(TimingConditionError):
            TimedAutomaton(two_class_automaton(), Boundmap({"A": Interval(1, 2)}))

    def test_class_interval(self):
        bm = Boundmap({"A": Interval(1, 2), "B": Interval(0, 3)})
        ta = TimedAutomaton(two_class_automaton(), bm)
        cls = ta.automaton.partition["B"]
        assert ta.class_interval(cls) == Interval(0, 3)

    def test_classes(self):
        bm = Boundmap({"A": Interval(1, 2), "B": Interval(0, 3)})
        ta = TimedAutomaton(two_class_automaton(), bm)
        assert [c.name for c in ta.classes()] == ["A", "B"]


class TestBoundmapEquality:
    def test_eq(self):
        assert Boundmap({"A": Interval(1, 2)}) == Boundmap({"A": Interval(1, 2)})

    def test_neq_different_interval(self):
        assert Boundmap({"A": Interval(1, 2)}) != Boundmap({"A": Interval(1, 3)})

    def test_neq_different_classes(self):
        assert Boundmap({"A": Interval(1, 2)}) != Boundmap({"B": Interval(1, 2)})

    def test_neq_other_type(self):
        assert Boundmap({"A": Interval(1, 2)}) != {"A": Interval(1, 2)}

    def test_hash_consistent_with_eq(self):
        assert hash(Boundmap({"A": Interval(1, 2)})) == hash(
            Boundmap({"A": Interval(1, 2)})
        )

    def test_repr_round_trips_entries(self):
        rendered = repr(Boundmap({"A": Interval(1, 2), "B": Interval(0, 3)}))
        assert "'A'" in rendered and "'B'" in rendered and "[1, 2]" in rendered

    def test_lower_upper_are_exact_numbers(self):
        from fractions import Fraction

        bm = Boundmap({"A": Interval(Fraction(1, 2), Fraction(3, 2))})
        assert bm.lower("A") == Fraction(1, 2)
        assert bm.upper("A") == Fraction(3, 2)
        assert isinstance(bm.lower("A"), Fraction)


class TestEagerValidation:
    def test_construction_error_names_rule_and_class(self):
        with pytest.raises(TimingConditionError) as excinfo:
            TimedAutomaton(two_class_automaton(), Boundmap({"A": Interval(1, 2)}))
        message = str(excinfo.value)
        assert "R001" in message and "'B'" in message

    def test_construction_error_reports_extra_class(self):
        bm = Boundmap(
            {"A": Interval(1, 2), "B": Interval(1, 2), "ZZZ": Interval(1, 2)}
        )
        with pytest.raises(TimingConditionError) as excinfo:
            TimedAutomaton(two_class_automaton(), bm)
        message = str(excinfo.value)
        assert "R002" in message and "'ZZZ'" in message
