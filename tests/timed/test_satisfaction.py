"""Clause-by-clause tests of Definitions 2.1, 2.2 and 3.1."""

from fractions import Fraction as F

import pytest

from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.timed.satisfaction import (
    find_boundmap_violation,
    find_condition_violation,
    satisfies,
    satisfies_all,
    semi_satisfies,
    semi_satisfies_all,
)
from repro.timed.timed_sequence import TimedSequence

from tests.timed.test_conditions import pulse_timed


def seq(states, events):
    return TimedSequence(tuple(states), tuple(events))


def start_cond(lo, hi, disabling=()):
    """Measured from the start state to the next 'g'."""
    return TimingCondition.build(
        "U",
        Interval(lo, hi),
        actions={"g"},
        start_states=lambda s: True,
        disabling=set(disabling),
    )


def step_cond(lo, hi, disabling=()):
    """Measured from every 'req' step to the next 'g'."""
    return TimingCondition.build(
        "U",
        Interval(lo, hi),
        actions={"g"},
        step_predicate=lambda pre, a, post: a == "req",
        disabling=set(disabling),
    )


class TestUpperBoundFromStart:
    def test_on_time_satisfies(self):
        assert satisfies(seq(["s", "t"], [("g", 3)]), start_cond(0, 3))

    def test_late_violates(self):
        violation = find_condition_violation(
            seq(["s", "t"], [("g", 4)]), start_cond(0, 3)
        )
        assert violation is not None and violation.clause == "upper"

    def test_missing_violates_strictly(self):
        assert not satisfies(seq(["s", "t"], [("x", 1)]), start_cond(0, 3))

    def test_missing_excused_in_semi_before_deadline(self):
        assert semi_satisfies(seq(["s", "t"], [("x", 1)]), start_cond(0, 3))

    def test_missing_not_excused_in_semi_after_deadline(self):
        assert not semi_satisfies(seq(["s", "t"], [("x", 5)]), start_cond(0, 3))

    def test_disabling_state_discharges_upper(self):
        s = seq(["s", "dead"], [("x", 1)])
        assert satisfies(s, start_cond(0, 3, disabling={"dead"}))

    def test_late_disabling_still_violates(self):
        s = seq(["s", "dead"], [("x", 9)])
        assert not satisfies(s, start_cond(0, 3, disabling={"dead"}))

    def test_infinite_upper_imposes_nothing(self):
        s = seq(["s", "t", "u"], [("x", 100), ("y", 200)])
        assert satisfies(s, start_cond(0, float("inf")))


class TestLowerBoundFromStart:
    def test_early_pi_violates(self):
        violation = find_condition_violation(
            seq(["s", "t"], [("g", 1)]), start_cond(2, 10)
        )
        assert violation is not None and violation.clause == "lower"

    def test_exactly_at_lower_is_fine(self):
        assert satisfies(seq(["s", "t"], [("g", 2)]), start_cond(2, 10))

    def test_early_pi_excused_by_intervening_disabling(self):
        s = seq(["s", "dead", "t"], [("x", F(1, 2)), ("g", 1)])
        assert satisfies(s, start_cond(2, 10, disabling={"dead"}))

    def test_disabling_at_pi_index_itself_does_not_excuse(self):
        # The disabling state must come strictly before the Π event.
        s = seq(["s", "dead"], [("g", 1)])
        assert not satisfies(s, start_cond(2, 10, disabling={"dead"}))

    def test_semi_lower_bound_identical(self):
        s = seq(["s", "t"], [("g", 1)])
        assert not semi_satisfies(s, start_cond(2, 10))


class TestStepTriggers:
    def test_gap_measured_from_trigger(self):
        s = seq(["a", "b", "c"], [("req", 5), ("g", 6)])
        assert satisfies(s, step_cond(1, 2))

    def test_upper_from_trigger_violated(self):
        s = seq(["a", "b", "c"], [("req", 5), ("g", 9)])
        violation = find_condition_violation(s, step_cond(1, 2))
        assert violation is not None
        assert violation.clause == "upper" and violation.origin_index == 1

    def test_lower_from_trigger_violated(self):
        s = seq(["a", "b", "c"], [("req", 5), ("g", F(11, 2))])
        violation = find_condition_violation(s, step_cond(1, 2))
        assert violation is not None and violation.clause == "lower"

    def test_multiple_triggers_each_checked(self):
        s = seq(
            ["a", "b", "c", "d", "e"],
            [("req", 1), ("g", 2), ("req", 10), ("g", 14)],
        )
        assert not satisfies(s, step_cond(1, 2))

    def test_pre_trigger_pi_ignored(self):
        # a 'g' before any trigger imposes nothing
        s = seq(["a", "b"], [("g", F(1, 4))])
        assert satisfies(s, step_cond(1, 2))

    def test_semi_excuses_pending_trigger(self):
        s = seq(["a", "b"], [("req", 5)])
        assert not satisfies(s, step_cond(1, 2))
        assert semi_satisfies(s, step_cond(1, 2))


class TestAllHelpers:
    def test_satisfies_all_returns_first_violation(self):
        bad = start_cond(2, 10)
        good = start_cond(0, 10)
        violation = satisfies_all(seq(["s", "t"], [("g", 1)]), [good, bad])
        assert violation is not None and violation.condition == "U"

    def test_satisfies_all_none_when_ok(self):
        assert satisfies_all(seq(["s", "t"], [("g", 3)]), [start_cond(0, 3)]) is None

    def test_semi_satisfies_all(self):
        pending = seq(["s", "t"], [("x", 1)])
        assert semi_satisfies_all(pending, [start_cond(0, 3)]) is None


class TestDefinition21Direct:
    """Definition 2.1 on the pulse automaton (FIRE ↦ [1,2], ARM ↦ [0,5])."""

    def _seq(self, *events_and_states):
        states = ["on"]
        events = []
        for action, time, state in events_and_states:
            events.append((action, time))
            states.append(state)
        return seq(states, events)

    def test_valid_cycle(self):
        # Every finite prefix of this always-live system leaves some
        # obligation pending (cf. Lemma 4.2), so use the semi reading.
        s = self._seq(("fire", 1, "off"), ("arm", 3, "on"), ("fire", 5, "off"))
        assert find_boundmap_violation(pulse_timed(), s, semi=True) is None

    def test_fire_too_early(self):
        s = self._seq(("fire", F(1, 2), "off"))
        violation = find_boundmap_violation(pulse_timed(), s)
        assert violation is not None and violation.clause == "lower"
        assert violation.condition == "FIRE"

    def test_fire_too_late(self):
        s = self._seq(("fire", 3, "off"))
        violation = find_boundmap_violation(pulse_timed(), s)
        assert violation is not None and violation.clause == "upper"

    def test_fire_missing_strict(self):
        s = self._seq()
        assert find_boundmap_violation(pulse_timed(), s) is not None

    def test_fire_missing_semi_excused(self):
        s = self._seq()
        assert find_boundmap_violation(pulse_timed(), s, semi=True) is None

    def test_lower_bound_restarts_after_re_enable(self):
        # fire at 1, arm at 3 (FIRE re-enabled at 3), next fire must be >= 4
        s = self._seq(("fire", 1, "off"), ("arm", 3, "on"), ("fire", F(7, 2), "off"))
        violation = find_boundmap_violation(pulse_timed(), s)
        assert violation is not None and violation.clause == "lower"

    def test_arm_zero_lower_bound(self):
        s = self._seq(("fire", 1, "off"), ("arm", 1, "on"), ("fire", 2, "off"))
        assert find_boundmap_violation(pulse_timed(), s, semi=True) is None
