"""Lemma 2.1 / Corollary 2.2: the direct boundmap reading of timed
executions agrees with the cond(C) timing-condition reading — on valid
executions, on perturbed (invalid) ones, and on randomized families."""

import random
from fractions import Fraction as F

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.projection import project
from repro.core.time_automaton import time_of_boundmap
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.timed.semantics import check_lemma_2_1, timed_execution_violation
from repro.timed.timed_sequence import TimedSequence

from tests.timed.test_conditions import pulse_timed


def simulated_projection(seed, steps=30):
    ta = pulse_timed()
    automaton = time_of_boundmap(ta)
    run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(max_steps=steps)
    return ta, project(run)


class TestAgreementOnValidRuns:
    def test_simulated_runs_accepted_by_both(self):
        for seed in range(10):
            ta, seq = simulated_projection(seed)
            report = check_lemma_2_1(ta, seq, semi=True)
            assert report.agree
            assert report.accepted

    def test_strict_check_agrees_even_when_rejecting(self):
        # A finite prefix of a live system strictly violates clause 1 in
        # both readings simultaneously.
        ta, seq = simulated_projection(3)
        report = check_lemma_2_1(ta, seq, semi=False)
        assert report.agree


class TestAgreementOnPerturbedRuns:
    def _perturb(self, seq, factor):
        events = [(ev.action, ev.time * factor) for ev in seq.events]
        return TimedSequence(seq.states, events)

    def test_compressed_times(self):
        # Compressing time violates lower bounds in both readings.
        ta, seq = simulated_projection(1)
        squeezed = self._perturb(seq, F(1, 10))
        report = check_lemma_2_1(ta, squeezed, semi=True)
        assert report.agree
        assert not report.accepted

    def test_stretched_times(self):
        # Stretching time violates upper bounds in both readings.
        ta, seq = simulated_projection(2)
        stretched = self._perturb(seq, 10)
        report = check_lemma_2_1(ta, stretched, semi=True)
        assert report.agree
        assert not report.accepted

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        numerator=st.integers(min_value=1, max_value=40),
        semi=st.booleans(),
    )
    def test_random_scalings_agree(self, seed, numerator, semi):
        ta, seq = simulated_projection(seed, steps=15)
        scaled = self._perturb(seq, F(numerator, 10))
        report = check_lemma_2_1(ta, scaled, semi=semi)
        assert report.agree


class TestCorollaryEntryPoint:
    def test_violation_surfaced(self):
        ta, seq = simulated_projection(4)
        squeezed = TimedSequence(
            seq.states, [(ev.action, ev.time * F(1, 100)) for ev in seq.events]
        )
        assert timed_execution_violation(ta, squeezed) is not None

    def test_none_for_infinite_like_prefixes(self):
        # A strict timed execution needs all obligations discharged; our
        # prefixes usually are not, so the strict verdict is a violation
        # of the 'upper' clause with a missing witness — still agreeing.
        ta, seq = simulated_projection(5)
        violation = timed_execution_violation(ta, seq)
        if violation is not None:
            assert violation.clause == "upper"
