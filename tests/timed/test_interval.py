"""Tests (incl. property-based) for bound intervals."""

import math
from fractions import Fraction as F

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TimingConditionError
from repro.timed.interval import INFINITY, Interval, as_exact


class TestValidation:
    def test_infinite_lower_rejected(self):
        with pytest.raises(TimingConditionError):
            Interval(math.inf, math.inf)

    def test_negative_lower_rejected(self):
        with pytest.raises(TimingConditionError):
            Interval(-1, 2)

    def test_zero_upper_rejected(self):
        with pytest.raises(TimingConditionError):
            Interval(0, 0)

    def test_empty_rejected(self):
        with pytest.raises(TimingConditionError):
            Interval(3, 2)

    def test_point_interval(self):
        assert Interval.exactly(2).lo == Interval.exactly(2).hi == 2


class TestConstructorsAndQueries:
    def test_at_most(self):
        iv = Interval.at_most(5)
        assert iv.lo == 0 and iv.hi == 5

    def test_at_least(self):
        iv = Interval.at_least(3)
        assert iv.lo == 3 and math.isinf(iv.hi)

    def test_unbounded(self):
        assert Interval.unbounded().is_trivial

    def test_is_upper_bounded(self):
        assert Interval(1, 2).is_upper_bounded
        assert not Interval.at_least(1).is_upper_bounded

    def test_width(self):
        assert Interval(1, 3).width == 2
        assert math.isinf(Interval.at_least(1).width)

    def test_contains(self):
        iv = Interval(1, 3)
        assert 1 in iv and 3 in iv and 2 in iv
        assert 0 not in iv and 4 not in iv

    def test_contains_infinite_upper(self):
        assert 10**9 in Interval.at_least(1)


class TestArithmetic:
    def test_minkowski_sum(self):
        assert Interval(1, 2) + Interval(3, 4) == Interval(4, 6)

    def test_sum_with_unbounded(self):
        result = Interval(1, 2) + Interval.at_least(1)
        assert result.lo == 2 and math.isinf(result.hi)

    def test_shift(self):
        assert Interval(1, 2).shift(3) == Interval(4, 5)

    def test_shift_negative_rejected(self):
        with pytest.raises(TimingConditionError):
            Interval(1, 2).shift(-1)

    def test_scale(self):
        assert Interval(1, 2).scale(3) == Interval(3, 6)

    def test_scale_unbounded(self):
        assert math.isinf(Interval.at_least(1).scale(2).hi)

    def test_scale_rejects_non_positive(self):
        with pytest.raises(TimingConditionError):
            Interval(1, 2).scale(0)

    def test_intersect(self):
        assert Interval(1, 5).intersect(Interval(3, 7)) == Interval(3, 5)

    def test_intersect_empty_raises(self):
        with pytest.raises(TimingConditionError):
            Interval(1, 2).intersect(Interval(3, 4))

    def test_widen(self):
        assert Interval(2, 3).widen(1) == Interval(1, 4)

    def test_widen_clamps_at_zero(self):
        assert Interval(1, 3).widen(5).lo == 0


class TestAsExact:
    def test_int_passthrough(self):
        assert as_exact(3) == 3 and isinstance(as_exact(3), int)

    def test_fraction_passthrough(self):
        assert as_exact(F(1, 3)) == F(1, 3)

    def test_float_converted(self):
        assert as_exact(0.5) == F(1, 2)

    def test_inf_preserved(self):
        assert math.isinf(as_exact(INFINITY))


small = st.fractions(min_value=0, max_value=20, max_denominator=8)


@given(small, small, small, small)
def test_minkowski_sum_contains_pointwise_sums(a, b, c, d):
    lo1, hi1 = min(a, b), max(a, b)
    lo2, hi2 = min(c, d), max(c, d)
    if hi1 == 0 or hi2 == 0:
        return
    i1, i2 = Interval(lo1, hi1), Interval(lo2, hi2)
    total = i1 + i2
    assert (lo1 + lo2) in total and (hi1 + hi2) in total


@given(small, small, st.integers(min_value=1, max_value=5))
def test_scale_matches_repeated_sum(a, b, k):
    lo, hi = min(a, b), max(a, b)
    if hi == 0:
        return
    iv = Interval(lo, hi)
    total = iv
    for _ in range(k - 1):
        total = total + iv
    assert iv.scale(k) == total


@given(small, small, small)
def test_contains_monotone_under_widen(a, b, slack):
    lo, hi = min(a, b), max(a, b)
    if hi == 0:
        return
    iv = Interval(lo, hi)
    wide = iv.widen(slack)
    assert wide.lo <= iv.lo and wide.hi >= iv.hi
