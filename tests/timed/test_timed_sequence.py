"""Tests for timed sequences (Section 2.2)."""

import pytest

from repro.errors import TimedSequenceError
from repro.timed.timed_sequence import TimedEvent, TimedSequence, timed_word


def seq_abc():
    return TimedSequence(
        ("s0", "s1", "s2", "s3"),
        (("a", 1), ("b", 2), ("c", 2)),
    )


class TestConstruction:
    def test_length_mismatch(self):
        with pytest.raises(TimedSequenceError):
            TimedSequence(("s0",), (("a", 1),))

    def test_decreasing_times_rejected(self):
        with pytest.raises(TimedSequenceError):
            TimedSequence(("s0", "s1", "s2"), (("a", 2), ("b", 1)))

    def test_first_time_below_zero_rejected(self):
        # t_0 = 0 by definition, so a negative first event time is invalid.
        with pytest.raises(TimedSequenceError):
            TimedSequence(("s0", "s1"), (("a", -1),))

    def test_equal_times_allowed(self):
        seq_abc()

    def test_tuples_normalised_to_events(self):
        seq = TimedSequence(("s0", "s1"), (("a", 1),))
        assert isinstance(seq.events[0], TimedEvent)


class TestAccessors:
    def test_t_end(self):
        assert seq_abc().t_end == 2
        assert TimedSequence.initial("s").t_end == 0

    def test_paper_indexing(self):
        seq = seq_abc()
        assert seq.time(0) == 0
        assert seq.time(1) == 1
        assert seq.action(1) == "a"
        assert seq.state(0) == "s0"
        assert seq.state(3) == "s3"

    def test_len_counts_events(self):
        assert len(seq_abc()) == 3

    def test_triples(self):
        triples = list(seq_abc().triples())
        assert triples[0][0] == "s0"
        assert triples[0][1].action == "a"
        assert triples[0][2] == "s1"

    def test_first_last_state(self):
        seq = seq_abc()
        assert seq.first_state == "s0" and seq.last_state == "s3"


class TestDerivedSequences:
    def test_ord_strips_times(self):
        ex = seq_abc().ord()
        assert ex.actions == ("a", "b", "c")
        assert ex.states == ("s0", "s1", "s2", "s3")

    def test_timed_schedule(self):
        assert timed_word(seq_abc()) == (("a", 1), ("b", 2), ("c", 2))

    def test_timed_behavior_with_set(self):
        beh = seq_abc().timed_behavior({"a", "c"})
        assert [ev.action for ev in beh] == ["a", "c"]

    def test_timed_behavior_with_predicate(self):
        beh = seq_abc().timed_behavior(lambda act: act != "b")
        assert [ev.action for ev in beh] == ["a", "c"]


class TestEditing:
    def test_extend(self):
        seq = TimedSequence.initial("s0").extend("a", 1, "s1")
        assert len(seq) == 1 and seq.last_state == "s1"

    def test_extend_monotonicity_enforced(self):
        seq = TimedSequence.initial("s0").extend("a", 5, "s1")
        with pytest.raises(TimedSequenceError):
            seq.extend("b", 4, "s2")

    def test_prefix(self):
        assert len(seq_abc().prefix(2)) == 2

    def test_prefix_out_of_range(self):
        with pytest.raises(TimedSequenceError):
            seq_abc().prefix(9)

    def test_is_prefix_of(self):
        full = seq_abc()
        assert full.prefix(1).is_prefix_of(full)
        assert full.is_prefix_of(full)
        assert not full.is_prefix_of(full.prefix(1))

    def test_equality_and_hash(self):
        assert seq_abc() == seq_abc()
        assert hash(seq_abc()) == hash(seq_abc())
        assert seq_abc() != seq_abc().prefix(2)
