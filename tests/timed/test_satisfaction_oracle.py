"""Oracle testing of the satisfaction checkers.

The reference implementations below transcribe Definitions 2.2 and 3.1
literally — nested quantifiers, no early exits, no cleverness — and are
obviously correct by inspection.  Hypothesis then drives both them and
the optimised checkers over randomly generated timed sequences and
conditions; any disagreement is a bug in the optimised code.
"""

import math
import random
from fractions import Fraction as F

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timed.conditions import TimingCondition
from repro.timed.interval import INFINITY, Interval
from repro.timed.satisfaction import find_condition_violation
from repro.timed.timed_sequence import TimedSequence


def reference_satisfies(seq, cond, semi):
    """Definitions 2.2 / 3.1, transcribed clause by clause."""
    n = len(seq)

    def upper_from(i, t_i):
        # 1(a)/1(b): ∃ j > i with t_j ≤ t_i + b_u and (π_j ∈ Π or s_j ∈ S)
        if not cond.interval.is_upper_bounded:
            return True
        witnesses = [
            j
            for j in range(i + 1, n + 1)
            if seq.time(j) <= t_i + cond.upper
            and (cond.in_pi(seq.action(j)) or cond.disables(seq.state(j)))
        ]
        if witnesses:
            return True
        if semi and seq.t_end <= t_i + cond.upper:
            return True
        return False

    def lower_from(i, t_i):
        # 2(a)/2(b): ∀ j > i with t_j < t_i + b_l and π_j ∈ Π,
        #            ∃ k, i < k < j, with s_k ∈ S
        for j in range(i + 1, n + 1):
            if seq.time(j) < t_i + cond.lower and cond.in_pi(seq.action(j)):
                if not any(cond.disables(seq.state(k)) for k in range(i + 1, j)):
                    return False
        return True

    if cond.starts(seq.state(0)):
        if not upper_from(0, 0) or not lower_from(0, 0):
            return False
    for i in range(1, n + 1):
        if cond.triggers(seq.state(i - 1), seq.action(i), seq.state(i)):
            if not upper_from(i, seq.time(i)) or not lower_from(i, seq.time(i)):
                return False
    return True


# ----------------------------------------------------------------------
# Random sequences and conditions over a tiny alphabet
# ----------------------------------------------------------------------

ACTIONS = ["a", "b", "g"]
STATES = ["s", "t", "dead"]

times = st.fractions(min_value=0, max_value=8, max_denominator=4)


@st.composite
def timed_sequences(draw):
    length = draw(st.integers(min_value=0, max_value=7))
    states = [draw(st.sampled_from(STATES)) for _ in range(length + 1)]
    raw_times = sorted(draw(st.lists(times, min_size=length, max_size=length)))
    events = [
        (draw(st.sampled_from(ACTIONS)), raw_times[i]) for i in range(length)
    ]
    return TimedSequence(tuple(states), tuple(events))


@st.composite
def conditions(draw):
    lo = draw(times)
    if draw(st.booleans()):
        hi = INFINITY
    else:
        hi = lo + draw(times)
        if hi == 0:
            hi = F(1, 2)
    pi = draw(st.sets(st.sampled_from(ACTIONS), min_size=1, max_size=2))
    trigger_actions = draw(st.sets(st.sampled_from(ACTIONS), max_size=2))
    use_start = draw(st.booleans())
    disabling = draw(st.sets(st.sampled_from(["dead"]), max_size=1))
    start_states = set(STATES) - disabling if use_start else None
    return TimingCondition.build(
        "U",
        Interval(lo, hi),
        actions=pi,
        start_states=start_states,
        step_predicate=lambda pre, action, post, ts=frozenset(trigger_actions), d=frozenset(disabling): (
            action in ts and post not in d
        ),
        disabling=disabling,
    )


@settings(max_examples=300, deadline=None)
@given(seq=timed_sequences(), cond=conditions(), semi=st.booleans())
def test_checker_agrees_with_reference(seq, cond, semi):
    optimised = find_condition_violation(seq, cond, semi=semi) is None
    reference = reference_satisfies(seq, cond, semi=semi)
    assert optimised == reference, "seq={!r} semi={!r}".format(seq, semi)


@settings(max_examples=100, deadline=None)
@given(seq=timed_sequences(), cond=conditions())
def test_semi_is_weaker_than_strict(seq, cond):
    """Definition 3.1 only adds escape clauses: strict satisfaction
    implies semi-satisfaction."""
    if find_condition_violation(seq, cond, semi=False) is None:
        assert find_condition_violation(seq, cond, semi=True) is None


@settings(max_examples=100, deadline=None)
@given(seq=timed_sequences(), cond=conditions())
def test_prefix_monotonicity_of_violations(seq, cond):
    """A strict lower-bound violation in a prefix persists in every
    extension (lower bounds are safety properties)."""
    violation = find_condition_violation(seq, cond, semi=True)
    if violation is None or violation.clause != "lower":
        return
    for cut in range(len(seq) + 1):
        prefix = seq.prefix(cut)
        prefix_violation = find_condition_violation(prefix, cond, semi=True)
        if prefix_violation is not None:
            break
    else:
        raise AssertionError("violation vanished from every prefix")
