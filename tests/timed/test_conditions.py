"""Tests for timing conditions and the cond(C)/U_b derivation."""

from fractions import Fraction as F

import pytest

from repro.errors import TimingConditionError
from repro.ioa.actions import Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition, boundmap_conditions, cond_of_class
from repro.timed.interval import Interval


class TestBuilders:
    def test_build_with_sets(self):
        cond = TimingCondition.build(
            "U",
            Interval(1, 2),
            actions={"g"},
            start_states={"s0"},
            disabling={"dead"},
        )
        assert cond.in_pi("g") and not cond.in_pi("x")
        assert cond.starts("s0") and not cond.starts("s1")
        assert cond.disables("dead") and not cond.disables("s0")

    def test_build_with_predicates(self):
        cond = TimingCondition.build(
            "U", Interval(1, 2), actions=lambda a: a.startswith("g")
        )
        assert cond.in_pi("grant") and not cond.in_pi("tick")

    def test_after_action_triggers(self):
        cond = TimingCondition.after_action("U", Interval(1, 2), "req", {"rsp"})
        assert cond.triggers("s", "req", "t")
        assert not cond.triggers("s", "other", "t")
        assert not cond.starts("s")

    def test_from_start_defaults_to_all_starts(self):
        cond = TimingCondition.from_start("U", Interval(1, 2), {"g"})
        assert cond.starts("anything")

    def test_bounds_accessors(self):
        cond = TimingCondition.build("U", Interval(F(1, 2), 3), actions={"g"})
        assert cond.lower == F(1, 2) and cond.upper == 3

    def test_default_predicates_never(self):
        cond = TimingCondition(name="U", interval=Interval(1, 2))
        assert not cond.starts("s")
        assert not cond.triggers("s", "a", "t")
        assert not cond.in_pi("a")
        assert not cond.disables("s")


class TestTechnicalRequirements:
    def test_start_overlap_with_disabling_rejected(self):
        cond = TimingCondition.build(
            "U", Interval(1, 2), actions={"g"}, start_states={"s"}, disabling={"s"}
        )
        with pytest.raises(TimingConditionError):
            cond.check_start_state("s")

    def test_trigger_into_disabling_rejected(self):
        cond = TimingCondition.build(
            "U",
            Interval(1, 2),
            actions={"g"},
            step_predicate=lambda pre, a, post: a == "req",
            disabling={"dead"},
        )
        with pytest.raises(TimingConditionError):
            cond.check_trigger_step("s", "req", "dead")

    def test_clean_states_pass(self):
        cond = TimingCondition.build(
            "U", Interval(1, 2), actions={"g"}, start_states={"s"}
        )
        cond.check_start_state("s")
        cond.check_trigger_step("s", "a", "t")


def pulse_automaton():
    """on/off toggle: 'fire' enabled only in 'on'; 'flip' input toggles."""
    return GuardedAutomaton(
        "pulse",
        ["on"],
        [
            ActionSpec(
                "fire",
                Kind.OUTPUT,
                precondition=lambda s: s == "on",
                effect=lambda _s: "off",
            ),
            ActionSpec(
                "arm",
                Kind.INTERNAL,
                precondition=lambda s: s == "off",
                effect=lambda _s: "on",
            ),
        ],
        partition=Partition.from_pairs([("FIRE", ["fire"]), ("ARM", ["arm"])]),
    )


def pulse_timed():
    return TimedAutomaton(
        pulse_automaton(),
        Boundmap({"FIRE": Interval(1, 2), "ARM": Interval(0, 5)}),
    )


class TestCondOfClass:
    def test_start_trigger_requires_enabledness(self):
        ta = pulse_timed()
        cond = cond_of_class(ta, ta.automaton.partition["FIRE"])
        assert cond.starts("on")
        assert not cond.starts("off")  # not enabled there (and not a start state)

    def test_pi_is_the_class(self):
        ta = pulse_timed()
        cond = cond_of_class(ta, ta.automaton.partition["FIRE"])
        assert cond.in_pi("fire") and not cond.in_pi("arm")

    def test_disabling_is_disabled_set(self):
        ta = pulse_timed()
        cond = cond_of_class(ta, ta.automaton.partition["FIRE"])
        assert cond.disables("off") and not cond.disables("on")

    def test_trigger_on_own_action(self):
        ta = pulse_timed()
        cond = cond_of_class(ta, ta.automaton.partition["ARM"])
        # arm (off -> on) leaves ARM disabled afterwards: not a trigger for ARM
        assert not cond.triggers("off", "arm", "on")
        # fire (on -> off) enables ARM from disabled: trigger
        assert cond.triggers("on", "fire", "off")

    def test_trigger_on_re_enable(self):
        ta = pulse_timed()
        cond = cond_of_class(ta, ta.automaton.partition["FIRE"])
        assert cond.triggers("off", "arm", "on")
        assert not cond.triggers("on", "fire", "off")

    def test_interval_copied_from_boundmap(self):
        ta = pulse_timed()
        cond = cond_of_class(ta, ta.automaton.partition["FIRE"])
        assert cond.interval == Interval(1, 2)

    def test_boundmap_conditions_one_per_class(self):
        conds = boundmap_conditions(pulse_timed())
        assert [c.name for c in conds] == ["FIRE", "ARM"]

    def test_condition_names_unique(self):
        names = [c.name for c in boundmap_conditions(pulse_timed())]
        assert len(set(names)) == len(names)
