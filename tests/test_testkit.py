"""Tests for the random-system generator itself."""

import random

import pytest

from repro.testkit import INC, random_system
from repro.core.time_automaton import time_of_boundmap


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = random_system(random.Random(5))
        b = random_system(random.Random(5))
        assert a.cells == b.cells

    def test_progress_anchor_always_enabled_finite(self):
        for seed in range(30):
            system = random_system(random.Random(seed))
            anchor = system.cells[0]
            assert anchor.always_enabled
            assert anchor.interval.is_upper_bounded

    def test_boundmap_covers_all_classes(self):
        for seed in range(10):
            system = random_system(random.Random(seed))
            system.timed.boundmap.validate_against(system.timed.automaton)

    def test_closed_system(self):
        for seed in range(10):
            system = random_system(random.Random(seed))
            assert system.timed.automaton.signature.inputs == frozenset()

    def test_guards_reference_earlier_cells(self):
        for seed in range(30):
            system = random_system(random.Random(seed))
            for cell in system.cells:
                if cell.guard_on is not None:
                    assert 0 <= cell.guard_on < cell.index

    def test_cell_count_override(self):
        system = random_system(random.Random(0), n_cells=4)
        assert len(system.cells) == 4

    def test_single_cell_system(self):
        system = random_system(random.Random(0), n_cells=1)
        automaton = time_of_boundmap(system.timed)
        (start,) = list(automaton.start_states())
        assert automaton.schedulable_actions(start)

    def test_describe_mentions_cells(self):
        system = random_system(random.Random(1), n_cells=3)
        text = system.describe()
        assert "cell 0" in text and "cell 2" in text

    def test_guarded_cell_enabledness_tracks_parity(self):
        # Find a system with a guarded cell and check the gate flips.
        for seed in range(100):
            system = random_system(random.Random(seed), n_cells=3)
            guarded = [c for c in system.cells if c.guard_on is not None]
            if not guarded:
                continue
            cell = guarded[0]
            automaton = system.timed.automaton
            cls = automaton.partition["INC_{}".format(cell.index)]
            (start,) = list(automaton.start_states())
            assert automaton.class_enabled(start, cls)  # parity 0 at start
            # After the neighbour fires once, parity flips to 1: disabled.
            neighbour = INC(cell.guard_on)
            (post,) = list(automaton.transitions(start, neighbour))
            assert not automaton.class_enabled(post, cls)
            return
        pytest.skip("no guarded cell generated in 100 seeds")
