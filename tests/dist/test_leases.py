"""Lease semantics: epochs only grow, stale claims stay stale forever,
expiry is a pure function of the clock the caller passes in."""

import pytest

from repro.dist.leases import LeaseTable


def test_grant_bumps_epoch_and_tracks_lease():
    table = LeaseTable()
    lease = table.grant("j1", "w1", lease_s=5.0, now=100.0)
    assert lease.epoch == 1
    assert lease.expires_at == 105.0
    assert table.is_current("j1", 1, "w1")
    assert len(table) == 1


def test_double_grant_is_a_bug():
    table = LeaseTable()
    table.grant("j1", "w1", 5.0, now=0.0)
    with pytest.raises(ValueError):
        table.grant("j1", "w2", 5.0, now=0.0)


def test_epoch_survives_release_and_regrant_bumps_it():
    table = LeaseTable()
    table.grant("j1", "w1", 5.0, now=0.0)
    table.release("j1")
    assert table.epoch("j1") == 1
    lease = table.grant("j1", "w2", 5.0, now=10.0)
    assert lease.epoch == 2
    # The partitioned first worker's claim is recognisably stale.
    assert not table.is_current("j1", 1, "w1")
    assert table.is_current("j1", 2, "w2")


def test_renew_extends_only_the_current_grant():
    table = LeaseTable()
    table.grant("j1", "w1", 5.0, now=0.0)
    assert table.renew("j1", "w1", 1, now=3.0)
    assert table._active["j1"].expires_at == 8.0
    # Wrong worker, wrong epoch, unknown job: all stale.
    assert not table.renew("j1", "w2", 1, now=3.0)
    assert not table.renew("j1", "w1", 2, now=3.0)
    assert not table.renew("nope", "w1", 1, now=3.0)


def test_stale_heartbeat_cannot_resurrect_an_expired_lease():
    table = LeaseTable()
    table.grant("j1", "w1", 5.0, now=0.0)
    assert not table.renew("j1", "w1", 1, now=6.0)  # already lapsed
    assert table.expired(now=6.0)[0].job_id == "j1"


def test_expired_returns_lapsed_oldest_first():
    table = LeaseTable()
    table.grant("a", "w1", 2.0, now=0.0)
    table.grant("b", "w2", 5.0, now=0.0)
    table.grant("c", "w3", 1.0, now=0.0)
    lapsed = table.expired(now=3.0)
    assert [l.job_id for l in lapsed] == ["c", "a"]
    assert table.is_current("b", 1)


def test_held_by_collects_a_workers_leases():
    table = LeaseTable()
    table.grant("a", "w1", 5.0, now=0.0)
    table.grant("b", "w1", 5.0, now=0.0)
    table.grant("c", "w2", 5.0, now=0.0)
    assert sorted(l.job_id for l in table.held_by("w1")) == ["a", "b"]


def test_is_current_without_worker_checks_epoch_only():
    table = LeaseTable()
    table.grant("j1", "w1", 5.0, now=0.0)
    assert table.is_current("j1", 1)
    assert not table.is_current("j1", 0)
    table.release("j1")
    assert not table.is_current("j1", 1)


def test_nonpositive_lease_rejected():
    table = LeaseTable()
    with pytest.raises(ValueError):
        table.grant("j1", "w1", 0.0, now=0.0)
