"""Coordinator semantics over real loopback sockets: leases, chaos
recovery, idempotent merge, degraded fallback — with in-process workers
so every scenario runs in milliseconds-to-seconds, not minutes."""

import socket
import threading
import time

import pytest

from repro.dist import (
    DistConfig,
    DistCoordinator,
    DistWorker,
    FrameConnection,
    parse_hosts,
    parse_plan,
)
from repro.dist import protocol
from repro.errors import ReproError
from repro.runner import Supervisor, default_jobs
from repro.runner.ledger import Ledger, load_ledger
from repro.serialize import ledger_entries_from_jsonl


def small_jobs(systems=("rm", "relay"), kinds=("lint", "analyze")):
    return default_jobs(
        systems=list(systems),
        kinds=list(kinds),
        seeds=1,
        steps=10,
        seed=0,
        max_states=10_000,
        max_steps=100_000,
        wall_time=30.0,
        fuzz_count=4,
        fuzz_shard=4,
    )


def verdicts(report):
    return sorted((o.job_id, o.status, o.ok, o.detail) for o in report.outcomes)


@pytest.fixture
def fleet():
    """Start in-process dist workers on ephemeral loopback ports; yields
    a factory and tears every worker down afterwards."""
    started = []

    def start(count=1, **kwargs):
        workers = []
        for _ in range(count):
            ports = []
            worker = DistWorker(
                port=0, isolation=False, quiet=True, on_ready=ports.append, **kwargs
            )
            thread = threading.Thread(target=worker.serve_forever, daemon=True)
            thread.start()
            deadline = time.monotonic() + 5.0
            while not ports and time.monotonic() < deadline:
                time.sleep(0.01)
            assert ports, "worker never bound"
            workers.append(worker)
            started.append(worker)
        return workers, [("127.0.0.1", w.port) for w in workers]

    yield start
    for worker in started:
        worker.stop()


def config_for(hosts, **kwargs):
    options = dict(lease_ms=4000, heartbeat_ms=400, timeout=30.0)
    options.update(kwargs)
    return DistConfig(hosts=hosts, **options)


class TestParseHosts:
    def test_parses_lists(self):
        assert parse_hosts("a:1, b:2,c:65535") == [("a", 1), ("b", 2), ("c", 65535)]

    @pytest.mark.parametrize(
        "spec", ["", ",", "nohost", ":1", "h:x", "h:0", "h:70000"]
    )
    def test_rejects_malformed(self, spec):
        with pytest.raises(ReproError):
            parse_hosts(spec)


class TestConfig:
    def test_heartbeat_must_beat_inside_the_lease(self):
        with pytest.raises(ReproError):
            DistConfig(hosts=[("h", 1)], lease_ms=100, heartbeat_ms=100)

    def test_default_reassign_allowance_scales_with_fleet(self):
        config = DistConfig(hosts=[("a", 1), ("b", 2)])
        assert config.max_reassigns == 9


class TestHappyPath:
    def test_campaign_completes_with_identical_verdicts(self, fleet, tmp_path):
        base = Supervisor(small_jobs(), workers=0, cache=False).run()
        _workers, hosts = fleet(2)
        ledger_path = str(tmp_path / "dist-ledger.jsonl")
        with Ledger(ledger_path) as ledger:
            report = DistCoordinator(
                small_jobs(), config_for(hosts), ledger=ledger
            ).run()
        assert report.ok and not report.interrupted
        assert verdicts(report) == verdicts(base)
        # The ledger is a normal campaign ledger: resumable and complete.
        state = load_ledger(ledger_path)
        assert state.complete and state.ended
        assert not state.foreign_to()  # written right here

    def test_done_entries_carry_writer_identity(self, fleet, tmp_path):
        _workers, hosts = fleet(1)
        ledger_path = str(tmp_path / "ledger.jsonl")
        with Ledger(ledger_path) as ledger:
            DistCoordinator(
                small_jobs(systems=("rm",)), config_for(hosts), ledger=ledger
            ).run()
        entries = ledger_entries_from_jsonl(open(ledger_path).read())
        assert all(e.get("host") == socket.gethostname() for e in entries)
        assert all(isinstance(e.get("pid"), int) for e in entries)

    def test_telemetry_counts_assignments_and_results(self, fleet):
        _workers, hosts = fleet(2)
        report = DistCoordinator(small_jobs(), config_for(hosts)).run()
        counters = report.telemetry["counters"]
        assert counters["dist.jobs"] == 4
        assert counters["dist.results"] == 4
        assert counters["dist.assigned"] == 4
        assert counters["dist.connects"] >= 1


class TestChaosRecovery:
    def test_severed_result_frame_reassigns_with_zero_lost_jobs(self, fleet, tmp_path):
        # The worker tears the connection mid-frame while shipping its
        # first result; the coordinator reclaims, re-dials, reassigns.
        (worker,), hosts = fleet(1, chaos=parse_plan("sever@result:1"))
        ledger_path = str(tmp_path / "ledger.jsonl")
        with Ledger(ledger_path) as ledger:
            report = DistCoordinator(
                small_jobs(), config_for(hosts), ledger=ledger
            ).run()
        assert report.ok
        assert len(report.outcomes) == 4
        assert worker.chaos_injected == ["sever@result:1"]
        counters = report.telemetry["counters"]
        assert counters["dist.reassigned"] == 1
        assert counters["dist.reconnects"] >= 1
        # The infrastructure attempt is on the record, classified crash,
        # stamped with the worker's identity and the lease epoch.
        entries = ledger_entries_from_jsonl(open(ledger_path).read())
        infra = [
            e
            for e in entries
            if e["kind"] == "attempt" and e["classification"] == "crash"
        ]
        assert len(infra) == 1
        assert infra[0]["epoch"] == 1
        assert infra[0]["worker"] == worker.worker_id
        # Exactly one done entry per job: nothing lost, nothing doubled.
        done = [e["job_id"] for e in entries if e["kind"] == "done"]
        assert sorted(done) == sorted(j.job_id for j in small_jobs())

    def test_duplicate_result_discarded_by_epoch_merge(self, fleet):
        (worker,), hosts = fleet(1, chaos=parse_plan("dup@result:1"))
        report = DistCoordinator(small_jobs(), config_for(hosts)).run()
        assert report.ok and len(report.outcomes) == 4
        counters = report.telemetry["counters"]
        assert counters["dist.stale_results"] == 1
        assert counters["dist.results"] == 4
        assert "dist.duplicate_outcomes" not in counters

    def test_dropped_heartbeats_ride_out_inside_the_lease(self, fleet):
        (worker,), hosts = fleet(1, chaos=parse_plan("drop@heartbeat:1"))
        report = DistCoordinator(
            small_jobs(systems=("rm",)), config_for(hosts, heartbeat_ms=300)
        ).run()
        assert report.ok
        assert "dist.lease_expired" not in report.telemetry["counters"]


class TestLeaseExpiry:
    def test_silent_worker_loses_its_lease_and_the_job_moves(self, fleet, tmp_path):
        # A hand-rolled "worker" that registers, accepts the assignment,
        # and then goes silent — the connection stays open, so only the
        # lease watchdog can notice.  The real worker finishes the work.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        silent_port = listener.getsockname()[1]
        assigned = threading.Event()

        def silent_worker():
            while True:
                try:
                    sock, _ = listener.accept()
                except OSError:
                    return
                conn = FrameConnection(sock)
                try:
                    hello = conn.recv(timeout=5.0)
                    if hello is None:
                        continue
                    conn.send(
                        {
                            "kind": "register",
                            "protocol": protocol.PROTOCOL_VERSION,
                            "worker_id": "silent",
                            "host": "nowhere",
                            "pid": 1,
                            "slots": 1,
                        }
                    )
                    frame = conn.recv(timeout=5.0)
                    if frame and frame.get("kind") == "assign":
                        assigned.set()
                    while True:  # hold the socket open, say nothing
                        if conn.recv(timeout=0.5) is None:
                            continue
                except Exception:
                    pass

        threading.Thread(target=silent_worker, daemon=True).start()
        (_real,), hosts = fleet(1)
        hosts = [("127.0.0.1", silent_port)] + hosts
        ledger_path = str(tmp_path / "ledger.jsonl")
        with Ledger(ledger_path) as ledger:
            report = DistCoordinator(
                small_jobs(),
                config_for(hosts, lease_ms=600, heartbeat_ms=150),
                ledger=ledger,
            ).run()
        listener.close()
        assert assigned.is_set(), "the silent worker was never assigned a job"
        assert report.ok and len(report.outcomes) == 4
        counters = report.telemetry["counters"]
        assert counters["dist.lease_expired"] >= 1
        entries = ledger_entries_from_jsonl(open(ledger_path).read())
        timeouts = [
            e
            for e in entries
            if e["kind"] == "attempt" and e["classification"] == "timeout"
        ]
        assert timeouts and timeouts[0]["worker"] == "silent"


class TestDegradedMode:
    def test_no_reachable_workers_falls_back_to_local_pool(self, tmp_path):
        # A port nothing listens on: connection refused immediately.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        base = Supervisor(small_jobs(), workers=0, cache=False).run()
        coordinator = DistCoordinator(
            small_jobs(),
            config_for([("127.0.0.1", dead_port)], connect_timeout=0.5),
        )
        report = coordinator.run()
        assert coordinator.degraded
        assert report.ok and len(report.outcomes) == 4
        assert verdicts(report) == verdicts(base)

    def test_ledger_still_written_in_degraded_mode(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        ledger_path = str(tmp_path / "ledger.jsonl")
        with Ledger(ledger_path) as ledger:
            DistCoordinator(
                small_jobs(systems=("rm",)),
                config_for([("127.0.0.1", dead_port)], connect_timeout=0.5),
                ledger=ledger,
            ).run()
        state = load_ledger(ledger_path)
        assert state.complete


class TestCacheSync:
    def test_worker_verdicts_flow_back_and_warm_the_next_campaign(self, fleet, tmp_path):
        from repro.cache.store import DirBackend, VerdictCache

        coordinator_cache = VerdictCache(
            backend=DirBackend(str(tmp_path / "pool"))
        )
        _w, hosts = fleet(1)
        jobs = small_jobs(systems=("rm",))
        first = DistCoordinator(
            jobs, config_for(hosts), cache=coordinator_cache
        ).run()
        assert first.ok
        pulled = first.telemetry["counters"].get("dist.cache_pulled", 0)
        assert pulled >= 1
        # A fresh worker, same coordinator pool: assignments carry the
        # cached verdicts and the worker answers without recomputing.
        _w2, hosts2 = fleet(1)
        second = DistCoordinator(
            small_jobs(systems=("rm",)),
            config_for(hosts2),
            cache=coordinator_cache,
        ).run()
        assert second.ok
        assert second.telemetry["counters"].get("dist.cache_pushed", 0) >= 1
        assert verdicts(first) == verdicts(second)
