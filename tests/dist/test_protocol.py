"""The framed wire format: length prefixing, torn frames, thread-safe
interleaving-free sends."""

import socket
import threading

import pytest

from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameConnection,
    ProtocolError,
    decode_body,
    encode_frame,
)


def pair():
    a, b = socket.socketpair()
    return FrameConnection(a), FrameConnection(b)


def test_roundtrip():
    tx, rx = pair()
    tx.send({"kind": "ping", "n": 7})
    assert rx.recv(timeout=1.0) == {"kind": "ping", "n": 7}
    assert tx.frames_sent == 1 and rx.frames_received == 1


def test_many_frames_in_one_stream():
    tx, rx = pair()
    for i in range(20):
        tx.send({"kind": "tick", "i": i})
    got = [rx.recv(timeout=1.0)["i"] for _ in range(20)]
    assert got == list(range(20))


def test_recv_timeout_returns_none():
    _tx, rx = pair()
    assert rx.recv(timeout=0.05) is None


def test_byte_at_a_time_delivery_still_frames(monkeypatch):
    # A congested peer dribbling single bytes must still yield whole
    # frames — partial reads buffer across recv calls.
    a, b = socket.socketpair()
    rx = FrameConnection(b)
    raw = encode_frame({"kind": "slow", "ok": True})
    for i in range(len(raw)):
        a.sendall(raw[i : i + 1])
    assert rx.recv(timeout=1.0) == {"kind": "slow", "ok": True}


def test_eof_between_frames_is_clean_close():
    tx, rx = pair()
    tx.send({"kind": "bye"})
    tx.sock.close()
    assert rx.recv(timeout=1.0) == {"kind": "bye"}
    with pytest.raises(ConnectionClosed) as excinfo:
        rx.recv(timeout=1.0)
    assert "torn" not in str(excinfo.value)


def test_eof_mid_frame_is_a_torn_frame():
    a, b = socket.socketpair()
    rx = FrameConnection(b)
    raw = encode_frame({"kind": "result", "payload": {"x": 1}})
    a.sendall(raw[: len(raw) // 2])
    a.close()
    with pytest.raises(ConnectionClosed) as excinfo:
        rx.recv(timeout=1.0)
    assert "torn frame" in str(excinfo.value)


def test_half_frame_never_parses_as_a_smaller_message():
    # The length prefix guarantees a torn write is detected rather than
    # some prefix of the JSON parsing as its own message.
    a, b = socket.socketpair()
    rx = FrameConnection(b)
    raw = encode_frame({"kind": "result", "detail": "x" * 100})
    a.sendall(raw[:30])
    assert rx.recv(timeout=0.05) is None  # waiting for the rest, not parsing
    a.close()
    with pytest.raises(ConnectionClosed):
        rx.recv(timeout=1.0)


def test_oversized_announced_length_rejected():
    a, b = socket.socketpair()
    rx = FrameConnection(b)
    import struct

    a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError):
        rx.recv(timeout=1.0)


def test_encode_rejects_kindless_and_unserialisable():
    with pytest.raises(ProtocolError):
        encode_frame({"no": "kind"})
    with pytest.raises(ProtocolError):
        encode_frame({"kind": "x", "bad": object()})


def test_decode_rejects_non_dict_bodies():
    with pytest.raises(ProtocolError):
        decode_body(b"[1, 2, 3]")
    with pytest.raises(ProtocolError):
        decode_body(b"not json at all")


def test_send_after_close_raises():
    tx, _rx = pair()
    tx.close()
    with pytest.raises(ConnectionClosed):
        tx.send({"kind": "ping"})
    with pytest.raises(ConnectionClosed):
        tx.recv(timeout=0.05)


def test_concurrent_sends_never_interleave():
    # Two threads hammering one connection (the worker's heartbeat
    # thread + result path): every frame must arrive intact.
    tx, rx = pair()
    n = 50

    def pump(kind):
        for i in range(n):
            tx.send({"kind": kind, "i": i, "pad": "z" * 512})

    threads = [
        threading.Thread(target=pump, args=(k,)) for k in ("heartbeat", "result")
    ]
    for t in threads:
        t.start()
    got = [rx.recv(timeout=2.0) for _ in range(2 * n)]
    for t in threads:
        t.join()
    by_kind = {"heartbeat": [], "result": []}
    for frame in got:
        by_kind[frame["kind"]].append(frame["i"])
    assert by_kind["heartbeat"] == list(range(n))
    assert by_kind["result"] == list(range(n))
