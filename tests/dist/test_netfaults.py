"""Deterministic network faults: spec parsing and each op's effect on
a real socket pair."""

import socket

import pytest

from repro.dist.netfaults import FaultPlan, FaultyConnection, parse_plan
from repro.dist.protocol import ConnectionClosed, FrameConnection
from repro.errors import ReproError


def chaos_pair(plan, counts=None):
    a, b = socket.socketpair()
    return FaultyConnection(a, plan, counts=counts), FrameConnection(b)


class TestParsePlan:
    def test_full_grammar(self):
        plan = parse_plan("sever@result:2,dup@result:1,delay@heartbeat:3:150")
        assert plan.lookup("result", 2) == ("sever", None)
        assert plan.lookup("result", 1) == ("dup", None)
        assert plan.lookup("heartbeat", 3) == ("delay", 150)
        assert plan.lookup("result", 3) is None
        assert plan.describe() == "delay@heartbeat:3:150,dup@result:1,sever@result:2"

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "sever",
            "sever@result",
            "melt@result:1",
            "sever@result:zero",
            "sever@result:0",
            "delay@result:1",  # delay without its ms arg
            "delay@result:1:soon",
            "sever@result:1:2:3",
            "drop@result:1,dup@result:1",  # one op per frame
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ReproError):
            parse_plan(spec)


class TestFaultOps:
    def test_drop_swallows_exactly_that_frame(self):
        tx, rx = chaos_pair(FaultPlan().add("drop", "result", 2))
        for i in range(3):
            tx.send({"kind": "result", "i": i})
        assert [rx.recv(timeout=1.0)["i"] for i in range(2)] == [0, 2]
        assert tx.injected == ["drop@result:2"]

    def test_dup_sends_the_frame_twice(self):
        tx, rx = chaos_pair(FaultPlan().add("dup", "result", 1))
        tx.send({"kind": "result", "i": 0})
        assert rx.recv(timeout=1.0)["i"] == 0
        assert rx.recv(timeout=1.0)["i"] == 0

    def test_reorder_releases_after_the_next_frame(self):
        tx, rx = chaos_pair(FaultPlan().add("reorder", "result", 1))
        tx.send({"kind": "result", "i": 0})
        assert rx.recv(timeout=0.05) is None  # held
        tx.send({"kind": "result", "i": 1})
        assert [rx.recv(timeout=1.0)["i"] for _ in range(2)] == [1, 0]

    def test_delay_sleeps_then_delivers(self):
        tx, rx = chaos_pair(FaultPlan().add("delay", "result", 1, arg=10))
        tx.send({"kind": "result", "i": 0})
        assert rx.recv(timeout=1.0)["i"] == 0

    def test_sever_tears_mid_frame(self):
        tx, rx = chaos_pair(FaultPlan().add("sever", "result", 1))
        with pytest.raises(ConnectionClosed):
            tx.send({"kind": "result", "payload": {"pad": "z" * 200}})
        # The reader must see a *torn* frame, never a short parse.
        with pytest.raises(ConnectionClosed) as excinfo:
            while True:
                rx.recv(timeout=1.0)
        assert "torn frame" in str(excinfo.value)

    def test_ordinals_count_per_kind_not_globally(self):
        tx, rx = chaos_pair(FaultPlan().add("drop", "result", 1))
        tx.send({"kind": "heartbeat"})
        tx.send({"kind": "heartbeat"})
        tx.send({"kind": "result", "i": 0})  # first *result* → dropped
        tx.send({"kind": "result", "i": 1})
        kinds = []
        for _ in range(3):
            kinds.append(rx.recv(timeout=1.0))
        assert [f["kind"] for f in kinds] == ["heartbeat", "heartbeat", "result"]
        assert kinds[-1]["i"] == 1

    def test_shared_counts_span_connections(self):
        # The dist worker shares one counts dict across sessions, so a
        # one-shot fault fires once for the daemon's lifetime.
        plan = FaultPlan().add("drop", "result", 1)
        counts = {}
        tx1, rx1 = chaos_pair(plan, counts=counts)
        tx1.send({"kind": "result", "i": 0})  # dropped
        assert rx1.recv(timeout=0.05) is None
        tx2, rx2 = chaos_pair(plan, counts=counts)
        tx2.send({"kind": "result", "i": 1})  # second result ever: clean
        assert rx2.recv(timeout=1.0)["i"] == 1
