"""Dependency-closure fingerprints (:mod:`repro.cache.fingerprint`).

The invariant under test: a ``(kind, system)`` verdict key moves iff a
module *inside* that pair's dependency closure changes.  Editing
``repro.serve`` must leave ``check rm`` warm; editing the system's own
module — or the zone engine everything rides on — must invalidate it.
"""

import os
import shutil

from repro.cache.fingerprint import (
    KIND_ROOTS,
    SYSTEM_SEEDS,
    closure_fingerprint,
    dependency_closure,
    source_fingerprint,
)


def _package_root():
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _edited_copy(tmp_path, relpath, name="edited"):
    """A copy of the installed package with one module touched."""
    root = tmp_path / name / "repro"
    shutil.copytree(
        _package_root(), root, ignore=shutil.ignore_patterns("__pycache__")
    )
    target = root / relpath
    target.write_text(target.read_text() + "\n# touched\n")
    return str(root)


def _pristine_copy(tmp_path):
    root = tmp_path / "pristine" / "repro"
    shutil.copytree(
        _package_root(), root, ignore=shutil.ignore_patterns("__pycache__")
    )
    return str(root)


class TestClosureContents:
    def test_engine_kinds_exclude_orchestration(self):
        for kind in ("check", "lint", "analyze", "perturb"):
            mods = dependency_closure(kind, "rm")
            assert not any(m.startswith("repro.serve") for m in mods), kind
            assert not any(m.startswith("repro.dist") for m in mods), kind
            assert "repro.cli" not in mods, kind

    def test_system_partition(self):
        rm = dependency_closure("check", "rm")
        relay = dependency_closure("check", "relay")
        assert "repro.systems.resource_manager" in rm
        assert "repro.systems.mappings_rm" in rm
        assert "repro.systems.signal_relay" not in rm
        assert "repro.systems.signal_relay" in relay
        assert "repro.systems.resource_manager" not in relay

    def test_intra_system_dependencies_followed(self):
        # interrupt builds on the resource manager — a genuine
        # cross-system dependency the closure must keep.
        mods = dependency_closure("lint", "interrupt")
        assert "repro.systems.extensions.interrupt_manager" in mods
        assert "repro.systems.resource_manager" in mods

    def test_zone_engine_always_in_engine_closures(self):
        for kind in ("check", "lint", "analyze", "perturb", "bench"):
            mods = dependency_closure(kind, "rm")
            assert "repro.zones.dbm" in mods, kind

    def test_unknown_kind_falls_back_to_whole_package(self):
        everything = dependency_closure("nonsense", "rm")
        assert any(m.startswith("repro.serve") for m in everything)
        assert any(m.startswith("repro.dist") for m in everything)
        assert set(dependency_closure("check", "rm")) < set(everything)

    def test_unknown_system_falls_back_to_whole_package(self):
        everything = dependency_closure("check", "mystery-box")
        assert any(m.startswith("repro.serve") for m in everything)

    def test_gen_systems_share_generator_closure(self):
        mods = dependency_closure("check", "gen:fischer-3")
        assert any(m.startswith("repro.gen") for m in mods)
        assert "repro.systems.extensions.fischer" in mods
        assert mods == dependency_closure("check", "gen:relay_line-4")

    def test_kind_and_seed_maps_name_real_modules(self):
        mods = set(dependency_closure("nonsense", "rm"))  # the full roster
        for kind, roots in KIND_ROOTS.items():
            for root in roots:
                absolute = "repro." + root
                assert any(
                    m == absolute or m.startswith(absolute + ".") for m in mods
                ), (kind, root)
        for system, seeds in SYSTEM_SEEDS.items():
            for seed in seeds:
                assert "repro." + seed in mods, (system, seed)


class TestInvalidation:
    def test_edit_outside_closure_preserves_fingerprint(self, tmp_path):
        before = closure_fingerprint("check", "rm", _pristine_copy(tmp_path))
        after = closure_fingerprint(
            "check", "rm", _edited_copy(tmp_path, "serve/app.py")
        )
        assert before == after

    def test_edit_system_module_moves_fingerprint(self, tmp_path):
        before = closure_fingerprint("check", "rm", _pristine_copy(tmp_path))
        after = closure_fingerprint(
            "check", "rm", _edited_copy(tmp_path, "systems/resource_manager.py")
        )
        assert before != after

    def test_edit_zone_engine_moves_fingerprint(self, tmp_path):
        before = closure_fingerprint("check", "rm", _pristine_copy(tmp_path))
        after = closure_fingerprint(
            "check", "rm", _edited_copy(tmp_path, "zones/dbm.py", name="edited-zones")
        )
        assert before != after

    def test_edit_other_system_preserves_fingerprint(self, tmp_path):
        before = closure_fingerprint("check", "rm", _pristine_copy(tmp_path))
        after = closure_fingerprint(
            "check", "rm", _edited_copy(tmp_path, "systems/signal_relay.py")
        )
        assert before == after

    def test_whole_package_fingerprint_still_total(self, tmp_path):
        # The legacy whole-package hash moves on *any* edit — CI's
        # actions/cache restore key relies on that.
        before = source_fingerprint(_pristine_copy(tmp_path))
        after = source_fingerprint(_edited_copy(tmp_path, "serve/app.py"))
        assert before != after

    def test_closure_fingerprints_memoised(self):
        assert closure_fingerprint("check", "rm") == closure_fingerprint(
            "check", "rm"
        )
        assert closure_fingerprint("check", "rm") != closure_fingerprint(
            "check", "relay"
        )
