"""On-disk verdict-cache behaviour (:mod:`repro.cache.store`)."""

import glob
import os
import shutil

from repro.cache.fingerprint import verdict_key
from repro.cache.store import VerdictCache, cache_enabled, default_cache
from repro.obs.instrument import Recorder, recording

PAYLOAD = {"ok": True, "detail": "states=12", "schema": 1}


def _entry_files(root):
    return glob.glob(os.path.join(root, "v1", "*", "*.json"))


class TestRoundTrip:
    def test_store_then_lookup(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        parts = {"seeds": 3, "epsilon": "1/32"}
        assert cache.lookup("check", "rm", parts) is None
        assert cache.store("check", "rm", parts, PAYLOAD)
        assert cache.lookup("check", "rm", parts) == PAYLOAD
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "errors": 0}

    def test_layout_is_key_addressed(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("check", "rm", {}, PAYLOAD)
        key = verdict_key("check", "rm", {})
        expected = os.path.join(str(tmp_path), "v1", key[:2], key + ".json")
        assert _entry_files(str(tmp_path)) == [expected]

    def test_distinct_parts_do_not_collide(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("check", "rm", {"seeds": 3}, PAYLOAD)
        assert cache.lookup("check", "rm", {"seeds": 4}) is None

    def test_telemetry_counters(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        recorder = Recorder(name="cache-test", max_events=0)
        with recording(recorder):
            cache.lookup("check", "rm", {})
            cache.store("check", "rm", {}, PAYLOAD)
            cache.lookup("check", "rm", {})
        counters = recorder.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.stores"] == 1
        assert counters["cache.hits"] == 1

    def test_stats_line(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("check", "rm", {}, PAYLOAD)
        cache.lookup("check", "rm", {})
        assert cache.stats_line() == "cache: hits=1 misses=0 stores=1 errors=0"


class TestCorruption:
    def test_torn_entry_is_a_miss_and_counted(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("check", "rm", {}, PAYLOAD)
        (path,) = _entry_files(str(tmp_path))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"torn":')
        assert cache.lookup("check", "rm", {}) is None
        assert cache.errors == 1

    def test_misfiled_entry_is_a_miss(self, tmp_path):
        # An entry copied to another key's address (corrupt sync, bad
        # restore) must not answer for that key.
        cache = VerdictCache(str(tmp_path))
        cache.store("check", "rm", {}, PAYLOAD)
        (path,) = _entry_files(str(tmp_path))
        other = verdict_key("check", "relay", {})
        other_path = os.path.join(str(tmp_path), "v1", other[:2], other + ".json")
        os.makedirs(os.path.dirname(other_path), exist_ok=True)
        shutil.copyfile(path, other_path)
        assert cache.lookup("check", "relay", {}) is None
        assert cache.errors == 1

    def test_non_json_payload_refused(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        assert not cache.store("check", "rm", {}, {"bad": object()})
        assert cache.errors == 1
        assert _entry_files(str(tmp_path)) == []

    def test_unwritable_root_degrades_to_noop(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = VerdictCache(str(blocker))
        assert not cache.store("check", "rm", {}, PAYLOAD)
        assert cache.errors == 1
        assert cache.lookup("check", "rm", {}) is None


class TestEnvironmentGate:
    def test_disabled_by_conftest_default(self):
        # tests/conftest.py pins REPRO_CACHE=0 for the whole suite.
        assert not cache_enabled()
        assert default_cache() is None

    def test_enabled_when_env_allows(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = default_cache()
        assert cache is not None
        assert cache.root == str(tmp_path)

    def test_explicit_override_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache(enabled=True) is not None
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert default_cache(enabled=False) is None

    def test_false_words(self, monkeypatch):
        for word in ("0", "false", "NO", " off "):
            monkeypatch.setenv("REPRO_CACHE", word)
            assert not cache_enabled()
        monkeypatch.setenv("REPRO_CACHE", "yes")
        assert cache_enabled()
