"""Content-addressing tests (:mod:`repro.cache.fingerprint`)."""

from fractions import Fraction

from repro.cache.fingerprint import source_fingerprint, verdict_key


class TestSourceFingerprint:
    def test_stable_across_calls(self):
        assert source_fingerprint() == source_fingerprint()

    def test_is_hex_sha256(self):
        digest = source_fingerprint()
        assert len(digest) == 64
        int(digest, 16)

    def test_tracks_source_edits(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "b.py").write_text("y = 2\n")
        before = source_fingerprint(str(pkg))
        # Memoised per root: a second probe of the same tree is free
        # and identical.
        assert source_fingerprint(str(pkg)) == before
        edited = tmp_path / "edited"
        edited.mkdir()
        (edited / "a.py").write_text("x = 1  # changed\n")
        (edited / "b.py").write_text("y = 2\n")
        assert source_fingerprint(str(edited)) != before

    def test_ignores_non_python_files(self, tmp_path):
        plain = tmp_path / "plain"
        plain.mkdir()
        (plain / "a.py").write_text("x = 1\n")
        noisy = tmp_path / "noisy"
        noisy.mkdir()
        (noisy / "a.py").write_text("x = 1\n")
        (noisy / "notes.txt").write_text("scratch\n")
        assert source_fingerprint(str(plain)) == source_fingerprint(str(noisy))


class TestVerdictKey:
    def test_deterministic(self):
        parts = {"seeds": 3, "epsilon": Fraction(1, 32)}
        assert verdict_key("check", "rm", parts) == verdict_key("check", "rm", parts)

    def test_distinguishes_kind_system_and_parts(self):
        base = verdict_key("check", "rm", {"seeds": 3})
        assert verdict_key("lint", "rm", {"seeds": 3}) != base
        assert verdict_key("check", "relay", {"seeds": 3}) != base
        assert verdict_key("check", "rm", {"seeds": 4}) != base

    def test_fraction_canonicalisation(self):
        # Exact fractions and their "p/q" string spelling address the
        # same entry — job params ride as strings across process
        # boundaries.
        assert verdict_key("check", "rm", {"epsilon": Fraction(1, 32)}) == verdict_key(
            "check", "rm", {"epsilon": "1/32"}
        )

    def test_dict_order_irrelevant(self):
        assert verdict_key("check", "rm", {"a": 1, "b": 2}) == verdict_key(
            "check", "rm", {"b": 2, "a": 1}
        )

    def test_nested_structures(self):
        parts = {"grid": [Fraction(1, 2), Fraction(3)], "opts": {"deep": Fraction(7, 5)}}
        spelled = {"grid": ["1/2", "3/1"], "opts": {"deep": "7/5"}}
        assert verdict_key("check", "rm", parts) == verdict_key("check", "rm", spelled)
