"""Cache-entry wire format (:func:`repro.serialize.cache_entry_to_json`)."""

import json

import pytest

from repro.serialize import (
    CACHE_SCHEMA_VERSION,
    SerializationError,
    cache_entry_from_json,
    cache_entry_to_json,
)

KEY = "ab" * 32
PAYLOAD = {"ok": True, "steps": 7}
META = {"kind": "check", "system": "rm"}


def test_round_trip():
    text = cache_entry_to_json(KEY, PAYLOAD, META)
    assert cache_entry_from_json(text, expected_key=KEY) == PAYLOAD


def test_entry_is_self_describing():
    body = json.loads(cache_entry_to_json(KEY, PAYLOAD, META))
    assert body["schema"] == CACHE_SCHEMA_VERSION
    assert body["key"] == KEY
    assert body["meta"] == META


def test_torn_entry_raises():
    text = cache_entry_to_json(KEY, PAYLOAD, META)
    with pytest.raises(SerializationError):
        cache_entry_from_json(text[: len(text) // 2], expected_key=KEY)


def test_key_mismatch_raises():
    text = cache_entry_to_json(KEY, PAYLOAD, META)
    with pytest.raises(SerializationError):
        cache_entry_from_json(text, expected_key="cd" * 32)


def test_future_schema_refused():
    body = json.loads(cache_entry_to_json(KEY, PAYLOAD, META))
    body["schema"] = CACHE_SCHEMA_VERSION + 1
    with pytest.raises(SerializationError):
        cache_entry_from_json(json.dumps(body), expected_key=KEY)


def test_non_dict_payload_refused():
    body = json.loads(cache_entry_to_json(KEY, PAYLOAD, META))
    body["payload"] = [1, 2, 3]
    with pytest.raises(SerializationError):
        cache_entry_from_json(json.dumps(body), expected_key=KEY)


def test_unserialisable_payload_raises_on_write():
    with pytest.raises(SerializationError):
        cache_entry_to_json(KEY, {"bad": object()}, META)
