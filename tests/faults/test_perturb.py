"""Tests for the perturbation operators."""

from fractions import Fraction as F

import pytest

from repro.errors import PerturbationError, SchedulingDeadlockError
from repro.faults.perturb import (
    Drift,
    delay_class,
    drop_actions,
    perturb_boundmap,
    perturb_conditions,
    perturb_interval,
)
from repro.timed.interval import INFINITY, Interval
from repro.timed.conditions import TimingCondition


class TestDrift:
    def test_rejects_float_epsilon(self):
        with pytest.raises(PerturbationError):
            Drift(0.1)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(PerturbationError):
            Drift(F(-1, 2))

    def test_rejects_unknown_mode_and_direction(self):
        with pytest.raises(PerturbationError):
            Drift(F(1, 2), mode="stretch")
        with pytest.raises(PerturbationError):
            Drift(F(1, 2), direction="sideways")

    def test_class_scoping(self):
        drift = Drift(F(1, 4), classes=["TICK"])
        assert drift.applies_to("TICK")
        assert not drift.applies_to("GRANT")
        assert Drift(F(1, 4)).applies_to("anything")


class TestPerturbInterval:
    def test_widen_scale(self):
        out = perturb_interval(Interval(2, 4), Drift(F(1, 4), direction="widen"))
        assert (out.lo, out.hi) == (F(3, 2), 5)

    def test_tighten_scale(self):
        out = perturb_interval(Interval(2, 4), Drift(F(1, 4), direction="tighten"))
        assert (out.lo, out.hi) == (F(5, 2), 3)

    def test_widen_shift_clamps_lower_at_zero(self):
        out = perturb_interval(
            Interval(1, 4), Drift(2, mode="shift", direction="widen")
        )
        assert (out.lo, out.hi) == (0, 6)

    def test_tighten_shift(self):
        out = perturb_interval(
            Interval(1, 4), Drift(F(1, 2), mode="shift", direction="tighten")
        )
        assert (out.lo, out.hi) == (F(3, 2), F(7, 2))

    def test_infinite_upper_end_is_preserved(self):
        out = perturb_interval(Interval(1, INFINITY), Drift(F(1, 2), direction="widen"))
        assert out.hi == INFINITY
        assert out.lo == F(1, 2)

    def test_tightening_past_inversion_raises(self):
        with pytest.raises(PerturbationError):
            perturb_interval(Interval(2, 3), Drift(F(1, 2), direction="tighten"))

    def test_exactness(self):
        out = perturb_interval(Interval(F(1, 3), F(2, 3)), Drift(F(1, 7)))
        assert out.lo == F(1, 3) * F(8, 7)
        assert out.hi == F(2, 3) * F(6, 7)


class TestPerturbBoundmap:
    def _rm(self):
        from repro.systems import ResourceManagerParams, resource_manager

        return resource_manager(
            ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))
        )

    def test_same_base_automaton(self):
        timed = self._rm()
        out = perturb_boundmap(timed, Drift(F(1, 10)))
        assert out.automaton is timed.automaton

    def test_trivial_bounds_untouched(self):
        from repro.systems.extensions.chain import ChainSystem, event_class_name

        timed = ChainSystem([Interval(1, 2)]).timed
        out = perturb_boundmap(timed, Drift(F(1, 10), direction="widen"))
        assert out.boundmap[event_class_name(0)] == timed.boundmap[event_class_name(0)]
        assert out.boundmap[event_class_name(1)] != timed.boundmap[event_class_name(1)]

    def test_class_scoped_drift(self):
        timed = self._rm()
        out = perturb_boundmap(timed, Drift(F(1, 10), classes=["TICK"]))
        assert out.boundmap["TICK"] != timed.boundmap["TICK"]
        assert out.boundmap["LOCAL"] == timed.boundmap["LOCAL"]


class TestPerturbConditions:
    def _condition(self, name="U"):
        return TimingCondition.after_action(name, Interval(2, 4), "a", ["b"])

    def test_widen_and_restrict_by_name(self):
        conds = (self._condition("U"), self._condition("V"))
        out = perturb_conditions(conds, Drift(F(1, 4), direction="widen"), names=["U"])
        assert out[0].interval == Interval(F(3, 2), 5)
        assert out[1].interval == Interval(2, 4)

    def test_structure_preserved(self):
        (out,) = perturb_conditions((self._condition(),), Drift(F(1, 4)))
        original = self._condition()
        assert out.name == original.name
        assert out.interval == Interval(F(5, 2), 3)


class TestInjection:
    def _tiny(self):
        from repro.ioa.actions import Kind
        from repro.ioa.guarded import ActionSpec, GuardedAutomaton
        from repro.ioa.partition import Partition
        from repro.timed.boundmap import Boundmap, TimedAutomaton

        automaton = GuardedAutomaton(
            "tiny",
            [True],
            [
                ActionSpec(
                    "go",
                    Kind.OUTPUT,
                    precondition=lambda up: up,
                    effect=lambda _up: False,
                )
            ],
            partition=Partition.from_pairs([("GO", ["go"])]),
        )
        return TimedAutomaton(automaton, Boundmap({"GO": Interval(1, 2)}))

    def test_delay_class_shifts_both_ends(self):
        out = delay_class(self._tiny(), "GO", F(1, 2))
        assert out.boundmap["GO"] == Interval(F(3, 2), F(5, 2))

    def test_delay_unknown_class_raises(self):
        with pytest.raises(PerturbationError):
            delay_class(self._tiny(), "NOPE", 1)

    def test_dropped_action_never_fires(self):
        timed = self._tiny()
        out = drop_actions(timed, ["go"])
        (start,) = out.automaton.start_states()
        assert list(out.automaton.transitions(start, "go")) == []
        # Signature and partition survive, so (A, b) still validates.
        assert out.boundmap["GO"] == Interval(1, 2)

    def test_dropped_class_quiesces_under_boundmap_semantics(self):
        import random

        from repro.core.time_automaton import time_of_boundmap
        from repro.sim.scheduler import Simulator
        from repro.sim.strategies import UniformStrategy

        # cond(GO) starts only while the class is enabled, and the drop
        # disables it, so the run is quiescent (length 0) — not an error.
        out = time_of_boundmap(drop_actions(self._tiny(), ["go"]))
        run = Simulator(out, UniformStrategy(random.Random(0))).run(max_steps=5)
        assert len(run.events) == 0

    def test_dropped_requirement_target_is_a_diagnosable_deadlock(self):
        import random

        from repro.core.time_automaton import time_of_conditions
        from repro.sim.scheduler import Simulator
        from repro.sim.strategies import UniformStrategy

        timed = self._tiny()
        requirement = TimingCondition.from_start("U", Interval(1, 2), ["go"])
        dropped = drop_actions(timed, ["go"]).automaton
        out = time_of_conditions(dropped, [requirement], name="tiny-req")
        with pytest.raises(SchedulingDeadlockError) as info:
            Simulator(out, UniformStrategy(random.Random(0))).run(max_steps=5)
        error = info.value
        # The satellite contract: failures carry state, condition, deadline.
        assert error.state is not None
        assert error.condition == "U"
        assert error.deadline == 2
