"""Budget interplay across the checkers (satellite: `CheckOutcome.__bool__`
with `exhausted_budget`, and exploration of deadlocking systems)."""

import random
from fractions import Fraction as F

from repro.core.checker import CheckOutcome
from repro.faults.budget import Budget
from repro.ioa.actions import Kind
from repro.ioa.explorer import check_invariant, explore, iter_steps
from repro.ioa.guarded import ActionSpec, GuardedAutomaton


class TestCheckOutcomeTruthiness:
    def test_ok_and_complete_is_truthy_and_conclusive(self):
        outcome = CheckOutcome(True, 10)
        assert bool(outcome) and outcome.conclusive

    def test_ok_but_exhausted_is_truthy_but_inconclusive(self):
        outcome = CheckOutcome(True, 10, exhausted_budget=True)
        assert bool(outcome)
        assert not outcome.conclusive

    def test_failure_is_falsy_and_always_conclusive(self):
        outcome = CheckOutcome(False, 10)
        assert not bool(outcome) and outcome.conclusive

    def test_failure_under_exhaustion_stays_conclusive(self):
        # A violation found in the checked portion is real regardless of
        # how much was left unchecked.
        outcome = CheckOutcome(False, 10, exhausted_budget=True)
        assert not bool(outcome)
        assert outcome.conclusive


def counter(limit=None):
    """Counts up; with a ``limit`` the last state is a dead end
    (deadlocks mid-exploration)."""

    def precondition(n):
        return limit is None or n < limit

    return GuardedAutomaton(
        "counter",
        [0],
        [
            ActionSpec(
                "inc", Kind.OUTPUT, precondition=precondition, effect=lambda n: n + 1
            )
        ],
    )


class TestExplorerBudget:
    def test_budget_truncates_and_flags(self):
        budget = Budget(max_states=5)
        result = explore(counter(), budget=budget)
        assert result.truncated and result.exhausted_budget
        assert len(result.reachable) <= 5

    def test_unbudgeted_behavior_unchanged(self):
        result = explore(counter(limit=4))
        assert result.reachable == {0, 1, 2, 3, 4}
        assert not result.exhausted_budget

    def test_invariant_check_partial_on_budget(self):
        report = check_invariant(
            counter(), lambda n: n < 1000, budget=Budget(max_states=10)
        )
        assert report.holds
        assert report.exhausted_budget
        assert bool(report)

    def test_invariant_violation_beats_exhaustion(self):
        report = check_invariant(
            counter(), lambda n: n < 3, budget=Budget(max_states=100)
        )
        assert not report.holds
        assert report.counterexample is not None


class TestIterStepsOnDeadlock:
    def test_dead_end_state_yields_no_steps(self):
        automaton = counter(limit=3)
        reachable = explore(automaton).reachable
        steps = list(iter_steps(automaton, reachable))
        # The dead-end state 3 contributes nothing; every other state
        # steps to its successor.
        assert ((3, "inc", 4) not in steps)
        assert set(steps) == {(0, "inc", 1), (1, "inc", 2), (2, "inc", 3)}

    def test_iter_steps_on_truncated_exploration(self):
        result = explore(counter(), budget=Budget(max_states=4))
        steps = list(iter_steps(counter(), result.reachable))
        assert len(steps) == len(result.reachable)


class TestSimulatorBudget:
    def _algorithm(self):
        from repro.core.time_automaton import time_of_boundmap
        from repro.ioa.partition import Partition
        from repro.timed.boundmap import Boundmap, TimedAutomaton
        from repro.timed.interval import Interval

        automaton = GuardedAutomaton(
            "ticker",
            [0],
            [ActionSpec("tick", Kind.OUTPUT, effect=lambda n: n + 1)],
            partition=Partition.from_pairs([("TICK", ["tick"])]),
        )
        return time_of_boundmap(
            TimedAutomaton(automaton, Boundmap({"TICK": Interval(1, 2)}))
        )

    def test_partial_run_on_budget(self):
        from repro.sim.scheduler import Simulator
        from repro.sim.strategies import UniformStrategy

        budget = Budget(max_steps=3)
        run = Simulator(self._algorithm(), UniformStrategy(random.Random(0))).run(
            max_steps=50, budget=budget
        )
        assert len(run.events) == 3
        assert budget.exhausted


class TestZoneBudget:
    def _rm(self):
        from repro.systems import ResourceManagerParams, resource_manager

        return resource_manager(
            ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))
        )

    def test_zone_graph_partial_on_budget(self):
        from repro.zones.zone_graph import explore_zone_graph

        result = explore_zone_graph(self._rm(), budget=Budget(max_states=5))
        assert result.truncated and result.exhausted_budget
        assert result.nodes <= 5

    def test_safety_search_inconclusive_on_budget(self):
        from repro.zones.analysis import search_reachable_state

        result = search_reachable_state(
            self._rm(), lambda state: False, budget=Budget(max_states=3)
        )
        assert result.state is None
        assert result.exhausted_budget
        assert not result.conclusive

    def test_separation_bounds_partial_when_something_measured(self):
        from repro.systems import GRANT
        from repro.zones.analysis import event_separation_bounds

        bounds = event_separation_bounds(
            self._rm(), GRANT, budget=Budget(max_states=2000)
        )
        assert bounds.exhausted_budget in (True, False)  # never raises
