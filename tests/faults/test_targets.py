"""Tests for the per-system perturbation harnesses (kept fast: the
mutex systems probe in milliseconds; the full searches live in
``benchmarks/bench_perturbation.py`` and the CLI acceptance test)."""

from fractions import Fraction as F

import pytest

from repro.errors import ReproError
from repro.faults import Budget, build_perturb_target, perturb_names, probe_tolerance


def budget():
    return Budget(max_states=50_000, max_steps=500_000, wall_time=30)


class TestRegistry:
    def test_names_cover_all_shipped_harnesses(self):
        assert set(perturb_names()) == {
            "rm",
            "relay",
            "chain",
            "fischer",
            "fischer-tight",
            "peterson",
            "tournament",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError):
            build_perturb_target("no-such-system")

    def test_canonical_directions(self):
        assert build_perturb_target("rm").direction == "tighten"
        assert build_perturb_target("fischer").direction == "widen"

    def test_direction_override(self):
        target = build_perturb_target("fischer", direction="tighten", mode="shift")
        assert target.direction == "tighten" and target.mode == "shift"


class TestVerdicts:
    def test_fischer_nominal_passes_and_large_drift_breaks(self):
        target = build_perturb_target("fischer")
        assert target.evaluate(F(0), budget()).ok
        broken = target.evaluate(F(1, 2), budget())
        assert not broken.ok
        assert "mutual exclusion" in broken.detail

    def test_fischer_tight_is_broken_at_zero(self):
        target = build_perturb_target("fischer-tight")
        nominal = target.evaluate(F(0), budget())
        assert not nominal.ok

    def test_peterson_survives_any_drift(self):
        target = build_perturb_target("peterson")
        assert target.evaluate(F(1), budget()).ok

    def test_collapsing_drift_is_a_failing_outcome_not_an_error(self):
        target = build_perturb_target("rm", seeds=1, steps=10)
        outcome = target.evaluate(F(1), budget())
        assert not outcome.ok
        assert "PerturbationError" in outcome.detail

    def test_search_reports_fischer_threshold(self):
        target = build_perturb_target("fischer")
        report = target.search(resolution=F(1, 16), budget_factory=budget)
        assert not report.broken and not report.ceiling_hit
        # Exact threshold is (b - a)/(a + b) = 1/3.
        assert report.tolerance < F(1, 3) <= report.breaking_epsilon

    def test_probe_tolerance_contract(self):
        target, nominal, probe = probe_tolerance(
            "fischer-tight", F(1, 32), budget=budget()
        )
        assert target.name == "fischer-tight"
        assert not nominal.ok
        assert not probe.ok


class TestBudgetDegradation:
    def test_starved_probe_returns_partial_outcome(self):
        target = build_perturb_target("rm", seeds=1, steps=10)
        outcome = target.evaluate(F(0), Budget(max_steps=5))
        assert outcome.ok  # nothing failed in the sliver that ran
        assert outcome.exhausted_budget
        assert not outcome.conclusive
