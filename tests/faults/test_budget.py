"""Tests for the cross-cutting resource budget."""

import pytest

from repro.faults.budget import Budget


class TestValidation:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            Budget(max_states=0)
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
        with pytest.raises(ValueError):
            Budget(wall_time=0)

    def test_unlimited_by_default(self):
        budget = Budget()
        assert not budget.exhausted
        for _ in range(1000):
            assert budget.charge_state()
            assert budget.charge_step()
        assert not budget.exhausted


class TestCharging:
    def test_states_and_steps_are_independent(self):
        budget = Budget(max_states=2, max_steps=3)
        assert budget.charge_state() and budget.charge_state()
        assert not budget.charge_state()
        assert budget.exhausted
        # Steps still had room, but exhaustion is global and sticky.
        assert not budget.charge_step()

    def test_refuses_without_consuming(self):
        budget = Budget(max_steps=5)
        assert budget.charge_step(5)
        assert not budget.charge_step()
        # The refused unit was not consumed and the verdict is stable.
        assert not budget.charge_step()
        assert "steps" in budget.reason

    def test_bulk_charge_that_would_overflow_is_refused(self):
        budget = Budget(max_steps=5)
        assert budget.charge_step(3)
        assert not budget.charge_step(3)
        assert budget.exhausted

    def test_ok_checks_wall_clock(self):
        budget = Budget(wall_time=10_000)
        assert budget.ok()
        tight = Budget(wall_time=0.000001)
        while tight.ok():  # pragma: no cover - immediate in practice
            pass
        assert tight.exhausted
        assert "wall" in tight.reason

    def test_renew_gives_fresh_budget_with_same_limits(self):
        budget = Budget(max_states=1)
        assert budget.charge_state()
        assert not budget.charge_state()
        fresh = budget.renew()
        assert not fresh.exhausted
        assert fresh.charge_state()
        assert not fresh.charge_state()

    def test_repr_mentions_limits(self):
        assert "max_steps" in repr(Budget(max_steps=7))
