"""Tests for the tolerance binary search."""

from fractions import Fraction as F

import pytest

from repro.core.checker import CheckOutcome
from repro.faults.budget import Budget
from repro.faults.tolerance import search_tolerance


def threshold_evaluation(threshold):
    """Passes strictly below ``threshold``, fails at or above it."""

    def evaluate(eps, budget=None):
        return CheckOutcome(eps < threshold, 1, "eps={}".format(eps))

    return evaluate


class TestSearch:
    def test_brackets_a_known_threshold(self):
        report = search_tolerance(
            threshold_evaluation(F(1, 5)), resolution=F(1, 64)
        )
        assert not report.broken and not report.ceiling_hit
        assert report.tolerance < F(1, 5) <= report.breaking_epsilon
        assert report.breaking_epsilon - report.tolerance <= F(1, 64)

    def test_broken_at_zero(self):
        report = search_tolerance(threshold_evaluation(F(0)))
        assert report.broken
        assert report.tolerance is None
        assert report.breaking_epsilon == 0
        assert report.fragile

    def test_ceiling_hit(self):
        report = search_tolerance(threshold_evaluation(F(99)), ceiling=F(2))
        assert report.ceiling_hit
        assert report.tolerance == F(2)
        assert report.breaking_epsilon is None
        assert not report.fragile

    def test_every_probe_is_real_monotone_bracketing(self):
        probed = []

        def evaluate(eps, budget=None):
            probed.append(eps)
            return CheckOutcome(eps < F(1, 3), 1)

        search_tolerance(evaluate, resolution=F(1, 32))
        assert probed[0] == 0 and probed[1] == 1
        assert all(0 <= eps <= 1 for eps in probed)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            search_tolerance(threshold_evaluation(F(1)), ceiling=F(0))
        with pytest.raises(ValueError):
            search_tolerance(threshold_evaluation(F(1)), resolution=F(-1))


class TestBudgetPropagation:
    def test_fresh_budget_per_probe(self):
        budgets = []

        def evaluate(eps, budget=None):
            budgets.append(budget)
            budget.charge_step()
            return CheckOutcome(eps < F(1, 2), 1)

        report = search_tolerance(
            evaluate, budget_factory=lambda: Budget(max_steps=1)
        )
        assert len(set(map(id, budgets))) == len(budgets)
        assert not report.exhausted_budget

    def test_probe_exhaustion_marks_the_report(self):
        def evaluate(eps, budget=None):
            return CheckOutcome(
                eps < F(1, 2), 1, exhausted_budget=(eps == F(1, 2))
            )

        report = search_tolerance(evaluate, resolution=F(1, 4))
        assert report.exhausted_budget

    def test_to_dict_renders_fractions_as_strings(self):
        report = search_tolerance(threshold_evaluation(F(1, 5)))
        payload = report.to_dict()
        assert isinstance(payload["tolerance"], str)
        assert payload["fragile"] is False
        assert "tolerance" in report.render() or "BROKEN" in report.render()
