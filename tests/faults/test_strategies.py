"""Tests for the adversarial scheduling strategies."""

import random
from fractions import Fraction as F

import pytest

from repro.faults.strategies import (
    AdversarialStrategy,
    DeadlinePushStrategy,
    JitterStrategy,
)
from repro.sim.strategies import EagerStrategy, LazyStrategy
from repro.timed.interval import INFINITY


OPTIONS = [("a", 1, 3), ("b", 2, 5)]


class FakeState:
    def __init__(self, now=0):
        self.now = now


class TestAdversarial:
    def test_alternates_between_window_edges(self):
        strategy = AdversarialStrategy(random.Random(0))
        first = strategy.choose(FakeState(), OPTIONS)
        second = strategy.choose(FakeState(), OPTIONS)
        # Ft regime: latest-opening window ("b", lo=2) at its earliest.
        assert first == ("b", 2)
        # Lt regime: the tightest deadline is "a"'s hi=3.
        assert second == ("a", 3)

    def test_zeno_guard_pushes_now_filler_to_deadline(self):
        strategy = AdversarialStrategy(random.Random(0))
        action, t = strategy.choose(FakeState(now=2), [("only", 2, 7)])
        assert (action, t) == ("only", 7)

    def test_unbounded_window_capped(self):
        strategy = AdversarialStrategy(random.Random(0), unbounded_extension=4)
        strategy.choose(FakeState(), OPTIONS)  # burn the Ft step
        action, t = strategy.choose(FakeState(), [("u", 1, INFINITY)])
        assert (action, t) == ("u", 5)

    def test_deterministic_per_seed(self):
        runs = []
        for _ in range(2):
            strategy = AdversarialStrategy(random.Random(7))
            runs.append([strategy.choose(FakeState(), OPTIONS) for _ in range(6)])
        assert runs[0] == runs[1]


class TestDeadlinePush:
    def test_fires_exactly_at_min_deadline(self):
        strategy = DeadlinePushStrategy(random.Random(0))
        assert strategy.choose(FakeState(), OPTIONS) == ("a", 3)

    def test_caps_unbounded_deadlines(self):
        strategy = DeadlinePushStrategy(random.Random(0), unbounded_extension=2)
        action, t = strategy.choose(FakeState(), [("u", 1, INFINITY), ("v", 0, 10)])
        assert (action, t) == ("u", 3)


class TestJitter:
    def test_stays_inside_the_window(self):
        inner = DeadlinePushStrategy(random.Random(0))
        strategy = JitterStrategy(inner, jitter=F(1, 2), rng=random.Random(1))
        for _ in range(50):
            action, t = strategy.choose(FakeState(), OPTIONS)
            lo, hi = dict((a, (l, h)) for a, l, h in OPTIONS)[action]
            assert lo <= t <= hi

    def test_zero_jitter_is_the_inner_strategy(self):
        inner = DeadlinePushStrategy(random.Random(0))
        strategy = JitterStrategy(inner, jitter=0, rng=random.Random(1))
        assert strategy.choose(FakeState(), OPTIONS) == ("a", 3)

    def test_rejects_bad_parameters(self):
        inner = DeadlinePushStrategy(random.Random(0))
        with pytest.raises(ValueError):
            JitterStrategy(inner, jitter=-1)
        with pytest.raises(ValueError):
            JitterStrategy(inner, quantum=0)

    def test_delegates_post_choice(self):
        class Recording(DeadlinePushStrategy):
            def pick_post(self, posts):
                self.recorded = True
                return posts[0]

        inner = Recording(random.Random(0))
        strategy = JitterStrategy(inner, rng=random.Random(1))
        strategy.pick_post(["x", "y"])
        assert inner.recorded


class TestUnboundedExtensionSemantics:
    """Satellite: ``unbounded_extension`` is documented, validated, and
    deterministic for the extremal strategies."""

    def test_rejects_nonpositive_or_infinite(self):
        with pytest.raises(ValueError):
            LazyStrategy(random.Random(0), unbounded_extension=0)
        with pytest.raises(ValueError):
            EagerStrategy(random.Random(0), unbounded_extension=-2)
        with pytest.raises(ValueError):
            LazyStrategy(random.Random(0), unbounded_extension=float("inf"))

    def test_lazy_fires_exactly_at_lo_plus_extension(self):
        strategy = LazyStrategy(random.Random(0), unbounded_extension=F(3, 2))
        action, t = strategy.choose(FakeState(), [("u", 2, INFINITY)])
        assert (action, t) == ("u", F(7, 2))

    def test_cap_is_relative_to_each_window(self):
        strategy = LazyStrategy(random.Random(0), unbounded_extension=1)
        assert strategy.choose(FakeState(), [("u", 5, INFINITY)]) == ("u", 6)
        assert strategy.choose(FakeState(), [("u", 9, INFINITY)]) == ("u", 10)
