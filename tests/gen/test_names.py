"""The gen: name grammar: parsing, validation, cache identity."""

import pytest

from repro.errors import ReproError
from repro.gen import (
    GEN_VERSION,
    cache_parts,
    family_names,
    family_specs,
    is_gen_name,
    parse,
    sample_names,
)


class TestParse:
    def test_every_family_round_trips(self):
        for name in sample_names():
            parsed = parse(name)
            assert parsed.name == name
            assert parsed.family in family_names()

    def test_two_parameter_grammar(self):
        parsed = parse("gen:relay_tree-3x2")
        assert parsed.family == "relay_tree"
        assert parsed.params == (3, 2)
        assert parsed.params_dict() == {"depth": 3, "fanout": 2}

    @pytest.mark.parametrize("bad", [
        "gen:fischer",            # missing params
        "gen:fischer-",           # empty params
        "gen:fischer-2x3",        # too many params
        "gen:relay_tree-3",       # too few params
        "gen:nope-3",             # unknown family
        "gen:FISCHER-3",          # case matters
        "gen:fischer-0",          # below range
        "gen:fischer-7",          # above range
        "gen:relay_ring-1",       # below range
        "gen:tournament-3",       # not a power of two
        "gen:tournament-8",       # above the feasibility cap
    ])
    def test_malformed_and_out_of_range_rejected(self, bad):
        with pytest.raises(ReproError):
            parse(bad)

    def test_infeasible_trees_rejected_by_state_count(self):
        # 3x3 (389 million states) blows past the exploration cap by
        # construction; every depth≤4 binary tree is now feasible.
        with pytest.raises(ReproError, match="reachable states"):
            parse("gen:relay_tree-3x3")
        parse("gen:relay_tree-3x2")
        parse("gen:relay_tree-4x2")  # the biggest feasible binary tree

    def test_previously_rejected_deep_tree_now_verifies(self):
        # gen:relay_tree-4x2 (458,330 untimed states) was rejected under
        # the old 100k cap.  Its checks ride the spine, so admitting it
        # keeps verification cheap: the lint target builds, and every
        # static obligation discharges.
        from repro.gen import build_bundle

        parsed = parse("gen:relay_tree-4x2")
        assert parsed.params == (4, 2)
        bundle = build_bundle("gen:relay_tree-4x2")
        assert bundle.max_states >= 2 * 458_330
        obligations = bundle.obligations()
        assert obligations
        for result in obligations:
            assert result.discharged, result

    def test_is_gen_name_is_prefix_only(self):
        assert is_gen_name("gen:anything")
        assert not is_gen_name("fischer")
        assert not is_gen_name(None)


class TestCacheParts:
    def test_parts_carry_family_params_and_version(self):
        parts = cache_parts("gen:relay_tree-3x2")
        assert parts == {
            "gen_family": "relay_tree",
            "gen_params": [3, 2],
            "gen_version": GEN_VERSION,
        }

    def test_distinct_params_distinct_fingerprints(self):
        from repro.cache.fingerprint import verdict_key

        keys = {
            verdict_key("check", name, cache_parts(name))
            for name in ("gen:fischer-2", "gen:fischer-3", "gen:relay_ring-2")
        }
        assert len(keys) == 3


class TestSpecs:
    def test_specs_cover_every_family(self):
        specs = family_specs()
        assert set(specs) == set(family_names())
        for spec in specs.values():
            assert spec["params"]
            assert len(spec["ranges"]) == len(spec["params"])

    def test_samples_all_parse(self):
        for name in sample_names():
            parse(name)
