"""The ``repro gen`` CLI and gen: names on the sibling commands."""

import json

import pytest

from repro.cli import main


class TestGenList:
    def test_list_prints_every_family(self, capsys):
        assert main(["gen", "list"]) == 0
        out = capsys.readouterr().out
        for family in ("fischer", "relay_line", "relay_ring",
                       "relay_tree", "tournament"):
            assert family in out

    def test_list_json_roster(self, capsys):
        assert main(["gen", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["families"]) == {
            "fischer", "relay_line", "relay_ring", "relay_tree", "tournament",
        }
        assert payload["samples"]


class TestGenEmit:
    def test_emit_by_family_flags(self, capsys):
        assert main(["gen", "emit", "relay_ring", "--k", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "gen:relay_ring-4"
        assert set(payload["boundmap"]) == {
            "PASS_0", "PASS_1", "PASS_2", "PASS_3",
        }

    def test_emit_by_full_name(self, capsys):
        assert main(["gen", "emit", "gen:relay_tree-2x2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "gen:relay_tree-2x2"

    def test_out_of_range_exits_2(self, capsys):
        assert main(["gen", "emit", "fischer", "--n", "99"]) == 2
        assert "feasible range" in capsys.readouterr().err

    def test_missing_parameter_exits_2(self, capsys):
        assert main(["gen", "emit", "fischer"]) == 2
        assert "--n" in capsys.readouterr().err

    def test_wrong_parameter_exits_2(self, capsys):
        assert main(["gen", "emit", "fischer", "--n", "3", "--width", "2"]) == 2
        assert "does not take" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["gen", "emit", "fischer", "--n", "0"],
        ["gen", "emit", "fischer", "--n", "-3"],
        ["gen", "emit", "fischer", "--n", "three"],
        ["gen", "emit", "relay_tree", "--depth", "0", "--fanout", "2"],
        ["gen", "emit", "tournament", "--width", "nope"],
        ["gen", "fuzz", "--count", "0"],
        ["gen", "fuzz", "--count", "-5"],
        ["gen", "fuzz", "--count", "lots"],
        ["gen", "fuzz", "--start", "-1"],
        ["run", "--fuzz-count", "0"],
        ["run", "--fuzz-shard", "-1"],
    ])
    def test_nonsense_numerics_exit_2(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err


class TestGenFuzz:
    def test_emit_only_prints_recipes(self, capsys):
        assert main(["gen", "fuzz", "--count", "3", "--seed", "5",
                     "--emit-only"]) == 0
        recipes = json.loads(capsys.readouterr().out)
        assert len(recipes) == 3
        for recipe in recipes:
            assert recipe["cells"]
            assert recipe["claim"]["kind"] in (
                "exact", "widen", "tighten", "shift",
            )

    def test_tiny_campaign_runs_clean(self, capsys):
        assert main(["gen", "fuzz", "--count", "2", "--seed", "0",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["disagreements"] == []


class TestGenNamesOnSiblingCommands:
    def test_lint_accepts_gen_name(self, capsys):
        assert main(["lint", "gen:relay_ring-2", "--no-cache"]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_analyze_accepts_gen_name(self, capsys):
        assert main(["analyze", "gen:relay_line-2", "--strict",
                     "--no-cache"]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_check_accepts_gen_name(self, capsys):
        assert main(["check", "gen:relay_line-1", "--no-cache",
                     "--seeds", "1", "--steps", "20"]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_malformed_gen_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "gen:bogus"])
        assert excinfo.value.code == 2
        assert "malformed" in capsys.readouterr().err

    def test_infeasible_gen_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "gen:relay_tree-4x3"])
        assert excinfo.value.code == 2
