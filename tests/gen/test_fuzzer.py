"""The differential fuzzer: well-formedness, oracle legs, reproducers."""

import json
import os
import random

import pytest

from repro.errors import ReproError
from repro.gen.fuzzer import (
    GRID,
    FuzzInstance,
    build_instance,
    check_recipe,
    load_reproducer,
    run_campaign,
    sample_recipe,
    write_reproducer,
)
from fractions import Fraction


def _recipe(cells, claim_lo, claim_hi, kind="exact"):
    return {
        "gen_version": 1,
        "cells": cells,
        "claim": {"lo": claim_lo, "hi": claim_hi, "kind": kind},
    }


_ANCHOR = {"index": 0, "modulus": 2, "lo": "1", "hi": "2", "guard_on": None}


class TestSampling:
    def test_recipes_are_well_formed_by_construction(self):
        for seed in range(60):
            recipe = sample_recipe(random.Random(seed))
            cells = recipe["cells"]
            assert 1 <= len(cells) <= 3
            for i, cell in enumerate(cells):
                lo, hi = Fraction(cell["lo"]), Fraction(cell["hi"])
                # Zero lower bounds would let the execution-tree legs
                # go Zeno; every endpoint stays on the grid.
                assert lo >= Fraction(1, 2)
                assert hi >= lo
                assert lo % GRID == 0 and hi % GRID == 0
                if cell["guard_on"] is not None:
                    assert 0 <= cell["guard_on"] < i
            # The anchor cell is always unguarded.
            assert cells[0]["guard_on"] is None

    def test_claim_kinds_match_ground_truth(self):
        for seed in range(60):
            recipe = sample_recipe(random.Random(seed))
            _system, _claim, expected = build_instance(recipe)
            kind = recipe["claim"]["kind"]
            if kind in ("exact", "widen"):
                assert expected
            elif kind in ("tighten", "shift"):
                assert not expected


class TestOracle:
    def test_exact_claim_all_methods_agree_true(self):
        inst = check_recipe(_recipe([_ANCHOR], "1", "2"))
        assert inst.expected
        assert inst.agree
        assert set(inst.verdicts) == {"mapping", "semantic", "zones", "symbolic"}
        for leg, verdict in inst.determinate.items():
            assert verdict, leg

    def test_tightened_claim_all_methods_agree_false(self):
        inst = check_recipe(_recipe([_ANCHOR], "3/2", "2", kind="tighten"))
        assert not inst.expected
        assert inst.agree
        for leg, verdict in inst.determinate.items():
            assert not verdict, leg

    def test_disagreement_detected(self):
        inst = FuzzInstance(
            index=0,
            seed=0,
            recipe=_recipe([_ANCHOR], "1", "2"),
            expected=True,
            verdicts={"mapping": True, "zones": False},
        )
        assert not inst.agree

    def test_truncated_legs_are_not_determinate(self):
        inst = FuzzInstance(
            index=0,
            seed=0,
            recipe=_recipe([_ANCHOR], "1", "2"),
            expected=True,
            verdicts={"mapping": True, "semantic": True},
            truncated=("semantic",),
        )
        assert "semantic" not in inst.determinate
        assert inst.agree

    def test_lint_errors_fail_the_instance(self):
        inst = FuzzInstance(
            index=0,
            seed=0,
            recipe=_recipe([_ANCHOR], "1", "2"),
            expected=True,
            verdicts={"mapping": True},
            lint_errors=("R001: broken",),
        )
        assert not inst.agree


class TestCampaign:
    def test_small_campaign_has_zero_disagreements(self):
        report = run_campaign(4, seed=1)
        assert report.ok
        assert len(report.instances) == 4
        assert [i.index for i in report.instances] == [0, 1, 2, 3]
        json.dumps(report.to_dict())

    def test_sharding_partitions_exactly(self):
        whole = run_campaign(4, seed=11)
        first = run_campaign(2, seed=11, start=0)
        second = run_campaign(2, seed=11, start=2)
        joined = [i.to_dict() for i in first.instances + second.instances]
        assert joined == [i.to_dict() for i in whole.instances]

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ReproError):
            run_campaign(0)

    def test_disagreement_writes_reproducer(self, tmp_path, monkeypatch):
        import repro.gen.fuzzer as fuzzer

        def rigged(recipe, index=0, seed=0):
            return FuzzInstance(
                index=index,
                seed=seed,
                recipe=recipe,
                expected=True,
                verdicts={"mapping": True, "zones": False},
            )

        monkeypatch.setattr(fuzzer, "check_recipe", rigged)
        report = fuzzer.run_campaign(1, seed=3, artifact_dir=str(tmp_path))
        assert not report.ok
        (artifact,) = os.listdir(tmp_path)
        assert artifact == "fuzz-repro-seed3-idx0.json"
        payload = json.loads((tmp_path / artifact).read_text())
        assert payload["agree"] is False
        assert payload["verdicts"] == {"mapping": True, "zones": False}


class TestReproducers:
    def test_round_trip_replays_identical_verdicts(self, tmp_path):
        inst = check_recipe(_recipe([_ANCHOR], "1", "2"), index=7, seed=9)
        path = write_reproducer(inst, str(tmp_path))
        replayed = load_reproducer(path)
        assert replayed.index == 7
        assert replayed.verdicts == inst.verdicts
        assert replayed.expected == inst.expected

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"gen_version": 999, "recipe": {}}))
        with pytest.raises(ReproError, match="gen version"):
            load_reproducer(str(path))
