"""repro.gen test suite."""
