"""Seed determinism across process boundaries.

Everything the generator emits must be byte-identical for the same
seed even across interpreter restarts (fresh hash randomisation, fresh
module state): emitted bundles, fuzz recipes, campaign reports, and
verdict-cache fingerprints.
"""

import json
import os
import subprocess
import sys


def _run_python(code):
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src")
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    # Force a different hash seed per process so dict/set iteration
    # differences would actually show up as byte differences.
    env.pop("PYTHONHASHSEED", None)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def _twice(code):
    return _run_python(code), _run_python(code)


class TestEmitDeterminism:
    def test_bundle_emit_is_byte_identical(self):
        code = (
            "import json; from repro.gen import build_bundle; "
            "print(json.dumps(build_bundle('gen:relay_tree-2x2')"
            ".describe_dict(), sort_keys=True))"
        )
        first, second = _twice(code)
        assert first == second

    def test_sampled_recipes_are_byte_identical_for_a_seed(self):
        code = (
            "import json; from repro.gen.fuzzer import _instance_rng, sample_recipe; "
            "print(json.dumps([sample_recipe(_instance_rng(42, i)) "
            "for i in range(10)], sort_keys=True))"
        )
        first, second = _twice(code)
        assert first == second


class TestCampaignDeterminism:
    def test_campaign_report_is_byte_identical_for_a_seed(self):
        code = (
            "import json; from repro.gen.fuzzer import run_campaign; "
            "r = run_campaign(2, seed=8); "
            "print(json.dumps([i.to_dict() for i in r.instances], sort_keys=True)); "
            "print(r.detail)"
        )
        first, second = _twice(code)
        assert first == second


class TestFingerprintDeterminism:
    def test_gen_verdict_keys_are_identical_across_processes(self):
        code = (
            "from repro.cache.fingerprint import verdict_key; "
            "from repro.gen import cache_parts; "
            "names = ['gen:fischer-3', 'gen:relay_tree-3x2', 'gen:tournament-2']; "
            "print('\\n'.join(verdict_key('check', n, cache_parts(n)) "
            "for n in names))"
        )
        first, second = _twice(code)
        assert first == second

    def test_fuzz_job_cache_parts_are_identical_across_processes(self):
        code = (
            "import json; from repro.runner.jobs import fuzz_shards, job_cache_parts; "
            "print(json.dumps([job_cache_parts(j) for j in "
            "fuzz_shards(seed=4, count=100, shard=50)], sort_keys=True))"
        )
        first, second = _twice(code)
        assert first == second
        assert "gen_version" in first
