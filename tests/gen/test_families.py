"""Parametric family bundles: construction, discharge, integration."""

import json

import pytest

from repro.gen import build_bundle, sample_names
from repro.analyze import Verdict


CHEAP = [
    "gen:fischer-2",
    "gen:relay_line-3",
    "gen:relay_ring-4",
    "gen:relay_tree-2x2",
    "gen:tournament-2",
]


class TestBundles:
    def test_build_bundle_memoizes(self):
        assert build_bundle("gen:relay_ring-4") is build_bundle("gen:relay_ring-4")

    @pytest.mark.parametrize("name", CHEAP)
    def test_describe_dict_is_json_plain(self, name):
        described = build_bundle(name).describe_dict()
        json.dumps(described)
        assert described["name"] == name

    @pytest.mark.parametrize("name", CHEAP)
    def test_obligations_discharge_clean(self, name):
        for o in build_bundle(name).obligations():
            assert o.verdict in (Verdict.PROVED, Verdict.UNKNOWN), o.obligation
            assert o.verdict is not Verdict.REFUTED

    @pytest.mark.parametrize("name", CHEAP)
    def test_declared_bounds_agree_with_derived(self, name):
        for bound in build_bundle(name).bounds():
            assert bound.agrees, bound.label

    @pytest.mark.parametrize("name", CHEAP)
    def test_lint_target_is_clean(self, name):
        from repro.lint.driver import lint_system

        report = lint_system(build_bundle(name).lint_target())
        assert not report.has_errors
        assert not report.fails(strict=True)

    def test_tournament_4_defers_upper_bound(self):
        verdicts = {
            o.obligation: o.verdict
            for o in build_bundle("gen:tournament-4").obligations()
        }
        assert verdicts["entry-lower"] is Verdict.PROVED
        assert verdicts["entry-upper"] is Verdict.UNKNOWN

    def test_ring_lap_bound_is_k_scaled_hop(self):
        from repro.timed import Interval

        bounds = {b.label: b for b in build_bundle("gen:relay_ring-4").bounds()}
        assert bounds["lap"].derived == Interval(4, 8)


class TestToolchainIntegration:
    @pytest.mark.parametrize("name", CHEAP)
    def test_surface_builds_gen_systems(self, name):
        from repro.par.surface import build_timed, mapping_specs

        timed = build_timed(name)
        assert timed.automaton is not None
        for label, mapping, grid, horizon in mapping_specs(name):
            assert label and grid > 0 and horizon > 0

    def test_analyze_system_accepts_gen_names(self):
        from repro.analyze import analyze_system

        report = analyze_system("gen:relay_ring-4")
        assert not report.fails(strict=True)
        assert report.refuted == 0

    def test_perturb_target_battery_passes_at_zero(self):
        from fractions import Fraction

        from repro.faults import Budget, build_perturb_target

        target = build_perturb_target("gen:relay_ring-4", seeds=1, steps=30)
        outcome = target.evaluate(Fraction(0), Budget(wall_time=60.0))
        assert outcome.ok

    def test_sample_names_all_build(self):
        for name in sample_names():
            assert build_bundle(name).timed() is not None
