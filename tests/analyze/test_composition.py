"""Closed-form bound derivation (the Theorem 6.4 fold) and tolerances."""

from fractions import Fraction as F

import pytest

from repro.analyze import (
    analyze_names,
    closed_form_tolerance,
    derived_bounds,
)
from repro.timed.interval import Interval


class TestDerivedBounds:
    @pytest.mark.parametrize("name", list(analyze_names()))
    def test_every_declared_bound_is_derivable(self, name):
        for bound in derived_bounds(name):
            assert bound.agrees, bound

    def test_rm_closed_forms(self):
        bounds = {b.label: b for b in derived_bounds("rm")}
        # k = 3 ticks of [2, 3] then a grant within [0, 1].
        assert bounds["first-grant"].derived == Interval(6, 10)
        # First tick shifted by Lemma 4.1, then k - 1 ticks + grant.
        assert bounds["grant-gap"].derived == Interval(5, 10)
        # The milestone-chain fold reproduces both.
        assert bounds["first-grant/recurrence"].agrees
        assert bounds["grant-gap/recurrence"].agrees

    def test_relay_hierarchy_levels(self):
        bounds = {b.label: b for b in derived_bounds("relay")}
        assert bounds["end-to-end"].derived == Interval(3, 6)
        # B_k hierarchy: U[k, n] carries (n - k) hops of [1, 2].
        assert bounds["U[0,3]"].derived == Interval(3, 6)
        assert bounds["U[1,3]"].derived == Interval(2, 4)
        assert bounds["U[2,3]"].derived == Interval(1, 2)

    def test_chain_partial_sums(self):
        bounds = {b.label: b for b in derived_bounds("chain")}
        assert bounds["end-to-end"].derived == Interval(3, 5)
        assert bounds["U[1,2]"].derived == Interval(2, 3)

    def test_tournament_width_2_first_entry_bound(self):
        bounds = {b.label: b for b in derived_bounds("tournament")}
        # Width 2 is Peterson: first CS entry in 3 * [s1, s2].
        assert bounds["first-entry"].derived == Interval(3, 6)
        assert bounds["first-entry"].agrees

    def test_bound_dicts_are_json_plain(self):
        import json

        for name in analyze_names():
            for bound in derived_bounds(name):
                json.dumps(bound.to_dict())


class TestClosedFormTolerance:
    def test_shipped_values(self):
        assert closed_form_tolerance("rm") == F(1, 5)
        assert closed_form_tolerance("relay") == F(1, 3)
        assert closed_form_tolerance("chain") == F(1, 5)
        assert closed_form_tolerance("fischer") == F(1, 3)
        assert closed_form_tolerance("fischer-tight") == 0
        assert closed_form_tolerance("peterson") is None
        assert closed_form_tolerance("tournament") is None

    def test_tight_variant_has_zero_slack(self):
        # fischer-tight sits exactly on the a = b knife edge: the
        # closed form says no uniform tightening survives, matching
        # the exploratory ToleranceReport.fragile notion.
        assert closed_form_tolerance("fischer-tight") == 0

    def test_rm_tolerance_cross_checked_against_perturbation(self):
        """The closed form must agree with the exploratory analyzer:
        a probe strictly inside the tolerance passes, one beyond the
        critical ratio fails."""
        from repro.faults.budget import Budget
        from repro.faults.targets import probe_tolerance

        eps_star = closed_form_tolerance("rm")
        budget = Budget(max_states=50_000, max_steps=500_000, wall_time=30.0)
        _target, nominal, below = probe_tolerance(
            "rm", eps_star / 2, budget=budget, seeds=1, steps=40
        )
        assert nominal.ok and below.ok
        _target, _nominal, beyond = probe_tolerance(
            "rm", eps_star + F(1, 4), budget=budget, seeds=1, steps=40
        )
        assert not beyond.ok
