"""Static verdicts must agree with the exploratory checker.

Every PROVED/REFUTED obligation is cross-examined against the dynamic
machinery it replaces: exhaustive mapping checks for the mapping-bearing
systems, zone reachability for the mutual-exclusion protocols.
"""

from fractions import Fraction as F

import pytest

from repro.analyze import Verdict, discharge_system


def _mapping_verdict_static(name):
    results = discharge_system(name)
    assert all(o.verdict is Verdict.PROVED for o in results)
    return True


@pytest.mark.parametrize("name", ["rm", "relay", "chain"])
def test_static_proofs_match_exhaustive_checks(name):
    from repro.core.checker import check_mapping_exhaustive
    from repro.par.surface import mapping_specs

    static_ok = _mapping_verdict_static(name)
    for label, mapping, grid, horizon in mapping_specs(name):
        # A coarse grid keeps this cheap; agreement is on the verdict.
        outcome = check_mapping_exhaustive(mapping, grid=grid, horizon=horizon)
        assert outcome.ok == static_ok, label


def test_fischer_static_agrees_with_zone_search():
    from repro.systems.extensions import (
        FischerParams,
        fischer_system,
        mutual_exclusion_violated,
    )
    from repro.zones.analysis import search_reachable_state

    (static,) = discharge_system("fischer")
    timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
    search = search_reachable_state(
        timed, mutual_exclusion_violated, max_nodes=400_000
    )
    assert static.verdict is Verdict.PROVED
    assert search.state is None  # exploration agrees: no violation


def test_fischer_tight_static_agrees_with_zone_search():
    from repro.systems.extensions import (
        FischerParams,
        fischer_system,
        mutual_exclusion_violated,
    )
    from repro.zones.analysis import search_reachable_state

    (static,) = discharge_system("fischer-tight")
    timed = fischer_system(FischerParams(n=2, a=F(1), b=F(1)))
    search = search_reachable_state(
        timed, mutual_exclusion_violated, max_nodes=400_000
    )
    assert static.verdict is Verdict.REFUTED
    assert search.state is not None  # exploration finds the race too


def test_peterson_static_agrees_with_zone_bounds():
    from repro.systems.extensions import PetersonParams, peterson_system
    from repro.systems.extensions.peterson import ENTER
    from repro.zones.analysis import event_separation_bounds

    (static,) = discharge_system("peterson")
    assert static.verdict is Verdict.PROVED
    params = PetersonParams(s1=F(1), s2=F(2))
    bounds = event_separation_bounds(
        peterson_system(params), {ENTER(1), ENTER(2)}, occurrence=1,
        max_nodes=400_000,
    )
    # The closed form the static pass certified is the zone answer.
    assert (bounds.lo, bounds.hi) == (F(3), F(6))


def test_no_static_verdict_contradicts_exploration():
    """The global soundness property: the analyzer never PROVES what
    exploration refutes nor REFUTES what exploration proves, across the
    whole surface (UNKNOWN is always allowed)."""
    expected_broken = {"fischer-tight"}
    from repro.analyze import obligation_systems

    for name in obligation_systems():
        refuted = [
            o for o in discharge_system(name) if o.verdict is Verdict.REFUTED
        ]
        if name in expected_broken:
            assert refuted, "the broken variant must be refuted"
        else:
            assert not refuted, "static refutation of a sound system"
