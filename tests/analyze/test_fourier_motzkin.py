"""The Fourier–Motzkin decision engine: exactness, witnesses, caps."""

import random
from fractions import Fraction as F

import pytest

from repro.analyze.constraints import const, eq, ge, gt, le, lt, var
from repro.analyze.fourier_motzkin import decide, entails
from repro.errors import AnalyzeError


def _satisfies(constraint, witness):
    value = constraint.expr.evaluate(witness)
    return value < 0 if constraint.rel == "<" else value <= 0


def _witness_ok(result, constraints):
    assert result.witness is not None
    return all(_satisfies(c, result.witness) for c in constraints)


class TestDecide:
    def test_empty_system_is_feasible(self):
        assert decide([]).feasible

    def test_simple_box(self):
        cs = [ge(var("x"), 0), le(var("x"), 1)]
        result = decide(cs)
        assert result.feasible and _witness_ok(result, cs)

    def test_empty_interval_is_infeasible(self):
        result = decide([ge(var("x"), 2), le(var("x"), 1)])
        assert not result.feasible
        assert result.witness is None

    def test_degenerate_point(self):
        cs = [ge(var("x"), 3), le(var("x"), 3)]
        result = decide(cs)
        assert result.feasible
        assert result.witness["x"] == 3

    def test_strict_boundary_infeasible(self):
        # x < 3 and x > 3 leave nothing; x <= 3 and x >= 3 leave a point.
        assert not decide([lt(var("x"), 3), gt(var("x"), 3)]).feasible
        assert not decide([lt(var("x"), 3), ge(var("x"), 3)]).feasible
        assert decide([le(var("x"), 3), ge(var("x"), 3)]).feasible

    def test_strict_open_interval_witness(self):
        cs = [gt(var("x"), 0), lt(var("x"), 1)]
        result = decide(cs)
        assert result.feasible and _witness_ok(result, cs)

    def test_unbounded_system(self):
        cs = [ge(var("x"), 5)]
        result = decide(cs)
        assert result.feasible and _witness_ok(result, cs)

    def test_equality_expands(self):
        cs = [eq(var("x") + var("y"), 4), ge(var("x"), 3), ge(var("y"), 2)]
        assert not decide(cs).feasible
        cs = [eq(var("x") + var("y"), 4), ge(var("x"), 3), ge(var("y"), 1)]
        result = decide(cs)
        assert result.feasible and _witness_ok(result, cs)

    def test_two_var_chain(self):
        cs = [
            ge(var("x"), 0),
            ge(var("y"), var("x") + 2),
            le(var("y"), 5),
            ge(var("z"), var("y") - var("x")),
            le(var("z"), 1),
        ]
        # z >= y - x >= 2 contradicts z <= 1.
        assert not decide(cs).feasible

    def test_constant_contradiction(self):
        assert not decide([le(const(1), 0)]).feasible
        assert decide([le(const(0), 0)]).feasible
        assert not decide([lt(const(0), 0)]).feasible

    def test_exact_fractions_no_drift(self):
        # 1/3 + 1/3 + 1/3 = 1 exactly; floats would wobble.
        x = var("x")
        cs = [eq(3 * x, 1), ge(x, F(1, 3)), le(x, F(1, 3))]
        result = decide(cs)
        assert result.feasible
        assert result.witness["x"] == F(1, 3)

    def test_row_cap_raises(self):
        # A dense system over many variables explodes combinatorially;
        # the cap must surface as AnalyzeError, not an OOM.
        n = 12
        xs = [var("x{}".format(i)) for i in range(n)]
        cs = []
        for i in range(n):
            for j in range(i + 1, n):
                cs.append(le(xs[i] + xs[j], i + j))
                cs.append(ge(xs[i] - xs[j], -(i + j)))
        with pytest.raises(AnalyzeError):
            decide(cs, max_rows=50)


class TestRandomizedAgainstWitnesses:
    """Property-style validation: every feasible verdict must carry a
    witness satisfying *all* constraints exactly; every infeasible
    verdict must kill all integer points of a covering box oracle."""

    def _random_system(self, rng, n_vars, n_cons):
        names = ["v{}".format(i) for i in range(n_vars)]
        cs = []
        for name in names:  # box 0..4 keeps the oracle finite
            cs.append(ge(var(name), 0))
            cs.append(le(var(name), 4))
        for _ in range(n_cons):
            expr = const(rng.randint(-4, 4))
            for name in names:
                expr = expr + rng.randint(-2, 2) * var(name)
            cs.append(le(expr, 0) if rng.random() < 0.8 else lt(expr, 0))
        return names, cs

    def _integer_points(self, names):
        def rec(prefix, remaining):
            if not remaining:
                yield dict(prefix)
                return
            for v in range(5):
                prefix[remaining[0]] = F(v)
                for point in rec(prefix, remaining[1:]):
                    yield point
            del prefix[remaining[0]]

        return rec({}, list(names))

    @pytest.mark.parametrize("seed", range(30))
    def test_verdicts_are_sound(self, seed):
        rng = random.Random(seed)
        names, cs = self._random_system(rng, rng.randint(1, 3), rng.randint(1, 4))
        result = decide(cs)
        if result.feasible:
            assert _witness_ok(result, cs)
        else:
            # Infeasible over the reals => no integer point satisfies.
            for point in self._integer_points(names):
                assert not all(_satisfies(c, point) for c in cs)


class TestEntails:
    def test_trivial_entailment(self):
        hyp = [le(var("x"), 3)]
        assert entails(hyp, [le(var("x"), 5)]).holds

    def test_non_entailment_has_counterexample(self):
        hyp = [le(var("x"), 5)]
        result = entails(hyp, [le(var("x"), 3)])
        assert not result.holds
        assert result.counterexample is not None
        x = result.counterexample["x"]
        assert x <= 5 and x > 3

    def test_entails_transitive_chain(self):
        hyp = [le(var("a"), var("b")), le(var("b"), var("c"))]
        assert entails(hyp, [le(var("a"), var("c"))]).holds

    def test_equality_goal(self):
        hyp = [eq(var("x"), 2), eq(var("y"), var("x") + 1)]
        assert entails(hyp, [eq(var("y"), 3)]).holds
        result = entails(hyp, [eq(var("y"), 4)])
        assert not result.holds
        assert result.failing_goal is not None

    def test_vacuous_hypotheses_entail_anything(self):
        hyp = [le(var("x"), 0), ge(var("x"), 1)]
        assert entails(hyp, [eq(var("q"), 99)]).holds

    def test_strict_goal_needs_strict_gap(self):
        assert entails([le(var("x"), 2)], [lt(var("x"), 3)]).holds
        assert not entails([le(var("x"), 2)], [lt(var("x"), 2)]).holds
