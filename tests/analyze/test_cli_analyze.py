"""``python -m repro analyze`` and its cache/check integration."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def warm_cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestAnalyzeCommand:
    def test_rm_json_clean(self, capsys):
        assert main(["analyze", "rm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "rm"
        assert payload["summary"]["proved"] == payload["summary"]["obligations"]
        assert payload["fails"] == {"default": False, "strict": False}

    def test_all_exits_clean(self, capsys):
        assert main(["analyze", "all"]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_all_strict_exits_clean(self, capsys):
        # The waived chain R018 must not fail the strict gate;
        # fischer-tight fails as expected.
        assert main(["analyze", "all", "--strict"]) == 0

    def test_all_json_meets_discharge_bar(self, capsys):
        assert main(["analyze", "all", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        total = sum(e["summary"]["obligations"] for e in entries)
        done = sum(
            e["summary"]["proved"] + e["summary"]["refuted"] for e in entries
        )
        assert done / total >= 0.8

    def test_fischer_tight_refuted_with_witness_but_exit_zero(self, capsys):
        assert main(["analyze", "fischer-tight", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["expected_broken"] is True
        assert payload["fails"]["default"] is True
        refuted = [
            o for o in payload["obligations"] if o["verdict"] == "REFUTED"
        ]
        assert refuted and refuted[0]["witness"]

    def test_json_diagnostics_are_canonically_ordered(self, capsys):
        assert main(["analyze", "fischer-tight", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        diags = payload["interference"]["diagnostics"]
        keys = [(d["rule"], d["location"], d["message"]) for d in diags]
        assert keys == sorted(keys)

    def test_unknown_system_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "not-a-system"])


class TestAnalyzeCache:
    def test_warm_rerun_is_served_from_cache(self, warm_cache_env, capsys):
        assert main(["analyze", "rm", "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert "cached" in cold and cold["cached"] is False
        assert main(["analyze", "rm", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cached"] is True
        assert warm["summary"] == cold["summary"]

    def test_cache_key_carries_ruleset_version(self, warm_cache_env):
        from repro.cache import default_cache
        from repro.lint.registry import ruleset_version

        assert main(["analyze", "rm"]) == 0
        cache = default_cache()
        assert cache.lookup("analyze", "rm", {"ruleset": ruleset_version()})
        assert (
            cache.lookup("analyze", "rm", {"ruleset": "R999:99:e99"}) is None
        )

    def test_lint_cache_key_carries_ruleset_version(self, warm_cache_env):
        from repro.cache import default_cache
        from repro.lint import DEFAULT_MAX_STATES
        from repro.lint.registry import ruleset_version

        assert main(["lint", "rm"]) == 0
        cache = default_cache()
        parts = {"max_states": DEFAULT_MAX_STATES, "ruleset": ruleset_version()}
        assert cache.lookup("lint", "rm", parts)

    def test_proved_mappings_recorded_for_check(self, warm_cache_env):
        from repro.analyze import lookup_static_mapping
        from repro.cache import default_cache

        assert main(["analyze", "rm"]) == 0
        cache = default_cache()
        assert lookup_static_mapping(cache, "rm", "rm") is not None
        # fischer-tight is refuted: nothing must be recorded as proved.
        assert main(["analyze", "fischer-tight"]) == 0
        assert lookup_static_mapping(cache, "fischer-tight", "mutex") is None

    def test_warm_check_skips_proved_mappings(self, warm_cache_env, capsys):
        assert main(["analyze", "chain"]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "check",
                    "chain",
                    "--json",
                    "--seeds",
                    "1",
                    "--steps",
                    "30",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        statics = [m for m in payload["mappings"] if m.get("static")]
        assert statics, "statically proved mappings must skip the sweep"
        for m in statics:
            assert m["ok"] and m["steps_checked"] == 0
            assert "statically proved" in m["detail"]

    def test_cold_check_still_sweeps(self, warm_cache_env, capsys):
        # Without a prior analyze run nothing is recorded: the check
        # must do its exhaustive sweeps as before.
        assert (
            main(["check", "chain", "--json", "--seeds", "1", "--steps", "30"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert not [m for m in payload["mappings"] if m.get("static")]
        assert all(m["steps_checked"] > 0 for m in payload["mappings"])
