"""The timing-interference rules R015-R019."""

from fractions import Fraction as F

import pytest

from repro.analyze import analyze_system
from repro.analyze.composition import DerivedBound
from repro.analyze.interference import InterferenceContext
from repro.lint.diagnostics import Severity
from repro.lint.driver import _run
from repro.lint.registry import all_rules, get_rule, rules_for
from repro.timed.interval import Interval


class TestRegistration:
    def test_rules_registered_under_interference_target(self):
        ids = {r.id for r in rules_for("interference")}
        assert ids == {"R015", "R016", "R017", "R018", "R019"}

    def test_interference_rules_do_not_leak_into_lint_targets(self):
        for target in ("boundmap", "timed", "conditions", "mapping", "chain", "system"):
            assert not {r.id for r in rules_for(target)} & {
                "R015", "R016", "R017", "R018", "R019"
            }

    def test_ids_are_contiguous_with_existing_set(self):
        ids = sorted(r.id for r in all_rules())
        assert ids[-1] == "R019"

    def test_rules_cite_the_paper(self):
        for rule_id in ("R015", "R016", "R017", "R018", "R019"):
            assert get_rule(rule_id).paper


def _ctx(name, timed, requirements=(), bounds=()):
    return InterferenceContext(
        name=name, timed=timed, requirements=requirements, bounds=bounds
    )


class TestOnShippedSystems:
    def test_fischer_tight_trips_zero_margin(self):
        report = analyze_system("fischer-tight").interference
        r018 = report.by_rule("R018")
        assert r018, "a = b must trip the zero-margin detector"
        assert all(d.severity is Severity.WARNING for d in r018)

    def test_fischer_overlap_is_informational(self):
        report = analyze_system("fischer").interference
        assert report.by_rule("R015")
        assert not report.fails(strict=True)

    def test_chain_boundary_touch_is_waived(self):
        report = analyze_system("chain").interference
        r018 = report.by_rule("R018")
        assert r018  # EVENT_1 hi == EVENT_2 lo: flagged...
        assert all(d.severity is Severity.INFO for d in r018)  # ...but waived
        assert any("waived" in d.hint for d in r018)

    @pytest.mark.parametrize(
        "name", ["rm", "relay", "chain", "fischer", "peterson", "tournament"]
    )
    def test_sound_systems_strict_clean(self, name):
        report = analyze_system(name)
        assert not report.fails(strict=True)

    def test_no_errors_anywhere_on_the_surface(self):
        from repro.analyze import analyze_names

        for name in analyze_names():
            assert not analyze_system(name).interference.has_errors


class TestSyntheticTriggers:
    """Each rule demonstrated on a minimal hand-built (A, b)."""

    def _timed(self, boundmap_pairs, fischer_like=True):
        from repro.systems.extensions import FischerParams, fischer_system

        return fischer_system(FischerParams(n=2, a=F(1), b=F(2)))

    def test_r017_unreachable_deadline(self):
        from repro.systems.extensions import FischerParams, fischer_system
        from repro.systems.extensions.fischer import ENTER
        from repro.timed.conditions import TimingCondition

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        # Demand an ENTER_1 discharge within [0, 1]; its class (CHECK)
        # cannot fire before b = 2.
        cond = TimingCondition.build(
            "impossible",
            Interval(0, 1),
            actions=lambda a: a == ENTER(1),
            start_states=lambda s: True,
        )
        report = _run("interference", _ctx("synthetic", timed, requirements=(cond,)))
        r017 = report.by_rule("R017")
        assert r017
        assert all(d.severity is Severity.ERROR for d in r017)

    def test_r017_silent_when_deadline_reachable(self):
        from repro.systems.extensions import FischerParams, fischer_system
        from repro.systems.extensions.fischer import ENTER
        from repro.timed.conditions import TimingCondition

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        cond = TimingCondition.build(
            "fine",
            Interval(0, 10),
            actions=lambda a: a == ENTER(1),
            start_states=lambda s: True,
        )
        report = _run("interference", _ctx("synthetic", timed, requirements=(cond,)))
        assert not report.by_rule("R017")

    def test_r019_tighter_declaration_is_an_error(self):
        from repro.systems.extensions import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        bound = DerivedBound(
            system="synthetic",
            label="end-to-end",
            derived=Interval(2, 5),
            declared=Interval(3, 4),  # claims more than provable
        )
        report = _run("interference", _ctx("synthetic", timed, bounds=(bound,)))
        r019 = report.by_rule("R019")
        assert r019
        assert all(d.severity is Severity.ERROR for d in r019)

    def test_r019_looser_declaration_is_info(self):
        from repro.systems.extensions import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        bound = DerivedBound(
            system="synthetic",
            label="end-to-end",
            derived=Interval(2, 5),
            declared=Interval(1, 6),  # merely wastes precision
        )
        report = _run("interference", _ctx("synthetic", timed, bounds=(bound,)))
        r019 = report.by_rule("R019")
        assert r019
        assert all(d.severity is Severity.INFO for d in r019)

    def test_r019_silent_on_agreement(self):
        from repro.systems.extensions import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        bound = DerivedBound(
            system="synthetic",
            label="end-to-end",
            derived=Interval(2, 5),
            declared=Interval(2, 5),
        )
        report = _run("interference", _ctx("synthetic", timed, bounds=(bound,)))
        assert not report.by_rule("R019")

    def test_r018_trips_on_touching_windows(self):
        from repro.systems.extensions import FischerParams, fischer_system

        # a = b makes SET's upper bound meet CHECK's lower bound.
        timed = fischer_system(FischerParams(n=2, a=F(2), b=F(2)))
        report = _run("interference", _ctx("synthetic", timed))
        assert report.by_rule("R018")

    def test_r018_silent_with_margin(self):
        from repro.systems.extensions import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(3)))
        report = _run("interference", _ctx("synthetic", timed))
        assert not report.by_rule("R018")

    def test_r015_overlapping_start_windows(self):
        from repro.systems.extensions import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        report = _run("interference", _ctx("synthetic", timed))
        r015 = report.by_rule("R015")
        assert r015
        assert all(d.severity is Severity.INFO for d in r015)


class TestContextHelpers:
    def test_coenabled_pairs_deduplicate(self):
        from repro.systems.extensions import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        ctx = _ctx("synthetic", timed)
        pairs = [
            (first.name, second.name)
            for _state, first, second in ctx.start_coenabled_pairs()
        ]
        assert len(pairs) == len(set(pairs))

    def test_location_defaults_to_interference_slot(self):
        from repro.systems.extensions import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=F(1), b=F(2)))
        assert _ctx("xyz", timed).location == "xyz/interference"
