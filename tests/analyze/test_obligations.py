"""Symbolic obligation discharge across the verification surface."""

from fractions import Fraction as F

import pytest

from repro.analyze import (
    Verdict,
    discharge_all,
    discharge_system,
    obligation_systems,
)


@pytest.fixture(scope="module")
def all_results():
    return {name: discharge_system(name) for name in obligation_systems()}


class TestInventory:
    def test_surface_is_covered(self, all_results):
        assert set(all_results) == set(obligation_systems())
        for name, results in all_results.items():
            assert results, "system {!r} produced no obligations".format(name)

    def test_discharge_ratio_meets_bar(self, all_results):
        results = [o for rs in all_results.values() for o in rs]
        discharged = [o for o in results if o.verdict is not Verdict.UNKNOWN]
        assert len(discharged) / len(results) >= 0.8

    def test_discharge_all_matches_per_system(self, all_results):
        flat = discharge_all()
        assert {
            (o.system, o.obligation, o.verdict)
            for rs in flat.values()
            for o in rs
        } == {
            (o.system, o.obligation, o.verdict)
            for rs in all_results.values()
            for o in rs
        }


class TestResourceManager:
    def test_all_rm_obligations_proved(self, all_results):
        for o in all_results["rm"]:
            assert o.verdict is Verdict.PROVED, o

    def test_lemma_41_discharged_symbolically(self, all_results):
        lemma = [o for o in all_results["rm"] if "lemma-4.1" in o.obligation]
        assert len(lemma) == 1
        assert lemma[0].verdict is Verdict.PROVED
        assert lemma[0].method == "fourier-motzkin"
        # The proof is by cases on how the TICK prediction got set.
        assert len(lemma[0].cases) >= 2


class TestHierarchies:
    def test_relay_all_levels_proved(self, all_results):
        results = all_results["relay"]
        assert len(results) == 12  # 4 mappings x base/initial/steps
        assert all(o.verdict is Verdict.PROVED for o in results)

    def test_relay_inner_levels_use_fm(self, all_results):
        methods = {
            o.mapping_label: o.method
            for o in all_results["relay"]
            if o.obligation.endswith("/steps")
        }
        # The projection endpoints are structural; the B_k levels are
        # genuine timed mappings discharged by the inequality engine.
        assert methods["relay[1]"] == "fourier-motzkin"
        assert methods["relay[2]"] == "fourier-motzkin"
        assert methods["relay[0]"] == "structural"
        assert methods["relay[3]"] == "structural"

    def test_chain_all_proved(self, all_results):
        assert all(o.verdict is Verdict.PROVED for o in all_results["chain"])


class TestFischer:
    def test_safe_variant_proved(self, all_results):
        (only,) = all_results["fischer"]
        assert only.verdict is Verdict.PROVED

    def test_tight_variant_refuted_with_witness(self, all_results):
        (only,) = all_results["fischer-tight"]
        assert only.verdict is Verdict.REFUTED
        w = only.witness
        assert w is not None
        a = b = F(1)  # fischer-tight ships a = b = 1
        # The witness must be a genuine interleaving that races:
        # both processes SET then CHECK inside legal windows, with
        # process j setting after i's set and before i's check.
        assert F(0) <= w["t_set_i"] <= a
        assert F(0) <= w["t_set_j"] <= a
        assert w["t_set_i"] + b <= w["t_check_i"] <= w["t_set_i"] + 2 * b
        assert w["t_set_j"] + b <= w["t_check_j"] <= w["t_set_j"] + 2 * b
        # j overwrites the shared variable at-or-after i's successful
        # check: both processes end up in the critical section.
        assert w["t_set_j"] >= w["t_check_i"]

    def test_verdicts_flip_exactly_at_a_equals_b(self):
        # The race encoding is feasible iff a >= b; the shipped params
        # sit on either side of that line.
        safe = discharge_system("fischer")
        tight = discharge_system("fischer-tight")
        assert safe[0].verdict is Verdict.PROVED
        assert tight[0].verdict is Verdict.REFUTED


class TestClosedFormAndDeferred:
    def test_peterson_closed_form(self, all_results):
        (only,) = all_results["peterson"]
        assert only.verdict is Verdict.PROVED
        assert only.method == "closed-form"

    def test_tournament_width_2_discharges_closed_form(self, all_results):
        by_name = {o.obligation: o for o in all_results["tournament"]}
        # The shipped bracket is width 2 (Peterson): both the FM lower
        # bound and the closed-form entry bound discharge statically.
        assert by_name["entry-lower"].verdict is Verdict.PROVED
        assert by_name["entry-lower"].method == "fourier-motzkin"
        assert by_name["entry-bound"].verdict is Verdict.PROVED
        assert by_name["entry-bound"].method == "closed-form"

    def test_tournament_width_4_defers_structured(self):
        from repro.analyze import discharge_system

        by_name = {
            o.obligation: o for o in discharge_system("gen:tournament-4")
        }
        assert by_name["entry-lower"].verdict is Verdict.PROVED
        deferred = by_name["entry-upper"]
        assert deferred.verdict is Verdict.UNKNOWN
        assert deferred.method == "deferred"
        assert deferred.detail.startswith("deferred:")
        outcome = deferred.to_check_outcome()
        # UNKNOWN maps to "did not refute, budget-style inconclusive",
        # never to a failure.
        assert outcome.ok
        assert outcome.exhausted_budget


class TestResultShape:
    def test_to_dict_is_json_plain(self, all_results):
        import json

        for rs in all_results.values():
            for o in rs:
                json.dumps(o.to_dict())

    def test_refuted_to_check_outcome_fails(self, all_results):
        (only,) = all_results["fischer-tight"]
        outcome = only.to_check_outcome()
        assert not outcome.ok
