"""Exact-rational linear expressions and constraints."""

from fractions import Fraction as F

import pytest

from repro.analyze.constraints import (
    Constraint,
    LinExpr,
    const,
    eq,
    ge,
    gt,
    le,
    lt,
    negate,
    var,
)
from repro.errors import AnalyzeError


class TestLinExpr:
    def test_algebra_is_exact(self):
        x, y = var("x"), var("y")
        expr = 2 * x - y + F(1, 3) - x
        assert expr.evaluate({"x": F(5), "y": F(2)}) == F(5) - F(2) + F(1, 3)

    def test_zero_coefficients_dropped(self):
        x = var("x")
        expr = x - x + const(7)
        assert expr.variables() == ()
        assert expr.evaluate({}) == 7

    def test_variables(self):
        x, y = var("x"), var("y")
        assert set((x + 2 * y - 3).variables()) == {"x", "y"}

    def test_finite_float_converts_exactly(self):
        expr = var("x") * 0.5
        assert expr.evaluate({"x": F(4)}) == F(2)

    def test_non_finite_float_rejected(self):
        with pytest.raises(AnalyzeError):
            var("x") * float("inf")
        with pytest.raises(AnalyzeError):
            var("x") + float("nan")

    def test_subtraction_both_ways(self):
        x = var("x")
        assert (3 - x).evaluate({"x": F(1)}) == 2
        assert (x - 3).evaluate({"x": F(1)}) == -2


class TestBuilders:
    def test_le_means_nonpositive_slack(self):
        c = le(var("x"), 5)
        assert isinstance(c, Constraint)
        # x <= 5 holds at x = 5, fails at x = 6.
        assert c.expr.evaluate({"x": F(5)}) <= 0
        assert c.expr.evaluate({"x": F(6)}) > 0

    def test_ge_flips(self):
        c = ge(var("x"), 5)
        assert c.expr.evaluate({"x": F(6)}) <= 0
        assert c.expr.evaluate({"x": F(4)}) > 0

    def test_strict_relations(self):
        assert lt(var("x"), 1).rel == "<"
        assert gt(var("x"), 1).rel == "<"
        assert le(var("x"), 1).rel == "<="
        assert eq(var("x"), 1).rel == "=="


class TestNegate:
    def test_negate_le_is_strict(self):
        (neg,) = negate(le(var("x"), 5))
        # not (x <= 5)  <=>  x > 5: holds strictly at 6, not at 5.
        assert neg.rel == "<"
        assert neg.expr.evaluate({"x": F(6)}) < 0
        assert neg.expr.evaluate({"x": F(5)}) == 0

    def test_negate_lt_is_nonstrict(self):
        (neg,) = negate(lt(var("x"), 5))
        assert neg.rel == "<="
        assert neg.expr.evaluate({"x": F(5)}) <= 0

    def test_negate_eq_is_disjunction(self):
        parts = negate(eq(var("x"), 5))
        assert len(parts) == 2
        assert all(p.rel == "<" for p in parts)
        # x = 4 satisfies one disjunct, x = 6 the other, x = 5 neither.
        holds = lambda p, v: p.expr.evaluate({"x": F(v)}) < 0
        assert any(holds(p, 4) for p in parts)
        assert any(holds(p, 6) for p in parts)
        assert not any(holds(p, 5) for p in parts)


class TestHashability:
    def test_expressions_are_frozen_and_hashable(self):
        assert hash(var("x") + 1) == hash(var("x") + 1)
        assert le(var("x"), 1) == le(var("x"), 1)
