"""Tests for the repro.analyze static-analysis package."""
