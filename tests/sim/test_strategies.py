"""Tests for scheduling strategies."""

import math
import random
from fractions import Fraction as F

import pytest

from repro.sim.strategies import (
    BiasedActionStrategy,
    EagerStrategy,
    ExtremalStrategy,
    LazyStrategy,
    UniformStrategy,
)


OPTIONS = [("a", 1, 3), ("b", 2, 5)]


class TestUniform:
    def test_time_within_window(self):
        strategy = UniformStrategy(random.Random(0))
        for _ in range(50):
            action, t = strategy.choose(None, OPTIONS)
            lo, hi = dict((a, (l, h)) for a, l, h in OPTIONS)[action]
            assert lo <= t <= hi

    def test_caps_unbounded_window(self):
        strategy = UniformStrategy(random.Random(0), unbounded_extension=2)
        for _ in range(20):
            _a, t = strategy.choose(None, [("a", 1, math.inf)])
            assert 1 <= t <= 3

    def test_exact_arithmetic(self):
        strategy = UniformStrategy(random.Random(0), quantum=F(1, 4))
        _a, t = strategy.choose(None, [("a", F(1, 2), F(3, 2))])
        assert isinstance(t, (int, F))

    def test_degenerate_window(self):
        strategy = UniformStrategy(random.Random(0))
        assert strategy.choose(None, [("a", 2, 2)]) == ("a", 2)

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            UniformStrategy(random.Random(0), quantum=0)


class TestEager:
    def test_picks_latest_opening_window_at_its_lower_end(self):
        strategy = EagerStrategy(random.Random(0))
        for _ in range(10):
            assert strategy.choose(None, OPTIONS) == ("b", 2)

    def test_zero_progress_filler_pushed_to_window_end(self):
        class StateAtZero:
            now = 1

        strategy = EagerStrategy(random.Random(0))
        # The only option opens exactly at `now`: firing there forever
        # would be a Zeno loop, so the strategy jumps to the window end.
        assert strategy.choose(StateAtZero(), [("a", 1, 4)]) == ("a", 4)

    def test_ties_broken_among_latest_openers(self):
        strategy = EagerStrategy(random.Random(0))
        options = [("a", 2, 3), ("b", 2, 5), ("c", 1, 9)]
        seen = {strategy.choose(None, options) for _ in range(30)}
        assert seen == {("a", 2), ("b", 2)}


class TestLazy:
    def test_always_latest(self):
        strategy = LazyStrategy(random.Random(0))
        action, t = strategy.choose(None, OPTIONS)
        assert (action, t) == ("b", 5)

    def test_caps_infinite(self):
        strategy = LazyStrategy(random.Random(0), unbounded_extension=4)
        action, t = strategy.choose(None, [("a", 1, math.inf)])
        assert t == 5


class TestExtremal:
    def test_only_endpoints(self):
        strategy = ExtremalStrategy(random.Random(0))
        for _ in range(50):
            action, t = strategy.choose(None, OPTIONS)
            lo, hi = dict((a, (l, h)) for a, l, h in OPTIONS)[action]
            assert t in (lo, hi)

    def test_p_low_one_always_low(self):
        strategy = ExtremalStrategy(random.Random(0), p_low=1.0)
        for _ in range(20):
            action, t = strategy.choose(None, OPTIONS)
            lo, _hi = dict((a, (l, h)) for a, l, h in OPTIONS)[action]
            assert t == lo


class TestBiased:
    def test_prefers_matching_actions(self):
        inner = EagerStrategy(random.Random(0))
        strategy = BiasedActionStrategy(inner, prefer=lambda a: a == "b")
        action, _t = strategy.choose(None, OPTIONS)
        assert action == "b"

    def test_falls_back_when_nothing_matches(self):
        inner = EagerStrategy(random.Random(0))
        strategy = BiasedActionStrategy(inner, prefer=lambda a: a == "zzz")
        action, t = strategy.choose(None, OPTIONS)
        assert (action, t) == ("b", 2)


class TestPickPost:
    def test_single_post(self):
        strategy = UniformStrategy(random.Random(0))
        assert strategy.pick_post(["only"]) == "only"

    def test_multiple_posts_chosen_among(self):
        strategy = UniformStrategy(random.Random(0))
        seen = {strategy.pick_post(["a", "b"]) for _ in range(20)}
        assert seen == {"a", "b"}

    def test_determinism_by_seed(self):
        s1 = UniformStrategy(random.Random(42))
        s2 = UniformStrategy(random.Random(42))
        for _ in range(20):
            assert s1.choose(None, OPTIONS) == s2.choose(None, OPTIONS)
