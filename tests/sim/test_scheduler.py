"""Tests for the discrete-event simulator."""

import random
from fractions import Fraction as F

import pytest

from repro.errors import SchedulingDeadlockError
from repro.ioa.actions import Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.core.projection import project, validate_run
from repro.core.time_automaton import time_of_boundmap, time_of_conditions
from repro.sim.scheduler import Simulator, simulate
from repro.sim.strategies import EagerStrategy, LazyStrategy, UniformStrategy
from repro.timed.satisfaction import find_boundmap_violation

from tests.timed.test_conditions import pulse_timed


def pulse_auto():
    return time_of_boundmap(pulse_timed())


class TestRuns:
    def test_runs_are_valid_executions(self):
        auto = pulse_auto()
        for seed in range(5):
            run = Simulator(auto, UniformStrategy(random.Random(seed))).run(max_steps=40)
            validate_run(auto, run)

    def test_projections_are_semi_executions(self):
        auto = pulse_auto()
        run = Simulator(auto, UniformStrategy(random.Random(0))).run(max_steps=40)
        assert find_boundmap_violation(pulse_timed(), project(run), semi=True) is None

    def test_deterministic_given_seed(self):
        auto = pulse_auto()
        r1 = Simulator(auto, UniformStrategy(random.Random(7))).run(max_steps=30)
        r2 = Simulator(auto, UniformStrategy(random.Random(7))).run(max_steps=30)
        assert r1 == r2

    def test_horizon_stops_run(self):
        auto = pulse_auto()
        run = Simulator(auto, UniformStrategy(random.Random(0))).run(
            max_steps=10_000, horizon=20
        )
        assert run.t_end >= 20 or len(run) < 10_000
        assert all(ev.time <= 30 for ev in run.events)

    def test_max_steps_respected(self):
        auto = pulse_auto()
        run = Simulator(auto, UniformStrategy(random.Random(0))).run(max_steps=12)
        assert len(run) <= 12

    def test_eager_hits_lower_bounds(self):
        auto = pulse_auto()
        run = Simulator(auto, EagerStrategy(random.Random(0))).run(max_steps=6)
        fire_times = [ev.time for ev in run.events if ev.action == "fire"]
        assert fire_times[0] == 1  # FIRE lower bound

    def test_lazy_hits_upper_bounds(self):
        auto = pulse_auto()
        run = Simulator(auto, LazyStrategy(random.Random(0))).run(max_steps=6)
        fire_times = [ev.time for ev in run.events if ev.action == "fire"]
        assert fire_times[0] == 2  # FIRE upper bound

    def test_simulate_wrapper(self):
        run = simulate(pulse_auto(), UniformStrategy(random.Random(1)), max_steps=10)
        assert len(run) == 10

    def test_from_state_resumes(self):
        auto = pulse_auto()
        first = Simulator(auto, UniformStrategy(random.Random(2))).run(max_steps=5)
        resumed = Simulator(auto, UniformStrategy(random.Random(3))).run(
            max_steps=5, from_state=first.last_state
        )
        assert resumed.first_state == first.last_state


class TestEdgeCases:
    def test_quiescent_stop(self):
        one_shot = GuardedAutomaton(
            "one-shot",
            [True],
            [
                ActionSpec(
                    "go",
                    Kind.OUTPUT,
                    precondition=lambda s: s,
                    effect=lambda _s: False,
                )
            ],
        )
        from repro.timed.boundmap import Boundmap, TimedAutomaton

        ta = TimedAutomaton(one_shot, Boundmap({"'go'": Interval(1, 2)}))
        run = Simulator(time_of_boundmap(ta), UniformStrategy(random.Random(0))).run(
            max_steps=50
        )
        assert len(run) == 1  # fires once, then quiescent

    def test_deadlock_raises(self):
        # An impossible requirement: 'go' must happen in [0, 1] but also
        # must not happen before 5 — window empty, deadline pending.
        always = GuardedAutomaton(
            "always", ["s"], [ActionSpec("go", Kind.OUTPUT)]
        )
        impossible = [
            TimingCondition.from_start("EARLY", Interval(0, 1), {"never"}),
            TimingCondition.from_start("LATE", Interval(5, 10), {"go"}),
        ]
        auto = time_of_conditions(always, impossible)
        with pytest.raises(SchedulingDeadlockError):
            Simulator(auto, UniformStrategy(random.Random(0))).run(max_steps=5)

    def test_multiple_start_states_require_choice(self):
        multi = GuardedAutomaton(
            "multi", [0, 1], [ActionSpec("go", Kind.OUTPUT)]
        )
        auto = time_of_conditions(multi, [])
        with pytest.raises(SchedulingDeadlockError):
            Simulator(auto, UniformStrategy(random.Random(0))).run(max_steps=1)
        run = Simulator(auto, UniformStrategy(random.Random(0))).run(
            max_steps=1, start_astate=1
        )
        assert run.first_state.astate == 1
