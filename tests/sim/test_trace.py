"""Tests for trace/batch helpers."""

import random

from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.sim.trace import RunBatch, run_batch, timed_behavior_of_run
from repro.core.time_automaton import time_of_boundmap

from tests.timed.test_conditions import pulse_timed


def test_timed_behavior_drops_internals():
    timed = pulse_timed()
    auto = time_of_boundmap(timed)
    run = Simulator(auto, UniformStrategy(random.Random(0))).run(max_steps=20)
    behavior = timed_behavior_of_run(timed.automaton, run)
    # 'arm' is internal; only 'fire' (an output) appears.
    assert all(ev.action == "fire" for ev in behavior)
    assert len(behavior) > 0


def test_run_batch_sizes():
    auto = time_of_boundmap(pulse_timed())
    batch = run_batch(
        auto,
        strategy_factory=lambda rng: UniformStrategy(rng),
        seeds=range(5),
        max_steps=15,
    )
    assert len(batch) == 5
    assert len(batch.behaviors) == 5
    assert batch.event_count() == sum(len(r) for r in batch.runs)


def test_run_batch_reproducible():
    auto = time_of_boundmap(pulse_timed())
    make = lambda: run_batch(
        auto,
        strategy_factory=lambda rng: UniformStrategy(rng),
        seeds=[1, 2],
        max_steps=10,
    )
    assert make().runs == make().runs


def test_run_batch_horizon_propagates():
    auto = time_of_boundmap(pulse_timed())
    batch = run_batch(
        auto,
        strategy_factory=lambda rng: UniformStrategy(rng),
        seeds=[0],
        max_steps=10_000,
        horizon=10,
    )
    assert all(run.t_end <= 20 for run in batch.runs)
