"""Round-trip tests for run serialisation."""

import math
import random
from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.projection import project, validate_run
from repro.core.time_automaton import time_of_boundmap
from repro.core.time_state import Prediction, TimeState
from repro.ioa.actions import Act
from repro.obs.instrument import TraceEvent
from repro.serialize import (
    TRACE_SCHEMA_VERSION,
    SerializationError,
    decode_value,
    encode_value,
    events_from_jsonl,
    events_to_jsonl,
    run_from_json,
    run_to_json,
)
from repro.sim.scheduler import Simulator
from repro.sim.strategies import UniformStrategy
from repro.testkit import random_system

from tests.timed.test_conditions import pulse_timed


class TestValueRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            0,
            -3,
            "state",
            True,
            False,
            F(3, 7),
            math.inf,
            -math.inf,
            1.25,
            Act("SIGNAL", (2,)),
            ("a", 1, (True, F(1, 2))),
            Prediction(F(1, 2), math.inf),
            TimeState("s", F(3), (Prediction(0, math.inf),)),
            [1, "two", F(3)],
            TraceEvent(seq=0, name="sim.step", wall=0.25,
                       fields={"action": Act("GRANT", ()), "time": F(7, 3)}),
        ],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode_value({"__bogus__": 1})


class TestTraceJsonl:
    def _events(self, n=3):
        return [
            TraceEvent(seq=i, name="e{}".format(i), wall=float(i),
                       fields={"time": F(i, 2)})
            for i in range(n)
        ]

    def test_round_trip(self):
        events = self._events()
        assert events_from_jsonl(events_to_jsonl(events)) == events

    def test_empty_trace_round_trips(self):
        text = events_to_jsonl([])
        assert events_from_jsonl(text) == []

    def test_header_carries_schema_version(self):
        import json

        header = json.loads(events_to_jsonl([]).splitlines()[0])
        assert header == {"__trace_jsonl__": TRACE_SCHEMA_VERSION}

    def test_non_event_rejected_on_write(self):
        with pytest.raises(SerializationError):
            events_to_jsonl([{"not": "an event"}])

    def test_missing_header_rejected(self):
        body = events_to_jsonl(self._events()).splitlines()[1]
        with pytest.raises(SerializationError):
            events_from_jsonl(body)

    def test_empty_text_rejected(self):
        with pytest.raises(SerializationError):
            events_from_jsonl("")

    def test_unknown_version_rejected(self):
        import json

        text = json.dumps({"__trace_jsonl__": TRACE_SCHEMA_VERSION + 1}) + "\n"
        with pytest.raises(SerializationError):
            events_from_jsonl(text)

    def test_non_event_line_rejected(self):
        import json

        text = events_to_jsonl([]) + json.dumps({"__frac__": "1/2"}) + "\n"
        with pytest.raises(SerializationError):
            events_from_jsonl(text)


class TestRunRoundTrips:
    def test_pulse_run(self):
        automaton = time_of_boundmap(pulse_timed())
        run = Simulator(automaton, UniformStrategy(random.Random(0))).run(max_steps=20)
        restored = run_from_json(run_to_json(run))
        assert restored == run
        validate_run(automaton, restored)

    def test_projected_sequence(self):
        automaton = time_of_boundmap(pulse_timed())
        run = Simulator(automaton, UniformStrategy(random.Random(1))).run(max_steps=15)
        seq = project(run)
        assert run_from_json(run_to_json(seq)) == seq

    def test_indentation_option(self):
        automaton = time_of_boundmap(pulse_timed())
        run = Simulator(automaton, UniformStrategy(random.Random(2))).run(max_steps=3)
        assert "\n" in run_to_json(run, indent=2)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_random_system_runs_round_trip(self, seed):
        system = random_system(random.Random(seed))
        automaton = time_of_boundmap(system.timed)
        run = Simulator(automaton, UniformStrategy(random.Random(seed + 1))).run(
            max_steps=25
        )
        assert run_from_json(run_to_json(run)) == run
