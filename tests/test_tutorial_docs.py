"""The tutorial's code blocks must stay executable.

Extracts every fenced ``python`` block from docs/tutorial.md and runs
them sequentially in one namespace — the walkthrough is written to be a
single coherent session, so documentation drift fails loudly here.
"""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent / "docs" / "tutorial.md"

BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks():
    text = TUTORIAL.read_text(encoding="utf-8")
    return BLOCK_PATTERN.findall(text)


def test_tutorial_exists_with_blocks():
    assert TUTORIAL.exists()
    assert len(python_blocks()) >= 6


def test_tutorial_blocks_execute_in_sequence():
    namespace = {}
    for index, block in enumerate(python_blocks()):
        try:
            exec(compile(block, "tutorial-block-{}".format(index), "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                "tutorial block {} no longer runs: {}\n---\n{}".format(
                    index, exc, block
                )
            )
    # The walkthrough's artifacts exist and the final claims held.
    assert "report" in namespace
    assert namespace["report"].verdict.holds
