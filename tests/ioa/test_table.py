"""Tests for explicit-table automata."""

import pytest

from repro.errors import AutomatonError
from repro.ioa.actions import ActionSignature
from repro.ioa.table import TableAutomaton


def toggle():
    sig = ActionSignature(outputs={"flip"})
    return TableAutomaton(
        "toggle", sig, start=["off"], steps=[("off", "flip", "on"), ("on", "flip", "off")]
    )


class TestTableAutomaton:
    def test_transitions(self):
        auto = toggle()
        assert list(auto.transitions("off", "flip")) == ["on"]

    def test_round_trip(self):
        auto = toggle()
        assert auto.is_step("on", "flip", "off")

    def test_unknown_action_rejected(self):
        sig = ActionSignature(outputs={"flip"})
        with pytest.raises(AutomatonError):
            TableAutomaton("bad", sig, ["s"], [("s", "zzz", "s")])

    def test_state_set_enforced(self):
        sig = ActionSignature(outputs={"flip"})
        with pytest.raises(AutomatonError):
            TableAutomaton(
                "bad", sig, ["s"], [("s", "flip", "t")], states=["s"]
            )

    def test_empty_start_rejected(self):
        sig = ActionSignature(outputs={"flip"})
        with pytest.raises(AutomatonError):
            TableAutomaton("bad", sig, [], [])

    def test_nondeterminism_supported(self):
        sig = ActionSignature(outputs={"go"})
        auto = TableAutomaton(
            "nd", sig, ["s"], [("s", "go", "a"), ("s", "go", "b")]
        )
        assert set(auto.transitions("s", "go")) == {"a", "b"}

    def test_all_steps(self):
        auto = toggle()
        assert set(auto.all_steps()) == {("off", "flip", "on"), ("on", "flip", "off")}

    def test_states_mentioned(self):
        auto = toggle()
        assert auto.states_mentioned() == {"off", "on"}
