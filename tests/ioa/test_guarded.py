"""Tests for precondition/effect automata."""

import pytest

from repro.errors import AutomatonError, NotEnabledError
from repro.ioa.actions import Kind
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition


def counter_automaton(limit=3):
    """A counter: INC while below limit, RESET any time, PING input."""
    return GuardedAutomaton(
        name="counter",
        start=[0],
        specs=[
            ActionSpec(
                "INC",
                Kind.OUTPUT,
                precondition=lambda n: n < limit,
                effect=lambda n: n + 1,
            ),
            ActionSpec("RESET", Kind.INTERNAL, effect=lambda _n: 0),
            ActionSpec("PING", Kind.INPUT),
        ],
    )


class TestActionSpec:
    def test_input_with_precondition_rejected(self):
        with pytest.raises(AutomatonError):
            ActionSpec("a", Kind.INPUT, precondition=lambda s: True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(AutomatonError):
            ActionSpec("a", "bogus")

    def test_effect_and_effects_mutually_exclusive(self):
        with pytest.raises(AutomatonError):
            ActionSpec(
                "a",
                Kind.OUTPUT,
                effect=lambda s: s,
                effects=lambda s: [s],
            )

    def test_default_effect_is_identity(self):
        spec = ActionSpec("a", Kind.OUTPUT)
        assert list(spec.successors(42)) == [42]

    def test_nondeterministic_effects(self):
        spec = ActionSpec("a", Kind.OUTPUT, effects=lambda s: [s + 1, s + 2])
        assert list(spec.successors(0)) == [1, 2]


class TestGuardedAutomaton:
    def test_signature_built_from_specs(self):
        auto = counter_automaton()
        assert auto.signature.outputs == {"INC"}
        assert auto.signature.internals == {"RESET"}
        assert auto.signature.inputs == {"PING"}

    def test_start_states(self):
        assert list(counter_automaton().start_states()) == [0]

    def test_no_start_states_rejected(self):
        with pytest.raises(AutomatonError):
            GuardedAutomaton("x", [], [])

    def test_duplicate_specs_rejected(self):
        with pytest.raises(AutomatonError):
            GuardedAutomaton(
                "x",
                [0],
                [ActionSpec("a", Kind.OUTPUT), ActionSpec("a", Kind.INTERNAL)],
            )

    def test_guard_respected(self):
        auto = counter_automaton(limit=1)
        assert auto.is_enabled(0, "INC")
        assert not auto.is_enabled(1, "INC")

    def test_effect_applied(self):
        auto = counter_automaton()
        assert list(auto.transitions(0, "INC")) == [1]

    def test_inputs_always_enabled(self):
        auto = counter_automaton()
        for state in (0, 1, 2, 3):
            assert auto.is_enabled(state, "PING")

    def test_input_default_effect_identity(self):
        auto = counter_automaton()
        assert list(auto.transitions(2, "PING")) == [2]

    def test_unknown_action_not_enabled(self):
        auto = counter_automaton()
        assert not auto.is_enabled(0, "ZZZ")
        assert list(auto.transitions(0, "ZZZ")) == []

    def test_enabled_actions(self):
        auto = counter_automaton(limit=3)
        assert set(auto.enabled_actions(0)) == {"INC", "RESET", "PING"}
        assert set(auto.enabled_actions(3)) == {"RESET", "PING"}

    def test_is_step(self):
        auto = counter_automaton()
        assert auto.is_step(0, "INC", 1)
        assert not auto.is_step(0, "INC", 2)

    def test_unique_transition(self):
        auto = counter_automaton()
        assert auto.unique_transition(0, "INC") == 1

    def test_unique_transition_not_enabled(self):
        auto = counter_automaton(limit=0)
        with pytest.raises(NotEnabledError):
            auto.unique_transition(0, "INC")

    def test_unique_transition_nondeterministic(self):
        auto = GuardedAutomaton(
            "nd",
            [0],
            [ActionSpec("a", Kind.OUTPUT, effects=lambda s: [1, 2])],
        )
        with pytest.raises(AutomatonError):
            auto.unique_transition(0, "a")

    def test_default_partition_singletons(self):
        auto = counter_automaton()
        assert set(auto.partition.names) == {"'INC'", "'RESET'"}

    def test_explicit_partition(self):
        auto = GuardedAutomaton(
            "p",
            [0],
            [ActionSpec("a", Kind.OUTPUT), ActionSpec("b", Kind.INTERNAL)],
            partition=Partition.from_pairs([("AB", ["a", "b"])]),
        )
        assert auto.partition.names == ("AB",)

    def test_partition_validated_against_signature(self):
        with pytest.raises(Exception):
            GuardedAutomaton(
                "p",
                [0],
                [ActionSpec("a", Kind.OUTPUT)],
                partition=Partition.from_pairs([("AB", ["a", "b"])]),
            )

    def test_validate_passes(self):
        counter_automaton().validate()

    def test_class_enabled(self):
        auto = counter_automaton(limit=1)
        inc_class = auto.partition.class_of("INC")
        assert auto.class_enabled(0, inc_class)
        assert not auto.class_enabled(1, inc_class)

    def test_enabled_classes(self):
        auto = counter_automaton(limit=0)
        names = {c.name for c in auto.enabled_classes(0)}
        assert names == {"'RESET'"}
