"""Tests for action renaming, including composing two renamed copies
of the same automaton — the use case the operator exists for."""

from fractions import Fraction as F

import pytest

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.composition import compose
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.ioa.rename import rename_actions
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import Interval


def beeper():
    return GuardedAutomaton(
        "beeper",
        [0],
        [ActionSpec("beep", Kind.OUTPUT, effect=lambda n: n + 1)],
        partition=Partition.from_pairs([("BEEP", ["beep"])]),
    )


class TestRenaming:
    def test_signature_renamed(self):
        renamed = rename_actions(beeper(), {"beep": "honk"})
        assert renamed.signature.outputs == {"honk"}

    def test_steps_through_new_names(self):
        renamed = rename_actions(beeper(), {"beep": "honk"})
        assert list(renamed.transitions(0, "honk")) == [1]
        assert list(renamed.transitions(0, "beep")) == []
        assert renamed.is_enabled(0, "honk")
        assert not renamed.is_enabled(0, "beep")

    def test_partition_actions_renamed(self):
        renamed = rename_actions(beeper(), {"beep": "honk"})
        assert renamed.partition["BEEP"].actions == {"honk"}

    def test_class_renaming(self):
        renamed = rename_actions(
            beeper(), {"beep": "honk"}, class_map={"BEEP": "HONK"}
        )
        assert renamed.partition.names == ("HONK",)

    def test_unknown_action_rejected(self):
        with pytest.raises(AutomatonError):
            rename_actions(beeper(), {"zzz": "honk"})

    def test_unknown_class_rejected(self):
        with pytest.raises(AutomatonError):
            rename_actions(beeper(), {}, class_map={"ZZZ": "Y"})

    def test_non_injective_rejected(self):
        auto = GuardedAutomaton(
            "two",
            [0],
            [ActionSpec("a", Kind.OUTPUT), ActionSpec("b", Kind.INTERNAL)],
        )
        with pytest.raises(AutomatonError):
            rename_actions(auto, {"a": "b"})

    def test_identity_renaming_is_transparent(self):
        renamed = rename_actions(beeper(), {})
        assert renamed.signature.outputs == {"beep"}
        assert list(renamed.transitions(0, "beep")) == [1]

    def test_start_states_preserved(self):
        assert list(rename_actions(beeper(), {"beep": "honk"}).start_states()) == [0]


class TestTwoCopies:
    def test_compose_two_renamed_copies(self):
        left = rename_actions(
            beeper(), {"beep": Act("beep", (0,))}, class_map={"BEEP": "BEEP_0"},
            name="beeper0",
        )
        right = rename_actions(
            beeper(), {"beep": Act("beep", (1,))}, class_map={"BEEP": "BEEP_1"},
            name="beeper1",
        )
        comp = compose(left, right)
        assert comp.signature.outputs == {Act("beep", (0,)), Act("beep", (1,))}
        assert list(comp.transitions((0, 0), Act("beep", (1,)))) == [(0, 1)]

    def test_timed_automaton_over_renamed_composition(self):
        left = rename_actions(
            beeper(), {"beep": Act("beep", (0,))}, class_map={"BEEP": "BEEP_0"},
            name="beeper0",
        )
        right = rename_actions(
            beeper(), {"beep": Act("beep", (1,))}, class_map={"BEEP": "BEEP_1"},
            name="beeper1",
        )
        comp = compose(left, right)
        timed = TimedAutomaton(
            comp,
            Boundmap({"BEEP_0": Interval(1, 2), "BEEP_1": Interval(F(1, 2), 3)}),
        )
        from repro.zones import event_separation_bounds

        bounds = event_separation_bounds(
            timed, Act("beep", (0,)), occurrence=2, reset_on=[Act("beep", (0,))]
        )
        assert (bounds.lo, bounds.hi) == (1, 2)
