"""Tests for executions, schedules and behaviors."""

import pytest

from repro.errors import ExecutionError
from repro.ioa.actions import Kind
from repro.ioa.execution import Execution, validate_execution
from repro.ioa.guarded import ActionSpec, GuardedAutomaton


def upcounter():
    return GuardedAutomaton(
        "up",
        [0],
        [
            ActionSpec("inc", Kind.OUTPUT, effect=lambda n: n + 1),
            ActionSpec("noop", Kind.INTERNAL),
        ],
    )


class TestExecution:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            Execution((0, 1), ())

    def test_initial(self):
        ex = Execution.initial(5)
        assert ex.first_state == ex.last_state == 5
        assert len(ex) == 0

    def test_steps(self):
        ex = Execution((0, 1, 2), ("inc", "inc"))
        assert list(ex.steps()) == [(0, "inc", 1), (1, "inc", 2)]

    def test_extend(self):
        ex = Execution.initial(0).extend("inc", 1)
        assert ex.states == (0, 1)
        assert ex.actions == ("inc",)

    def test_sched(self):
        ex = Execution((0, 1, 1), ("inc", "noop"))
        assert ex.sched() == ("inc", "noop")

    def test_beh_drops_internals(self):
        ex = Execution((0, 1, 1), ("inc", "noop"))
        assert ex.beh(upcounter()) == ("inc",)

    def test_prefix(self):
        ex = Execution((0, 1, 2), ("inc", "inc"))
        assert ex.prefix(1).states == (0, 1)

    def test_prefix_out_of_range(self):
        with pytest.raises(ExecutionError):
            Execution.initial(0).prefix(1)

    def test_validate_ok(self):
        ex = Execution((0, 1, 1, 2), ("inc", "noop", "inc"))
        validate_execution(upcounter(), ex)

    def test_validate_bad_step(self):
        ex = Execution((0, 5), ("inc",))
        with pytest.raises(ExecutionError):
            validate_execution(upcounter(), ex)

    def test_validate_bad_start(self):
        ex = Execution((3, 4), ("inc",))
        with pytest.raises(ExecutionError):
            validate_execution(upcounter(), ex)

    def test_validate_fragment_allows_non_start(self):
        ex = Execution((3, 4), ("inc",))
        validate_execution(upcounter(), ex, require_start=False)
