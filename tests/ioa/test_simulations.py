"""Tests for untimed possibilities mappings — the classical substrate
the paper's timed mappings extend — including randomized validation of
the soundness implication (mapping ⇒ schedule inclusion)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ioa.actions import ActionSignature
from repro.ioa.simulations import (
    check_possibilities_mapping,
    schedule_inclusion,
    schedules_up_to,
)
from repro.ioa.table import TableAutomaton


def table(name, steps, start="s0", actions=None):
    acts = actions or {a for (_s, a, _t) in steps}
    return TableAutomaton(
        name, ActionSignature(outputs=frozenset(acts)), [start], steps
    )


def identity_mapping(state):
    return frozenset([state])


class TestChecker:
    def test_identity_on_same_automaton(self):
        auto = table("m", [("s0", "a", "s1"), ("s1", "b", "s0")])
        outcome = check_possibilities_mapping(auto, auto, identity_mapping)
        assert outcome.ok and outcome.pairs_checked > 0

    def test_superset_target_passes(self):
        small = table("small", [("s0", "a", "s1")], actions={"a", "b"})
        big = table("big", [("s0", "a", "s1"), ("s1", "b", "s0")])
        assert check_possibilities_mapping(small, big, identity_mapping).ok

    def test_missing_target_step_fails(self):
        big = table("big", [("s0", "a", "s1"), ("s1", "b", "s0")])
        small = table("small", [("s0", "a", "s1")], actions={"a", "b"})
        outcome = check_possibilities_mapping(big, small, identity_mapping)
        assert not outcome.ok
        assert "step condition" in outcome.detail

    def test_start_condition_fails(self):
        a = table("a", [("s0", "a", "s1")])
        b = TableAutomaton(
            "b", ActionSignature(outputs=frozenset({"a"})), ["other"],
            [("other", "a", "other")],
        )
        outcome = check_possibilities_mapping(a, b, identity_mapping)
        assert not outcome.ok
        assert "start condition" in outcome.detail

    def test_quotient_mapping(self):
        # A two-phase toggle maps onto a one-state loop: f(s) = {hub}.
        toggle = table("toggle", [("s0", "a", "s1"), ("s1", "a", "s0")])
        hub = TableAutomaton(
            "hub", ActionSignature(outputs=frozenset({"a"})), ["h"],
            [("h", "a", "h")],
        )
        outcome = check_possibilities_mapping(
            toggle, hub, lambda _s: frozenset(["h"])
        )
        assert outcome.ok

    def test_multivalued_image_any_witness_suffices(self):
        a = table("a", [("s0", "a", "s1")])
        b = TableAutomaton(
            "b", ActionSignature(outputs=frozenset({"a"})), ["u0"],
            [("u0", "a", "u1")],
        )

        def f(state):
            return frozenset(["u0", "u1"]) if state == "s1" else frozenset(["u0"])

        assert check_possibilities_mapping(a, b, f).ok

    def test_unreachable_states_impose_nothing(self):
        a = table("a", [("s0", "a", "s1"), ("zombie", "b", "zombie")],
                  actions={"a", "b"})
        b = table("b", [("s0", "a", "s1")], actions={"a", "b"})
        # The zombie step has no counterpart in b, but it is unreachable.
        assert check_possibilities_mapping(a, b, identity_mapping).ok


class TestScheduleOracle:
    def test_schedules_up_to(self):
        auto = table("m", [("s0", "a", "s1"), ("s1", "b", "s0")])
        scheds = schedules_up_to(auto, 2)
        assert () in scheds and ("a",) in scheds and ("a", "b") in scheds
        assert ("b",) not in scheds

    def test_inclusion_counterexample(self):
        big = table("big", [("s0", "a", "s1"), ("s1", "b", "s0")])
        small = table("small", [("s0", "a", "s1")], actions={"a", "b"})
        assert schedule_inclusion(big, small, 3) == ("a", "b")
        assert schedule_inclusion(small, big, 3) is None


def random_table(rng, n_states=3, n_actions=2, n_steps=5, name="rand"):
    states = ["q{}".format(i) for i in range(n_states)]
    actions = ["x{}".format(i) for i in range(n_actions)]
    steps = set()
    while len(steps) < n_steps:
        steps.add(
            (rng.choice(states), rng.choice(actions), rng.choice(states))
        )
    return TableAutomaton(
        name,
        ActionSignature(outputs=frozenset(actions)),
        [states[0]],
        sorted(steps),
        states=states,
    )


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_soundness_mapping_implies_schedule_inclusion(seed):
    """Random A; random superset B.  The identity mapping passes the
    checker, and brute force confirms schedule inclusion (the classical
    soundness theorem, validated empirically)."""
    rng = random.Random(seed)
    a = random_table(rng, name="A")
    extra = random_table(random.Random(seed + 1), name="extra")
    b = TableAutomaton(
        "B",
        a.signature,
        ["q0"],
        sorted(set(a.all_steps()) | set(extra.all_steps())),
    )
    assert check_possibilities_mapping(a, b, identity_mapping).ok
    assert schedule_inclusion(a, b, depth=4) is None


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_checker_rejects_only_when_it_should(seed):
    """Random A; B = A minus one step.  If the checker rejects the
    identity mapping, fine; if it accepts, schedule inclusion must
    genuinely hold (the dropped step was unreachable or redundant)."""
    rng = random.Random(seed)
    a = random_table(rng, n_steps=6, name="A")
    steps = sorted(a.all_steps())
    dropped = steps[rng.randrange(len(steps))]
    b = TableAutomaton("B", a.signature, ["q0"], [s for s in steps if s != dropped])
    outcome = check_possibilities_mapping(a, b, identity_mapping)
    if outcome.ok:
        assert schedule_inclusion(a, b, depth=4) is None
