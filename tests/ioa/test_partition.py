"""Tests for partitions of locally controlled actions."""

import pytest

from repro.errors import PartitionError
from repro.ioa.actions import ActionSignature
from repro.ioa.partition import Partition, PartitionClass


class TestPartitionClass:
    def test_empty_class_rejected(self):
        with pytest.raises(PartitionError):
            PartitionClass("C", frozenset())

    def test_membership(self):
        cls = PartitionClass("C", {"a", "b"})
        assert "a" in cls and "c" not in cls

    def test_actions_coerced(self):
        cls = PartitionClass("C", ["a"])
        assert isinstance(cls.actions, frozenset)


class TestPartition:
    def test_duplicate_names_rejected(self):
        with pytest.raises(PartitionError):
            Partition.from_pairs([("C", ["a"]), ("C", ["b"])])

    def test_overlapping_actions_rejected(self):
        with pytest.raises(PartitionError):
            Partition.from_pairs([("C", ["a"]), ("D", ["a"])])

    def test_class_lookup_by_name(self):
        part = Partition.from_pairs([("C", ["a"])])
        assert part["C"].actions == {"a"}

    def test_unknown_name(self):
        part = Partition.from_pairs([("C", ["a"])])
        with pytest.raises(PartitionError):
            part["D"]

    def test_contains_name(self):
        part = Partition.from_pairs([("C", ["a"])])
        assert "C" in part and "D" not in part

    def test_class_of(self):
        part = Partition.from_pairs([("C", ["a"]), ("D", ["b"])])
        assert part.class_of("a").name == "C"
        assert part.class_of("zzz") is None

    def test_order_preserved(self):
        part = Partition.from_pairs([("Z", ["z"]), ("A", ["a"])])
        assert part.names == ("Z", "A")

    def test_singletons(self):
        part = Partition.singletons(["a", "b"])
        assert len(part) == 2
        assert part.class_of("a") is not None

    def test_covered_actions(self):
        part = Partition.from_pairs([("C", ["a", "b"]), ("D", ["c"])])
        assert part.covered_actions() == {"a", "b", "c"}

    def test_validate_against_ok(self):
        sig = ActionSignature(outputs={"a"}, internals={"b"})
        Partition.from_pairs([("C", ["a", "b"])]).validate_against(sig)

    def test_validate_missing(self):
        sig = ActionSignature(outputs={"a"}, internals={"b"})
        with pytest.raises(PartitionError):
            Partition.from_pairs([("C", ["a"])]).validate_against(sig)

    def test_validate_extra(self):
        sig = ActionSignature(outputs={"a"})
        with pytest.raises(PartitionError):
            Partition.from_pairs([("C", ["a", "x"])]).validate_against(sig)

    def test_validate_inputs_not_covered(self):
        sig = ActionSignature(inputs={"i"}, outputs={"a"})
        # inputs are not locally controlled, so they must not be covered
        with pytest.raises(PartitionError):
            Partition.from_pairs([("C", ["a", "i"])]).validate_against(sig)

    def test_iteration(self):
        part = Partition.from_pairs([("C", ["a"]), ("D", ["b"])])
        assert [c.name for c in part] == ["C", "D"]
