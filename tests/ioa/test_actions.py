"""Tests for actions and action signatures (Section 2.1)."""

import pytest

from repro.errors import SignatureError
from repro.ioa.actions import Act, ActionSignature, Kind, act


class TestAct:
    def test_equality_by_value(self):
        assert Act("SIGNAL", (1,)) == Act("SIGNAL", (1,))

    def test_inequality_on_args(self):
        assert Act("SIGNAL", (1,)) != Act("SIGNAL", (2,))

    def test_inequality_on_name(self):
        assert Act("TICK") != Act("TOCK")

    def test_hashable(self):
        assert len({Act("A"), Act("A"), Act("B")}) == 2

    def test_act_helper(self):
        assert act("SIGNAL", 3) == Act("SIGNAL", (3,))

    def test_repr_without_args(self):
        assert repr(Act("GRANT")) == "GRANT"

    def test_repr_with_args(self):
        assert repr(act("SIGNAL", 2)) == "SIGNAL(2)"

    def test_ordering(self):
        assert Act("A") < Act("B")


class TestActionSignature:
    def test_disjointness_enforced(self):
        with pytest.raises(SignatureError):
            ActionSignature(inputs={"a"}, outputs={"a"})

    def test_disjointness_internal(self):
        with pytest.raises(SignatureError):
            ActionSignature(outputs={"a"}, internals={"a"})

    def test_external(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"}, internals={"n"})
        assert sig.external == {"i", "o"}

    def test_locally_controlled(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"}, internals={"n"})
        assert sig.locally_controlled == {"o", "n"}

    def test_all_actions(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"}, internals={"n"})
        assert sig.all_actions == {"i", "o", "n"}

    def test_kind_of(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"}, internals={"n"})
        assert sig.kind_of("i") == Kind.INPUT
        assert sig.kind_of("o") == Kind.OUTPUT
        assert sig.kind_of("n") == Kind.INTERNAL

    def test_kind_of_unknown(self):
        sig = ActionSignature(inputs={"i"})
        with pytest.raises(SignatureError):
            sig.kind_of("zzz")

    def test_contains(self):
        sig = ActionSignature(inputs={"i"})
        assert sig.contains("i")
        assert not sig.contains("o")

    def test_is_external(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"}, internals={"n"})
        assert sig.is_external("i") and sig.is_external("o")
        assert not sig.is_external("n")

    def test_is_locally_controlled(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"}, internals={"n"})
        assert not sig.is_locally_controlled("i")
        assert sig.is_locally_controlled("o") and sig.is_locally_controlled("n")

    def test_hide_moves_outputs_to_internal(self):
        sig = ActionSignature(outputs={"o1", "o2"})
        hidden = sig.hide(["o1"])
        assert hidden.outputs == {"o2"}
        assert hidden.internals == {"o1"}

    def test_hide_rejects_non_outputs(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"})
        with pytest.raises(SignatureError):
            sig.hide(["i"])

    def test_hide_preserves_inputs(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"})
        assert sig.hide(["o"]).inputs == {"i"}

    def test_empty_signature(self):
        sig = ActionSignature()
        assert sig.all_actions == frozenset()

    def test_sets_coerced_to_frozensets(self):
        sig = ActionSignature(inputs=["i"], outputs=["o"])
        assert isinstance(sig.inputs, frozenset)
        assert isinstance(sig.outputs, frozenset)

    def test_describe_mentions_all_kinds(self):
        sig = ActionSignature(inputs={"i"}, outputs={"o"}, internals={"n"})
        text = sig.describe()
        assert "'i'" in text and "'o'" in text and "'n'" in text
