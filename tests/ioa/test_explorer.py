"""Tests for reachability exploration and invariant checking."""

import pytest

from repro.ioa.actions import Kind
from repro.ioa.explorer import check_invariant, explore
from repro.ioa.guarded import ActionSpec, GuardedAutomaton


def ring(size=5):
    """A modular counter with `size` reachable states."""
    return GuardedAutomaton(
        "ring",
        [0],
        [ActionSpec("step", Kind.OUTPUT, effect=lambda n: (n + 1) % size)],
    )


class TestExplore:
    def test_reaches_all_states(self):
        result = explore(ring(5))
        assert result.reachable == {0, 1, 2, 3, 4}
        assert not result.truncated

    def test_transition_count(self):
        result = explore(ring(4))
        assert result.transitions_explored == 4

    def test_max_states_truncates(self):
        result = explore(ring(100), max_states=10)
        assert result.truncated
        assert len(result.reachable) == 10

    def test_max_depth_truncates(self):
        result = explore(ring(100), max_depth=3)
        assert result.truncated
        assert result.reachable == {0, 1, 2, 3}

    def test_path_to(self):
        result = explore(ring(5))
        path = result.path_to(3)
        assert path.first_state == 0
        assert path.last_state == 3
        assert len(path) == 3

    def test_path_to_unreached(self):
        result = explore(ring(5), max_depth=1)
        with pytest.raises(Exception):
            result.path_to(4)


class TestCheckInvariant:
    def test_holds(self):
        report = check_invariant(ring(5), lambda n: 0 <= n < 5)
        assert report.holds
        assert report.states_checked == 5

    def test_violation_found_with_counterexample(self):
        report = check_invariant(ring(5), lambda n: n != 3)
        assert not report.holds
        assert report.counterexample is not None
        assert report.counterexample.last_state == 3

    def test_counterexample_is_shortest(self):
        report = check_invariant(ring(5), lambda n: n != 2)
        assert len(report.counterexample) == 2

    def test_start_state_violation(self):
        report = check_invariant(ring(5), lambda n: n != 0)
        assert not report.holds
        assert len(report.counterexample) == 0

    def test_truthiness(self):
        assert check_invariant(ring(3), lambda n: True)
        assert not check_invariant(ring(3), lambda n: False)

    def test_truncation_reported(self):
        report = check_invariant(ring(100), lambda n: True, max_states=5)
        assert report.holds and report.truncated
