"""Tests for composition and hiding (Section 2.1)."""

import pytest

from repro.errors import CompositionError
from repro.ioa.actions import Kind
from repro.ioa.composition import Composition, compose, hide
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition


def producer():
    return GuardedAutomaton(
        "producer",
        [0],
        [ActionSpec("emit", Kind.OUTPUT, effect=lambda n: n + 1)],
        partition=Partition.from_pairs([("EMIT", ["emit"])]),
    )


def consumer():
    return GuardedAutomaton(
        "consumer",
        [0],
        [
            ActionSpec("emit", Kind.INPUT, effect=lambda n: n + 1),
            ActionSpec(
                "ack",
                Kind.OUTPUT,
                precondition=lambda n: n > 0,
                effect=lambda n: n - 1,
            ),
        ],
        partition=Partition.from_pairs([("ACK", ["ack"])]),
    )


class TestComposition:
    def test_empty_rejected(self):
        with pytest.raises(CompositionError):
            Composition([])

    def test_shared_output_rejected(self):
        with pytest.raises(CompositionError):
            compose(producer(), producer())

    def test_internal_sharing_rejected(self):
        internal = GuardedAutomaton(
            "internal", [0], [ActionSpec("emit", Kind.INTERNAL)]
        )
        with pytest.raises(CompositionError):
            compose(producer(), internal)

    def test_signature_output_wins_over_input(self):
        comp = compose(producer(), consumer())
        assert "emit" in comp.signature.outputs
        assert "emit" not in comp.signature.inputs

    def test_signature_ack_output(self):
        comp = compose(producer(), consumer())
        assert "ack" in comp.signature.outputs

    def test_start_states_product(self):
        comp = compose(producer(), consumer())
        assert list(comp.start_states()) == [(0, 0)]

    def test_shared_action_moves_both(self):
        comp = compose(producer(), consumer())
        assert list(comp.transitions((0, 0), "emit")) == [(1, 1)]

    def test_private_action_moves_one(self):
        comp = compose(producer(), consumer())
        assert list(comp.transitions((2, 1), "ack")) == [(2, 0)]

    def test_disabled_participant_blocks(self):
        comp = compose(producer(), consumer())
        assert not comp.is_enabled((0, 0), "ack")
        assert list(comp.transitions((0, 0), "ack")) == []

    def test_unknown_action(self):
        comp = compose(producer(), consumer())
        assert list(comp.transitions((0, 0), "zzz")) == []
        assert not comp.is_enabled((0, 0), "zzz")

    def test_partition_merged(self):
        comp = compose(producer(), consumer())
        assert set(comp.partition.names) == {"EMIT", "ACK"}

    def test_partition_collision_rejected(self):
        a = GuardedAutomaton(
            "a", [0], [ActionSpec("x", Kind.OUTPUT)],
            partition=Partition.from_pairs([("C", ["x"])]),
        )
        b = GuardedAutomaton(
            "b", [0], [ActionSpec("y", Kind.OUTPUT)],
            partition=Partition.from_pairs([("C", ["y"])]),
        )
        with pytest.raises(CompositionError):
            compose(a, b)

    def test_component_index(self):
        comp = compose(producer(), consumer())
        assert comp.component_index("producer") == 0
        assert comp.component_index("consumer") == 1

    def test_component_index_unknown(self):
        comp = compose(producer(), consumer())
        with pytest.raises(CompositionError):
            comp.component_index("zzz")

    def test_component_state(self):
        comp = compose(producer(), consumer())
        assert comp.component_state((5, 7), "consumer") == 7

    def test_input_enabledness_of_composition(self):
        # A composition of these two is closed: no inputs remain.
        comp = compose(producer(), consumer())
        assert comp.signature.inputs == frozenset()

    def test_multiple_start_states_product(self):
        a = GuardedAutomaton("a", [0, 1], [ActionSpec("x", Kind.OUTPUT)])
        b = GuardedAutomaton("b", ["p"], [ActionSpec("y", Kind.OUTPUT)])
        comp = compose(a, b)
        assert set(comp.start_states()) == {(0, "p"), (1, "p")}


class TestHiding:
    def test_hide_changes_signature_only(self):
        comp = compose(producer(), consumer())
        hidden = hide(comp, ["emit"])
        assert "emit" in hidden.signature.internals
        assert list(hidden.transitions((0, 0), "emit")) == [(1, 1)]

    def test_hide_preserves_partition(self):
        comp = compose(producer(), consumer())
        hidden = hide(comp, ["emit"])
        assert set(hidden.partition.names) == {"EMIT", "ACK"}

    def test_hide_preserves_start_states(self):
        comp = compose(producer(), consumer())
        assert list(hide(comp, ["emit"]).start_states()) == [(0, 0)]

    def test_hidden_still_locally_controlled(self):
        comp = compose(producer(), consumer())
        hidden = hide(comp, ["emit"])
        assert hidden.signature.is_locally_controlled("emit")
        assert not hidden.signature.is_external("emit")
