"""Self-lint: every shipped system must lint clean of ERRORs.

This is the tier-1 gate promised in ``docs/linting.md``: the linter is
run over every system bundle the repo ships, and any ERROR diagnostic
fails the suite.  WARNINGs are allowed (e.g. R005 on deliberately
untimed environment classes) but are pinned below so new ones are
noticed.
"""

import pytest

from repro.lint import build_target, lint_system, system_names


@pytest.mark.parametrize("name", system_names())
def test_system_lints_clean_of_errors(name):
    report = lint_system(build_target(name))
    assert not report.errors, "\n" + report.render()


@pytest.mark.parametrize("name", system_names())
def test_system_warnings_are_only_trivial_bounds(name):
    """The only expected warnings are R005 on deliberately untimed
    environment/progress classes; anything else is a regression."""
    report = lint_system(build_target(name))
    unexpected = [d for d in report.warnings if d.rule != "R005"]
    assert not unexpected, "\n".join(d.render() for d in unexpected)


def test_all_systems_are_covered():
    names = system_names()
    assert {"rm", "relay", "fischer", "peterson", "tournament"} <= set(names)
    assert len(names) == len(set(names))
