"""Unit tests for every shipped lint rule, one class per rule.

Each test builds a deliberately broken specification and asserts the
rule fires with its id, and a matching healthy specification stays
clean.
"""

import math
from fractions import Fraction

from repro.core.dummification import dummy_automaton
from repro.core.mappings import InequalityMapping
from repro.core.time_automaton import time_of_boundmap, time_of_conditions
from repro.ioa.actions import ActionSignature, Kind
from repro.ioa.automaton import IOAutomaton
from repro.ioa.composition import compose
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.lint import (
    lint_boundmap,
    lint_chain,
    lint_conditions,
    lint_mapping,
    lint_timed_automaton,
)
from repro.lint.diagnostics import Severity
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import INFINITY, Interval


def pulse_automaton():
    """on --fire--> off --arm--> on, two classes FIRE and ARM."""
    return GuardedAutomaton(
        "pulse",
        ["on"],
        [
            ActionSpec(
                "fire",
                Kind.OUTPUT,
                precondition=lambda s: s == "on",
                effect=lambda _s: "off",
            ),
            ActionSpec(
                "arm",
                Kind.INTERNAL,
                precondition=lambda s: s == "off",
                effect=lambda _s: "on",
            ),
        ],
        partition=Partition.from_pairs([("FIRE", ["fire"]), ("ARM", ["arm"])]),
    )


def pulse_timed(fire=Interval(1, 2), arm=Interval(0, 5)):
    return TimedAutomaton(pulse_automaton(), Boundmap({"FIRE": fire, "ARM": arm}))


def rules_fired(report):
    return {d.rule for d in report}


class TestR001MissingClass:
    def test_fires(self):
        report = lint_boundmap({"A": (1, 2)}, partition_names=("A", "B"))
        (d,) = report.by_rule("R001")
        assert d.severity is Severity.ERROR and "'B'" in d.message

    def test_clean(self):
        report = lint_boundmap({"A": (1, 2)}, partition_names=("A",))
        assert not report.by_rule("R001")

    def test_skipped_without_partition(self):
        assert not lint_boundmap({"A": (1, 2)}).by_rule("R001")


class TestR002UnknownClass:
    def test_fires(self):
        report = lint_boundmap(
            {"A": (1, 2), "TYPO": (1, 2)}, partition_names=("A",)
        )
        (d,) = report.by_rule("R002")
        assert d.severity is Severity.ERROR and "'TYPO'" in d.message


class TestR003InvalidInterval:
    def test_inverted(self):
        (d,) = lint_boundmap({"A": (2, 1)}).by_rule("R003")
        assert "inverted" in d.message and d.severity is Severity.ERROR

    def test_negative_lower(self):
        (d,) = lint_boundmap({"A": (-1, 2)}).by_rule("R003")
        assert "negative" in d.message

    def test_infinite_lower(self):
        (d,) = lint_boundmap({"A": (math.inf, math.inf)}).by_rule("R003")
        assert "infinite lower" in d.message

    def test_zero_upper(self):
        (d,) = lint_boundmap({"A": (0, 0)}).by_rule("R003")
        assert "zero upper" in d.message

    def test_non_numeric(self):
        (d,) = lint_boundmap({"A": ("x", 2)}).by_rule("R003")
        assert "non-numeric" in d.message

    def test_not_an_interval(self):
        (d,) = lint_boundmap({"A": "garbage"}).by_rule("R003")
        assert "not an interval" in d.message

    def test_clean_interval_and_pair(self):
        report = lint_boundmap({"A": Interval(1, 2), "B": (0, INFINITY)})
        assert not report.by_rule("R003")


class TestR004InexactBounds:
    def test_float_endpoint_warns(self):
        (d,) = lint_boundmap({"A": (0.5, 1.5)}).by_rule("R004")
        assert d.severity is Severity.WARNING and "Fraction" in d.hint

    def test_interval_with_float_warns(self):
        assert lint_boundmap({"A": Interval(0.5, 1.5)}).by_rule("R004")

    def test_infinity_is_not_inexact(self):
        assert not lint_boundmap({"A": (0, INFINITY)}).by_rule("R004")

    def test_fraction_clean(self):
        report = lint_boundmap({"A": (Fraction(1, 2), Fraction(3, 2))})
        assert not report.by_rule("R004")


class TestR005TrivialClassBound:
    def test_fires(self):
        timed = pulse_timed(arm=Interval(0, INFINITY))
        (d,) = lint_timed_automaton(timed).by_rule("R005")
        assert d.severity is Severity.WARNING and "'ARM'" in d.message

    def test_clean(self):
        assert not lint_timed_automaton(pulse_timed()).by_rule("R005")


class TestR006VacuousTargets:
    def test_misspelt_action_fires(self):
        automaton = pulse_automaton()
        cond = TimingCondition.build("C", Interval(1, 2), actions=["fier"])  # typo
        (d,) = lint_conditions(automaton, [cond]).by_rule("R006")
        assert d.severity is Severity.ERROR and "'C'" in d.message

    def test_clean(self):
        automaton = pulse_automaton()
        cond = TimingCondition.build("C", Interval(1, 2), actions=["fire"])
        assert not lint_conditions(automaton, [cond]).by_rule("R006")


class TestR007TriggerDisablingOverlap:
    def test_start_overlap_fires(self):
        automaton = pulse_automaton()
        cond = TimingCondition.build(
            "C",
            Interval(1, 2),
            actions=["fire"],
            start_states=["on"],
            disabling=["on"],
        )
        diagnostics = lint_conditions(automaton, [cond]).by_rule("R007")
        assert any("both triggering and disabling" in d.message for d in diagnostics)

    def test_trigger_step_into_disabling_fires(self):
        automaton = pulse_automaton()
        cond = TimingCondition.build(
            "C",
            Interval(1, 2),
            actions=["arm"],
            step_predicate=lambda pre, a, post: a == "fire",
            disabling=["off"],  # every fire step ends in "off"
        )
        diagnostics = lint_conditions(automaton, [cond]).by_rule("R007")
        assert any("ends in a disabling state" in d.message for d in diagnostics)

    def test_clean(self):
        automaton = pulse_automaton()
        cond = TimingCondition.build(
            "C",
            Interval(1, 2),
            actions=["fire"],
            start_states=["on"],
            disabling=["off"],
        )
        assert not lint_conditions(automaton, [cond]).by_rule("R007")


class TestR008DeadClass:
    def test_unreachable_precondition_fires(self):
        automaton = GuardedAutomaton(
            "stuck",
            [0],
            [
                ActionSpec("go", Kind.OUTPUT, effect=lambda n: n),
                ActionSpec("never", Kind.OUTPUT, precondition=lambda n: n > 10),
            ],
            partition=Partition.from_pairs([("GO", ["go"]), ("NEVER", ["never"])]),
        )
        timed = TimedAutomaton(
            automaton, Boundmap({"GO": Interval(1, 2), "NEVER": Interval(1, 2)})
        )
        (d,) = lint_timed_automaton(timed).by_rule("R008")
        assert d.severity is Severity.WARNING and "'NEVER'" in d.message

    def test_skipped_when_truncated(self):
        automaton = GuardedAutomaton(
            "counter",
            [0],
            [
                ActionSpec("inc", Kind.OUTPUT, effect=lambda n: n + 1),
                ActionSpec("never", Kind.OUTPUT, precondition=lambda n: n < 0),
            ],
            partition=Partition.from_pairs([("INC", ["inc"]), ("NEVER", ["never"])]),
        )
        timed = TimedAutomaton(
            automaton, Boundmap({"INC": Interval(1, 2), "NEVER": Interval(1, 2)})
        )
        assert not lint_timed_automaton(timed, max_states=10).by_rule("R008")

    def test_clean(self):
        assert not lint_timed_automaton(pulse_timed()).by_rule("R008")


class TestR009UntimedDummy:
    def _dummified(self, null_interval):
        composed = compose(pulse_automaton(), dummy_automaton(), name="pulse~")
        return TimedAutomaton(
            composed,
            Boundmap(
                {
                    "FIRE": Interval(1, 2),
                    "ARM": Interval(0, 5),
                    "NULL": null_interval,
                }
            ),
        )

    def test_unbounded_null_fires(self):
        timed = self._dummified(Interval(0, INFINITY))
        (d,) = lint_timed_automaton(timed).by_rule("R009")
        assert d.severity is Severity.ERROR and "force progress" in d.message

    def test_bounded_null_clean(self):
        assert not lint_timed_automaton(self._dummified(Interval(0, 1))).by_rule("R009")

    def test_no_dummy_clean(self):
        assert not lint_timed_automaton(pulse_timed()).by_rule("R009")


class TestR010MappingBaseMismatch:
    def test_distinct_bases_fire(self):
        timed_one = pulse_timed()
        other = GuardedAutomaton(
            "other",
            ["on"],
            [ActionSpec("ping", Kind.OUTPUT)],
            partition=Partition.from_pairs([("PING", ["ping"])]),
        )
        source = time_of_boundmap(timed_one)
        target = time_of_conditions(
            other, [TimingCondition.build("C", Interval(1, 2), actions=["ping"])]
        )
        mapping = InequalityMapping(source, target, lambda u, s: True, name="bad")
        (d,) = lint_mapping(mapping).by_rule("R010")
        assert d.severity is Severity.ERROR and "different automata" in d.message

    def test_lookalike_instances_warn(self):
        source = time_of_boundmap(pulse_timed())
        target = time_of_boundmap(pulse_timed())  # equal, but a new object
        mapping = InequalityMapping(source, target, lambda u, s: True, name="twin")
        (d,) = lint_mapping(mapping).by_rule("R010")
        assert d.severity is Severity.WARNING and "look-alike" in d.message

    def test_shared_base_clean(self):
        timed = pulse_timed()
        source = time_of_boundmap(timed)
        target = time_of_conditions(
            timed.automaton,
            [TimingCondition.build("C", Interval(1, 2), actions=["fire"])],
        )
        mapping = InequalityMapping(source, target, lambda u, s: True)
        assert not lint_mapping(mapping).by_rule("R010")


class TestR011ChainBrokenLink:
    def test_mismatched_levels_fire(self):
        timed = pulse_timed()
        source = time_of_boundmap(timed)
        mid_a = time_of_conditions(
            timed.automaton,
            [TimingCondition.build("M", Interval(1, 9), actions=["fire"])],
            name="mid-a",
        )
        mid_b = time_of_conditions(
            timed.automaton,
            [TimingCondition.build("M", Interval(1, 9), actions=["fire"])],
            name="mid-b",
        )
        top = time_of_conditions(
            timed.automaton,
            [TimingCondition.build("T", Interval(1, 9), actions=["fire"])],
            name="top",
        )
        first = InequalityMapping(source, mid_a, lambda u, s: True, name="one")
        second = InequalityMapping(mid_b, top, lambda u, s: True, name="two")
        report = lint_chain([first, second])
        (d,) = report.by_rule("R011")
        assert d.severity is Severity.ERROR and "'mid-a'" in d.message

    def test_linked_levels_clean(self):
        timed = pulse_timed()
        source = time_of_boundmap(timed)
        mid = time_of_conditions(
            timed.automaton,
            [TimingCondition.build("M", Interval(1, 9), actions=["fire"])],
            name="mid",
        )
        top = time_of_conditions(
            timed.automaton,
            [TimingCondition.build("T", Interval(1, 9), actions=["fire"])],
            name="top",
        )
        chain = [
            InequalityMapping(source, mid, lambda u, s: True),
            InequalityMapping(mid, top, lambda u, s: True),
        ]
        assert not lint_chain(chain).by_rule("R011")


class _RudeInput(IOAutomaton):
    """Deliberately violates input-enabledness: input 'in' only enabled
    in state 0."""

    name = "rude"

    @property
    def signature(self):
        return ActionSignature(inputs=frozenset(["in"]), outputs=frozenset(["out"]))

    def start_states(self):
        yield 0

    def transitions(self, state, action):
        if action == "out":
            return [1 - state]
        if action == "in" and state == 0:
            return [0]
        return []

    @property
    def partition(self):
        return Partition.from_pairs([("OUT", ["out"])])


class TestR012InputEnabledness:
    def test_disabled_input_fires(self):
        timed = TimedAutomaton(_RudeInput(), Boundmap({"OUT": Interval(1, 2)}))
        (d,) = lint_timed_automaton(timed).by_rule("R012")
        assert d.severity is Severity.ERROR and "'in'" in d.message

    def test_clean_without_inputs(self):
        assert not lint_timed_automaton(pulse_timed()).by_rule("R012")


class TestR013InactiveCondition:
    def test_never_activated_warns(self):
        automaton = pulse_automaton()
        cond = TimingCondition.build(
            "C",
            Interval(1, 2),
            actions=["fire"],
            step_predicate=lambda pre, a, post: a == "no-such-action",
        )
        (d,) = lint_conditions(automaton, [cond]).by_rule("R013")
        assert d.severity is Severity.WARNING and "'C'" in d.message

    def test_started_condition_clean(self):
        automaton = pulse_automaton()
        cond = TimingCondition.from_start("C", Interval(1, 2), ["fire"])
        assert not lint_conditions(automaton, [cond]).by_rule("R013")

    def test_triggered_condition_clean(self):
        automaton = pulse_automaton()
        cond = TimingCondition.after_action("C", Interval(1, 2), "fire", ["fire"])
        assert not lint_conditions(automaton, [cond]).by_rule("R013")

    def test_skipped_when_truncated(self):
        automaton = GuardedAutomaton(
            "counter",
            [0],
            [ActionSpec("inc", Kind.OUTPUT, effect=lambda n: n + 1)],
            partition=Partition.from_pairs([("INC", ["inc"])]),
        )
        cond = TimingCondition.build(
            "C",
            Interval(1, 2),
            actions=["inc"],
            step_predicate=lambda pre, a, post: False,
        )
        report = lint_conditions(automaton, [cond], max_states=5)
        assert not report.by_rule("R013")


class TestR014FragileBounds:
    def _lint(self, target):
        from repro.lint import lint_system

        return lint_system(target)

    def test_broken_system_warns_at_nominal(self):
        from repro.lint.targets import SystemTarget

        report = self._lint(SystemTarget(name="fischer-tight"))
        (diagnostic,) = report.by_rule("R014")
        assert diagnostic.severity is Severity.WARNING
        assert "eps=0" in diagnostic.message

    def test_system_without_harness_is_skipped(self):
        from repro.lint.targets import SystemTarget

        report = self._lint(SystemTarget(name="interrupt"))
        assert not report.by_rule("R014")
