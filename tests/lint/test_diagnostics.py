"""Tests for the Diagnostic/LintReport machinery and the rule registry."""

import json

import pytest

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import all_rules, get_rule, rule, rules_for


def diag(rule_id="R001", severity=Severity.ERROR, message="m"):
    return Diagnostic(rule_id, severity, "loc", message, hint="h")


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_str(self):
        assert str(Severity.ERROR) == "ERROR"


class TestDiagnostic:
    def test_render_includes_all_parts(self):
        rendered = diag().render()
        assert "ERROR" in rendered and "R001" in rendered
        assert "[loc]" in rendered and "m" in rendered and "(fix: h)" in rendered

    def test_render_omits_empty_hint(self):
        d = Diagnostic("R001", Severity.INFO, "loc", "m")
        assert "fix:" not in d.render()

    def test_to_dict(self):
        assert diag().to_dict() == {
            "rule": "R001",
            "severity": "ERROR",
            "location": "loc",
            "message": "m",
            "hint": "h",
        }


class TestLintReport:
    def test_empty_report_is_clean(self):
        report = LintReport()
        assert len(report) == 0
        assert not report.has_errors
        assert report.max_severity() is None
        assert not report.fails() and not report.fails(strict=True)
        assert bool(report)

    def test_error_report(self):
        report = LintReport([diag()])
        assert report.has_errors and report.fails()
        assert not bool(report)
        assert report.errors == (diag(),)

    def test_warning_fails_only_in_strict(self):
        report = LintReport([diag(severity=Severity.WARNING)])
        assert not report.fails()
        assert report.fails(strict=True)
        assert report.max_severity() is Severity.WARNING

    def test_filters(self):
        report = LintReport(
            [
                diag("R001", Severity.ERROR),
                diag("R002", Severity.WARNING),
                diag("R001", Severity.INFO),
            ]
        )
        assert len(report.by_rule("R001")) == 2
        assert len(report.warnings) == 1 and len(report.infos) == 1
        assert report.summary() == {"ERROR": 1, "WARNING": 1, "INFO": 1}

    def test_render_orders_worst_first(self):
        report = LintReport(
            [diag("R002", Severity.INFO), diag("R001", Severity.ERROR)]
        )
        lines = report.render().splitlines()
        assert lines[0].startswith("ERROR")
        assert "2 diagnostic(s)" in lines[-1]

    def test_merged_and_extend(self):
        left = LintReport([diag("R001")])
        right = LintReport([diag("R002")])
        merged = left.merged(right)
        assert len(merged) == 2 and len(left) == 1
        left.extend(right)
        assert len(left) == 2

    def test_to_json(self):
        payload = json.loads(LintReport([diag()]).to_json(system="rm"))
        assert payload["system"] == "rm"
        assert payload["summary"]["ERROR"] == 1
        assert payload["diagnostics"][0]["rule"] == "R001"


class TestRegistry:
    def test_all_rules_sorted_and_complete(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        expected = {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008", "R009", "R010", "R011", "R012", "R013",
        }
        assert expected <= set(ids)

    def test_rules_have_titles_and_paper_refs(self):
        for registered in all_rules():
            assert registered.title
            assert registered.paper

    def test_rules_for_target(self):
        boundmap_ids = {r.id for r in rules_for("boundmap")}
        assert {"R001", "R002", "R003", "R004"} <= boundmap_ids
        assert "R010" not in boundmap_ids

    def test_rules_for_unknown_target(self):
        with pytest.raises(LintError):
            rules_for("nonsense")

    def test_get_rule(self):
        assert get_rule("R001").id == "R001"
        with pytest.raises(LintError):
            get_rule("R999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(LintError):
            rule("R001", targets="boundmap", title="dup")(lambda ctx: [])

    def test_unknown_target_rejected(self):
        with pytest.raises(LintError):
            rule("R998", targets="not-a-target", title="bad")(lambda ctx: [])
