"""Tests for ``python -m repro lint`` (the CLI surface of the linter)."""

import json

import pytest

from repro.cli import main


class TestLintCommand:
    def test_rm_json_clean(self, capsys):
        assert main(["lint", "rm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "rm"
        assert payload["summary"].get("ERROR", 0) == 0

    def test_relay_json_clean_of_errors(self, capsys):
        assert main(["lint", "relay", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"].get("ERROR", 0) == 0
        # relay deliberately leaves SIGNAL_0 untimed — R005 warnings.
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert rules <= {"R005"}

    def test_relay_strict_fails_on_warnings(self, capsys):
        assert main(["lint", "relay", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "R005" in out and "FAIL" in out

    def test_all_systems_clean(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_all_json_is_a_list(self, capsys):
        assert main(["lint", "all", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert {entry["system"] for entry in payload} >= {"rm", "relay"}

    def test_human_output_renders_rules_and_hints(self, capsys):
        assert main(["lint", "relay"]) == 0
        out = capsys.readouterr().out
        assert "lint relay:" in out
        assert "WARNING" in out and "R005" in out and "fix:" in out

    def test_max_states_is_accepted(self, capsys):
        assert main(["lint", "rm", "--max-states", "50"]) == 0

    def test_unknown_system_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "no-such-system"])
