"""Tests for ``python -m repro lint`` (the CLI surface of the linter)."""

import json

import pytest

from repro.cli import main


class TestLintCommand:
    def test_rm_json_clean(self, capsys):
        assert main(["lint", "rm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "rm"
        assert payload["summary"].get("ERROR", 0) == 0

    def test_relay_json_clean_of_errors(self, capsys):
        assert main(["lint", "relay", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"].get("ERROR", 0) == 0
        # relay deliberately leaves SIGNAL_0 untimed — R005, waived to INFO.
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert rules <= {"R005", "R014"}

    def test_relay_strict_passes_with_waivers(self, capsys):
        # The deliberate SIGNAL_0 R005 warning is waived down to INFO,
        # so the strict gate is clean.
        assert main(["lint", "relay", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "waived" in out

    def test_strict_still_fails_on_unwaived_warnings(self):
        from fractions import Fraction

        from repro.lint import lint_system
        from repro.lint.targets import SystemTarget
        from repro.systems.extensions.fischer import FischerParams, fischer_system

        timed = fischer_system(FischerParams(n=2, a=Fraction(1), b=Fraction(2)))
        target = SystemTarget(
            name="fischer", timed_automata=(("fischer/(A,b)", timed),)
        )
        report = lint_system(target)
        assert report.fails(strict=True)
        assert not report.fails(strict=False)

    def test_all_systems_clean(self, capsys):
        assert main(["lint", "all"]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_all_json_is_a_list(self, capsys):
        assert main(["lint", "all", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert {entry["system"] for entry in payload} >= {"rm", "relay"}

    def test_human_output_renders_rules_and_hints(self, capsys):
        assert main(["lint", "relay"]) == 0
        out = capsys.readouterr().out
        assert "lint relay:" in out
        assert "INFO" in out and "R005" in out and "fix:" in out

    def test_max_states_is_accepted(self, capsys):
        assert main(["lint", "rm", "--max-states", "50"]) == 0

    def test_unknown_system_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "no-such-system"])
