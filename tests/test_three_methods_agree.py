"""Capstone integration: three independent verdicts must coincide.

For a family of claims about the pulse system's fire-to-fire gap
(true bound [1, 7]), each claim is decided three ways:

1. **mapping method** (the paper): exhaustive grid check of a
   possibilities mapping into the claim's requirements automaton;
2. **semantic enumeration**: all grid executions tested directly
   against the claim (Theorem 3.4's conclusion, no mapping);
3. **zone analysis**: exact continuous-time separation bounds compared
   with the claim.

Any disagreement would mean one of the three engines misreads the
semantics; their joint agreement across sound, tight and violated
claims is the strongest internal-consistency evidence in the suite.
"""

from fractions import Fraction as F

import pytest

from repro.core.checker import check_mapping_exhaustive
from repro.core.inclusion import check_semantic_inclusion
from repro.core.mappings import InequalityMapping
from repro.core.time_automaton import time_of_boundmap, time_of_conditions
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.zones.verify import verify_event_condition

from tests.timed.test_conditions import pulse_timed

#: (claimed interval, expected to hold) — the true gap interval is [1, 7].
CLAIMS = [
    (Interval(1, 7), True),   # exactly right
    (Interval(0, 8), True),   # sound with slack
    (Interval(1, 6), False),  # upper too tight
    (Interval(F(3, 2), 7), False),  # lower too high
    (Interval(1, 100), True),
    (Interval(2, 6), False),
]


def mapping_verdict(timed, claim: Interval) -> bool:
    algorithm = time_of_boundmap(timed)
    gap = TimingCondition.after_action("GAP", claim, "fire", {"fire"})
    requirements = time_of_conditions(timed.automaton, [gap], name="claim")
    mapping = InequalityMapping(algorithm, requirements, lambda u, s: True)
    return check_mapping_exhaustive(mapping, grid=F(1, 2), horizon=F(12)).ok


def semantic_verdict(timed, claim: Interval) -> bool:
    algorithm = time_of_boundmap(timed)
    gap = TimingCondition.after_action("GAP", claim, "fire", {"fire"})
    return check_semantic_inclusion(
        algorithm, [gap], grid=F(1, 2), horizon=F(12), max_executions=60_000
    ).ok


def zone_verdict(timed, claim: Interval) -> bool:
    return verify_event_condition(
        timed, "fire", "fire", claim, occurrences=2
    ).verdict.holds


@pytest.mark.parametrize("claim,expected", CLAIMS)
def test_three_methods_agree(claim, expected):
    timed = pulse_timed()
    verdicts = {
        "mapping": mapping_verdict(timed, claim),
        "semantic": semantic_verdict(timed, claim),
        "zones": zone_verdict(timed, claim),
    }
    assert all(v == expected for v in verdicts.values()), (
        "claim {!r}: expected {} but verdicts are {}".format(claim, expected, verdicts)
    )
