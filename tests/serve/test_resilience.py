"""Circuit breakers: trip, quarantine, half-open probe, recovery.

Every test drives the breaker on an injected fake clock — quarantine is
a *monotonic-time* contract, so the tests never sleep.
"""

import pytest

from repro.serve.resilience import (
    BREAKER_FAILURE_CLASSES,
    BreakerBoard,
    CircuitBreaker,
)


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


def breaker(clock, threshold=3, cooldown=30.0):
    return CircuitBreaker(
        failure_threshold=threshold, cooldown_s=cooldown, clock=clock
    )


def test_closed_until_threshold_consecutive_failures(clock):
    b = breaker(clock)
    for _ in range(2):
        b.record("crash")
        assert b.allow()
    b.record("crash")
    assert b.state == "open"
    assert not b.allow()


def test_success_resets_the_streak(clock):
    b = breaker(clock)
    b.record("crash")
    b.record("crash")
    b.record("ok")  # machinery worked: streak resets
    b.record("crash")
    b.record("crash")
    assert b.state == "closed"
    assert b.allow()


def test_results_are_not_infrastructure_failures(clock):
    b = breaker(clock)
    # A failing check (verdict), a budget cut, an in-engine error: the
    # machinery worked, so none of these may quarantine the system.
    for classification in ("verdict", "budget", "error", "ok"):
        assert classification not in BREAKER_FAILURE_CLASSES
        for _ in range(5):
            b.record(classification)
        assert b.state == "closed"


def test_open_rejects_until_cooldown(clock):
    b = breaker(clock, threshold=1, cooldown=30.0)
    b.record("timeout")
    assert not b.allow()
    assert b.retry_after_s() == pytest.approx(30.0)
    clock.advance(29.0)
    assert not b.allow()
    assert b.retry_after_s() == pytest.approx(1.0)


def test_half_open_admits_exactly_one_probe(clock):
    b = breaker(clock, threshold=1, cooldown=10.0)
    b.record("crash")
    clock.advance(10.0)
    assert b.state == "half-open"
    assert b.allow()       # the probe
    assert not b.allow()   # concurrent requests wait for the probe
    assert not b.allow()


def test_probe_success_closes(clock):
    b = breaker(clock, threshold=1, cooldown=10.0)
    b.record("crash")
    clock.advance(10.0)
    assert b.allow()
    b.record("ok")
    assert b.state == "closed"
    assert b.allow() and b.allow()


def test_probe_failure_reopens_for_a_full_cooldown(clock):
    b = breaker(clock, threshold=1, cooldown=10.0)
    b.record("crash")
    clock.advance(10.0)
    assert b.allow()
    b.record("crash")
    assert b.state == "open"
    assert not b.allow()
    assert b.retry_after_s() == pytest.approx(10.0)
    assert b.trips == 2


def test_snapshot_shape(clock):
    b = breaker(clock, threshold=2, cooldown=5.0)
    b.record("crash")
    snap = b.snapshot()
    assert snap["state"] == "closed"
    assert snap["streak"] == 1
    assert snap["trips"] == 0
    assert snap["failure_threshold"] == 2
    assert snap["cooldown_s"] == 5.0


def test_rejections_counted(clock):
    b = breaker(clock, threshold=1, cooldown=10.0)
    b.record("malformed")
    b.allow()
    b.allow()
    assert b.snapshot()["rejections"] == 2


def test_board_isolates_systems(clock):
    board = BreakerBoard(failure_threshold=1, cooldown_s=10.0, clock=clock)
    board.breaker("relay").record("crash")
    assert not board.breaker("relay").allow()
    assert board.breaker("rm").allow()  # other systems unaffected
    snap = board.snapshot()
    assert snap["relay"]["state"] == "open"
    assert snap["rm"]["state"] == "closed"


def test_board_reuses_one_breaker_per_system(clock):
    board = BreakerBoard(clock=clock)
    assert board.breaker("rm") is board.breaker("rm")


def test_invalid_configuration_rejected(clock):
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=0)
