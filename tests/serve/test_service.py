"""VerificationService: admission, deadlines, caching, recovery.

All tests run inline workers (``isolation=False``) on cheap jobs so the
whole file stays fast; the subprocess-isolation path is covered by
``scripts/serve_chaos.py`` against real daemons.
"""

import time

import pytest

from repro.serve.app import ServeConfig, VerificationService


def make_service(tmp_path, **overrides):
    defaults = dict(
        workers=1,
        isolation=False,
        journal_path=str(tmp_path / "journal.jsonl"),
        backend="dir:" + str(tmp_path / "pool"),
        timeout_s=30.0,
        drain_grace_s=10.0,
    )
    defaults.update(overrides)
    return VerificationService(ServeConfig(**defaults))


def wait_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = service.get_job(job_id)
        if doc and doc["state"] == "done":
            return doc
        time.sleep(0.01)
    raise AssertionError("job {} did not settle".format(job_id))


@pytest.fixture
def service(tmp_path):
    svc = make_service(tmp_path)
    svc.start()
    yield svc
    svc.drain(grace_s=10.0)
    svc.journal.close()


def test_submit_and_poll_round_trip(service):
    status, body = service.submit({"kind": "analyze", "system": "rm"})
    assert status == 202
    assert body["state"] == "queued"
    doc = wait_done(service, body["job_id"])
    assert doc["result"]["ok"] is True
    assert doc["result"]["status"] == "ok"
    assert doc["classifications"] == ["ok"]


def test_unknown_job_is_none(service):
    assert service.get_job("sv-nope") is None


@pytest.mark.parametrize(
    "body, fragment",
    [
        ({"kind": "zap", "system": "rm"}, "unknown kind"),
        ({"kind": "check", "system": "nope"}, "unknown system"),
        ({"kind": "analyze", "system": "rm", "deadline_ms": 0}, "deadline_ms"),
        ({"kind": "analyze", "system": "rm", "deadline_ms": "soon"}, "deadline_ms"),
        ({"kind": "analyze", "system": "rm", "max_retries": -1}, "max_retries"),
        ({"kind": "analyze", "system": "rm", "params": {"wat": 1}}, "unknown param"),
        ({"kind": "analyze", "system": "rm", "params": 7}, "params"),
        ({"kind": "analyze", "system": "rm", "chaos": "gremlins"}, "chaos"),
    ],
)
def test_bad_requests_are_400(service, body, fragment):
    status, payload = service.submit(body)
    assert status == 400
    assert fragment in payload["error"]


def test_warm_resubmit_is_a_cache_hit(service):
    status, body = service.submit({"kind": "analyze", "system": "rm"})
    assert status == 202
    wait_done(service, body["job_id"])
    status, warm = service.submit({"kind": "analyze", "system": "rm"})
    assert status == 200  # answered at submit, no queueing
    assert warm["state"] == "done"
    assert warm["result"]["cached"] is True
    assert warm["result"]["job_id"] == warm["job_id"]  # rewritten to this request
    assert service.cache.stats()["hits"] == 1


def test_different_params_miss_the_cache(service):
    status, body = service.submit({"kind": "analyze", "system": "rm"})
    wait_done(service, body["job_id"])
    status, other = service.submit(
        {"kind": "analyze", "system": "rm", "params": {"strict": True}}
    )
    assert status == 202  # different work, must run


def test_tight_deadline_degrades_to_partial_verdict(service):
    status, body = service.submit(
        {
            "kind": "check",
            "system": "rm",
            "params": {"seeds": 20, "steps": 400},
            "deadline_ms": 200,
        }
    )
    assert status == 202
    start = time.monotonic()
    doc = wait_done(service, body["job_id"], timeout=15.0)
    result = doc["result"]
    assert result["exhausted_budget"] is True
    assert result["conclusive"] is False
    assert result["status"] in ("budget", "deadline")
    assert time.monotonic() - start < 10.0


def test_deadline_partials_are_not_cached(service):
    body = {
        "kind": "check",
        "system": "rm",
        "params": {"seeds": 20, "steps": 400},
        "deadline_ms": 200,
    }
    status, doc = service.submit(body)
    wait_done(service, doc["job_id"], timeout=15.0)
    status, again = service.submit(body)
    assert status == 202  # a partial verdict must never be served warm


def test_queue_full_sheds_with_429(tmp_path):
    service = make_service(tmp_path, queue_depth=1)
    # Pool not started: the queue fills and stays full.
    statuses = [
        service.submit({"kind": "analyze", "system": "rm"})[0] for _ in range(3)
    ]
    assert statuses[0] == 202
    assert 429 in statuses
    shed_status, shed_body = service.submit({"kind": "analyze", "system": "rm"})
    assert shed_status == 429
    assert shed_body["retry_after_s"] >= 1.0
    # A shed job must not be resurrected by journal replay.
    from repro.serve.journal import load_journal

    state = load_journal(service.config.journal_path)
    assert len(state.pending) == 1
    service.journal.close()


def test_open_breaker_rejects_with_503(service):
    breaker = service.breakers.breaker("rm")
    for _ in range(service.config.breaker_threshold):
        breaker.record_failure()
    status, body = service.submit({"kind": "analyze", "system": "rm"})
    assert status == 503
    assert body["retry_after_s"] > 0
    assert service.submit({"kind": "analyze", "system": "relay"})[0] == 202


def test_draining_rejects_submissions(service):
    service.draining = True
    status, body = service.submit({"kind": "analyze", "system": "rm"})
    assert status == 503
    assert "draining" in body["error"]
    service.draining = False


def test_drain_settles_everything_and_returns_zero(tmp_path):
    service = make_service(tmp_path)
    service.start()
    ids = [
        service.submit({"kind": "analyze", "system": system})[1]["job_id"]
        for system in ("rm", "relay")
    ]
    assert service.drain(grace_s=30.0) == 0
    for job_id in ids:
        assert service.get_job(job_id)["state"] == "done"
    service.journal.close()


def test_drain_timeout_returns_4(tmp_path):
    from repro.serve.app import EXIT_DRAIN_TIMEOUT

    service = make_service(tmp_path, queue_depth=8)
    # Pool never started: queued jobs cannot finish inside any grace.
    service.submit({"kind": "analyze", "system": "rm"})
    assert service.drain(grace_s=0.1) == EXIT_DRAIN_TIMEOUT
    service.journal.close()


def test_stats_shape(service):
    status, body = service.submit({"kind": "analyze", "system": "rm"})
    wait_done(service, body["job_id"])
    stats = service.stats()
    assert stats["jobs"] == {"done": 1}
    assert stats["queue"]["accepted"] == 1
    assert stats["backend"].startswith("dir:")
    assert stats["telemetry"]["counters"]["serve.completed"] == 1
    assert stats["recovered"] == 0
    assert not stats["draining"]


def test_kill_and_replay_recovers_accepted_jobs(tmp_path):
    # Generation 1 accepts work and "dies" (journal never drained,
    # pool never ran).
    first = make_service(tmp_path)
    accepted = []
    for system in ("rm", "relay", "chain"):
        status, body = first.submit({"kind": "analyze", "system": system})
        assert status == 202
        accepted.append(body["job_id"])
    first.journal.close()  # kill -9: no drain entry

    # Generation 2 replays the journal and finishes every accepted job.
    second = make_service(tmp_path)
    second.start()
    try:
        assert second.recovered == len(accepted)
        for job_id in accepted:
            doc = wait_done(second, job_id)
            assert doc["recovered"] is True
            assert doc["result"]["ok"] is True
    finally:
        assert second.drain(grace_s=30.0) == 0
        second.journal.close()
    from repro.serve.journal import load_journal

    assert load_journal(str(tmp_path / "journal.jsonl")).complete


def test_replay_preserves_finished_results(tmp_path):
    first = make_service(tmp_path)
    first.start()
    status, body = first.submit({"kind": "analyze", "system": "rm"})
    done = wait_done(first, body["job_id"])
    assert first.drain(grace_s=30.0) == 0
    first.journal.close()

    second = make_service(tmp_path)
    second.start()
    try:
        assert second.recovered == 0
        replayed = second.get_job(body["job_id"])
        assert replayed["state"] == "done"
        assert replayed["result"]["ok"] == done["result"]["ok"]
    finally:
        second.drain(grace_s=10.0)
        second.journal.close()
