"""The wire protocol: routes, status codes, headers, JSON bodies."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.app import ServeConfig, VerificationService, build_server


@pytest.fixture
def daemon(tmp_path):
    """An in-process daemon on an ephemeral port with inline workers."""
    config = ServeConfig(
        port=0,
        workers=1,
        isolation=False,
        journal_path=str(tmp_path / "journal.jsonl"),
        backend="sqlite:" + str(tmp_path / "pool.db"),
    )
    service = VerificationService(config)
    service.start()
    server = build_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://127.0.0.1:{}".format(server.server_address[1])

    def request(method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=15) as resp:
                return resp.status, json.loads(resp.read().decode()), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode()), dict(exc.headers)

    request.base = base
    yield service, request
    service.drain(grace_s=10.0)
    server.shutdown()
    server.server_close()
    service.journal.close()


def _wait_done(request, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc, _ = request("GET", "/v1/jobs/" + job_id)
        if status == 200 and doc["state"] == "done":
            return doc
        time.sleep(0.02)
    raise AssertionError("job never settled over HTTP")


def test_healthz_and_readyz(daemon):
    _, request = daemon
    status, body, _ = request("GET", "/v1/healthz")
    assert status == 200 and body["ok"] is True
    status, body, _ = request("GET", "/v1/readyz")
    assert status == 200 and body["ready"] is True


def test_readyz_flips_when_draining(daemon):
    service, request = daemon
    service.draining = True
    status, body, _ = request("GET", "/v1/readyz")
    assert status == 503 and body["ready"] is False
    service.draining = False


def test_submit_poll_round_trip(daemon):
    _, request = daemon
    status, body, _ = request(
        "POST", "/v1/jobs", {"kind": "analyze", "system": "rm"}
    )
    assert status == 202
    doc = _wait_done(request, body["job_id"])
    assert doc["result"]["ok"] is True
    # the wire result is the public projection: no schema/telemetry
    assert "telemetry" not in doc["result"]
    assert "schema" not in doc["result"]


def test_warm_hit_answers_200_at_submit(daemon):
    _, request = daemon
    status, body, _ = request("POST", "/v1/jobs", {"kind": "analyze", "system": "rm"})
    _wait_done(request, body["job_id"])
    status, warm, _ = request("POST", "/v1/jobs", {"kind": "analyze", "system": "rm"})
    assert status == 200
    assert warm["state"] == "done"
    assert warm["result"]["cached"] is True


def test_unknown_job_404(daemon):
    _, request = daemon
    assert request("GET", "/v1/jobs/sv-missing")[0] == 404


def test_unknown_path_404(daemon):
    _, request = daemon
    assert request("GET", "/v2/everything")[0] == 404
    assert request("POST", "/v1/other", {})[0] == 404


def test_bad_body_400(daemon):
    _, request = daemon

    status, body, _ = request("POST", "/v1/jobs", {"kind": "zap", "system": "rm"})
    assert status == 400
    # Non-object JSON
    req = urllib.request.Request(
        request.base + "/v1/jobs", data=b"[1, 2]", method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=15):
            raise AssertionError("expected 400")
    except urllib.error.HTTPError as exc:
        assert exc.code == 400


def test_429_carries_retry_after(tmp_path):
    config = ServeConfig(
        port=0,
        workers=1,
        isolation=False,
        queue_depth=1,
        journal_path=str(tmp_path / "journal.jsonl"),
        backend="dir:" + str(tmp_path / "pool"),
    )
    service = VerificationService(config)
    # Workers deliberately not started: the queue fills immediately.
    server = build_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://127.0.0.1:{}".format(server.server_address[1])
    try:
        body = json.dumps({"kind": "analyze", "system": "rm"}).encode()
        codes = []
        retry_after = None
        for _ in range(3):
            req = urllib.request.Request(base + "/v1/jobs", data=body, method="POST")
            try:
                with urllib.request.urlopen(req, timeout=15) as resp:
                    codes.append(resp.status)
            except urllib.error.HTTPError as exc:
                codes.append(exc.code)
                retry_after = exc.headers.get("Retry-After")
        assert 202 in codes and 429 in codes
        assert retry_after is not None and int(retry_after) >= 1
    finally:
        server.shutdown()
        server.server_close()
        service.journal.close()


def test_stats_over_http(daemon):
    _, request = daemon
    status, body, _ = request("POST", "/v1/jobs", {"kind": "analyze", "system": "rm"})
    _wait_done(request, body["job_id"])
    status, stats, _ = request("GET", "/v1/stats")
    assert status == 200
    assert stats["queue"]["accepted"] == 1
    assert stats["backend"].startswith("sqlite:")
    assert stats["telemetry"]["counters"]["serve.completed"] == 1
