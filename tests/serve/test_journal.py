"""Request journal: durability, replay, torn tails, interleaved writers."""

import threading

import pytest

from repro.serialize import ledger_entry_to_line
from repro.serve.journal import Journal, JournalState, load_journal


def _job_entry_body(job_id, system="rm"):
    return {
        "job_id": job_id,
        "kind": "analyze",
        "system": system,
        "params": {"strict": False},
        "expect_failure": False,
        "chaos": None,
    }


def _result(job_id, ok=True):
    return {
        "job_id": job_id,
        "status": "ok" if ok else "crash",
        "ok": ok,
        "conclusive": True,
        "exhausted_budget": False,
        "detail": "",
        "error": None,
    }


def test_round_trip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with Journal(path) as journal:
        journal.start("gen-1", {"workers": 2})
        journal.job(_job_entry_body("sv-1"), {"deadline_ms": None})
        journal.job(_job_entry_body("sv-2"), {"deadline_ms": 500})
        journal.done("sv-1", _result("sv-1"))
    state = load_journal(path)
    assert state.generations == ["gen-1"]
    assert set(state.jobs) == {"sv-1", "sv-2"}
    assert set(state.results) == {"sv-1"}
    assert [e["job"]["job_id"] for e in state.pending] == ["sv-2"]
    assert state.pending[0]["envelope"]["deadline_ms"] == 500
    assert not state.complete


def test_missing_journal_is_none(tmp_path):
    assert load_journal(str(tmp_path / "absent.jsonl")) is None


def test_drain_and_generations_span_restarts(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with Journal(path) as journal:
        journal.start("gen-1", {})
        journal.job(_job_entry_body("sv-1"), {})
        journal.done("sv-1", _result("sv-1"))
        journal.drain({"jobs": 1})
    # A restart appends — the file accumulates history.
    with Journal(path) as journal:
        journal.start("gen-2", {})
        journal.job(_job_entry_body("sv-2"), {})
    state = load_journal(path)
    assert state.generations == ["gen-1", "gen-2"]
    assert not state.drained  # gen-2 never drained
    assert [e["job"]["job_id"] for e in state.pending] == ["sv-2"]
    assert state.results["sv-1"]["ok"] is True


def test_torn_tail_is_tolerated(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with Journal(path) as journal:
        journal.start("gen-1", {})
        journal.job(_job_entry_body("sv-1"), {})
        journal.done("sv-1", _result("sv-1"))
    with open(path, "a") as fh:
        fh.write('{"schema": 1, "kind": "serve-done", "job_id": "sv-2", "resu')
    state = load_journal(path)
    assert set(state.results) == {"sv-1"}  # torn line dropped, rest kept


def test_unknown_kinds_are_skipped(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with Journal(path) as journal:
        journal.start("gen-1", {})
    with open(path, "a") as fh:
        fh.write(ledger_entry_to_line({"kind": "serve-metrics", "x": 1}) + "\n")
    with Journal(path) as journal:
        journal.job(_job_entry_body("sv-1"), {})
    state = load_journal(path)
    assert set(state.jobs) == {"sv-1"}


def test_done_before_job_entry_still_counts(tmp_path):
    # A replayed generation may re-journal a job after its result from a
    # previous generation; last-write-wins must keep it terminal.
    path = str(tmp_path / "j.jsonl")
    with Journal(path) as journal:
        journal.job(_job_entry_body("sv-1"), {})
        journal.done("sv-1", _result("sv-1"))
        journal.job(_job_entry_body("sv-1"), {})  # replay re-accept
    state = load_journal(path)
    assert state.complete


def test_interleaved_threaded_writers(tmp_path):
    """Satellite: many writer threads sharing one journal must never
    tear each other's lines — every entry parses back whole."""
    path = str(tmp_path / "j.jsonl")
    journal = Journal(path)
    errors = []

    def writer(base):
        try:
            for i in range(40):
                job_id = "sv-{}-{}".format(base, i)
                journal.job(_job_entry_body(job_id), {"writer": base})
                journal.done(job_id, _result(job_id))
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,)) for n in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    journal.close()
    assert not errors
    state = load_journal(path)
    expected = {"sv-{}-{}".format(n, i) for n in range(6) for i in range(40)}
    assert set(state.jobs) == expected
    assert set(state.results) == expected
    assert state.complete


def test_interleaved_process_writers_with_torn_tail(tmp_path):
    """Satellite: entries appended by *separate processes* (O_APPEND)
    interleave without tearing, and a torn final line — a writer killed
    mid-write — costs exactly that line."""
    import subprocess
    import sys

    path = str(tmp_path / "j.jsonl")
    script = (
        "import sys\n"
        "sys.path.insert(0, {src!r})\n"
        "from repro.serve.journal import Journal\n"
        "base = sys.argv[1]\n"
        "journal = Journal({path!r})\n"
        "for i in range(25):\n"
        "    jid = 'sv-%s-%d' % (base, i)\n"
        "    journal.job({{'job_id': jid, 'kind': 'analyze', 'system': 'rm',\n"
        "                 'params': {{}}, 'expect_failure': False, 'chaos': None}},\n"
        "                {{'writer': base}})\n"
        "    journal.done(jid, {{'job_id': jid, 'status': 'ok', 'ok': True,\n"
        "                       'conclusive': True, 'exhausted_budget': False,\n"
        "                       'detail': '', 'error': None}})\n"
        "journal.close()\n"
    ).format(src=_src_dir(), path=path)
    procs = [
        subprocess.Popen([sys.executable, "-c", script, str(n)])
        for n in range(3)
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    with open(path, "a") as fh:
        fh.write('{"schema": 1, "kind": "serve-job", "job": {"job_id": "torn')
    state = load_journal(path)
    expected = {"sv-{}-{}".format(n, i) for n in range(3) for i in range(25)}
    assert set(state.jobs) == expected
    assert state.complete  # the torn acceptance never became a job


def _src_dir():
    import repro

    import os

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def test_journal_state_defaults():
    state = JournalState()
    assert state.complete
    assert state.pending == []
    assert not state.drained
