"""Cache backends: spec parsing, sqlite round-trips, concurrent writers."""

import os
import sqlite3
import threading

import pytest

from repro.cache import BackendError, DirBackend, VerdictCache
from repro.serve.backends import SqliteBackend, backend_cache, open_backend
from repro.errors import ReproError


# -- spec language -----------------------------------------------------


def test_open_backend_explicit_dir(tmp_path):
    backend = open_backend("dir:" + str(tmp_path / "pool"))
    assert backend.kind == "dir"
    assert backend.describe().startswith("dir:")


def test_open_backend_explicit_sqlite(tmp_path):
    backend = open_backend("sqlite:" + str(tmp_path / "pool.db"))
    assert backend.kind == "sqlite"
    assert backend.describe().startswith("sqlite:")


def test_open_backend_bare_path_infers_kind(tmp_path):
    assert open_backend(str(tmp_path / "plain")).kind == "dir"
    assert open_backend(str(tmp_path / "pool.db")).kind == "sqlite"
    assert open_backend(str(tmp_path / "pool.sqlite")).kind == "sqlite"


def test_open_backend_rejects_unknown_kind(tmp_path):
    with pytest.raises(ReproError):
        open_backend("redis:localhost")
    with pytest.raises(ReproError):
        open_backend("")
    with pytest.raises(ReproError):
        open_backend("sqlite:")


def test_sqlite_unwritable_path_fails_at_construction(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not directory")
    with pytest.raises(BackendError):
        SqliteBackend(str(blocker / "pool.db"))


# -- sqlite backend ----------------------------------------------------


def test_sqlite_round_trip(tmp_path):
    backend = SqliteBackend(str(tmp_path / "pool.db"))
    assert backend.get("k" * 64) is None
    backend.put("k" * 64, '{"x": 1}')
    assert backend.get("k" * 64) == '{"x": 1}'
    assert backend.count() == 1
    backend.close()


def test_sqlite_upsert_last_writer_wins(tmp_path):
    backend = SqliteBackend(str(tmp_path / "pool.db"))
    backend.put("key", "first")
    backend.put("key", "second")
    assert backend.get("key") == "second"
    assert backend.count() == 1


def test_sqlite_is_wal_mode(tmp_path):
    path = str(tmp_path / "pool.db")
    backend = SqliteBackend(path)
    backend.put("k", "v")
    mode = sqlite3.connect(path).execute("PRAGMA journal_mode").fetchone()[0]
    assert mode.lower() == "wal"


def test_sqlite_shared_between_instances(tmp_path):
    # Two backends on one file model two daemon replicas sharing a pool.
    path = str(tmp_path / "pool.db")
    writer = SqliteBackend(path)
    reader = SqliteBackend(path)
    writer.put("key", "payload")
    assert reader.get("key") == "payload"


def test_sqlite_concurrent_threaded_writers(tmp_path):
    backend = SqliteBackend(str(tmp_path / "pool.db"))
    errors = []

    def writer(base):
        try:
            for i in range(30):
                backend.put("key-{}-{}".format(base, i), str(base))
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,)) for n in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert backend.count() == 180


# -- VerdictCache over a backend ---------------------------------------


def _cache_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused"))


def test_verdict_cache_over_sqlite(tmp_path, monkeypatch):
    _cache_env(monkeypatch, tmp_path)
    cache = backend_cache("sqlite:" + str(tmp_path / "pool.db"))
    parts = {"seeds": 2, "steps": 40}
    assert cache.lookup("check", "rm", parts) is None
    assert cache.store("check", "rm", parts, {"ok": True, "job_id": "x"})
    hit = cache.lookup("check", "rm", parts)
    assert hit["ok"] is True
    assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "errors": 0}


def test_verdict_cache_over_dir_backend(tmp_path, monkeypatch):
    _cache_env(monkeypatch, tmp_path)
    cache = backend_cache("dir:" + str(tmp_path / "pool"))
    assert isinstance(cache.backend, DirBackend)
    parts = {"seeds": 2}
    cache.store("check", "relay", parts, {"ok": False, "job_id": "y"})
    assert cache.lookup("check", "relay", parts)["ok"] is False


def test_dir_and_sqlite_backends_agree_on_keys(tmp_path, monkeypatch):
    """The backend only stores bytes — the verdict key is computed above
    it, so the same (kind, system, parts) maps to the same entry in
    either backend."""
    _cache_env(monkeypatch, tmp_path)
    dir_cache = backend_cache("dir:" + str(tmp_path / "pool"))
    sql_cache = backend_cache("sqlite:" + str(tmp_path / "pool.db"))
    parts = {"seeds": 3, "steps": 80}
    dir_cache.store("check", "rm", parts, {"ok": True, "job_id": "z"})
    sql_cache.store("check", "rm", parts, {"ok": True, "job_id": "z"})
    assert dir_cache.lookup("check", "rm", parts) == sql_cache.lookup(
        "check", "rm", parts
    )


def test_backend_error_counts_not_raises(tmp_path, monkeypatch):
    _cache_env(monkeypatch, tmp_path)

    class FlakyBackend:
        kind = "flaky"

        def get(self, key):
            raise BackendError("storage down")

        def put(self, key, text):
            raise BackendError("storage down")

        def describe(self):
            return "flaky:"

    cache = VerdictCache(backend=FlakyBackend())
    assert cache.lookup("check", "rm", {}) is None  # degraded to a miss
    assert not cache.store("check", "rm", {}, {"ok": True, "job_id": "w"})
    assert cache.stats()["errors"] == 2


class TestSqliteBusyRetry:
    """Lock contention: SQLITE_BUSY upserts retry with backoff instead
    of surfacing to the caller; a genuinely stuck database still fails."""

    @staticmethod
    def _busy_then_ok(backend, failures, error="database is locked"):
        # sqlite3.Connection attributes are read-only, so interpose a
        # delegating proxy in the backend's per-thread connection slot.
        conn = backend._connection()
        state = {"left": failures, "calls": 0}

        class FlakyConn:
            def execute(self, sql, *params):
                if sql.startswith("INSERT"):
                    state["calls"] += 1
                    if state["left"] > 0:
                        state["left"] -= 1
                        raise sqlite3.OperationalError(error)
                return conn.execute(sql, *params)

            def __getattr__(self, name):
                return getattr(conn, name)

        backend._local.conn = FlakyConn()
        return state

    def test_transient_busy_is_retried_to_success(self, tmp_path, monkeypatch):
        monkeypatch.setattr(SqliteBackend, "_BUSY_BACKOFF_S", 0.001)
        backend = SqliteBackend(str(tmp_path / "pool.db"))
        state = self._busy_then_ok(backend, failures=2)
        backend.put("a" * 16, '{"ok": true}')
        assert state["calls"] == 3  # two busy failures, one success
        assert backend.get("a" * 16) == '{"ok": true}'

    def test_exhausted_retries_surface_backend_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(SqliteBackend, "_BUSY_BACKOFF_S", 0.001)
        backend = SqliteBackend(str(tmp_path / "pool.db"))
        state = self._busy_then_ok(backend, failures=100)
        with pytest.raises(BackendError, match="locked"):
            backend.put("b" * 16, "{}")
        assert state["calls"] == backend._BUSY_RETRIES + 1

    def test_non_busy_errors_do_not_retry(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "pool.db"))
        state = self._busy_then_ok(
            backend, failures=100, error="no such table: verdicts"
        )
        with pytest.raises(BackendError):
            backend.put("c" * 16, "{}")
        assert state["calls"] == 1  # schema errors fail fast

    def test_connection_sets_busy_timeout_pragma(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "pool.db"), busy_timeout_s=2.5)
        (ms,) = backend._connection().execute("PRAGMA busy_timeout").fetchone()
        assert ms == 2500

    def test_contended_writers_all_land(self, tmp_path):
        # Two threads, two connections, one file: every write survives.
        path = str(tmp_path / "pool.db")
        backend = SqliteBackend(path)
        errors = []

        def writer(prefix):
            try:
                own = SqliteBackend(path)
                for i in range(25):
                    own.put("{}{:02d}".format(prefix, i).ljust(16, "0"), "{}")
            except BackendError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(p,)) for p in ("aa", "bb")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert backend.count() == 50
