"""Admission queue: bounded, closable, shed-not-hang."""

import threading
import time

import pytest

from repro.serve.queue import AdmissionQueue


def test_fifo_round_trip():
    q = AdmissionQueue(max_depth=4)
    for item in ("a", "b", "c"):
        assert q.offer(item)
    assert [q.take(timeout=0.1) for _ in range(3)] == ["a", "b", "c"]


def test_offer_sheds_when_full():
    q = AdmissionQueue(max_depth=2)
    assert q.offer(1) and q.offer(2)
    assert not q.offer(3)
    stats = q.stats()
    assert stats["accepted"] == 2
    assert stats["shed"] == 1
    assert stats["depth"] == 2


def test_offer_never_blocks_when_full():
    q = AdmissionQueue(max_depth=1)
    assert q.offer(1)
    start = time.monotonic()
    assert not q.offer(2)
    assert time.monotonic() - start < 0.1


def test_take_times_out_with_none():
    q = AdmissionQueue()
    start = time.monotonic()
    assert q.take(timeout=0.05) is None
    assert time.monotonic() - start >= 0.04


def test_close_stops_admission_but_drains():
    q = AdmissionQueue()
    assert q.offer("queued-before-close")
    q.close()
    assert not q.offer("after-close")
    assert q.take(timeout=0.1) == "queued-before-close"
    assert q.take(timeout=0.1) is None  # closed + empty: worker shutdown
    assert q.closed()


def test_close_wakes_blocked_takers():
    q = AdmissionQueue()
    results = []

    def taker():
        results.append(q.take(timeout=10.0))

    thread = threading.Thread(target=taker)
    thread.start()
    time.sleep(0.05)
    q.close()
    thread.join(timeout=2.0)
    assert not thread.is_alive()
    assert results == [None]


def test_concurrent_producers_and_consumers():
    q = AdmissionQueue(max_depth=1000)
    taken = []
    taken_lock = threading.Lock()

    def producer(base):
        for i in range(50):
            assert q.offer(base + i)

    def consumer():
        while True:
            item = q.take(timeout=0.2)
            if item is None:
                return
            with taken_lock:
                taken.append(item)

    producers = [threading.Thread(target=producer, args=(n * 100,)) for n in range(4)]
    consumers = [threading.Thread(target=consumer) for _ in range(4)]
    for t in producers + consumers:
        t.start()
    for t in producers:
        t.join()
    q.close()
    for t in consumers:
        t.join()
    assert sorted(taken) == sorted(n * 100 + i for n in range(4) for i in range(50))


def test_retry_after_scales_with_depth():
    q = AdmissionQueue(max_depth=100)
    assert q.retry_after_s() == 1.0  # floor
    for i in range(60):
        q.offer(i)
    assert q.retry_after_s(per_item_estimate_s=1.0) == 30.0


def test_rejects_nonsense_depth():
    with pytest.raises(ValueError):
        AdmissionQueue(max_depth=0)
