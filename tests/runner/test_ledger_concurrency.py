"""Ledger durability under interleaved writers + torn tails.

The campaign ledger was built for one supervisor process, but its
format promise — whole schema-stamped lines, appended and fsynced — is
what the serving journal and any future sharded campaign rely on.  These
tests pin that promise under the adversarial cases: many processes
appending to one file, each killed-or-not mid-write, with a torn final
line on top.
"""

import os
import subprocess
import sys

from repro.runner import JobOutcome, Ledger, load_ledger
from repro.runner.jobs import Job
from repro.serialize import ledger_entries_from_jsonl


def _src_dir():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _outcome(job_id):
    return JobOutcome(
        job_id=job_id,
        kind="analyze",
        system="rm",
        status="ok",
        ok=True,
        attempts=1,
        retries=0,
    )


def test_interleaved_process_writers_never_tear_lines(tmp_path):
    """Three processes hammer one ledger via O_APPEND; every line must
    parse back whole and every writer's entries must all be present."""
    path = str(tmp_path / "ledger.jsonl")
    script = (
        "import sys\n"
        "sys.path.insert(0, {src!r})\n"
        "from repro.runner import JobOutcome, Ledger\n"
        "base = sys.argv[1]\n"
        "ledger = Ledger({path!r})\n"
        "for i in range(40):\n"
        "    jid = 'j-%s-%d' % (base, i)\n"
        "    ledger.attempt(jid, 0, 'ok', 'detail-' * 50)\n"
        "    ledger.done(JobOutcome(job_id=jid, kind='analyze', system='rm',\n"
        "                           status='ok', ok=True, attempts=1, retries=0))\n"
        "ledger.close()\n"
    ).format(src=_src_dir(), path=path)
    procs = [
        subprocess.Popen([sys.executable, "-c", script, str(n)]) for n in range(3)
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    with open(path) as fh:
        text = fh.read()
    entries = ledger_entries_from_jsonl(text)
    assert len(entries) == len(text.splitlines()) == 3 * 40 * 2
    done_ids = {e["job_id"] for e in entries if e["kind"] == "done"}
    assert done_ids == {"j-{}-{}".format(n, i) for n in range(3) for i in range(40)}


def test_torn_tail_after_interleaved_writers(tmp_path):
    """A writer killed mid-line costs exactly its final entry; the
    interleaved history from every other writer replays fully."""
    path = str(tmp_path / "ledger.jsonl")
    jobs = [
        Job(job_id="j-{}".format(i), kind="analyze", system="rm", params={})
        for i in range(4)
    ]
    with Ledger(path) as ledger:
        ledger.begin("c-1", jobs, {})
    # Two "writers" alternating appends through separate Ledger handles
    # on one file — the multi-process layout without the subprocess cost.
    first, second = Ledger(path), Ledger(path)
    first.done(_outcome("j-0"))
    second.done(_outcome("j-1"))
    first.done(_outcome("j-2"))
    first.close()
    second.close()
    # kill -9 mid-write: a torn, unterminated final line.
    with open(path, "a") as fh:
        fh.write('{"schema": 1, "kind": "done", "job_id": "j-3", "outcome": {"jo')
    state = load_ledger(path)
    assert set(state.outcomes) == {"j-0", "j-1", "j-2"}
    assert [job.job_id for job in state.pending] == ["j-3"]


def test_fsync_makes_every_line_durable_immediately(tmp_path):
    """Each append is readable by a concurrent process the moment the
    call returns — the property journal replay and `--resume` stand on."""
    path = str(tmp_path / "ledger.jsonl")
    ledger = Ledger(path)
    reader = (
        "import sys\n"
        "sys.path.insert(0, {src!r})\n"
        "from repro.serialize import ledger_entries_from_jsonl\n"
        "print(len(ledger_entries_from_jsonl(open({path!r}).read())))\n"
    ).format(src=_src_dir(), path=path)
    for i in range(3):
        ledger.attempt("j-{}".format(i), 0, "ok", "")
        out = subprocess.run(
            [sys.executable, "-c", reader], capture_output=True, text=True
        )
        assert out.returncode == 0
        assert int(out.stdout.strip()) == i + 1
    ledger.close()
