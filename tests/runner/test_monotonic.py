"""Monotonic-clock discipline for all timing machinery.

Budgets, supervisor watchdogs, retry eligibility, serving deadlines and
circuit-breaker cool-downs are *duration* contracts: a wall-clock step
(NTP correction, DST, a VM migration) must neither extend nor cut short
any of them.  These tests pin that by yanking ``time.time`` around
wildly and asserting nothing built on durations notices.
"""

import time

import pytest

from repro.faults.budget import Budget
from repro.serve.workers import ServeJob
from repro.runner.jobs import Job


@pytest.fixture
def wild_wall_clock(monkeypatch):
    """Make time.time() jump a year backwards — anything reading the
    wall clock for durations will misbehave loudly."""
    real = time.time()
    monkeypatch.setattr(time, "time", lambda: real - 365 * 86400.0)


def test_budget_wall_time_ignores_wall_clock_steps(wild_wall_clock):
    budget = Budget(wall_time=60.0)
    # A year-backwards wall clock: a time.time()-based implementation
    # would see a huge negative elapsed and never expire — or with a
    # forward jump, expire instantly.  Monotonic elapsed stays tiny.
    assert budget.ok()
    assert 0.0 <= budget.elapsed() < 5.0
    assert budget.reason is None


def test_budget_expires_on_monotonic_elapsed(monkeypatch):
    budget = Budget(wall_time=10.0)
    base = time.monotonic()
    monkeypatch.setattr(time, "monotonic", lambda: base + 11.0)
    assert not budget.ok()
    assert "wall_time" in budget.reason


def test_budget_survives_forward_wall_clock_jump(monkeypatch):
    budget = Budget(wall_time=60.0)
    real = time.time()
    monkeypatch.setattr(time, "time", lambda: real + 3600.0)
    assert budget.ok()  # an hour of wall-clock jump is zero duration


def test_serve_deadline_uses_monotonic_clock(wild_wall_clock):
    job = ServeJob(
        job=Job(job_id="sv-x", kind="analyze", system="rm", params={}),
        deadline_ms=60_000,
    )
    remaining = job.remaining_s()
    # deadline_at was anchored on time.monotonic(); the wall-clock jump
    # must leave the full minute intact (not -a-year, not +a-year).
    assert 55.0 < remaining <= 60.0


def test_supervisor_watchdog_uses_monotonic_clock(monkeypatch, tmp_path):
    """An inline campaign with a wild wall clock still finishes and
    reports sane walls — the supervisor's watchdog/accounting would go
    negative (or kill everything instantly) if it read time.time()."""
    from repro.runner import Ledger, RetryPolicy, Supervisor

    real = time.time()
    monkeypatch.setattr(time, "time", lambda: real - 365 * 86400.0)
    jobs = [
        Job(job_id="j-analyze-rm", kind="analyze", system="rm", params={})
    ]
    ledger = Ledger(str(tmp_path / "ledger.jsonl"))
    supervisor = Supervisor(
        jobs,
        workers=0,
        timeout=30.0,
        ledger=ledger,
        retry=RetryPolicy(max_retries=0),
    )
    report = supervisor.run()
    outcome = report.outcomes[0]
    assert outcome.status == "ok"
    assert outcome.wall >= 0.0
    assert outcome.wall < 60.0


def test_source_has_no_wall_clock_reads():
    """No timing code under src/ may call time.time() — monotonic or
    perf_counter only.  (Timestamps for *display* would be fine, but
    nothing needs them today; revisit this pin if that changes.)"""
    import repro
    import os

    root = os.path.dirname(os.path.abspath(repro.__file__))
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path) as fh:
                if "time.time()" in fh.read():
                    offenders.append(os.path.relpath(path, root))
    assert offenders == []
