"""Supervisor recovery paths: classification, retry/backoff, chaos.

The spawn-isolated tests share one campaign where possible — every
worker process costs a fresh interpreter, so the battery is folded into
few campaigns rather than one per assertion.
"""

import pytest

from repro.runner import (
    CHAOS_MODES,
    TRANSIENT_CLASSES,
    Job,
    RetryPolicy,
    Supervisor,
)
from repro.errors import ReproError


def _job(job_id, kind, system, chaos=None, expect_failure=False, **params):
    return Job(
        job_id=job_id,
        kind=kind,
        system=system,
        params=params,
        expect_failure=expect_failure,
        chaos=chaos,
    )


FAST_RETRY = dict(max_retries=2, base=0.01, cap=0.05, jitter=0.1)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base=0.1, cap=0.3, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.3)  # capped

    def test_jitter_is_seeded_and_bounded(self):
        a = [RetryPolicy(base=0.1, jitter=0.5, seed=7).delay(0) for _ in range(3)]
        b = [RetryPolicy(base=0.1, jitter=0.5, seed=7).delay(0) for _ in range(3)]
        assert a == b  # reproducible
        assert all(0.1 <= d <= 0.15 for d in a)

    def test_rejects_negative_settings(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base=-0.1)


class TestValidation:
    def test_chaos_requires_isolation(self):
        with pytest.raises(ReproError, match="chaos needs isolated workers"):
            Supervisor([], workers=0, chaos=True)

    def test_chaos_assignment_covers_all_three_modes(self):
        jobs = [_job("lint:%d" % i, "lint", "chain") for i in range(5)]
        sup = Supervisor(jobs, chaos=True)
        assigned = [job.chaos for job in sup.jobs]
        assert assigned[:3] == list(CHAOS_MODES)
        assert assigned[3:] == [None, None]


class TestChaosRecovery:
    """One spawned campaign proves every recovery path at once: a
    crash, a hang (watchdog), a malformed result — each retried to
    success — plus a deterministic verdict failure quarantined without
    retries and an expected failure counted as success."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        jobs = [
            _job("lint:chain", "lint", "chain", chaos="crash"),
            _job("bench:chain", "bench", "chain", chaos="hang",
                 iterations=1),
            _job("bench:rm", "bench", "rm", chaos="malformed", iterations=1),
            _job("check:fischer-tight", "check", "fischer-tight",
                 seeds=1, steps=10, epsilon="0"),
            _job("check:expected", "check", "fischer-tight",
                 expect_failure=True, seeds=1, steps=10, epsilon="0"),
        ]
        sup = Supervisor(
            jobs,
            workers=2,
            timeout=4.0,
            retry=RetryPolicy(**FAST_RETRY),
        )
        return sup.run()

    def _outcome(self, report, job_id):
        return next(o for o in report.outcomes if o.job_id == job_id)

    def test_report_is_complete(self, report):
        assert len(report.outcomes) == 5
        assert not report.interrupted

    def test_crash_is_retried_to_success(self, report):
        outcome = self._outcome(report, "lint:chain")
        assert outcome.classifications == ["crash", "ok"]
        assert outcome.ok and outcome.retries == 1

    def test_hang_trips_watchdog_then_recovers(self, report):
        outcome = self._outcome(report, "bench:chain")
        assert outcome.classifications == ["timeout", "ok"]
        assert outcome.ok and outcome.retries == 1

    def test_malformed_result_is_retried(self, report):
        outcome = self._outcome(report, "bench:rm")
        assert outcome.classifications == ["malformed", "ok"]
        assert outcome.ok and outcome.retries == 1

    def test_verdict_failure_quarantined_without_retry(self, report):
        outcome = self._outcome(report, "check:fischer-tight")
        assert outcome.classifications == ["verdict"]
        assert outcome.status == "verdict"
        assert not outcome.ok and outcome.retries == 0

    def test_expected_failure_counts_as_success(self, report):
        outcome = self._outcome(report, "check:expected")
        assert outcome.status == "expected-failure"
        assert outcome.ok

    def test_campaign_verdict_reflects_the_quarantine(self, report):
        assert not report.ok  # the unexpected verdict failure

    def test_runner_telemetry_counts_recoveries(self, report):
        counters = report.telemetry["counters"]
        assert counters["runner.crashes"] == 1
        assert counters["runner.timeouts"] == 1
        assert counters["runner.malformed"] == 1
        assert counters["runner.retries"] == 3
        assert counters["runner.quarantined"] == 1
        assert counters["runner.jobs"] == 5

    def test_per_job_timers_are_recorded(self, report):
        timers = report.telemetry["timers"]
        for job_id in ("lint:chain", "bench:chain", "check:fischer-tight"):
            assert timers["runner.job." + job_id]["calls"] == 1

    def test_worker_telemetry_is_merged_across_processes(self, report):
        # check.steps can only come from worker processes: the
        # supervisor itself never runs a mapping check.
        assert report.telemetry["counters"].get("check.steps", 0) > 0


class TestInlineMode:
    def test_inline_campaign_settles_without_processes(self):
        jobs = [_job("lint:chain", "lint", "chain")]
        report = Supervisor(jobs, workers=0).run()
        assert report.ok and report.outcomes[0].status == "ok"

    def test_unexpected_pass_fails_the_campaign(self):
        jobs = [_job("lint:chain", "lint", "chain", expect_failure=True)]
        report = Supervisor(jobs, workers=0).run()
        outcome = report.outcomes[0]
        assert outcome.status == "unexpected-pass"
        assert not outcome.ok and not report.ok

    def test_error_payload_is_quarantined_with_structure(self):
        jobs = [_job("check:nope", "check", "no-such-system")]
        report = Supervisor(jobs, workers=0).run()
        outcome = report.outcomes[0]
        assert outcome.status == "error"
        assert outcome.error["type"] == "ReproError"
        assert outcome.retries == 0

    def test_transient_classes_match_the_documented_taxonomy(self):
        assert TRANSIENT_CLASSES == {"crash", "timeout", "malformed", "budget"}
