"""Budget exhaustion mid-check: partial verdicts, not exceptions, and
a supervisor that retries them with escalated budgets."""

from fractions import Fraction

import pytest

from repro.faults.budget import Budget
from repro.faults.targets import build_perturb_target
from repro.runner import Job, Ledger, RetryPolicy, Supervisor, load_ledger
from repro.runner.jobs import _scaled_budget


TINY = {"max_states": 20, "max_steps": 10, "wall_time": 60.0}


class TestPartialOutcome:
    def test_exhaustion_mid_battery_returns_partial_outcome(self):
        # A 10-step budget dies inside the first adversarial run of the
        # battery (which includes the zone-graph builds): the result
        # must be a partial CheckOutcome, never an exception.
        target = build_perturb_target("rm", seeds=1, steps=40)
        outcome = target.evaluate(Fraction(0), Budget(max_steps=10))
        assert outcome.ok  # no violation in the portion checked
        assert outcome.exhausted_budget
        assert not outcome.conclusive

    def test_exhaustion_before_zone_build_is_still_partial(self):
        target = build_perturb_target("fischer", seeds=1, steps=10)
        outcome = target.evaluate(
            Fraction(0), Budget(max_states=1, max_steps=1)
        )
        assert outcome.ok and outcome.exhausted_budget
        assert not outcome.conclusive

    def test_failures_stay_conclusive_regardless_of_budget(self):
        # A found violation is a standing counterexample: exhaustion
        # afterwards must not soften it into "retry with more budget".
        target = build_perturb_target("fischer-tight", seeds=1, steps=10)
        outcome = target.evaluate(Fraction(0), Budget(max_steps=10**9))
        assert not outcome.ok
        assert outcome.conclusive


class TestScaledBudget:
    def test_scale_multiplies_every_axis(self):
        params = dict(TINY, budget_scale=4)
        budget = _scaled_budget(params)
        assert budget.max_states == 80
        assert budget.max_steps == 40
        assert budget.wall_time == pytest.approx(240.0)

    def test_missing_axes_stay_unlimited(self):
        budget = _scaled_budget({"budget_scale": 16})
        assert budget.max_states is None
        assert budget.max_steps is None
        assert budget.wall_time is None


class TestSupervisorEscalation:
    def _job(self):
        params = dict(TINY)
        params.update(seeds=1, steps=40, seed=0, epsilon="0")
        return Job(job_id="check:rm", kind="check", system="rm", params=params)

    def test_budget_class_is_retried_with_escalated_budget(self, tmp_path):
        path = str(tmp_path / "budget.jsonl")
        with Ledger(path) as ledger:
            report = Supervisor(
                [self._job()],
                workers=0,
                retry=RetryPolicy(max_retries=2, base=0.0, jitter=0.0),
                ledger=ledger,
            ).run()
        outcome = report.outcomes[0]

        # Classified retryable-with-larger-budget: every attempt was cut
        # short, each retry quadrupled the budget, and the terminal
        # outcome keeps the partial verdict instead of raising.
        assert outcome.classifications == ["budget", "budget", "budget"]
        assert outcome.retries == 2
        assert outcome.status == "budget"
        assert outcome.ok            # partial pass is kept
        assert not outcome.conclusive

        counters = report.telemetry["counters"]
        assert counters["runner.budget_cuts"] == 3
        assert counters["runner.budget_escalations"] == 2

        scales = [
            e["budget_scale"]
            for e in _ledger_entries(path)
            if e["kind"] == "attempt"
        ]
        assert scales == [1, 4, 16]

    def test_generous_budget_settles_ok_first_try(self):
        job = self._job()
        params = dict(job.params)
        params.update(max_states=200_000, max_steps=2_000_000)
        generous = Job(
            job_id=job.job_id, kind=job.kind, system=job.system, params=params
        )
        report = Supervisor([generous], workers=0).run()
        outcome = report.outcomes[0]
        assert outcome.status == "ok" and outcome.conclusive
        assert outcome.retries == 0


def _ledger_entries(path):
    state = load_ledger(path)  # proves the file parses as a ledger too
    assert state.complete
    from repro.serialize import ledger_entries_from_jsonl

    with open(path) as fh:
        return ledger_entries_from_jsonl(fh.read())
