"""Checkpoint ledger: persistence, damage tolerance, resume semantics.

The resume test is the acceptance criterion for the whole subsystem:
after an interruption, ``--resume`` must re-run *only* the unfinished
jobs, verified here by diffing the ledger before and after.
"""

import json

import pytest

from repro.errors import ReproError
from repro.runner import (
    Job,
    JobOutcome,
    Ledger,
    Supervisor,
    default_jobs,
    load_ledger,
)
from repro.serialize import (
    LEDGER_SCHEMA_VERSION,
    SerializationError,
    ledger_entries_from_jsonl,
    ledger_entry_to_line,
)


def _entries(path):
    with open(path) as fh:
        return ledger_entries_from_jsonl(fh.read())


class TestSerializeHelpers:
    def test_every_line_is_schema_stamped(self):
        line = ledger_entry_to_line({"kind": "end", "summary": {}})
        assert json.loads(line)["schema"] == LEDGER_SCHEMA_VERSION

    def test_entry_without_kind_rejected(self):
        with pytest.raises(SerializationError, match="kind"):
            ledger_entry_to_line({"summary": {}})

    def test_non_json_entry_rejected(self):
        with pytest.raises(SerializationError):
            ledger_entry_to_line({"kind": "end", "bad": object()})

    def test_torn_final_line_is_dropped(self):
        text = (
            ledger_entry_to_line({"kind": "resume", "pending": []})
            + "\n"
            + '{"kind": "att'  # mid-write SIGKILL
        )
        entries = ledger_entries_from_jsonl(text)
        assert [e["kind"] for e in entries] == ["resume"]

    def test_torn_interior_line_is_not_forgiven(self):
        text = '{"kind": "att\n' + ledger_entry_to_line({"kind": "end"}) + "\n"
        with pytest.raises(SerializationError):
            ledger_entries_from_jsonl(text)

    def test_future_schema_rejected(self):
        line = json.dumps({"kind": "end", "schema": LEDGER_SCHEMA_VERSION + 1})
        with pytest.raises(SerializationError, match="schema"):
            ledger_entries_from_jsonl(line + "\n")


class TestLedgerRoundTrip:
    def _outcome(self, job_id, status="ok", ok=True):
        kind, _, system = job_id.partition(":")
        return JobOutcome(
            job_id=job_id,
            kind=kind,
            system=system,
            status=status,
            ok=ok,
            attempts=1,
            retries=0,
            detail="",
            wall=0.01,
        )

    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        jobs = default_jobs(systems=["chain"], kinds=["lint", "bench"])
        with Ledger(path) as ledger:
            ledger.begin("cafe", jobs, {"workers": 2})
            ledger.attempt("lint:chain", 0, "crash", "boom", backoff=0.1)
            ledger.attempt("lint:chain", 1, "ok", "")
            ledger.done(self._outcome("lint:chain"))
            ledger.end({"ok": False})
        state = load_ledger(path)
        assert state.campaign_id == "cafe"
        assert state.options == {"workers": 2}
        assert state.jobs == jobs
        assert state.attempts == {"lint:chain": 2}
        assert set(state.outcomes) == {"lint:chain"}
        assert state.ended
        assert [job.job_id for job in state.pending] == ["bench:chain"]
        assert not state.complete

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no ledger"):
            load_ledger(str(tmp_path / "absent.jsonl"))

    def test_header_required(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text(ledger_entry_to_line({"kind": "end"}) + "\n")
        with pytest.raises(ReproError, match="no campaign header"):
            load_ledger(str(path))

    def test_second_campaign_header_rejected(self, tmp_path):
        path = str(tmp_path / "twice.jsonl")
        jobs = [Job(job_id="lint:chain", kind="lint", system="chain")]
        with Ledger(path) as ledger:
            ledger.begin("one", jobs, {})
            ledger.begin("two", jobs, {})
        with pytest.raises(ReproError, match="more than one campaign"):
            load_ledger(str(path))

    def test_torn_tail_still_loads(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        jobs = [Job(job_id="lint:chain", kind="lint", system="chain")]
        with Ledger(path) as ledger:
            ledger.begin("cafe", jobs, {})
        with open(path, "a") as fh:
            fh.write('{"kind": "done", "job_id": "li')  # killed mid-write
        state = load_ledger(path)
        assert state.campaign_id == "cafe"
        assert [job.job_id for job in state.pending] == ["lint:chain"]


class TestResume:
    """Interrupt a campaign, resume from its ledger, and prove by
    ledger diff that only the unfinished jobs ran again."""

    def test_resume_reruns_only_pending_jobs(self, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        jobs = default_jobs(systems=["chain", "rm"], kinds=["lint", "bench"])
        assert len(jobs) == 4

        with Ledger(path) as ledger:
            first = Supervisor(
                jobs, workers=0, ledger=ledger, stop_after=2
            ).run()
        assert first.interrupted and len(first.outcomes) == 2

        mid = load_ledger(path)
        done_before = set(mid.outcomes)
        pending_ids = [job.job_id for job in mid.pending]
        assert len(done_before) == 2 and len(pending_ids) == 2
        attempts_before = [
            e["job_id"] for e in _entries(path) if e["kind"] == "attempt"
        ]

        with Ledger(path) as ledger:
            final = Supervisor(
                mid.pending,
                workers=0,
                ledger=ledger,
                campaign_id=mid.campaign_id,
                prior_outcomes=mid.outcomes,
                write_header=False,
            ).run()

        # The final report is complete: nothing lost, nothing doubled.
        assert not final.interrupted and final.ok
        assert sorted(o.job_id for o in final.outcomes) == sorted(
            job.job_id for job in jobs
        )

        # Ledger diff: the second leg only ever touched pending jobs.
        entries = _entries(path)
        kinds = [e["kind"] for e in entries]
        assert kinds.count("campaign") == 1  # resume appends, no new header
        assert kinds.count("resume") == 1
        resume_marker = next(e for e in entries if e["kind"] == "resume")
        assert resume_marker["campaign_id"] == mid.campaign_id
        assert sorted(resume_marker["pending"]) == sorted(pending_ids)

        new_attempts = [
            e["job_id"] for e in entries if e["kind"] == "attempt"
        ][len(attempts_before):]
        assert new_attempts and set(new_attempts) == set(pending_ids)
        assert not set(new_attempts) & done_before

        done_ids = [e["job_id"] for e in entries if e["kind"] == "done"]
        assert sorted(done_ids) == sorted(job.job_id for job in jobs)

        after = load_ledger(path)
        assert after.complete and after.ended

    def test_completed_ledger_has_nothing_pending(self, tmp_path):
        path = str(tmp_path / "full.jsonl")
        jobs = default_jobs(systems=["chain"], kinds=["lint"])
        with Ledger(path) as ledger:
            report = Supervisor(jobs, workers=0, ledger=ledger).run()
        assert report.ok
        state = load_ledger(path)
        assert state.complete
        assert state.pending == []


class TestWriterIdentity:
    """Schema 2: every entry is stamped with the writing host and pid,
    so a ledger moved between machines is detectable at resume time."""

    def test_entries_carry_host_and_pid(self, tmp_path):
        import os
        import socket

        path = str(tmp_path / "stamped.jsonl")
        jobs = [Job(job_id="lint:chain", kind="lint", system="chain")]
        with Ledger(path) as ledger:
            ledger.begin("cafe", jobs, {})
            ledger.attempt("lint:chain", 0, "ok", "")
            ledger.end({"ok": True})
        for entry in _entries(path):
            assert entry["host"] == socket.gethostname()
            assert entry["pid"] == os.getpid()

    def test_attempt_extra_fields_survive_but_cannot_shadow(self, tmp_path):
        path = str(tmp_path / "extra.jsonl")
        with Ledger(path) as ledger:
            ledger.begin(
                "cafe", [Job(job_id="lint:chain", kind="lint", system="chain")], {}
            )
            ledger.attempt(
                "lint:chain",
                0,
                "crash",
                "lost worker",
                extra={"worker": "w-1", "epoch": 3, "classification": "ok"},
            )
        attempt = next(e for e in _entries(path) if e["kind"] == "attempt")
        assert attempt["worker"] == "w-1"
        assert attempt["epoch"] == 3
        # Reserved keys win over extra: the classification is "crash".
        assert attempt["classification"] == "crash"

    def test_foreign_ledger_detected(self, tmp_path):
        path = str(tmp_path / "foreign.jsonl")
        jobs = [Job(job_id="lint:chain", kind="lint", system="chain")]
        with Ledger(path) as ledger:
            ledger.begin("cafe", jobs, {})
        state = load_ledger(path)
        assert state.host is not None and state.pid is not None
        assert not state.foreign_to()  # same machine
        assert state.foreign_to("some-other-box")
        assert not state.foreign_to(state.host)

    def test_schema_1_ledger_still_loads_and_is_never_foreign(self, tmp_path):
        # Pre-stamping ledgers carry no writer identity; they must load
        # (read compatibility) and never trigger the foreign-host path.
        path = tmp_path / "v1.jsonl"
        lines = [
            {
                "schema": 1,
                "kind": "campaign",
                "campaign_id": "old",
                "jobs": [{"job_id": "lint:chain", "kind": "lint",
                          "system": "chain", "params": {}}],
                "options": {},
            },
            {"schema": 1, "kind": "end", "summary": {"ok": True}},
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        state = load_ledger(str(path))
        assert state.campaign_id == "old"
        assert state.host is None and state.pid is None
        assert not state.foreign_to()
        assert not state.foreign_to("anything")

    def test_resume_on_foreign_host_warns(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        path = str(tmp_path / "moved.jsonl")
        assert main(["run", "chain", "--kinds", "lint", "--workers", "0",
                     "--ledger", path, "--no-cache"]) == 0
        capsys.readouterr()
        # Pretend this machine is not the one that wrote the ledger.
        monkeypatch.setattr("socket.gethostname", lambda: "elsewhere")
        assert main(["run", "chain", "--kinds", "lint", "--workers", "0",
                     "--resume", path, "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "different host" in err

    def test_resume_on_same_host_is_quiet(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "home.jsonl")
        assert main(["run", "chain", "--kinds", "lint", "--workers", "0",
                     "--ledger", path, "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["run", "chain", "--kinds", "lint", "--workers", "0",
                     "--resume", path, "--no-cache"]) == 0
        assert "different host" not in capsys.readouterr().err
