"""Job catalog and in-process execution."""

import pytest

from repro.errors import ReproError
from repro.runner import JOB_KINDS, Job, default_jobs, execute_job
from repro.runner.jobs import RESULT_SCHEMA_VERSION


class TestCatalog:
    def test_all_kinds_cover_every_registered_system(self):
        from repro.analyze import analyze_names
        from repro.faults.targets import perturb_names
        from repro.lint.targets import system_names as lint_names
        from repro.obs.bench import bench_names

        jobs = default_jobs()
        ids = {job.job_id for job in jobs}
        for name in lint_names():
            assert "lint:" + name in ids
        for name in analyze_names():
            assert "analyze:" + name in ids
        for name in perturb_names():
            assert "check:" + name in ids
            assert "perturb:" + name in ids
        for name in bench_names():
            assert "bench:" + name in ids
        assert len(ids) == len(jobs)  # job ids are unique

    def test_system_filter_intersects_each_registry(self):
        jobs = default_jobs(systems=["chain"])
        assert {job.job_id for job in jobs} == {
            "lint:chain", "analyze:chain", "check:chain",
            "perturb:chain", "bench:chain",
        }

    def test_all_keyword_means_everything(self):
        assert len(default_jobs(systems=["all"])) == len(default_jobs())

    def test_unknown_system_rejected(self):
        with pytest.raises(ReproError, match="unknown system"):
            default_jobs(systems=["no-such-system"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="no job kinds"):
            default_jobs(kinds=["frobnicate"])

    def test_fischer_tight_checks_expect_failure(self):
        jobs = {job.job_id: job for job in default_jobs(systems=["fischer-tight"])}
        assert jobs["analyze:fischer-tight"].expect_failure
        assert jobs["check:fischer-tight"].expect_failure
        assert jobs["perturb:fischer-tight"].expect_failure
        assert not jobs["bench:fischer-tight"].expect_failure

    def test_round_trips_through_plain_dicts(self):
        for job in default_jobs(systems=["rm"]):
            body = job.to_dict()
            import json

            json.dumps(body)  # plain JSON, no tagged values
            assert Job.from_dict(body) == job

    def test_bad_kind_rejected_eagerly(self):
        with pytest.raises(ReproError, match="unknown job kind"):
            Job(job_id="x", kind="nope", system="rm")

    def test_kind_order_is_cheap_first(self):
        kinds = [job.kind for job in default_jobs(systems=["chain"])]
        # Fuzz shards run against the synthetic "gen" system only, so a
        # single-system campaign covers every other kind, in order.
        assert kinds == [k for k in JOB_KINDS if k != "fuzz"]

    def test_fuzz_shards_partition_the_campaign(self):
        from repro.runner.jobs import FUZZ_SYSTEM, fuzz_shards

        shards = fuzz_shards(seed=3, count=120, shard=50)
        assert [job.params["count"] for job in shards] == [50, 50, 20]
        assert [job.params["start"] for job in shards] == [0, 50, 100]
        assert all(job.params["seed"] == 3 for job in shards)
        assert all(job.system == FUZZ_SYSTEM for job in shards)
        assert len({job.job_id for job in shards}) == 3

    def test_gen_names_join_every_applicable_registry(self):
        jobs = default_jobs(systems=["gen:relay_ring-4"])
        assert {job.job_id for job in jobs} == {
            "lint:gen:relay_ring-4", "analyze:gen:relay_ring-4",
            "check:gen:relay_ring-4", "perturb:gen:relay_ring-4",
        }


class TestExecuteJob:
    def test_lint_job_payload_shape(self):
        job = Job(job_id="lint:chain", kind="lint", system="chain")
        payload = execute_job(job)
        assert payload["schema"] == RESULT_SCHEMA_VERSION
        assert payload["job_id"] == "lint:chain"
        assert payload["ok"] and payload["conclusive"]
        assert payload["error"] is None
        assert isinstance(payload["telemetry"], dict)

    def test_check_job_carries_telemetry_counters(self):
        job = Job(
            job_id="check:chain",
            kind="check",
            system="chain",
            params={"seeds": 1, "steps": 15, "epsilon": "0"},
        )
        payload = execute_job(job)
        assert payload["ok"]
        assert payload["telemetry"]["counters"].get("check.steps", 0) > 0

    def test_verdict_failure_is_a_payload_not_an_exception(self):
        job = Job(
            job_id="check:fischer-tight",
            kind="check",
            system="fischer-tight",
            params={"seeds": 1, "steps": 10, "epsilon": "0"},
            expect_failure=True,
        )
        payload = execute_job(job)
        assert not payload["ok"]
        assert "mutual exclusion" in payload["detail"]

    def test_unknown_system_becomes_error_payload(self):
        job = Job(job_id="check:nope", kind="check", system="nope")
        payload = execute_job(job)
        assert not payload["ok"]
        assert payload["error"]["type"] == "ReproError"
        assert "unknown perturbation target" in payload["error"]["message"]
