"""Verdict-cache integration of :func:`repro.runner.jobs.execute_job`."""

import pytest

from repro.lint.registry import ruleset_version
from repro.runner.jobs import Job, _job_cache, execute_job


@pytest.fixture
def warm_cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _lint_job(job_id="lint:chain"):
    return Job(
        job_id=job_id,
        kind="lint",
        system="chain",
        params={"strict": False, "max_states": 500},
    )


class TestJobCachePolicy:
    def test_bench_jobs_never_cache(self, warm_cache_env):
        job = Job(job_id="bench:chain", kind="bench", system="chain", params={})
        assert _job_cache(job) == (None, None)

    def test_chaos_jobs_never_cache(self, warm_cache_env):
        job = _lint_job().with_chaos("crash")
        assert _job_cache(job) == (None, None)

    def test_explicit_cache_false_param(self, warm_cache_env):
        job = Job(
            job_id="lint:chain",
            kind="lint",
            system="chain",
            params={"strict": False, "cache": False},
        )
        assert _job_cache(job) == (None, None)

    def test_disabled_by_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert _job_cache(_lint_job()) == (None, None)

    def test_engine_params_excluded_from_key(self, warm_cache_env):
        job = Job(
            job_id="lint:chain",
            kind="lint",
            system="chain",
            params={
                "strict": False,
                "engine": "parallel",
                "workers": 4,
                "timeout": 30,
            },
        )
        cache, parts = _job_cache(job)
        assert cache is not None
        assert parts == {"strict": False, "ruleset": ruleset_version()}

    def test_rule_backed_kinds_key_on_ruleset_version(self, warm_cache_env):
        # Growing the rule set must invalidate lint/analyze verdicts;
        # exploration-backed kinds don't depend on rules at all.
        for kind in ("lint", "analyze"):
            _, parts = _job_cache(
                Job(
                    job_id="{}:chain".format(kind),
                    kind=kind,
                    system="chain",
                    params={"strict": False},
                )
            )
            assert parts["ruleset"] == ruleset_version()
        _, parts = _job_cache(
            Job(job_id="check:chain", kind="check", system="chain", params={})
        )
        assert "ruleset" not in parts


class TestExecuteJobCaching:
    def test_warm_rerun_is_served_from_cache(self, warm_cache_env):
        job = _lint_job()
        cold = execute_job(job)
        assert cold["error"] is None
        assert "cached" not in cold
        warm = execute_job(job)
        assert warm["cached"] is True
        assert warm["ok"] == cold["ok"]
        assert warm["detail"] == cold["detail"]
        # The hit's telemetry records the hit, not the original work.
        assert warm["telemetry"]["counters"] == {"cache.hits": 1}

    def test_hit_requires_matching_job_id(self, warm_cache_env):
        execute_job(_lint_job())
        other = execute_job(_lint_job(job_id="lint:chain:again"))
        assert "cached" not in other

    def test_inconclusive_verdicts_are_not_stored(self, warm_cache_env):
        job = Job(
            job_id="check:chain",
            kind="check",
            system="chain",
            params={
                "seeds": 1,
                "steps": 5,
                "seed": 0,
                "epsilon": "0",
                "max_steps": 1,
            },
        )
        cut = execute_job(job)
        assert cut["exhausted_budget"]
        again = execute_job(job)
        assert "cached" not in again

    def test_disabled_cache_runs_fresh_every_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        job = _lint_job()
        first = execute_job(job)
        second = execute_job(job)
        assert "cached" not in first
        assert "cached" not in second
