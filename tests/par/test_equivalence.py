"""Serial/parallel equivalence over the whole verification surface.

The parallel engine's contract is *byte-identical results*: for every
shipped system, the state set, transition count, truncation flags,
verdicts and seeded telemetry must match the serial engine exactly —
including when a Budget cuts the run mid-stream.  Only the engine's own
``par.*`` bookkeeping counters may differ.
"""

from fractions import Fraction

import pytest

from repro.core.checker import check_mapping_exhaustive
from repro.faults.budget import Budget
from repro.ioa.explorer import check_invariant, explore
from repro.obs.instrument import Recorder, recording
from repro.par import EngineConfig, explore_automaton, mapping_specs, surface_names

# min_batch=1 forces even tiny frontiers through the fork pool, so the
# parallel path is genuinely exercised on every system, not just the
# large ones.
PARALLEL = EngineConfig(kind="parallel", workers=2, min_batch=1)

SYSTEMS = surface_names()

MAPPED = [name for name in SYSTEMS if mapping_specs(name)]


def _strip_par(snapshot):
    return {
        section: {
            key: value
            for key, value in snapshot.get(section, {}).items()
            if not key.startswith("par.")
        }
        for section in ("counters", "gauges")
    }


def _run(fn, engine):
    recorder = Recorder(name="equiv", max_events=0)
    with recording(recorder):
        result = fn(engine)
    return result, _strip_par(recorder.snapshot())


def test_surface_has_seven_systems():
    assert len(SYSTEMS) == 7


@pytest.mark.parametrize("name", SYSTEMS)
def test_explore_equivalent(name):
    automaton, max_states = explore_automaton(name)

    def run(engine):
        return explore(automaton, max_states=max_states, engine=engine)

    serial, serial_tel = _run(run, EngineConfig())
    parallel, parallel_tel = _run(run, PARALLEL)
    assert parallel.reachable == serial.reachable
    assert parallel.transitions_explored == serial.transitions_explored
    assert parallel.truncated == serial.truncated
    assert parallel.exhausted_budget == serial.exhausted_budget
    assert parallel.parents == serial.parents
    assert parallel_tel == serial_tel


@pytest.mark.parametrize("name", SYSTEMS)
def test_explore_equivalent_under_budget_cut(name):
    automaton, max_states = explore_automaton(name)
    # Cut mid-stream wherever this system's full sweep actually is.
    full = explore(automaton, max_states=max_states)
    cut = max(1, full.transitions_explored // 2)

    def run(engine):
        return explore(
            automaton,
            max_states=max_states,
            budget=Budget(max_steps=cut),
            engine=engine,
        )

    serial, serial_tel = _run(run, EngineConfig())
    parallel, parallel_tel = _run(run, PARALLEL)
    assert serial.exhausted_budget  # the cut actually bit
    assert parallel.reachable == serial.reachable
    assert parallel.transitions_explored == serial.transitions_explored
    assert parallel.truncated == serial.truncated
    assert parallel.exhausted_budget == serial.exhausted_budget
    assert parallel_tel == serial_tel


@pytest.mark.parametrize("name", SYSTEMS)
def test_check_invariant_equivalent(name):
    automaton, max_states = explore_automaton(name)
    # Deterministic, fork-safe predicate that fails on *some* systems:
    # both engines must agree on the verdict and the counterexample.
    predicate = lambda state: len(repr(state)) % 5 != 0  # noqa: E731

    def run(engine):
        return check_invariant(
            automaton, predicate, max_states=max_states, engine=engine
        )

    serial, serial_tel = _run(run, EngineConfig())
    parallel, parallel_tel = _run(run, PARALLEL)
    assert parallel.holds == serial.holds
    assert parallel.states_checked == serial.states_checked
    assert parallel.truncated == serial.truncated
    assert parallel.counterexample == serial.counterexample
    assert parallel_tel == serial_tel


@pytest.mark.parametrize("name", MAPPED)
def test_mapping_obligations_equivalent(name):
    for label, mapping, grid, horizon in mapping_specs(name):

        def run(engine):
            return check_mapping_exhaustive(
                mapping, grid=grid, horizon=horizon, engine=engine
            )

        serial, serial_tel = _run(run, EngineConfig())
        parallel, parallel_tel = _run(run, PARALLEL)
        assert parallel == serial, label
        assert parallel_tel == serial_tel, label


@pytest.mark.parametrize("name", MAPPED)
def test_mapping_obligations_equivalent_under_budget_cut(name):
    label, mapping, grid, horizon = mapping_specs(name)[0]

    def run(engine):
        return check_mapping_exhaustive(
            mapping,
            grid=grid,
            horizon=horizon,
            budget=Budget(max_steps=41),
            engine=engine,
        )

    serial, serial_tel = _run(run, EngineConfig())
    parallel, parallel_tel = _run(run, PARALLEL)
    assert serial.exhausted_budget, label
    assert parallel == serial, label
    assert parallel_tel == serial_tel, label


def test_explore_respects_ambient_engine_scope():
    from repro.par import engine_scope

    automaton, max_states = explore_automaton("rm")
    serial = explore(automaton, max_states=max_states)
    with engine_scope(PARALLEL):
        recorder = Recorder(name="ambient", max_events=0)
        with recording(recorder):
            ambient = explore(automaton, max_states=max_states)
    counters = recorder.snapshot()["counters"]
    assert ambient.reachable == serial.reachable
    assert any(key.startswith("par.") for key in counters)
