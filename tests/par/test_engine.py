"""Unit tests for the parallel-engine substrate (:mod:`repro.par.engine`)."""

import pytest

from repro.errors import ReproError
from repro.par.engine import (
    ENGINE_KINDS,
    MAX_WORKERS,
    EngineConfig,
    current_engine,
    default_workers,
    engine_scope,
    resolve_engine,
    set_engine,
    shard_items,
)


@pytest.fixture(autouse=True)
def _reset_engine():
    yield
    set_engine(None)


class TestEngineConfig:
    def test_default_is_serial(self):
        config = EngineConfig()
        assert config.kind == "serial"
        assert not config.parallel

    def test_parallel_flag(self):
        assert EngineConfig(kind="parallel").parallel

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            EngineConfig(kind="turbo")

    def test_bad_workers_rejected(self):
        with pytest.raises(ReproError):
            EngineConfig(kind="parallel", workers=0)

    def test_bad_min_batch_rejected(self):
        with pytest.raises(ReproError):
            EngineConfig(min_batch=0)

    def test_kinds_registry(self):
        assert ENGINE_KINDS == ("serial", "parallel")


class TestEngineSelection:
    def test_process_default_is_serial(self):
        assert current_engine() == EngineConfig()

    def test_resolve_prefers_explicit_argument(self):
        set_engine("parallel")
        assert resolve_engine("serial") == EngineConfig()
        assert resolve_engine(None).parallel

    def test_resolve_coerces_strings(self):
        assert resolve_engine("parallel") == EngineConfig(kind="parallel")

    def test_set_engine_none_restores_serial(self):
        set_engine("parallel")
        set_engine(None)
        assert not current_engine().parallel

    def test_engine_scope_nests_and_restores(self):
        assert not current_engine().parallel
        with engine_scope("parallel", workers=2):
            assert current_engine() == EngineConfig(kind="parallel", workers=2)
            with engine_scope("serial"):
                assert not current_engine().parallel
            assert current_engine().parallel
        assert not current_engine().parallel

    def test_engine_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with engine_scope("parallel"):
                raise RuntimeError("boom")
        assert not current_engine().parallel

    def test_engine_scope_none_scopes_serial(self):
        # Like set_engine(None), a None scope means "the default engine",
        # not "no opinion" — it pins serial for the block.
        set_engine("parallel")
        with engine_scope(None):
            assert not current_engine().parallel
        assert current_engine().parallel

    def test_default_workers_bounds(self):
        workers = default_workers()
        assert 2 <= workers <= MAX_WORKERS


class TestShardItems:
    def test_partition_is_deterministic_and_complete(self):
        items = ["s{}".format(i) for i in range(37)]
        shards = shard_items(items, 4)
        again = shard_items(items, 4)
        assert shards == again
        flat = sorted(
            entry for bucket in shards for entry in bucket
        )
        assert flat == list(enumerate(items))

    def test_buckets_are_non_empty(self):
        shards = shard_items(list(range(100)), 5)
        assert all(shards)
        assert 1 <= len(shards) <= 5

    def test_single_shard(self):
        items = ["a", "b", "c"]
        assert shard_items(items, 1) == [list(enumerate(items))]

    def test_empty_input(self):
        assert shard_items([], 4) == []
