"""Hierarchical proof of the signal relay (paper Section 6).

Builds the relay line, dummifies it (its timed executions are finite),
constructs the intermediate requirements automata ``B_{n-1} … B_0`` and
checks the whole mapping hierarchy

    time(Ã, b̃) → B_{n-1} → … → B_0 → B

in lockstep along simulated executions — each ``f_k`` is the assertional
counterpart of one recurrence step ``T_k = T_{k+1} + [d1, d2]``, and the
recurrence baseline is printed alongside for comparison.

Run:  python examples/signal_relay_hierarchy.py
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import BoundsAccumulator, separations_after
from repro.analysis.recurrence import relay_chain
from repro.analysis.report import Table
from repro.core import check_chain_on_run, project, undum
from repro.sim import Simulator, UniformStrategy
from repro.systems import (
    SIGNAL,
    RelayParams,
    RelaySystem,
    relay_hierarchy,
)
from repro.timed import Interval


def main() -> None:
    params = RelayParams(n=5, d1=F(1), d2=F(2))
    system = RelaySystem(params, dummy_interval=Interval(F(1, 2), F(1)))
    chain = relay_hierarchy(system)

    print("Signal relay (Section 6): n={}, hop bound [{}, {}]".format(
        params.n, params.d1, params.d2))
    print("Mapping hierarchy ({} levels):".format(len(chain)))
    for mapping in chain:
        print("  ", mapping.name)

    print()
    print("Operational (recurrence) argument for comparison:")
    for line in relay_chain(params).explain():
        print("  ", line)

    delays = BoundsAccumulator()
    steps = 0
    for seed in range(25):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=120
        )
        outcome = check_chain_on_run(chain, run)
        outcome.raise_if_failed()
        steps += outcome.steps_checked
        seq = undum(project(run))
        delays.add_all(separations_after(seq.events, SIGNAL(0), SIGNAL(params.n)))

    table = Table("Theorem 6.4 — paper bound vs 25 seeded runs", [
        "quantity", "paper bound", "measured span", "within",
    ])
    table.add_row(
        "SIGNAL_0 → SIGNAL_n",
        repr(params.end_to_end_interval),
        repr(delays.span()),
        delays.all_within(params.end_to_end_interval),
    )
    table.print()
    print()
    print("hierarchy obligations checked across all levels on {} steps".format(steps))


if __name__ == "__main__":
    main()
