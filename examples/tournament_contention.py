"""The full [PF77] tournament under contention.

"One particularly good example to try is the full tournament mutual
exclusion algorithm from [PF77]" — the paper's Section 8.  This demo
runs the whole pipeline on it:

1. exhaustive mutual-exclusion check (untimed reachability, which
   subsumes every timing);
2. contention analysis: first entry within the recurrence interval
   ``3·h·[s1, s2]``, with the deterministic case proven exactly by the
   zone engine;
3. a look at one contended execution as a timeline.

Run:  python examples/tournament_contention.py
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import BoundsAccumulator
from repro.analysis.report import Table
from repro.analysis.timeline import render_timeline
from repro.core.time_automaton import time_of_boundmap
from repro.ioa.explorer import check_invariant
from repro.sim import ExtremalStrategy, Simulator, UniformStrategy
from repro.systems.extensions.tournament import (
    ADVANCE,
    TournamentParams,
    tournament_automaton,
    tournament_mutex_violated,
    tournament_system,
)
from repro.timed import Interval
from repro.zones.analysis import event_separation_bounds


def enter_group(n: int):
    height = n.bit_length() - 1
    return {ADVANCE(i, height - 1) for i in range(n)}


def main() -> None:
    table = Table(
        "Tournament mutual exclusion — safety and contention",
        ["n", "h", "mutex (exhaustive)", "recurrence 3h·[s1,s2]",
         "simulated span", "zone-exact (s1=s2=1)"],
    )
    for n in (2, 4):
        params = TournamentParams(n=n, s1=F(1), s2=F(2), e=F(1), repeat=True)
        h = params.height
        report = check_invariant(
            tournament_automaton(params),
            lambda s: not tournament_mutex_violated(s),
        )
        assert report.holds
        recurrence = Interval(3 * h * params.s1, 3 * h * params.s2)
        automaton = time_of_boundmap(tournament_system(params))
        acc = BoundsAccumulator()
        for seed in range(15):
            strategy = (
                UniformStrategy(random.Random(seed))
                if seed % 2
                else ExtremalStrategy(random.Random(seed))
            )
            run = Simulator(automaton, strategy).run(max_steps=200)
            entries = [ev.time for ev in run.events if ev.action in enter_group(n)]
            if entries:
                acc.add(entries[0])
        exact = event_separation_bounds(
            tournament_system(TournamentParams(n=n, s1=F(1), s2=F(1))),
            enter_group(n),
            occurrence=1,
            max_nodes=150_000,
        )
        table.add_row(
            n, h, "holds ({} states)".format(report.states_checked),
            repr(recurrence), repr(acc.span()), repr(exact),
        )
    table.print()

    print()
    print("A contended n=4 execution (first 18 events):")
    params = TournamentParams(n=4, s1=F(1), s2=F(2), e=F(1), repeat=True)
    automaton = time_of_boundmap(tournament_system(params))
    run = Simulator(automaton, UniformStrategy(random.Random(3))).run(max_steps=60)
    for line in render_timeline(run, limit=18).splitlines():
        # Timelines over TimeStates are verbose; show the event column only.
        print(" ", line.split("  As=")[0])


if __name__ == "__main__":
    main()
