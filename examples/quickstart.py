"""Quickstart: the paper's resource manager, end to end.

Builds the Section 4 system (clock ∥ manager), simulates the
predictive-time automaton ``time(A, b)``, measures the GRANT times
against Theorem 4.4's bounds, checks Lemma 4.1's invariant, and
machine-checks the Section 4.3 strong possibilities mapping along every
simulated run.

Run:  python examples/quickstart.py
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import BoundsAccumulator, gaps, occurrence_times
from repro.analysis.report import Table
from repro.core import check_mapping_on_run, project
from repro.sim import Simulator, UniformStrategy
from repro.sim.trace import timed_behavior_of_run
from repro.systems import (
    GRANT,
    ResourceManagerParams,
    ResourceManagerSystem,
    lemma_4_1_predicate,
    resource_manager_mapping,
)


def main() -> None:
    params = ResourceManagerParams(k=3, c1=F(2), c2=F(3), l=F(1))
    system = ResourceManagerSystem(params)
    mapping = resource_manager_mapping(system)
    invariant = lemma_4_1_predicate(system)

    print("Resource manager (Section 4):", params)
    print("  paper first-GRANT bound :", params.first_grant_interval)
    print("  paper GRANT-gap bound   :", params.grant_gap_interval)

    first_times = BoundsAccumulator()
    gap_times = BoundsAccumulator()
    steps_checked = 0
    for seed in range(20):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=300
        )
        # Lemma 4.1: the invariant holds in every state visited.
        assert all(invariant(state) for state in run.states)
        # Lemma 4.3: the mapping obligations hold at every step.
        outcome = check_mapping_on_run(mapping, run)
        outcome.raise_if_failed()
        steps_checked += outcome.steps_checked
        # Theorem 4.4: measure GRANT times in the timed behavior.
        behavior = timed_behavior_of_run(system.timed.automaton, run)
        times = occurrence_times(behavior, GRANT)
        first_times.add(times[0])
        gap_times.add_all(gaps(times))

    table = Table("Theorem 4.4 — paper bound vs 20 seeded runs", [
        "quantity", "paper bound", "measured span", "within",
    ])
    table.add_row(
        "first GRANT",
        repr(params.first_grant_interval),
        repr(first_times.span()),
        first_times.all_within(params.first_grant_interval),
    )
    table.add_row(
        "GRANT gap",
        repr(params.grant_gap_interval),
        repr(gap_times.span()),
        gap_times.all_within(params.grant_gap_interval),
    )
    table.print()
    print()
    print("mapping obligations checked on {} steps: all hold".format(steps_checked))


if __name__ == "__main__":
    main()
