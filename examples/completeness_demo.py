"""The completeness construction (paper Section 7, Theorem 7.1).

Given that the resource manager satisfies its requirements, the theorem
says a strong possibilities mapping must exist — and exhibits the
canonical one, whose inequalities compare the requirements automaton's
``Ft/Lt`` against the inf/sup of *first-occurrence times* over all
admissible extensions ``Ext(s)``.

This demo computes those inf/sup values exactly for the grid semantics
(exhaustive estimator), checks the canonical mapping on every grid
execution, and then repeats the check with a Monte-Carlo estimator plus
slack.

Run:  python examples/completeness_demo.py
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import (
    CanonicalMapping,
    ExhaustiveFirstEstimator,
    SamplingFirstEstimator,
    check_mapping_exhaustive,
    check_mapping_on_run,
    dummify,
    dummify_conditions,
    time_of_boundmap,
    time_of_conditions,
)
from repro.sim import Simulator, UniformStrategy
from repro.systems import ResourceManagerParams, ResourceManagerSystem
from repro.timed import Interval


def main() -> None:
    params = ResourceManagerParams(k=2, c1=F(2), c2=F(2), l=F(1))
    system = ResourceManagerSystem(params)
    # Theorem 7.1 works on the dummification.
    dummified = dummify(system.timed, Interval(1, 1))
    algorithm = time_of_boundmap(dummified)
    conditions = dummify_conditions([system.g1, system.g2])
    requirements = time_of_conditions(dummified.automaton, conditions, name="B~")

    print("Canonical mapping for the resource manager", params)

    estimator = ExhaustiveFirstEstimator(algorithm, grid=F(1, 2), window=F(12))
    (start,) = list(algorithm.start_states())
    table = Table("first-occurrence statistics over Ext(start)", [
        "condition", "inf first_Π (→ Ft bound)", "sup first (→ Lt bound)",
    ])
    for cond in requirements.conditions:
        sup_first, inf_first = estimator.first_bounds(start, cond)
        table.add_row(cond.name, inf_first, sup_first)
    table.print()

    canonical = CanonicalMapping(algorithm, requirements, estimator)
    outcome = check_mapping_exhaustive(canonical, grid=F(1, 2), horizon=F(9))
    outcome.raise_if_failed()
    print()
    print(
        "exhaustive grid check of the canonical mapping: {} steps, all "
        "obligations hold".format(outcome.steps_checked)
    )

    sampled = SamplingFirstEstimator(
        algorithm,
        strategy_factory=lambda seed: UniformStrategy(random.Random(seed)),
        runs=25,
        max_steps=60,
    )
    approx = CanonicalMapping(
        algorithm, requirements, sampled, upper_slack=F(1, 2), lower_slack=F(1, 2)
    )
    run = Simulator(algorithm, UniformStrategy(random.Random(123))).run(max_steps=60)
    check_mapping_on_run(approx, run).raise_if_failed()
    print(
        "Monte-Carlo canonical mapping (25 samples, slack 1/2) holds on a "
        "{}-step run".format(len(run))
    )


if __name__ == "__main__":
    main()
