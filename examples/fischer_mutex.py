"""Fischer's timed mutual exclusion — the paper's Section 8 direction.

The conclusions call for applying the method to real timing-based
algorithms.  Fischer's protocol is the canonical one: safety (mutual
exclusion) holds or fails purely by the relationship between the set
delay ``a`` and the wait-before-check ``b``.

This demo decides both directions *exactly* with the zone engine, shows
a concrete violating interleaving via adversarial simulation, and the
bounded-critical-section ablation (e < b rescues some a ≥ b configs).

Run:  python examples/fischer_mutex.py
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import time_of_boundmap
from repro.sim import ExtremalStrategy, Simulator
from repro.systems.extensions import (
    FischerParams,
    fischer_system,
    mutual_exclusion_violated,
)
from repro.zones.analysis import find_reachable_state


def verdict(params: FischerParams) -> str:
    bad = find_reachable_state(
        fischer_system(params), mutual_exclusion_violated, max_nodes=400_000
    )
    return "VIOLABLE ({!r})".format(bad) if bad is not None else "SAFE"


def main() -> None:
    table = Table(
        "Fischer mutual exclusion — exact safety verdicts (zone reachability)",
        ["n", "a (set)", "b (wait)", "e (critical)", "b > a", "verdict"],
    )
    cases = [
        FischerParams(n=2, a=F(1), b=F(2)),
        FischerParams(n=2, a=F(1), b=F(3, 2)),
        FischerParams(n=2, a=F(1), b=F(1)),
        FischerParams(n=2, a=F(2), b=F(1)),
        FischerParams(n=3, a=F(1), b=F(2)),
        FischerParams(n=2, a=F(3), b=F(2)),          # unsafe (textbook)
        FischerParams(n=2, a=F(3), b=F(2), e=F(1)),  # rescued by short CS
    ]
    for params in cases:
        table.add_row(
            params.n, params.a, params.b,
            "inf" if params.e == float("inf") else params.e,
            params.safe, verdict(params),
        )
    table.print()

    print()
    print("Adversarial simulation witness for a=2, b=1 (violable):")
    params = FischerParams(n=2, a=F(2), b=F(1), e=F(1))
    automaton = time_of_boundmap(fischer_system(params))
    for seed in range(200):
        run = Simulator(automaton, ExtremalStrategy(random.Random(seed))).run(
            max_steps=120
        )
        for state in run.states:
            if mutual_exclusion_violated(state.astate):
                print(
                    "  seed {}: reached {!r} at t = {}".format(
                        seed, state.astate, state.now
                    )
                )
                return
    print("  (no witness found in 200 seeds — the zone verdict stands regardless)")


if __name__ == "__main__":
    main()
