"""Exact timing bounds via zone reachability (substrate for E10).

For both of the paper's systems, computes the *exact* reachable
min/max event separations symbolically (DBM zone graph) and compares
them with the paper's claimed intervals — showing the theorems' bounds
are not only sound but tight, across a parameter sweep.

Run:  python examples/exact_bounds_zones.py
"""

from fractions import Fraction as F

from repro.analysis.report import Table
from repro.systems import (
    GRANT,
    SIGNAL,
    RelayParams,
    ResourceManagerParams,
    resource_manager,
    signal_relay,
)
from repro.zones import absolute_event_bounds, event_separation_bounds


def resource_manager_sweep() -> None:
    table = Table(
        "Resource manager — exact zone bounds vs Theorem 4.4",
        ["k", "c1", "c2", "l", "quantity", "paper", "exact", "tight"],
    )
    for k, c1, c2, l in [
        (1, F(2), F(3), F(1)),
        (2, F(2), F(3), F(1)),
        (3, F(2), F(3), F(1)),
        (2, F(5), F(8), F(3)),
        (4, F(3), F(3), F(1)),
    ]:
        params = ResourceManagerParams(k=k, c1=c1, c2=c2, l=l)
        timed = resource_manager(params)
        first = absolute_event_bounds(timed, GRANT)
        table.add_row(
            k, c1, c2, l,
            "first GRANT",
            repr(params.first_grant_interval),
            repr(first),
            first.tight(params.first_grant_interval),
        )
        gap = event_separation_bounds(timed, GRANT, occurrence=2, reset_on=[GRANT])
        table.add_row(
            k, c1, c2, l,
            "GRANT gap",
            repr(params.grant_gap_interval),
            repr(gap),
            gap.tight(params.grant_gap_interval),
        )
    table.print()


def relay_sweep() -> None:
    table = Table(
        "Signal relay — exact zone bounds vs Theorem 6.4",
        ["n", "d1", "d2", "paper", "exact", "tight"],
    )
    for n, d1, d2 in [
        (1, F(1), F(2)),
        (2, F(1), F(2)),
        (3, F(1), F(2)),
        (4, F(1), F(3)),
        (5, F(2), F(5)),
    ]:
        params = RelayParams(n=n, d1=d1, d2=d2)
        bounds = event_separation_bounds(
            signal_relay(params), SIGNAL(n), occurrence=1, reset_on=[SIGNAL(0)]
        )
        table.add_row(
            n, d1, d2,
            repr(params.end_to_end_interval),
            repr(bounds),
            bounds.tight(params.end_to_end_interval),
        )
    table.print()


if __name__ == "__main__":
    resource_manager_sweep()
    relay_sweep()
