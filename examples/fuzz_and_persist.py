"""Differential fuzzing with ``repro.gen`` and persisting reproducers.

The library's fuzzing substrate is now a first-class subsystem.  This
example shows the full workflow:

1. run a small seeded campaign with :func:`repro.gen.fuzzer.run_campaign`
   — each instance is a random well-formed timed automaton whose anchor
   gap claim is decided independently by four proof methods (exhaustive
   mapping sweep, direct semantic inclusion, exact zone bounds, symbolic
   Fourier–Motzkin), with any split failing loudly;
2. serialise one instance as a JSON *reproducer* and re-run the oracle
   from the artifact alone — verdicts replay exactly, no randomness
   involved;
3. materialise a parametric family instance (``gen:relay_ring-6``) and
   peek at its generated bundle.

Run:  python examples/fuzz_and_persist.py
"""

import os
import tempfile

from repro.analysis.report import Table
from repro.gen import build_bundle, sample_names
from repro.gen.fuzzer import load_reproducer, run_campaign, write_reproducer


def main() -> None:
    # 1. A seeded differential campaign.  Same seed => same instances,
    #    same verdicts, byte-identical report — campaigns shard freely.
    report = run_campaign(count=5, seed=2026)
    table = Table(
        "differential fuzz — four proof methods per instance",
        ["index", "cells", "claim kind", "expected", "mapping", "semantic",
         "zones", "symbolic", "agree"],
    )
    for inst in report.instances:
        table.add_row(
            inst.index,
            len(inst.recipe["cells"]),
            inst.recipe["claim"]["kind"],
            inst.expected,
            inst.verdicts["mapping"],
            inst.verdicts["semantic"],
            inst.verdicts["zones"],
            inst.verdicts["symbolic"],
            inst.agree,
        )
    table.print()
    print()
    print(report.detail)
    assert report.ok, "method disagreement: an engine has a bug"

    # 2. Reproducer round trip: the artifact alone rebuilds the exact
    #    instance and replays the exact verdicts.
    inst = report.instances[0]
    with tempfile.TemporaryDirectory() as artifacts:
        path = write_reproducer(inst, artifacts)
        replayed = load_reproducer(path)
        assert replayed.verdicts == inst.verdicts
        assert replayed.expected == inst.expected
        print(
            "reproducer {} replayed: verdicts identical".format(
                os.path.basename(path)
            )
        )

    # 3. Parametric families: any gen:<family>-<params> name yields a
    #    fully formed system bundle (automaton, boundmap, obligations,
    #    declared closed-form bounds) accepted by check/lint/analyze.
    bundle = build_bundle("gen:relay_ring-6")
    described = bundle.describe_dict()
    print()
    print("gen:relay_ring-6 bundle:")
    print("  classes: {}".format(", ".join(sorted(described["boundmap"]))))
    print("  declared bounds: {}".format(
        {b.label: repr(b.declared) for b in bundle.bounds()}
    ))
    print("  obligations: {}".format(
        {o.obligation: o.verdict.value for o in bundle.obligations()}
    ))
    print()
    print("one sample per family: {}".format(", ".join(sample_names())))


if __name__ == "__main__":
    main()
