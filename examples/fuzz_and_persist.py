"""Fuzzing the semantics and persisting counterexample runs.

Shows the library's testing substrate as a user-facing workflow:

1. generate random closed timed systems (``repro.testkit``);
2. simulate each and check, mechanically, the invariants the paper's
   definitions promise (semi-execution-ness, checker agreement,
   lift/project round trips);
3. verify an auto-derived claim about each system with the exact zone
   verifier — and on a refuted claim, persist a witness run to JSON and
   reload it bit-for-bit.

Run:  python examples/fuzz_and_persist.py
"""

import random
from fractions import Fraction as F

from repro.analysis.report import Table
from repro.core import lift, project, time_of_boundmap
from repro.serialize import run_from_json, run_to_json
from repro.sim import Simulator, UniformStrategy
from repro.testkit import INC, random_system
from repro.timed import Interval
from repro.timed.satisfaction import find_boundmap_violation
from repro.zones import verify_event_condition


def main() -> None:
    table = Table(
        "20 random systems — semantic invariants and exact claim checks",
        ["seed", "cells", "run ok", "round trip", "claimed anchor gap", "verdict"],
    )
    refuted_examples = 0
    for seed in range(20):
        rng = random.Random(seed)
        system = random_system(rng, allow_unbounded=False)
        automaton = time_of_boundmap(system.timed)
        run = Simulator(automaton, UniformStrategy(random.Random(seed + 1))).run(
            max_steps=40
        )
        seq = project(run)
        run_ok = find_boundmap_violation(system.timed, seq, semi=True) is None
        round_trip = lift(automaton, seq) == run

        # Auto-derive a claim about the always-enabled anchor cell: its
        # firing gap equals its boundmap interval...
        anchor = system.cells[0]
        true_claim = anchor.interval
        # ...then deliberately tighten it on odd seeds, expecting refutation.
        if seed % 2 and true_claim.width > 0:
            claimed = Interval(true_claim.lo, true_claim.hi - true_claim.width / 2)
        else:
            claimed = true_claim
        report = verify_event_condition(
            system.timed, INC(0), INC(0), claimed, occurrences=2, max_nodes=40_000
        )
        table.add_row(
            seed, len(system.cells), run_ok, round_trip,
            repr(claimed), report.verdict.value,
        )
        assert run_ok and round_trip
        if not report.verdict.holds:
            refuted_examples += 1
            # Persist the simulated run as the context for this refutation.
            payload = run_to_json(run)
            assert run_from_json(payload) == run
    table.print()
    print()
    print(
        "{} deliberately-tightened claims refuted; every refutation context "
        "serialised and reloaded exactly".format(refuted_examples)
    )


if __name__ == "__main__":
    main()
