"""Building and analysing your *own* timed system with the toolkit.

Walks through the Section 8 extensions:

1. a request/response service closed by an environment automaton, with
   a step-triggered timing condition checked on simulated behaviors and
   exactly via zones;
2. the conclusions' "π triggers φ triggers ψ" two-event chain, proved
   hierarchically with heterogeneous per-stage bounds.

Run:  python examples/custom_system.py
"""

import random
from fractions import Fraction as F

from repro.analysis.bounds import BoundsAccumulator, separations_after
from repro.analysis.report import Table
from repro.core import check_chain_on_run, project, time_of_boundmap
from repro.sim import Simulator, UniformStrategy
from repro.systems.extensions import (
    EVENT,
    ChainSystem,
    REPLY,
    REQUEST,
    RequestGrantParams,
    request_grant_system,
    response_condition,
)
from repro.timed import Interval
from repro.timed.satisfaction import find_condition_violation
from repro.zones import event_separation_bounds


def request_grant_demo() -> None:
    params = RequestGrantParams(r1=F(3), r2=F(4), l=F(1))
    timed = request_grant_system(params)
    condition = response_condition(params)
    automaton = time_of_boundmap(timed)

    print("Request/grant service: requests every [{} , {}], service bound "
          "[0, {}]".format(params.r1, params.r2, params.l))

    measured = BoundsAccumulator()
    for seed in range(15):
        run = Simulator(automaton, UniformStrategy(random.Random(seed))).run(
            max_steps=200
        )
        seq = project(run)
        violation = find_condition_violation(seq, condition, semi=True)
        assert violation is None, violation
        measured.add_all(separations_after(seq.events, REQUEST, REPLY))

    exact = event_separation_bounds(timed, REPLY, occurrence=1, reset_on=[REQUEST])
    table = Table("REQUEST → REPLY response time", [
        "claimed", "measured span (15 runs)", "exact (zones)",
    ])
    table.add_row(repr(params.response_interval), repr(measured.span()), repr(exact))
    table.print()
    print()


def two_event_chain_demo() -> None:
    stages = [Interval(F(1), F(2)), Interval(F(3), F(4))]
    system = ChainSystem(stages, dummy_interval=Interval(F(1, 2), F(1)))
    print("Two-event chain: π→φ within {}, φ→ψ within {}".format(*map(repr, stages)))
    print("derived end-to-end requirement:", system.requirement.interval)

    chain = system.hierarchy()
    checked = 0
    for seed in range(15):
        run = Simulator(system.algorithm, UniformStrategy(random.Random(seed))).run(
            max_steps=80
        )
        outcome = check_chain_on_run(chain, run)
        outcome.raise_if_failed()
        checked += outcome.steps_checked

    exact = event_separation_bounds(
        system.timed, EVENT(2), occurrence=1, reset_on=[EVENT(0)]
    )
    table = Table("π → ψ end-to-end delay", ["derived bound", "exact (zones)", "tight"])
    table.add_row(
        repr(system.requirement.interval),
        repr(exact),
        exact.tight(system.requirement.interval),
    )
    table.print()
    print()
    print("hierarchy obligations checked on {} steps".format(checked))


if __name__ == "__main__":
    request_grant_demo()
    two_event_chain_demo()
