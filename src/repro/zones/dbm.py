"""Difference Bound Matrices as flat encoded-integer arrays.

The zone substrate for exact timing analysis (experiment E10).  A DBM
over clocks ``x_1 … x_n`` (with the reference ``x_0 = 0``) stores, for
every ordered pair, an upper bound on ``x_i − x_j``.

**External vocabulary** (unchanged since the object-based engine, now
kept verbatim in :mod:`repro.zones.dbm_reference`): a bound is a pair
``(value, flag)`` with ``value`` an exact :class:`~fractions.Fraction`
(or ``math.inf``) and ``flag = 0`` for ``≤``, ``flag = −1`` for ``<``;
tuple ordering coincides with bound tightness.

**Internal storage** is a single flat ``array('q')`` of ``(n+1)²``
encoded cells in row-major order.  A finite bound ``(v, flag)`` whose
value is an integer multiple of ``1/scale`` packs into one machine word
as ``2·(v·scale) + (1 if ≤ else 0)`` — the classic timed-automata
encoding, scaled so exact rationals fit: integer ordering coincides
with bound tightness, and bound addition is
``a + b − ((a | b) & 1)``.  ``∞`` is the sentinel :data:`INF_ENC`, far
above any sum of finite cells.  ``scale`` is per-matrix; operations
that meet a bound outside the current grid rescale to the lcm, so the
arithmetic stays exact for arbitrary rational inputs.

Why flat: canonicalisation, constraint propagation, and successor
construction become index arithmetic over machine ints — no per-cell
tuple/Fraction allocation on the hot path, ``memcpy``-speed copies,
:func:`array.array.tobytes` zone keys cheap enough to intern — which is
what lifts ``zones.query`` by an order of magnitude on the bench
trajectory (BENCH_5 vs BENCH_4).

Canonicalisation has an optional numpy fast path (import-guarded; the
results are byte-identical to the pure-python loop because both are
exact int64 arithmetic).  Only the operations needed for forward
reachability of timed automata are provided: canonicalisation
(Floyd–Warshall), emptiness, constraint intersection (incremental
O(n²) tightening), delay (``up``), and single/batched clock resets.
"""

from __future__ import annotations

import math
from array import array
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ZoneError

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "Bound",
    "INF_BOUND",
    "ZERO_BOUND",
    "INF_ENC",
    "ZERO_ENC",
    "le_bound",
    "lt_bound",
    "bound_add",
    "encode_bound",
    "decode_bound",
    "DBM",
]

#: A bound on a clock difference: (value, flag); flag 0 = "≤", −1 = "<".
Bound = Tuple[object, int]

INF_BOUND: Bound = (math.inf, 0)
ZERO_BOUND: Bound = (Fraction(0), 0)

#: Encoded ``≤ ∞`` sentinel: any cell ``>= INF_ENC`` reads as infinite.
#: Far above any sum of legal finite cells (see :data:`_MAX_MAGNITUDE`)
#: yet small enough that ``INF_ENC + INF_ENC`` stays inside int64, so
#: the numpy canonicalisation path cannot overflow.
INF_ENC = 1 << 60

#: Encoded ``≤ 0``.
ZERO_ENC = 1

#: Largest |scaled value| a finite bound may encode.  Triple sums of
#: such cells stay far below :data:`INF_ENC`; anything bigger raises
#: rather than silently wrapping.
_MAX_MAGNITUDE = 1 << 50


def le_bound(value) -> Bound:
    """The bound ``≤ value``."""
    return (Fraction(value), 0)


def lt_bound(value) -> Bound:
    """The bound ``< value``."""
    return (Fraction(value), -1)


def bound_add(a: Bound, b: Bound) -> Bound:
    """Tightest bound implied by chaining two difference bounds."""
    if a[0] is math.inf or b[0] is math.inf or a == INF_BOUND or b == INF_BOUND:
        return INF_BOUND
    value = a[0] + b[0]
    if isinstance(value, float) and math.isinf(value):
        return INF_BOUND
    return (value, min(a[1], b[1]))


def encode_bound(bound: Bound, scale: int = 1) -> int:
    """Pack ``(value, flag)`` into one encoded int at ``1/scale``
    resolution.  The value must lie on the grid (use
    :meth:`DBM.rescale` / the lcm of the denominators in play) and
    within :data:`_MAX_MAGNITUDE`."""
    value, flag = bound
    if value is math.inf or (isinstance(value, float) and math.isinf(value)):
        return INF_ENC
    scaled = value * scale
    numerator = int(scaled)
    if numerator != scaled:
        raise ZoneError(
            "bound value {!r} does not fit the 1/{} grid".format(value, scale)
        )
    if not -_MAX_MAGNITUDE <= numerator <= _MAX_MAGNITUDE:
        raise ZoneError(
            "bound value {!r} out of the encodable range at scale {}".format(
                value, scale
            )
        )
    return 2 * numerator + (1 if flag == 0 else 0)


def decode_bound(enc: int, scale: int = 1) -> Bound:
    """Unpack an encoded cell back to the external ``(value, flag)``."""
    if enc >= INF_ENC:
        return INF_BOUND
    return (Fraction(enc >> 1, scale), 0 if enc & 1 else -1)


def _denominator(value) -> int:
    if isinstance(value, Fraction):
        return value.denominator
    if isinstance(value, int):
        return 1
    if isinstance(value, float):
        if math.isinf(value):
            return 1
        value = Fraction(value)
    return Fraction(value).denominator


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)


class DBM:
    """A difference bound matrix over ``n`` clocks (plus the reference),
    stored flat.

    The matrix is kept canonical (all-pairs tightest) by the mutating
    operations; :meth:`key` yields a hashable, scale-normalised
    canonical form for visited sets.  ``scale`` fixes the rational grid
    the encoded cells live on; pass the lcm of every denominator the
    exploration will use up front (:meth:`zero`'s ``scale``) to avoid
    mid-flight rescaling.
    """

    __slots__ = ("n", "scale", "cells")

    def __init__(
        self,
        n: int,
        cells: Optional[array] = None,
        scale: int = 1,
    ):
        if n < 0:
            raise ZoneError("clock count must be nonnegative")
        if scale < 1:
            raise ZoneError("scale must be a positive integer")
        self.n = n
        self.scale = scale
        size = n + 1
        if cells is None:
            self.cells = array("q", [INF_ENC]) * (size * size)
            for i in range(size):
                self.cells[i * size + i] = ZERO_ENC
        else:
            self.cells = cells

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, n: int, scale: int = 1) -> "DBM":
        """All clocks exactly 0 (the initial zone)."""
        size = n + 1
        return cls(n, array("q", [ZERO_ENC]) * (size * size), scale)

    @classmethod
    def universe(cls, n: int, scale: int = 1) -> "DBM":
        """All nonnegative clock valuations."""
        dbm = cls(n, scale=scale)
        for i in range(1, n + 1):
            dbm.cells[i] = ZERO_ENC  # -x_i ≤ 0
        return dbm

    def copy(self) -> "DBM":
        return DBM(self.n, array("q", self.cells), self.scale)

    # ------------------------------------------------------------------
    # Scale management
    # ------------------------------------------------------------------

    def rescale(self, scale: int) -> "DBM":
        """Refine the grid to ``1/scale`` (a multiple of the current
        one) in place; the represented zone is unchanged."""
        if scale == self.scale:
            return self
        if scale % self.scale:
            raise ZoneError(
                "cannot rescale from 1/{} to the non-refining 1/{}".format(
                    self.scale, scale
                )
            )
        factor = scale // self.scale
        cells = self.cells
        for idx, enc in enumerate(cells):
            if enc < INF_ENC:
                cells[idx] = (enc >> 1) * factor * 2 + (enc & 1)
        self.scale = scale
        return self

    def _admit(self, bound: Bound) -> int:
        """Encode ``bound`` on this matrix's grid, refining the grid
        first when the bound's denominator demands it."""
        value = bound[0]
        den = _denominator(value)
        if self.scale % den:
            self.rescale(_lcm(self.scale, den))
        return encode_bound(bound, self.scale)

    # ------------------------------------------------------------------
    # Canonical form and emptiness
    # ------------------------------------------------------------------

    def canonicalize(self) -> "DBM":
        """Floyd–Warshall tightening; call after manual cell edits.

        Uses the numpy fast path when numpy is importable and the
        matrix is big enough to amortise the conversion; the two paths
        are byte-identical (exact int64 arithmetic in both).
        """
        size = self.n + 1
        if _np is not None and size >= 6:
            return self._canonicalize_np()
        cells = self.cells
        inf = INF_ENC
        for k in range(size):
            krow = k * size
            for i in range(size):
                ik = cells[i * size + k]
                if ik >= inf:
                    continue
                irow = i * size
                for j in range(size):
                    kj = cells[krow + j]
                    if kj >= inf:
                        continue
                    cand = ik + kj - ((ik | kj) & 1)
                    if cand < cells[irow + j]:
                        cells[irow + j] = cand
        return self

    def _canonicalize_np(self) -> "DBM":  # pragma: no cover - numpy-only
        size = self.n + 1
        arr = _np.frombuffer(self.cells.tobytes(), dtype=_np.int64).reshape(
            size, size
        ).copy()
        inf = INF_ENC
        for k in range(size):
            col = arr[:, k].reshape(size, 1)
            row = arr[k, :].reshape(1, size)
            finite = (col < inf) & (row < inf)
            cand = _np.full((size, size), inf, dtype=_np.int64)
            _np.add(
                _np.broadcast_to(col, (size, size)),
                _np.broadcast_to(row, (size, size)),
                out=cand,
                where=finite,
            )
            _np.subtract(
                cand,
                (col | row) & 1,
                out=cand,
                where=finite,
            )
            _np.minimum(arr, cand, out=arr)
        fresh = array("q")
        fresh.frombytes(arr.tobytes())
        self.cells = fresh
        return self

    def is_empty(self) -> bool:
        """True when the zone has no solutions (negative self-loop)."""
        cells = self.cells
        step = self.n + 2  # diagonal stride in the flat layout
        for idx in range(0, len(cells), step):
            if cells[idx] < ZERO_ENC:
                return True
        return False

    # ------------------------------------------------------------------
    # Operations (assume canonical input, preserve canonical form)
    # ------------------------------------------------------------------

    def constrain(self, i: int, j: int, bound: Bound) -> "DBM":
        """Intersect with ``x_i − x_j ≤/< value``.

        Canonical form is restored *incrementally*: lowering one edge of
        a canonical matrix only opens paths through that edge, so the
        O(n²) sweep ``m[p][q] = min(m[p][q], m[p][i] + b + m[j][q])``
        re-tightens everything — no full Floyd–Warshall.
        """
        enc = self._admit(bound)
        size = self.n + 1
        cells = self.cells
        if enc >= cells[i * size + j]:
            return self
        cells[i * size + j] = enc
        inf = INF_ENC
        jrow = j * size
        for p in range(size):
            pi = cells[p * size + i]
            if pi >= inf:
                continue
            head = pi + enc - ((pi | enc) & 1)
            prow = p * size
            for q in range(size):
                jq = cells[jrow + q]
                if jq >= inf:
                    continue
                cand = head + jq - ((head | jq) & 1)
                if cand < cells[prow + q]:
                    cells[prow + q] = cand
        return self

    def up(self) -> "DBM":
        """Delay: let time elapse (drop the upper bounds of all clocks).
        Preserves canonical form."""
        size = self.n + 1
        cells = self.cells
        for i in range(size, size * size, size):
            cells[i] = INF_ENC
        return self

    def reset(self, clock: int) -> "DBM":
        """``x_clock := 0``.  Preserves canonical form."""
        if not (1 <= clock <= self.n):
            raise ZoneError("clock index {} out of range".format(clock))
        return self.reset_many((clock,))

    def reset_many(self, clocks: Iterable[int]) -> "DBM":
        """Batch reset: ``x_c := 0`` for every ``c`` in ``clocks``.

        Equivalent to sequential :meth:`reset` calls but touches each
        row/column once — the successor-construction hot path resets
        several clocks per transition (the fired class, re-enabled
        classes, pinned trivial classes, observers).
        """
        size = self.n + 1
        cells = self.cells
        clocks = tuple(clocks)
        for c in clocks:
            if not (1 <= c <= self.n):
                raise ZoneError("clock index {} out of range".format(c))
        # Columns first: m[j][c] = m[j][0]; with j = 0 this zeroes
        # m[0][c], so the row copies below land the zero cross-terms.
        for base in range(0, size * size, size):
            col0 = cells[base]
            for c in clocks:
                cells[base + c] = col0
        row0 = cells[0:size]
        for c in clocks:
            crow = c * size
            cells[crow : crow + size] = row0
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def clock_bounds(self, clock: int) -> Tuple[Bound, Bound]:
        """``(lower, upper)`` bounds of one clock.

        The lower bound is returned as a bound on ``x``, i.e.
        ``(v, flag)`` meaning ``x ≥ v`` (``>`` when flag is −1),
        derived from the stored bound on ``−x``.
        """
        size = self.n + 1
        neg = self.cells[clock]  # row 0: -x ≤ v
        if neg >= INF_ENC:
            lower: Bound = (-math.inf, 0)
        else:
            lower = (Fraction(-(neg >> 1), self.scale), 0 if neg & 1 else -1)
        return lower, decode_bound(self.cells[clock * size], self.scale)

    def difference_bounds(self, i: int, j: int) -> Tuple[Bound, Bound]:
        """``(lower, upper)`` bounds of ``x_i − x_j`` (lower as a
        ≥-style bound, as in :meth:`clock_bounds`)."""
        size = self.n + 1
        neg = self.cells[j * size + i]
        if neg >= INF_ENC:
            lower: Bound = (-math.inf, 0)
        else:
            lower = (Fraction(-(neg >> 1), self.scale), 0 if neg & 1 else -1)
        return lower, decode_bound(self.cells[i * size + j], self.scale)

    def contains_point(self, values: Sequence) -> bool:
        """True when the valuation (``values[i]`` = value of clock
        ``i+1``) satisfies every constraint — used by property tests."""
        if len(values) != self.n:
            raise ZoneError("expected {} clock values".format(self.n))
        size = self.n + 1
        scale = self.scale
        vals = [Fraction(0)] + [Fraction(v) for v in values]
        for i in range(size):
            for j in range(size):
                enc = self.cells[i * size + j]
                if enc >= INF_ENC:
                    continue
                diff = (vals[i] - vals[j]) * scale
                bound = enc >> 1
                if enc & 1:
                    if diff > bound:
                        return False
                elif diff >= bound:
                    return False
        return True

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def m(self) -> List[List[Bound]]:
        """The matrix decoded to nested ``(value, flag)`` rows — a
        debugging/compatibility *view*; writes to it do not land in the
        flat storage."""
        size = self.n + 1
        scale = self.scale
        return [
            [
                decode_bound(self.cells[i * size + j], scale)
                for j in range(size)
            ]
            for i in range(size)
        ]

    def key(self) -> Tuple[int, int, bytes]:
        """Hashable canonical form, normalised across scales: the grid
        is reduced by the gcd of the scale and every finite cell value,
        so equal zones key equal regardless of construction history."""
        scale = self.scale
        cells = self.cells
        if scale != 1:
            g = scale
            for enc in cells:
                if enc < INF_ENC:
                    g = math.gcd(g, enc >> 1)
                    if g == 1:
                        break
            if g > 1:
                reduced = array("q", cells)
                for idx, enc in enumerate(reduced):
                    if enc < INF_ENC:
                        reduced[idx] = ((enc >> 1) // g) * 2 + (enc & 1)
                return (self.n, scale // g, reduced.tobytes())
        return (self.n, scale, cells.tobytes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DBM):
            return NotImplemented
        if self.n != other.n:
            return False
        if self.scale == other.scale:
            return self.cells == other.cells
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        rows = []
        size = self.n + 1
        for i in range(size):
            parts = []
            for j in range(size):
                value, flag = decode_bound(self.cells[i * size + j], self.scale)
                op = "<" if flag == -1 else "<="
                parts.append("x{}-x{}{}{}".format(i, j, op, value))
            rows.append("  " + ", ".join(parts))
        return "DBM(\n{}\n)".format("\n".join(rows))
