"""Exact verification of event-to-event timing conditions.

Bridges the paper's timing conditions to the zone engine: for a
condition of the ``after_action`` shape (trigger action → next target
action within ``[b_l, b_u]``, no disabling set), the exact reachable
separation bounds decide the claim outright:

- **verified, tight** — the claim holds and both ends are attained;
- **verified, slack** — the claim holds with room to spare (a stronger
  claim is provable);
- **refuted** — some execution violates the claim, and the verdict
  carries the offending exact bound.

This gives the library a UPPAAL-flavoured push-button check alongside
the paper's mapping method; the two are compared in experiment E10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Hashable, Optional

from repro.errors import ZoneError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults uses zones)
    from repro.faults.budget import Budget
from repro.timed.boundmap import TimedAutomaton
from repro.timed.interval import Interval
from repro.zones.analysis import SeparationBounds, event_separation_bounds

__all__ = ["Verdict", "ConditionReport", "verify_event_condition"]


class Verdict(Enum):
    """Outcome of an exact condition check."""

    VERIFIED_TIGHT = "verified (tight)"
    VERIFIED_SLACK = "verified (claim has slack)"
    REFUTED_LOWER = "refuted (target can occur earlier than claimed)"
    REFUTED_UPPER = "refuted (target can occur later than claimed)"
    VACUOUS = "vacuous (the trigger/target pair is unreachable)"

    @property
    def holds(self) -> bool:
        return self in (Verdict.VERIFIED_TIGHT, Verdict.VERIFIED_SLACK, Verdict.VACUOUS)


@dataclass(frozen=True)
class ConditionReport:
    """The verdict plus the exact separation evidence.

    ``exhausted_budget`` qualifies a VERIFIED verdict as partial (the
    evidence covers only the explored portion); REFUTED verdicts stand
    regardless — the offending firing was actually reached.
    """

    verdict: Verdict
    claimed: Interval
    exact: Optional[SeparationBounds]
    exhausted_budget: bool = False

    def __bool__(self) -> bool:
        return self.verdict.holds

    def __repr__(self) -> str:
        return "ConditionReport({}, claimed={!r}, exact={!r})".format(
            self.verdict.value, self.claimed, self.exact
        )


def verify_event_condition(
    timed: TimedAutomaton,
    trigger: Hashable,
    target: Hashable,
    claimed: Interval,
    occurrences: int = 1,
    max_nodes: int = 200_000,
    budget: Optional["Budget"] = None,
) -> ConditionReport:
    """Exactly decide "after every ``trigger``, the next ``target``
    occurs within ``claimed``" for the first ``occurrences`` trigger
    firings.

    Uses one observer clock reset on ``trigger``; the target's
    separation bounds at each occurrence are compared against the
    claimed interval.  Systems whose trigger can re-fire before the
    target (overlapping measurements) are supported — the observer
    restart matches Definition 2.2's per-trigger semantics because the
    retriggered window is the binding one.
    """
    worst: Optional[SeparationBounds] = None
    # When the trigger and target coincide, the target's first firing
    # has no preceding trigger — Definition 2.2 leaves it unconstrained —
    # so measurement starts at the second occurrence.
    first = 2 if trigger == target else 1
    partial = False
    for occurrence in range(first, first + occurrences):
        try:
            bounds = event_separation_bounds(
                timed,
                target,
                occurrence=occurrence,
                reset_on=[trigger],
                max_nodes=max_nodes,
                budget=budget,
            )
        except ZoneError:
            if budget is not None and budget.exhausted:
                # Graceful degradation: nothing measured at this
                # occurrence; report what earlier occurrences gave.
                partial = True
                break
            if occurrence == first:
                return ConditionReport(Verdict.VACUOUS, claimed, None)
            break
        partial = partial or bounds.exhausted_budget
        worst = _merge(worst, bounds)
    if worst is None:
        return ConditionReport(Verdict.VACUOUS, claimed, None, exhausted_budget=partial)
    if worst.lo < claimed.lo:
        return ConditionReport(Verdict.REFUTED_LOWER, claimed, worst, exhausted_budget=partial)
    hi_infinite = isinstance(worst.hi, float) and math.isinf(worst.hi)
    claimed_infinite = math.isinf(claimed.hi)
    if hi_infinite and not claimed_infinite:
        return ConditionReport(Verdict.REFUTED_UPPER, claimed, worst, exhausted_budget=partial)
    if not hi_infinite and not claimed_infinite and worst.hi > claimed.hi:
        return ConditionReport(Verdict.REFUTED_UPPER, claimed, worst, exhausted_budget=partial)
    if worst.tight(claimed):
        return ConditionReport(Verdict.VERIFIED_TIGHT, claimed, worst, exhausted_budget=partial)
    return ConditionReport(Verdict.VERIFIED_SLACK, claimed, worst, exhausted_budget=partial)


def _merge(
    accumulated: Optional[SeparationBounds], bounds: SeparationBounds
) -> SeparationBounds:
    if accumulated is None:
        return bounds
    # Min of lower ends / max of upper ends; an end attained (non-strict)
    # by either operand is attained by the union.
    if bounds.lo < accumulated.lo:
        lo, lo_strict = bounds.lo, bounds.lo_strict
    elif bounds.lo > accumulated.lo:
        lo, lo_strict = accumulated.lo, accumulated.lo_strict
    else:
        lo, lo_strict = accumulated.lo, accumulated.lo_strict and bounds.lo_strict
    if bounds.hi > accumulated.hi:
        hi, hi_strict = bounds.hi, bounds.hi_strict
    elif bounds.hi < accumulated.hi:
        hi, hi_strict = accumulated.hi, accumulated.hi_strict
    else:
        hi, hi_strict = accumulated.hi, accumulated.hi_strict and bounds.hi_strict
    return SeparationBounds(
        lo=lo,
        hi=hi,
        lo_strict=bool(lo_strict),
        hi_strict=bool(hi_strict),
        nodes=accumulated.nodes + bounds.nodes,
        transitions=accumulated.transitions + bounds.transitions,
        exhausted_budget=accumulated.exhausted_budget or bounds.exhausted_budget,
    )
