"""Exact event-separation bounds via zone reachability.

Answers the questions the paper's theorems pose — "over *all* timed
executions, how early/late can the ``m``-th occurrence of this event
come, measured from that other event?" — exactly, by reading observer
clock bounds off the zone at fire time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, Optional, Tuple

from repro.errors import ZoneError
from repro.obs import instrument as _telemetry
from repro.timed.boundmap import TimedAutomaton
from repro.timed.interval import Interval
from repro.zones.zone_graph import Observer, ZoneGraphResult, explore_zone_graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults uses zones)
    from repro.faults.budget import Budget

__all__ = [
    "SeparationBounds",
    "event_separation_bounds",
    "absolute_event_bounds",
    "find_reachable_state",
    "SafetySearchResult",
    "search_reachable_state",
]


@dataclass(frozen=True)
class SeparationBounds:
    """Exact reachable bounds of an event-separation time.

    ``lo``/``hi`` are the extreme values over every timed execution;
    ``lo_strict``/``hi_strict`` record whether the extreme is attained
    (False) or only approached (True).  ``hi`` may be ``inf``.

    ``exhausted_budget`` marks *partial* bounds: the zone exploration
    was cut short by a :class:`~repro.faults.budget.Budget`, so the
    bounds cover only the firings found — still sound evidence for
    refutation (any firing outside a claim refutes it) but not for
    verification.
    """

    lo: object
    hi: object
    lo_strict: bool
    hi_strict: bool
    nodes: int
    transitions: int
    exhausted_budget: bool = False

    def within(self, interval: Interval) -> bool:
        """True when every reachable separation lies inside ``interval``
        (the paper's claimed bound is *sound*)."""
        if self.lo < interval.lo:
            return False
        if isinstance(self.hi, float) and math.isinf(self.hi):
            return math.isinf(interval.hi)
        return self.hi <= interval.hi

    def tight(self, interval: Interval) -> bool:
        """True when the claimed bound is also *attained* at both ends
        (the paper's interval is exact, not just sound)."""
        return (
            self.within(interval)
            and self.lo == interval.lo
            and not self.lo_strict
            and (
                self.hi == interval.hi
                or (math.isinf(interval.hi) and isinstance(self.hi, float) and math.isinf(self.hi))
            )
            and not self.hi_strict
        )

    def __repr__(self) -> str:
        from repro.timed.interval import _render

        lo_bracket = "(" if self.lo_strict else "["
        hi_bracket = ")" if self.hi_strict else "]"
        return "SeparationBounds{}{}, {}{}".format(
            lo_bracket, _render(self.lo), _render(self.hi), hi_bracket
        )


def event_separation_bounds(
    timed: TimedAutomaton,
    measure: Hashable,
    occurrence: int = 1,
    reset_on: Iterable[Hashable] = (),
    max_nodes: int = 100_000,
    budget: Optional["Budget"] = None,
) -> SeparationBounds:
    """Exact bounds of the time at which ``measure`` fires for the
    ``occurrence``-th time, measured by an observer clock reset on each
    action in ``reset_on`` (empty: absolute time since the start).

    Without a ``budget``, truncation raises :class:`ZoneError` as
    before.  With one, budget exhaustion degrades gracefully: if any
    firing was recorded, the partial bounds are returned flagged
    ``exhausted_budget``; only when *nothing* was measured does the
    call raise.
    """
    if occurrence < 1:
        raise ZoneError("occurrence is 1-based")
    observer = Observer("obs", frozenset(reset_on))
    if isinstance(measure, (set, frozenset, list, tuple)):
        # A group: the occurrence-th firing of *any* member action.
        key = "group"
        counted_kwargs = {
            "counted_groups": {key: (frozenset(measure), occurrence)}
        }
    else:
        key = measure
        counted_kwargs = {"counted_actions": {measure: occurrence}}
    _telemetry.incr("zones.queries")
    with _telemetry.span("zones.query"):
        result = explore_zone_graph(
            timed,
            observers=[observer],
            max_nodes=max_nodes,
            budget=budget,
            **counted_kwargs,
        )
    record = result.firings.get((key, occurrence))
    if result.truncated and not (result.exhausted_budget and record is not None):
        raise ZoneError(
            "zone exploration truncated at {} nodes{}".format(
                result.nodes,
                " (budget exhausted before any firing)"
                if result.exhausted_budget
                else "; raise max_nodes",
            )
        )
    if record is None:
        raise ZoneError(
            "action {!r} never reaches occurrence {} in any execution".format(
                measure, occurrence
            )
        )
    (lo_value, lo_flag) = record.lower["obs"]
    (hi_value, hi_flag) = record.upper["obs"]
    return SeparationBounds(
        lo=lo_value,
        hi=hi_value,
        lo_strict=(lo_flag == -1),
        hi_strict=(hi_flag == -1),
        nodes=result.nodes,
        transitions=result.transitions,
        exhausted_budget=result.exhausted_budget,
    )


@dataclass(frozen=True)
class SafetySearchResult:
    """Outcome of a budget-guarded timed safety search.

    ``state`` is a reachable bad state (None when none was found);
    ``exhausted_budget``/``truncated`` qualify a ``None``: the absence
    proof is complete only when both are False.
    """

    state: Optional[Hashable]
    nodes: int
    truncated: bool
    exhausted_budget: bool

    @property
    def conclusive(self) -> bool:
        """A found state is always conclusive; a clean sweep is
        conclusive only if nothing cut the search short."""
        return self.state is not None or not self.truncated

    def __bool__(self) -> bool:
        """True when a bad state was found."""
        return self.state is not None


def search_reachable_state(
    timed: TimedAutomaton,
    predicate,
    max_nodes: int = 200_000,
    budget: Optional["Budget"] = None,
) -> SafetySearchResult:
    """Budget-guarded variant of :func:`find_reachable_state`: never
    raises on truncation, returning a :class:`SafetySearchResult` whose
    ``conclusive`` property distinguishes "proved unreachable" from
    "ran out of budget"."""
    _telemetry.incr("zones.queries")
    with _telemetry.span("zones.query"):
        result = explore_zone_graph(
            timed,
            watch=predicate,
            stop_on_watch=True,
            max_nodes=max_nodes,
            budget=budget,
        )
    return SafetySearchResult(
        state=result.watched[0] if result.watched else None,
        nodes=result.nodes,
        truncated=result.truncated,
        exhausted_budget=result.exhausted_budget,
    )


def find_reachable_state(
    timed: TimedAutomaton,
    predicate,
    max_nodes: int = 200_000,
) -> Optional[Hashable]:
    """Exact timed safety check: the first reachable ``A``-state
    satisfying ``predicate`` (under the *timed* semantics — states that
    are only untimed-reachable do not count), or None when no such state
    is reachable.

    This is how timing-dependent safety properties like Fischer-style
    mutual exclusion are decided: unreachability of the bad states under
    one timing discipline, reachability under another.
    """
    result = search_reachable_state(timed, predicate, max_nodes=max_nodes)
    if result.state is not None:
        return result.state
    if result.truncated:
        raise ZoneError(
            "safety check inconclusive: truncated at {} nodes".format(result.nodes)
        )
    return None


def absolute_event_bounds(
    timed: TimedAutomaton,
    measure: Hashable,
    occurrence: int = 1,
    max_nodes: int = 100_000,
    budget: Optional["Budget"] = None,
) -> SeparationBounds:
    """Exact bounds of the absolute time of an event's ``occurrence``-th
    firing (observer never reset)."""
    return event_separation_bounds(
        timed,
        measure,
        occurrence=occurrence,
        reset_on=(),
        max_nodes=max_nodes,
        budget=budget,
    )
