"""The original object-based DBM, kept as the differential oracle.

This is the pure-python ``(Fraction, flag)``-tuple implementation the
zone engine shipped with before the flat-matrix rewrite
(:mod:`repro.zones.dbm`).  It is deliberately *not* optimised: its job
is to be obviously correct and structurally independent of the flat
engine, so the ``zone_equivalence`` differential suite can replay every
exploration through both and assert byte-identical verdicts, state
counts, and firing records.

Bound helpers (:data:`~repro.zones.dbm.INF_BOUND`, :func:`le_bound`,
:func:`bound_add`, …) are shared with the flat engine — both speak the
same external ``(value, flag)`` vocabulary; only the storage differs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ZoneError
from repro.zones.dbm import (
    Bound,
    INF_BOUND,
    ZERO_BOUND,
    bound_add,
)

__all__ = ["ReferenceDBM"]


class ReferenceDBM:
    """A difference bound matrix stored as nested lists of Bound tuples.

    The matrix is kept canonical (all-pairs tightest) by the mutating
    operations; :meth:`key` yields a hashable canonical form for visited
    sets.  Interface-compatible with the flat :class:`repro.zones.dbm.DBM`
    wherever the zone graph touches it.
    """

    __slots__ = ("n", "m")

    def __init__(self, n: int, matrix: Optional[List[List[Bound]]] = None):
        if n < 0:
            raise ZoneError("clock count must be nonnegative")
        self.n = n
        size = n + 1
        if matrix is None:
            self.m = [[INF_BOUND] * size for _ in range(size)]
            for i in range(size):
                self.m[i][i] = ZERO_BOUND
        else:
            self.m = matrix

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, n: int) -> "ReferenceDBM":
        """All clocks exactly 0 (the initial zone)."""
        size = n + 1
        matrix = [[ZERO_BOUND] * size for _ in range(size)]
        return cls(n, matrix)

    @classmethod
    def universe(cls, n: int) -> "ReferenceDBM":
        """All nonnegative clock valuations."""
        dbm = cls(n)
        for i in range(1, n + 1):
            dbm.m[0][i] = ZERO_BOUND  # -x_i ≤ 0
        return dbm

    def copy(self) -> "ReferenceDBM":
        return ReferenceDBM(self.n, [row[:] for row in self.m])

    # ------------------------------------------------------------------
    # Canonical form and emptiness
    # ------------------------------------------------------------------

    def canonicalize(self) -> "ReferenceDBM":
        """Floyd–Warshall tightening; call after manual constraints."""
        size = self.n + 1
        m = self.m
        for k in range(size):
            row_k = m[k]
            for i in range(size):
                ik = m[i][k]
                if ik == INF_BOUND:
                    continue
                row_i = m[i]
                for j in range(size):
                    candidate = bound_add(ik, row_k[j])
                    if candidate < row_i[j]:
                        row_i[j] = candidate
        return self

    def is_empty(self) -> bool:
        """True when the zone has no solutions (negative self-loop)."""
        for i in range(self.n + 1):
            if self.m[i][i] < ZERO_BOUND:
                return True
        return False

    # ------------------------------------------------------------------
    # Operations (assume canonical input, preserve canonical form)
    # ------------------------------------------------------------------

    def constrain(self, i: int, j: int, bound: Bound) -> "ReferenceDBM":
        """Intersect with ``x_i − x_j ≤/< value``; re-canonicalises."""
        if bound < self.m[i][j]:
            self.m[i][j] = bound
            self.canonicalize()
        return self

    def up(self) -> "ReferenceDBM":
        """Delay: let time elapse (drop the upper bounds of all clocks).
        Preserves canonical form."""
        for i in range(1, self.n + 1):
            self.m[i][0] = INF_BOUND
        return self

    def reset(self, clock: int) -> "ReferenceDBM":
        """``x_clock := 0``.  Preserves canonical form."""
        if not (1 <= clock <= self.n):
            raise ZoneError("clock index {} out of range".format(clock))
        for j in range(self.n + 1):
            if j == clock:
                continue
            self.m[clock][j] = self.m[0][j]
            self.m[j][clock] = self.m[j][0]
        self.m[clock][clock] = ZERO_BOUND
        self.m[clock][0] = ZERO_BOUND
        self.m[0][clock] = ZERO_BOUND
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def clock_bounds(self, clock: int) -> Tuple[Bound, Bound]:
        """``(lower, upper)`` bounds of one clock (lower as a ≥-style
        bound derived from the stored bound on ``−x``)."""
        neg = self.m[0][clock]  # -x ≤ v
        if neg == INF_BOUND:
            lower: Bound = (-math.inf, 0)
        else:
            lower = (-neg[0], neg[1])
        return lower, self.m[clock][0]

    def difference_bounds(self, i: int, j: int) -> Tuple[Bound, Bound]:
        """``(lower, upper)`` bounds of ``x_i − x_j``."""
        neg = self.m[j][i]
        if neg == INF_BOUND:
            lower: Bound = (-math.inf, 0)
        else:
            lower = (-neg[0], neg[1])
        return lower, self.m[i][j]

    def contains_point(self, values: Sequence) -> bool:
        """True when the valuation satisfies every constraint."""
        from fractions import Fraction

        if len(values) != self.n:
            raise ZoneError("expected {} clock values".format(self.n))
        vals = [Fraction(0)] + [Fraction(v) for v in values]
        for i in range(self.n + 1):
            for j in range(self.n + 1):
                value, flag = self.m[i][j]
                if value is math.inf or (isinstance(value, float) and math.isinf(value)):
                    continue
                diff = vals[i] - vals[j]
                if flag == 0:
                    if diff > value:
                        return False
                elif diff >= value:
                    return False
        return True

    def key(self) -> Tuple:
        """Hashable canonical form."""
        return tuple(tuple(row) for row in self.m)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ReferenceDBM)
            and self.n == other.n
            and self.m == other.m
        )

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        rows = []
        for i in range(self.n + 1):
            cells = []
            for j in range(self.n + 1):
                value, flag = self.m[i][j]
                op = "<" if flag == -1 else "<="
                cells.append("x{}-x{}{}{}".format(i, j, op, value))
            rows.append("  " + ", ".join(cells))
        return "ReferenceDBM(\n{}\n)".format("\n".join(rows))
