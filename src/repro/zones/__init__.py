"""Zone-based exact timing analysis: DBMs, the MMT zone graph, and
event-separation bound queries."""

from repro.zones.analysis import (
    SafetySearchResult,
    SeparationBounds,
    absolute_event_bounds,
    event_separation_bounds,
    find_reachable_state,
    search_reachable_state,
)
from repro.zones.dbm import (
    Bound,
    DBM,
    INF_BOUND,
    ZERO_BOUND,
    bound_add,
    decode_bound,
    encode_bound,
    le_bound,
    lt_bound,
)
from repro.zones.dbm_reference import ReferenceDBM
from repro.zones.verify import ConditionReport, Verdict, verify_event_condition
from repro.zones.zone_graph import (
    FiringRecord,
    Observer,
    ZoneGraphResult,
    explore_zone_graph,
)

__all__ = [
    "DBM",
    "ReferenceDBM",
    "Bound",
    "INF_BOUND",
    "ZERO_BOUND",
    "le_bound",
    "lt_bound",
    "bound_add",
    "encode_bound",
    "decode_bound",
    "Observer",
    "FiringRecord",
    "ZoneGraphResult",
    "explore_zone_graph",
    "SeparationBounds",
    "event_separation_bounds",
    "absolute_event_bounds",
    "find_reachable_state",
    "SafetySearchResult",
    "search_reachable_state",
    "Verdict",
    "ConditionReport",
    "verify_event_condition",
]
