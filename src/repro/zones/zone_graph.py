"""Symbolic (zone-graph) reachability for MMT timed automata.

Encodes a :class:`~repro.timed.boundmap.TimedAutomaton` as a timed
safety automaton with one clock per partition class:

- **invariant** — for every class ``C`` enabled in the current state
  with a finite ``b_u(C)``: ``x_C ≤ b_u(C)``;
- **guard** of an action in class ``C`` — ``x_C ≥ b_l(C)``;
- **resets** — the fired class's clock, plus the clock of every class
  that flips from disabled to enabled (MMT bounds restart on
  re-enable); disabled classes' clocks are pinned to 0 so zone keys
  stay canonical.

*Observer* clocks reset on designated actions make event-separation
times directly readable off the zone at fire time, which is how the
exact bounds of the paper's theorems are extracted.

Exploration is exact for the continuous semantics (zones are) and is
kept finite by per-action occurrence limits: once a counted action has
fired its limit, the branch is not expanded further.
"""

from __future__ import annotations

import math
from collections import deque
from fractions import Fraction
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ZoneError
from repro.obs import instrument as _telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults uses zones)
    from repro.faults.budget import Budget
from repro.timed.boundmap import TimedAutomaton
from repro.zones.dbm import Bound, DBM, INF_BOUND, le_bound

__all__ = ["Observer", "FiringRecord", "ZoneGraphResult", "explore_zone_graph"]


def _scale_hint(intervals) -> int:
    """The lcm of every denominator the exploration's constraints will
    use — pre-sizing the flat DBM's rational grid once up front means
    no matrix ever rescales mid-flight."""
    scale = 1
    for interval in intervals:
        for value in (interval.lo, interval.hi):
            if isinstance(value, float):
                continue  # ±inf contributes no grid refinement
            den = Fraction(value).denominator
            scale = scale * den // math.gcd(scale, den)
    return scale


@dataclass(frozen=True)
class Observer:
    """An extra clock reset whenever one of ``reset_on`` fires (it also
    starts at 0 at time zero, so with ``reset_on = ()`` it reads
    absolute time)."""

    name: str
    reset_on: FrozenSet[Hashable] = frozenset()


@dataclass
class FiringRecord:
    """Accumulated bounds of every observer at the firings of one
    (counted action or group, occurrence) pair, over all reachable ways
    to fire it."""

    action: Hashable  # the counted key: an action, or a group name
    occurrence: int
    lower: Dict[str, Bound] = field(default_factory=dict)
    upper: Dict[str, Bound] = field(default_factory=dict)

    def merge(self, name: str, lower: Bound, upper: Bound) -> None:
        if name not in self.lower or lower < self.lower[name]:
            self.lower[name] = lower
        if name not in self.upper or upper > self.upper[name]:
            self.upper[name] = upper


@dataclass
class ZoneGraphResult:
    """Outcome of a zone-graph exploration."""

    nodes: int
    transitions: int
    truncated: bool
    firings: Dict[Tuple[Hashable, int], FiringRecord]
    #: Reachable A-states matched by the ``watch`` predicate (if given).
    watched: List[Hashable] = field(default_factory=list)
    #: True when a Budget (not max_nodes) stopped the exploration.
    exhausted_budget: bool = False

    def record(self, action: Hashable, occurrence: int) -> FiringRecord:
        key = (action, occurrence)
        if key not in self.firings:
            self.firings[key] = FiringRecord(action, occurrence)
        return self.firings[key]


def explore_zone_graph(
    timed: TimedAutomaton,
    observers: Sequence[Observer] = (),
    counted_actions: Optional[Dict[Hashable, int]] = None,
    counted_groups: Optional[Dict[str, Tuple[FrozenSet[Hashable], int]]] = None,
    max_nodes: int = 100_000,
    watch=None,
    stop_on_watch: bool = False,
    budget: Optional["Budget"] = None,
    dbm_cls=DBM,
) -> ZoneGraphResult:
    """Forward zone reachability of ``(A, b)``.

    A ``budget`` caps nodes (as states), fired transitions (as steps)
    and wall time; exhaustion returns the partial result with both
    ``truncated`` and ``exhausted_budget`` set, never raising — firing
    records accumulated so far remain valid lower/upper evidence.

    ``counted_actions`` maps actions to occurrence limits; exploration
    stops along a branch once any counted action reaches its limit, and
    firing bounds are recorded per occurrence up to the limit.
    ``counted_groups`` does the same for *sets* of actions counted
    jointly (``{"ENTER": ({ENTER(1), ENTER(2)}, 1)}`` measures the
    first time *anyone* enters); group firings are recorded under the
    group name.  All actions of the automaton must be locally
    controlled (analyse closed systems).

    ``watch`` is an optional predicate over ``A``-states: every
    reachable matching state is collected into ``result.watched``
    (deduplicated), enabling exact timed safety checks — e.g. "no state
    with two processes critical is reachable".  With ``stop_on_watch``
    the search returns at the first match.

    ``dbm_cls`` selects the zone substrate: the flat encoded-integer
    :class:`~repro.zones.dbm.DBM` (default) or the object-based
    :class:`~repro.zones.dbm_reference.ReferenceDBM` oracle — the
    ``zone_equivalence`` differential suite runs both and asserts
    identical results.
    """
    automaton = timed.automaton
    partition = automaton.partition
    # Unify single-action counters and group counters: each counter is
    # (key, member actions, limit); an action belongs to at most one.
    counters: List[Tuple[Hashable, FrozenSet[Hashable], int]] = []
    for action, limit in sorted((counted_actions or {}).items(), key=lambda kv: repr(kv[0])):
        counters.append((action, frozenset([action]), limit))
    for name, (members, limit) in sorted((counted_groups or {}).items()):
        counters.append((name, frozenset(members), limit))
    counter_of_action: Dict[Hashable, int] = {}
    for index, (_key, members, _limit) in enumerate(counters):
        for member in members:
            if member in counter_of_action:
                raise ZoneError(
                    "action {!r} is counted by more than one counter".format(member)
                )
            counter_of_action[member] = index
    if automaton.signature.inputs:
        raise ZoneError(
            "zone analysis needs a closed system; {} still has inputs {!r}".format(
                automaton.name, sorted(map(repr, automaton.signature.inputs))
            )
        )

    classes = list(partition.classes)
    class_index = {cls.name: i + 1 for i, cls in enumerate(classes)}
    # A class with the trivial bound [0, ∞] contributes no guard and no
    # invariant, so its clock is semantically irrelevant; pinning it to 0
    # at every transition keeps the zone graph finite.
    trivial = {
        cls.name
        for cls in classes
        if timed.class_interval(cls).is_trivial
    }
    observer_index = {
        obs.name: len(classes) + 1 + i for i, obs in enumerate(observers)
    }
    total_clocks = len(classes) + len(observers)

    starts = list(automaton.start_states())
    if len(starts) != 1:
        raise ZoneError("zone analysis expects a unique start state")
    start_astate = starts[0]

    # Hot-path precomputation: class intervals are fixed for the whole
    # exploration, and A-states recur across many zone nodes — memoising
    # per-A-state enabledness avoids re-deriving it for every
    # (node, action, successor) triple.
    upper_bounds: List[Optional[Bound]] = []
    lower_bounds: Dict[str, object] = {}
    for cls in classes:
        interval = timed.class_interval(cls)
        upper = interval.hi
        upper_bounds.append(
            None if isinstance(upper, float) and math.isinf(upper) else le_bound(upper)
        )
        lower_bounds[cls.name] = interval.lo
    enabled_memo: Dict[Hashable, Tuple[bool, ...]] = {}

    def enabled_classes(astate) -> Tuple[bool, ...]:
        cached = enabled_memo.get(astate)
        if cached is None:
            cached = tuple(automaton.class_enabled(astate, cls) for cls in classes)
            enabled_memo[astate] = cached
        return cached

    def apply_invariant(zone: DBM, enabled: Tuple[bool, ...]) -> DBM:
        for i, cls in enumerate(classes):
            if not enabled[i]:
                continue
            upper = upper_bounds[i]
            if upper is None:
                continue
            zone.constrain(class_index[cls.name], 0, upper)
        return zone

    result = ZoneGraphResult(nodes=0, transitions=0, truncated=False, firings={})
    if dbm_cls is DBM:
        # Flat engine: fix the rational grid once so no successor ever
        # pays a mid-flight rescale.
        initial_zone = DBM.zero(
            total_clocks,
            _scale_hint(timed.class_interval(cls) for cls in classes),
        )
    else:
        initial_zone = dbm_cls.zero(total_clocks)
    batch_reset = hasattr(initial_zone, "reset_many")
    zero_counts = tuple(0 for _ in counters)

    watched_seen = set()

    def note_watch(astate) -> bool:
        """Record a watched state; True when the search should stop."""
        if watch is None or not watch(astate):
            return False
        if astate not in watched_seen:
            watched_seen.add(astate)
            result.watched.append(astate)
        return stop_on_watch

    rec = _telemetry._ACTIVE
    visited = set()
    # Canonical zone keys are interned: zone-graph nodes that share a
    # zone share one key object, so the visited set dedupes by identity
    # and repeated keys cost no extra memory.
    interned: Dict[Hashable, Hashable] = {}
    frontier: deque = deque()
    if rec is not None:
        rec.incr("zones.canonicalize")
    start_key = (start_astate, zero_counts, initial_zone.key())
    if budget is not None and not budget.charge_state():
        result.truncated = True
        result.exhausted_budget = True
        return result
    visited.add(start_key)
    frontier.append((start_astate, zero_counts, initial_zone))
    result.nodes = 1
    if rec is not None:
        rec.incr("zones.nodes")
    if note_watch(start_astate):
        return result

    while frontier:
        if budget is not None and not budget.ok():
            result.truncated = True
            result.exhausted_budget = True
            return result
        if rec is not None:
            rec.gauge("zones.frontier", len(frontier))
        astate, counts, zone = frontier.popleft()
        pre_enabled = enabled_classes(astate)
        for action in automaton.enabled_actions(astate):
            cls = partition.class_of(action)
            if cls is None:
                raise ZoneError(
                    "action {!r} has no partition class (open system?)".format(action)
                )
            fire_zone = apply_invariant(zone.copy().up(), pre_enabled)
            lower = lower_bounds[cls.name]
            if lower > 0:
                # x_0 − x_C ≤ −b_l(C)  ⇔  x_C ≥ b_l(C)
                fire_zone.constrain(0, class_index[cls.name], le_bound(-lower))
            if fire_zone.is_empty():
                continue
            if budget is not None and not budget.charge_step():
                result.truncated = True
                result.exhausted_budget = True
                return result
            result.transitions += 1
            if rec is not None:
                rec.incr("zones.transitions")

            # Occurrence bookkeeping and observer measurement at fire time.
            new_counts = counts
            occurrence = None
            counter_index = counter_of_action.get(action)
            if counter_index is not None:
                key, _members, limit = counters[counter_index]
                occurrence = counts[counter_index] + 1
                if occurrence > limit:
                    continue  # beyond the horizon of interest
                new_counts = (
                    counts[:counter_index]
                    + (occurrence,)
                    + counts[counter_index + 1 :]
                )
                record = result.record(key, occurrence)
                for obs in observers:
                    lo, hi = fire_zone.clock_bounds(observer_index[obs.name])
                    record.merge(obs.name, lo, hi)

            if occurrence is not None and occurrence >= counters[counter_index][2]:
                continue  # record made; branch horizon reached

            for post_astate in automaton.transitions(astate, action):
                post_enabled = enabled_classes(post_astate)
                # Incremental successor construction: reuse the parent's
                # canonical matrix and touch only the rows/columns of
                # the clocks that actually reset (the fired class,
                # pinned trivial classes, (re-)disabled or re-enabled
                # classes, and triggered observers).
                resets = [class_index[cls.name]]
                for i, other in enumerate(classes):
                    if other.name == cls.name:
                        continue
                    if other.name in trivial:
                        resets.append(class_index[other.name])
                    elif post_enabled[i] and not pre_enabled[i]:
                        resets.append(class_index[other.name])
                    elif not post_enabled[i]:
                        resets.append(class_index[other.name])
                for obs in observers:
                    if action in obs.reset_on:
                        resets.append(observer_index[obs.name])
                post_zone = fire_zone.copy()
                if batch_reset:
                    post_zone.reset_many(resets)
                else:
                    for clock in resets:
                        post_zone.reset(clock)
                if rec is not None:
                    rec.incr("zones.canonicalize")
                zone_key = post_zone.key()
                zone_key = interned.setdefault(zone_key, zone_key)
                key = (post_astate, new_counts, zone_key)
                if key in visited:
                    if rec is not None:
                        rec.incr("zones.cache_hits")
                    continue
                if result.nodes >= max_nodes:
                    result.truncated = True
                    return result
                if budget is not None and not budget.charge_state():
                    result.truncated = True
                    result.exhausted_budget = True
                    return result
                visited.add(key)
                result.nodes += 1
                if rec is not None:
                    rec.incr("zones.nodes")
                if note_watch(post_astate):
                    return result
                frontier.append((post_astate, new_counts, post_zone))
    return result
