"""Random timed-system generation for fuzz-testing the semantics.

Generates small *closed* timed automata — rings of modular counters
with optional cross-cell guards — with random rational boundmaps.  Used
by the property-based test suites to check, over many systems at once,
the invariants the paper's definitions promise: simulated executions
are semi-executions, the two ``time(A, b)`` implementations agree,
projections lift uniquely, and always-enabled classes attain exactly
their bound interval between consecutive firings.

Everything is deterministic in the provided :class:`random.Random`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.ioa.actions import Act, Kind
from repro.ioa.composition import Composition
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.interval import INFINITY, Interval

__all__ = ["INC", "CellSpec", "RandomSystem", "random_system", "system_of_cells"]


def INC(i: int) -> Act:
    """The increment action of cell ``i``."""
    return Act("INC", (i,))


@dataclass(frozen=True)
class CellSpec:
    """One counter cell of a generated system.

    ``guard_on`` is None for an always-enabled cell, or the index of a
    neighbour whose counter parity gates this cell's action.
    """

    index: int
    modulus: int
    interval: Interval
    guard_on: Optional[int]

    @property
    def always_enabled(self) -> bool:
        return self.guard_on is None


@dataclass
class RandomSystem:
    """A generated timed automaton plus its construction recipe."""

    timed: TimedAutomaton
    cells: Tuple[CellSpec, ...]

    def class_name(self, i: int) -> str:
        return "INC_{}".format(i)

    def always_enabled_cells(self) -> List[CellSpec]:
        return [cell for cell in self.cells if cell.always_enabled]

    def describe(self) -> str:
        lines = ["random system with {} cells:".format(len(self.cells))]
        for cell in self.cells:
            guard = (
                "always enabled"
                if cell.guard_on is None
                else "enabled when cell {} is even".format(cell.guard_on)
            )
            lines.append(
                "  cell {}: mod {}, bound {!r}, {}".format(
                    cell.index, cell.modulus, cell.interval, guard
                )
            )
        return "\n".join(lines)


def _random_interval(rng: random.Random, allow_unbounded: bool) -> Interval:
    """A random boundmap interval with small rational endpoints."""
    lo = Fraction(rng.randint(0, 6), rng.choice([1, 2]))
    if allow_unbounded and rng.random() < 0.15:
        return Interval(lo, INFINITY)
    width = Fraction(rng.randint(0, 6), rng.choice([1, 2]))
    hi = lo + width
    if hi == 0:
        hi = Fraction(1, 2)
    return Interval(lo, hi)


def _cell_automaton(cell: CellSpec) -> GuardedAutomaton:
    """One counter cell.

    The cell's own counter is its state; a guarded cell also *listens*
    to its neighbour's INC action to track the neighbour's parity (the
    neighbour's counter value modulo 2 is mirrored in the second state
    component).
    """
    action = INC(cell.index)
    if cell.guard_on is None:
        return GuardedAutomaton(
            name="cell{}".format(cell.index),
            start=[0],
            specs=[
                ActionSpec(
                    action,
                    Kind.OUTPUT,
                    effect=lambda value, m=cell.modulus: (value + 1) % m,
                )
            ],
            partition=Partition.from_pairs([("INC_{}".format(cell.index), [action])]),
        )
    neighbour_action = INC(cell.guard_on)

    def bump_self(state, m=cell.modulus):
        value, neighbour_parity = state
        return ((value + 1) % m, neighbour_parity)

    def bump_neighbour(state):
        value, neighbour_parity = state
        return (value, 1 - neighbour_parity)

    def enabled(state) -> bool:
        _value, neighbour_parity = state
        return neighbour_parity == 0

    return GuardedAutomaton(
        name="cell{}".format(cell.index),
        start=[(0, 0)],
        specs=[
            ActionSpec(action, Kind.OUTPUT, precondition=enabled, effect=bump_self),
            ActionSpec(neighbour_action, Kind.INPUT, effect=bump_neighbour),
        ],
        partition=Partition.from_pairs([("INC_{}".format(cell.index), [action])]),
    )


def random_system(
    rng: random.Random,
    n_cells: Optional[int] = None,
    max_modulus: int = 3,
    allow_guards: bool = True,
    allow_unbounded: bool = True,
) -> RandomSystem:
    """Generate a random closed timed automaton.

    Guarantees at least one always-enabled cell with a finite upper
    bound, so the system never fully quiesces and every execution keeps
    making progress (the analogue of the paper's dummy component).
    """
    if n_cells is None:
        n_cells = rng.randint(1, 4)
    cells: List[CellSpec] = []
    for i in range(n_cells):
        if i == 0:
            # The progress anchor: always enabled, finite upper bound.
            interval = _random_interval(rng, allow_unbounded=False)
            guard_on = None
        else:
            interval = _random_interval(rng, allow_unbounded)
            guard_on = rng.randrange(i) if (allow_guards and rng.random() < 0.5) else None
        cells.append(
            CellSpec(
                index=i,
                modulus=rng.randint(2, max_modulus),
                interval=interval,
                guard_on=guard_on,
            )
        )
    return system_of_cells(cells)


def system_of_cells(cells: List[CellSpec]) -> RandomSystem:
    """Assemble the timed system a sequence of :class:`CellSpec` rows
    describes.  This is the deterministic half of :func:`random_system`:
    given the same cells it always builds the same automaton, which is
    what lets a fuzz *recipe* (the plain-data cell list) stand in for
    the system itself in reproducer artifacts.
    """
    automata = [_cell_automaton(cell) for cell in cells]
    if len(automata) == 1:
        composed = automata[0]
    else:
        composed = Composition(automata, name="random-ring")
    boundmap = Boundmap(
        {"INC_{}".format(cell.index): cell.interval for cell in cells}
    )
    return RandomSystem(TimedAutomaton(composed, boundmap), tuple(cells))
