"""Timing-interference lint rules (R015–R019): a race detector for
deadlines.

These rules inspect boundmaps, requirement conditions and derived
bounds *statically* — start states and single transitions at most,
never an exploration.  They register under the ``interference`` lint
target and are run by the :mod:`repro.analyze` driver (the plain lint
driver does not know this target, so ``repro lint`` output is
unchanged).

========  ==========================================================
R015      timing-overlap race: co-enabled classes with overlapping
          bound interiors — event order is timing-dependent
R016      vacuous window: a class whose earliest fire lands after a
          co-enabled class has already been forced to disable it
R017      unreachable deadline: a start-triggered requirement whose
          deadline expires before its only discharging class can fire
R018      zero-margin race: one class's latest fire coincides exactly
          with another's earliest — safe only on a knife edge
R019      derived-bound mismatch: a declared bound disagrees with the
          closed-form Theorem 6.4 derivation
========  ==========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Sequence, Tuple

from repro.lint.diagnostics import Severity
from repro.lint.registry import rule

__all__ = ["InterferenceContext"]


@dataclass
class InterferenceContext:
    """What the interference rules see: one system's ``(A, b)``, its
    requirement conditions and its statically-derived bounds."""

    name: str
    timed: object  # TimedAutomaton
    requirements: Tuple[object, ...] = ()  # TimingCondition
    bounds: Tuple[object, ...] = ()  # DerivedBound
    location: str = "?"
    _active_rule: str = "R000"

    def __post_init__(self) -> None:
        if self.location == "?":
            self.location = "{}/interference".format(self.name)

    def diagnostic(self, severity, message, hint="", location=None):
        from repro.lint.diagnostics import Diagnostic

        return Diagnostic(
            rule=self._active_rule,
            severity=severity,
            location=location or self.location,
            message=message,
            hint=hint,
        )

    # ------------------------------------------------------------------
    # Static views (start states and one-step effects only)
    # ------------------------------------------------------------------

    def start_coenabled_pairs(self) -> Iterator[Tuple[Hashable, object, object]]:
        """``(start_state, C, D)`` for each unordered class pair
        co-enabled in a start state (first witnessing start state
        only, partition order)."""
        automaton = self.timed.automaton
        seen = set()
        for state in automaton.start_states():
            enabled = [
                cls
                for cls in automaton.partition.classes
                if automaton.class_enabled(state, cls)
            ]
            for i, first in enumerate(enabled):
                for second in enabled[i + 1 :]:
                    key = (first.name, second.name)
                    if key not in seen:
                        seen.add(key)
                        yield state, first, second

    def one_step_disables(self, state: Hashable, actor, victim) -> bool:
        """True when some single step of class ``actor`` from ``state``
        lands in a state where class ``victim`` is disabled."""
        automaton = self.timed.automaton
        for action in actor.actions:
            if not automaton.is_enabled(state, action):
                continue
            for post in automaton.transitions(state, action):
                if not automaton.class_enabled(post, victim):
                    return True
        return False


def _finite(value) -> bool:
    return not (isinstance(value, float) and math.isinf(value))


@rule(
    "R015",
    targets="interference",
    title="timing-overlap race between co-enabled classes",
    paper="Section 2.2",
)
def timing_overlap_race(ctx):
    """Two classes enabled together whose bound interiors overlap can
    fire in either order depending on where in their windows they land:
    any ordering argument about their events is timing-dependent, not
    structural.  Informational — this is often the intended
    nondeterminism (competing processes), but proofs that assume a
    fixed order should be flagged for a second look."""
    for state, first, second in ctx.start_coenabled_pairs():
        a = ctx.timed.class_interval(first)
        b = ctx.timed.class_interval(second)
        if max(a.lo, b.lo) < min(a.hi, b.hi):
            yield ctx.diagnostic(
                Severity.INFO,
                "classes {!r} and {!r} are co-enabled at start with "
                "overlapping bounds {!r} and {!r}: their event order is "
                "timing-dependent".format(first.name, second.name, a, b),
                hint="any ordering assumption needs a timing proof, not "
                "just the transition relation",
            )


@rule(
    "R016",
    targets="interference",
    title="window that can never fire before its disabler",
    paper="Section 2.3",
)
def vacuous_window(ctx):
    """If class D can disable class C in one step from a start state,
    and C's earliest fire ``b_l(C)`` comes after D's forced deadline
    ``b_u(D)``, then C's window is vacuous from that configuration: D
    always preempts it."""
    for state, first, second in ctx.start_coenabled_pairs():
        for actor, victim in ((first, second), (second, first)):
            a = ctx.timed.class_interval(actor)
            v = ctx.timed.class_interval(victim)
            if not _finite(a.hi):
                continue
            if v.lo > a.hi and ctx.one_step_disables(state, actor, victim):
                yield ctx.diagnostic(
                    Severity.WARNING,
                    "class {!r} (earliest fire {!r}) can never beat class "
                    "{!r}, which must fire by {!r} and disables it".format(
                        victim.name, v.lo, actor.name, a.hi
                    ),
                    hint="either loosen {!r} or accept that {!r} is "
                    "unreachable from this start".format(actor.name, victim.name),
                )


@rule(
    "R017",
    targets="interference",
    title="requirement deadline unreachable by its discharging class",
    paper="Section 2.3",
)
def unreachable_deadline(ctx):
    """A start-triggered requirement condition whose ``Π`` events all
    belong to one class C cannot be satisfied when its deadline
    ``b_u(U)`` expires before C's earliest possible fire ``b_l(C)`` —
    the specification demands the impossible."""
    automaton = ctx.timed.automaton
    actions = tuple(automaton.signature.all_actions)
    start_states = tuple(automaton.start_states())
    for cond in ctx.requirements:
        if not any(cond.starts(state) for state in start_states):
            continue
        pi_actions = frozenset(a for a in actions if cond.in_pi(a))
        if not pi_actions:
            continue
        for cls in automaton.partition.classes:
            if not pi_actions <= frozenset(cls.actions):
                continue
            lo = ctx.timed.class_interval(cls).lo
            deadline = cond.interval.hi
            if _finite(deadline) and deadline < lo:
                yield ctx.diagnostic(
                    Severity.ERROR,
                    "requirement {!r} must be discharged by {!r} but its "
                    "deadline {!r} precedes the class's earliest fire "
                    "{!r}".format(cond.name, cls.name, deadline, lo),
                    hint="loosen the requirement deadline or tighten the "
                    "class's lower bound",
                )


@rule(
    "R018",
    targets="interference",
    title="zero timing margin between classes",
    paper="Section 4.1",
)
def zero_margin_race(ctx):
    """When one class's latest possible fire coincides *exactly* with
    another's earliest, any ordering between them holds only on a knife
    edge: an arbitrarily small drift flips it.  This is precisely the
    fischer-tight configuration (``a = b``); deliberate sequential
    stages can waive it."""
    classes = list(ctx.timed.classes())
    for first in classes:
        a = ctx.timed.class_interval(first)
        if not _finite(a.hi):
            continue
        for second in classes:
            if first.name == second.name:
                continue
            b = ctx.timed.class_interval(second)
            if b.lo > 0 and a.hi == b.lo:
                yield ctx.diagnostic(
                    Severity.WARNING,
                    "classes {!r} and {!r} touch: b_u({!r}) = {} = "
                    "b_l({!r}) — zero timing margin".format(
                        first.name, second.name, first.name, a.hi, second.name
                    ),
                    hint="separate the windows (b_l > b_u) or prove the "
                    "boundary ordering explicitly",
                )


@rule(
    "R019",
    targets="interference",
    title="declared bound disagrees with closed-form derivation",
    paper="Theorem 6.4",
)
def derived_bound_mismatch(ctx):
    """The composition pass constant-folds boundmaps into end-to-end
    bounds; a declared bound *tighter* than the derivable one claims
    more than the hierarchy proves (error), a looser one merely wastes
    precision (info)."""
    for bound in ctx.bounds:
        if bound.agrees:
            continue
        looser = (
            bound.declared.lo <= bound.derived.lo
            and bound.declared.hi >= bound.derived.hi
        )
        yield ctx.diagnostic(
            Severity.INFO if looser else Severity.ERROR,
            "bound {!r}: declared {!r} but derived {!r} ({})".format(
                bound.label,
                bound.declared,
                bound.derived,
                "declared is looser than provable"
                if looser
                else "declared is tighter than provable",
            ),
            hint="align the declaration with the Theorem 6.4 fold",
        )
