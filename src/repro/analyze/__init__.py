"""``repro.analyze`` — static proofs without state exploration.

Three passes over each shipped system:

1. **Symbolic obligation discharge** (:mod:`repro.analyze.obligations`):
   each mapping obligation of Definition 3.2 — base identity, initial
   containment, the per-step ``Ft``/``Lt`` inequality schema — compiled
   to exact-rational linear constraints and decided by Fourier–Motzkin
   elimination (:mod:`repro.analyze.fourier_motzkin`).  Verdicts are
   PROVED, REFUTED (with a concrete rational witness) or UNKNOWN.
2. **Timing-interference linting** (:mod:`repro.analyze.interference`):
   rules R015–R019, registered through the standard lint registry under
   the ``interference`` target.
3. **Closed-form bound derivation** (:mod:`repro.analyze.composition`):
   the Theorem 6.4 ``B_k`` hierarchy constant-folded and cross-checked
   against the bounds each system declares.

The driver (:mod:`repro.analyze.driver`) folds all three into one
:class:`~repro.analyze.driver.AnalyzeReport` per system and records
statically-proved mappings in the verdict cache so a warm ``repro
check`` can skip their exhaustive sweeps.
"""

from repro.analyze.constraints import Constraint, LinExpr, const, eq, ge, gt, le, lt, negate, var
from repro.analyze.composition import DerivedBound, closed_form_tolerance, derived_bounds
from repro.analyze.driver import (
    ANALYZE_SCHEMA_VERSION,
    AnalyzeReport,
    analyze_all,
    analyze_names,
    analyze_system,
    lookup_static_mapping,
    record_proved_mappings,
)
from repro.analyze.fourier_motzkin import EntailmentResult, FMResult, decide, entails
from repro.analyze.interference import InterferenceContext
from repro.analyze.obligations import (
    ObligationResult,
    Verdict,
    discharge_all,
    discharge_system,
    obligation_systems,
)

__all__ = [
    "ANALYZE_SCHEMA_VERSION",
    "AnalyzeReport",
    "Constraint",
    "DerivedBound",
    "EntailmentResult",
    "FMResult",
    "InterferenceContext",
    "LinExpr",
    "ObligationResult",
    "Verdict",
    "analyze_all",
    "analyze_names",
    "analyze_system",
    "closed_form_tolerance",
    "const",
    "decide",
    "derived_bounds",
    "discharge_all",
    "discharge_system",
    "entails",
    "eq",
    "ge",
    "gt",
    "le",
    "lookup_static_mapping",
    "lt",
    "negate",
    "obligation_systems",
    "record_proved_mappings",
    "var",
]
