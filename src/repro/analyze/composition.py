"""Closed-form bound derivation (paper Theorem 6.4, the ``B_k``
hierarchy).

The third static pass constant-folds boundmaps through chain/relay
composition: an ``n``-stage relay with per-hop bound ``[d1, d2]`` has
the end-to-end bound ``[n·d1, n·d2]``, each intermediate ``U_{k,n}``
carries ``[(n−k)·d1, (n−k)·d2]``, and a heterogeneous chain carries
Minkowski partial sums.  Every derived bound is compared against the
bound the system actually *declares* (requirement intervals, params
properties) — a mismatch is a specification bug surfaced by lint rule
R019, a match is a statically-proved Theorem 6.4 instance.

The same fold yields each system's closed-form perturbation tolerance
``ε* = (hi − lo) / (hi + lo)`` of its critical interval: the largest
uniform tightening factor that keeps the slowest-case lower bound under
the fastest-case upper bound.  These are cross-checked against the
exploratory tolerance analyzer in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Optional

from repro.errors import AnalyzeError
from repro.timed.interval import Interval

__all__ = ["DerivedBound", "derived_bounds", "closed_form_tolerance"]


@dataclass(frozen=True)
class DerivedBound:
    """One statically-derived bound, paired with its declared twin."""

    system: str
    label: str
    derived: Interval
    declared: Interval
    detail: str = ""

    @property
    def agrees(self) -> bool:
        return self.derived == self.declared

    def to_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "label": self.label,
            "derived": repr(self.derived),
            "declared": repr(self.declared),
            "agrees": self.agrees,
            "detail": self.detail,
        }


def _fold(intervals) -> Interval:
    total = None
    for interval in intervals:
        total = interval if total is None else total + interval
    if total is None:
        raise AnalyzeError("cannot fold an empty interval sequence")
    return total


def derived_bounds(name: str) -> List[DerivedBound]:
    """All closed-form bounds derivable for one system, each paired
    with the declared bound it must reproduce."""
    from repro.gen.names import is_gen_name
    from repro.par.surface import build_system

    if is_gen_name(name):
        from repro.gen.families import build_bundle

        return build_bundle(name).bounds()
    system = build_system(name)
    if name == "rm":
        return _rm_bounds(name, system)
    if name == "relay":
        return _relay_bounds(name, system)
    if name == "chain":
        return _chain_bounds(name, system)
    if name in ("fischer", "fischer-tight"):
        return _fischer_bounds(name, system)
    if name == "peterson":
        return _peterson_bounds(name, system)
    if name == "tournament":
        return _tournament_bounds(name, system)
    raise AnalyzeError("no derived bounds registered for {!r}".format(name))


def _rm_bounds(name: str, system) -> List[DerivedBound]:
    from repro.analysis.recurrence import rm_first_grant_chain, rm_grant_gap_chain

    p = system.params
    tick = Interval(p.c1, p.c2)
    first = tick.scale(p.k) + Interval(0, p.l)
    gap = Interval(p.c1 - p.l, p.c2) + tick.scale(p.k - 1) + Interval(0, p.l)
    results = [
        DerivedBound(
            system=name,
            label="first-grant",
            derived=first,
            declared=p.first_grant_interval,
            detail="k ticks then a grant step: k*[c1, c2] + [0, l]",
        ),
        DerivedBound(
            system=name,
            label="grant-gap",
            derived=gap,
            declared=p.grant_gap_interval,
            detail="first tick after a grant is [c1 - l, c2] (Lemma 4.1), "
            "then k - 1 ticks, then the grant step",
        ),
    ]
    # The recurrence milestone chains fold to the same closed forms —
    # keep the two derivations honest against each other.
    results.append(
        DerivedBound(
            system=name,
            label="first-grant/recurrence",
            derived=first,
            declared=rm_first_grant_chain(p).total(),
            detail="closed form vs the milestone-chain fold",
        )
    )
    results.append(
        DerivedBound(
            system=name,
            label="grant-gap/recurrence",
            derived=gap,
            declared=rm_grant_gap_chain(p).total(),
            detail="closed form vs the milestone-chain fold",
        )
    )
    return results


def _relay_bounds(name: str, system) -> List[DerivedBound]:
    p = system.params
    hop = Interval(p.d1, p.d2)
    results = [
        DerivedBound(
            system=name,
            label="end-to-end",
            derived=hop.scale(p.n),
            declared=p.end_to_end_interval,
            detail="n relay hops of [d1, d2] each: [n*d1, n*d2] (Theorem 6.4)",
        )
    ]
    for k in range(p.n):
        results.append(
            DerivedBound(
                system=name,
                label="U[{},{}]".format(k, p.n),
                derived=hop.scale(p.n - k),
                declared=p.hop_interval(k),
                detail="the B_k hierarchy bound: (n - k) remaining hops",
            )
        )
    return results


def _chain_bounds(name: str, system) -> List[DerivedBound]:
    from repro.systems.extensions.chain import partial_sum_interval

    stages = system.stages
    results = [
        DerivedBound(
            system=name,
            label="end-to-end",
            derived=_fold(stages),
            declared=partial_sum_interval(stages, 0),
            detail="Minkowski sum of all stage bounds",
        )
    ]
    for k in range(1, system.m):
        results.append(
            DerivedBound(
                system=name,
                label="U[{},{}]".format(k, system.m),
                derived=_fold(stages[k:]),
                declared=partial_sum_interval(stages, k),
                detail="partial Minkowski sum of the remaining stages",
            )
        )
    return results


def _fischer_bounds(name: str, params) -> List[DerivedBound]:
    from repro.analysis.recurrence import fischer_first_entry_chain

    derived = Interval(0, params.a) + Interval(params.b, 2 * params.b)
    return [
        DerivedBound(
            system=name,
            label="first-entry",
            derived=derived,
            declared=fischer_first_entry_chain(params.a, params.b).total(),
            detail="a SET within [0, a] then a check within [b, 2b]",
        )
    ]


def _tournament_bounds(name: str, params) -> List[DerivedBound]:
    from repro.analysis.recurrence import peterson_first_entry_chain

    if params.n != 2:
        # Width >= 4 entry-upper bounds are deferred to exploration
        # (see the analyze obligations); no closed form is declared.
        return []
    step = params.step_interval
    return [
        DerivedBound(
            system=name,
            label="first-entry",
            derived=step.scale(3),
            declared=peterson_first_entry_chain(step).total(),
            detail="the width-2 bracket is Peterson: three protocol steps "
            "of [s1, s2] each",
        )
    ]


def _peterson_bounds(name: str, params) -> List[DerivedBound]:
    from repro.analysis.recurrence import peterson_first_entry_chain

    step = params.step_interval
    return [
        DerivedBound(
            system=name,
            label="first-entry",
            derived=step.scale(3),
            declared=peterson_first_entry_chain(step).total(),
            detail="three protocol steps (set flag, set turn, test) of "
            "[s1, s2] each",
        )
    ]


def closed_form_tolerance(name: str) -> Optional[Fraction]:
    """The closed-form perturbation tolerance ``(hi − lo)/(hi + lo)``
    of the system's critical interval, or ``None`` when the system's
    safety does not reduce to a single interval ratio."""
    from repro.gen.names import is_gen_name
    from repro.par.surface import build_system

    if is_gen_name(name):
        from repro.gen.families import build_bundle

        return build_bundle(name).tolerance
    system = build_system(name)
    if name == "rm":
        p = system.params
        return _ratio(p.c1, p.c2)
    if name == "relay":
        p = system.params
        return _ratio(p.d1, p.d2)
    if name == "chain":
        return min(_ratio(s.lo, s.hi) for s in system.stages)
    if name == "fischer":
        return _ratio(system.a, system.b)
    if name == "fischer-tight":
        return Fraction(0)
    return None


def _ratio(lo, hi) -> Fraction:
    lo, hi = Fraction(lo), Fraction(hi)
    if lo + hi == 0:
        return Fraction(0)
    return (hi - lo) / (hi + lo)
