"""Symbolic discharge of mapping obligations (paper Definition 3.2).

Each shipped system's strong-possibilities-mapping obligations are
compiled into exact-rational linear constraint systems and decided by
Fourier–Motzkin elimination — no state enumeration anywhere.  Three
obligation families per inequality mapping:

- ``base-identity``: source and target are built over the same ``A``
  (Definition 3.2 condition 3) — checked structurally.
- ``initial``: every source start state has a target start state in its
  image (condition 1) — checked concretely on the finitely many start
  states, no exploration.
- ``steps``: every source step can be matched in the target
  (condition 2) — split into symbolic cases by action and control
  phase; each case is an implication ``H ⇒ g`` over the predictive
  variables, discharged by infeasibility of ``H ∧ ¬g``.

The case hypotheses encode structural invariants of ``time(A, U)``
states that follow directly from the prediction-update rules (e.g. a
class that is never disabled always satisfies ``Lt = Ft + (b_u − b_l)``
and ``Ft ≤ Ct + b_l``); the case goals are the mapping inequalities at
the post-state plus the legality constraints ``Ft ≤ t ≤ Lt`` of the
matching target step.

The Fischer obligations are *attack encodings*: a feasible constraint
system is a concrete violating schedule, so feasibility yields
``REFUTED`` with the Fourier–Motzkin witness as the counterexample —
this is how ``fischer-tight`` is refuted without a zone search.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalyzeError
from repro.analyze.constraints import Constraint, const, eq, ge, gt, le, lt, var
from repro.analyze.fourier_motzkin import decide, entails

__all__ = [
    "Verdict",
    "ObligationResult",
    "discharge_system",
    "discharge_all",
    "obligation_systems",
]


class Verdict(enum.Enum):
    """Outcome of one obligation: sound in both directions — ``PROVED``
    and ``REFUTED`` are definitive, ``UNKNOWN`` defers to exploration."""

    PROVED = "PROVED"
    REFUTED = "REFUTED"
    UNKNOWN = "UNKNOWN"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ObligationResult:
    """One discharged (or deferred) obligation."""

    system: str
    obligation: str
    verdict: Verdict
    #: How the verdict was reached: ``fourier-motzkin``, ``structural``,
    #: ``concrete`` (start states only) or ``closed-form``.
    method: str
    detail: str = ""
    #: The surface mapping label this obligation belongs to (``None``
    #: for safety/bound obligations that are not tied to a mapping).
    mapping_label: Optional[str] = None
    #: A satisfying assignment for ``REFUTED`` attack encodings.
    witness: Optional[Dict[str, Fraction]] = None
    #: Names of the symbolic cases that were discharged.
    cases: Tuple[str, ...] = ()

    @property
    def discharged(self) -> bool:
        return self.verdict is not Verdict.UNKNOWN

    def to_dict(self) -> Dict[str, Any]:
        witness = None
        if self.witness is not None:
            witness = {name: str(value) for name, value in sorted(self.witness.items())}
        return {
            "system": self.system,
            "obligation": self.obligation,
            "verdict": self.verdict.value,
            "method": self.method,
            "detail": self.detail,
            "mapping": self.mapping_label,
            "witness": witness,
            "cases": list(self.cases),
        }

    def to_check_outcome(self):
        """Project into the exploratory checker's outcome taxonomy:
        ``PROVED`` → conclusive success, ``REFUTED`` → failure,
        ``UNKNOWN`` → success with a blown budget (inconclusive)."""
        from repro.core.checker import CheckOutcome

        if self.verdict is Verdict.PROVED:
            return CheckOutcome(ok=True, steps_checked=0, detail=self.detail)
        if self.verdict is Verdict.REFUTED:
            return CheckOutcome(ok=False, steps_checked=0, detail=self.detail)
        return CheckOutcome(
            ok=True, steps_checked=0, detail=self.detail, exhausted_budget=True
        )


# ----------------------------------------------------------------------
# Symbolic case machinery
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Case:
    """One symbolic step case: prove ``hypotheses ⇒ goals`` — or, for
    ``impossible`` cases, that the hypotheses are contradictory (the
    case cannot arise)."""

    name: str
    hypotheses: Tuple[Constraint, ...]
    goals: Tuple[Constraint, ...] = ()
    impossible: bool = False


def _discharge_cases(
    system: str,
    obligation: str,
    cases: Sequence[_Case],
    mapping_label: Optional[str],
    detail: str,
) -> ObligationResult:
    """PROVED iff every case discharges; any failure is UNKNOWN (these
    are relaxed encodings, so a failed implication is not a refutation)."""
    for case in cases:
        try:
            if case.impossible:
                result = decide(list(case.hypotheses))
                if result.feasible:
                    return ObligationResult(
                        system=system,
                        obligation=obligation,
                        verdict=Verdict.UNKNOWN,
                        method="fourier-motzkin",
                        detail="case {!r} was expected to be contradictory but "
                        "is satisfiable".format(case.name),
                        mapping_label=mapping_label,
                    )
            else:
                outcome = entails(list(case.hypotheses), list(case.goals))
                if not outcome.holds:
                    return ObligationResult(
                        system=system,
                        obligation=obligation,
                        verdict=Verdict.UNKNOWN,
                        method="fourier-motzkin",
                        detail="case {!r}: could not entail {!r}".format(
                            case.name, outcome.failing_goal
                        ),
                        mapping_label=mapping_label,
                    )
        except AnalyzeError as exc:
            return ObligationResult(
                system=system,
                obligation=obligation,
                verdict=Verdict.UNKNOWN,
                method="fourier-motzkin",
                detail="case {!r}: {}".format(case.name, exc),
                mapping_label=mapping_label,
            )
    return ObligationResult(
        system=system,
        obligation=obligation,
        verdict=Verdict.PROVED,
        method="fourier-motzkin",
        detail=detail,
        mapping_label=mapping_label,
        cases=tuple(case.name for case in cases),
    )


def _exact(value) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float) and not math.isinf(value):
        return Fraction(value)
    raise AnalyzeError("bound {!r} is not exact/finite".format(value))


# ----------------------------------------------------------------------
# Structural / concrete obligations shared by every mapping
# ----------------------------------------------------------------------


def _base_identity(system: str, label: str, mapping) -> ObligationResult:
    ok = mapping.bases_agree
    return ObligationResult(
        system=system,
        obligation="{}/base-identity".format(label),
        verdict=Verdict.PROVED if ok else Verdict.REFUTED,
        method="structural",
        detail="source and target share the same base automaton object"
        if ok
        else "source base {!r} is not target base {!r}".format(
            mapping.source.base.name, mapping.target.base.name
        ),
        mapping_label=label,
    )


def _initial(system: str, label: str, mapping) -> ObligationResult:
    """Definition 3.2 condition 1, decided on the finitely many start
    states (one per base start state — no exploration)."""
    targets = list(mapping.target.start_states())
    for source_state in mapping.source.start_states():
        if not any(mapping.contains(u, source_state) for u in targets):
            return ObligationResult(
                system=system,
                obligation="{}/initial".format(label),
                verdict=Verdict.REFUTED,
                method="concrete",
                detail="no target start state contains {!r}".format(source_state),
                mapping_label=label,
            )
    return ObligationResult(
        system=system,
        obligation="{}/initial".format(label),
        verdict=Verdict.PROVED,
        method="concrete",
        detail="every source start state maps to a target start state",
        mapping_label=label,
    )


def _projection_steps(system: str, label: str, mapping, lemma: str) -> ObligationResult:
    """Step correspondence for a :class:`ProjectionMapping`: target
    predictions must track their renamed source conditions exactly.
    The prediction-update rules are driven entirely by ``(interval,
    starts, in_pi, triggers, disables)``; interval, ``Π`` membership
    (over the full action signature) and start behaviour are finitely
    checkable here, and trigger/disable agreement on reachable states
    is the cited structural lemma."""
    issues: List[str] = []
    src, tgt = mapping.source, mapping.target
    name_map = getattr(mapping, "_name_map", {})
    actions = tuple(tgt.base.signature.all_actions)
    start_states = tuple(tgt.base.start_states())
    for cond in tgt.conditions:
        source_name = name_map.get(cond.name, cond.name)
        scond = src.condition(source_name)
        if cond.interval != scond.interval:
            issues.append(
                "{} has bound {!r} but source {} has {!r}".format(
                    cond.name, cond.interval, source_name, scond.interval
                )
            )
        for action in actions:
            if cond.in_pi(action) != scond.in_pi(action):
                issues.append(
                    "{} and {} disagree on Pi membership of {!r}".format(
                        cond.name, source_name, action
                    )
                )
        for astate in start_states:
            if cond.starts(astate) != scond.starts(astate):
                issues.append(
                    "{} and {} disagree on start trigger at {!r}".format(
                        cond.name, source_name, astate
                    )
                )
    if issues:
        return ObligationResult(
            system=system,
            obligation="{}/steps".format(label),
            verdict=Verdict.UNKNOWN,
            method="structural",
            detail="; ".join(issues),
            mapping_label=label,
        )
    return ObligationResult(
        system=system,
        obligation="{}/steps".format(label),
        verdict=Verdict.PROVED,
        method="structural",
        detail="projection: intervals, Pi sets and start triggers agree on "
        "every renamed pair; trigger/disable agreement on reachable "
        "states is {}".format(lemma),
        mapping_label=label,
    )


# ----------------------------------------------------------------------
# Resource manager (paper Section 4.3, Lemmas 4.1-4.2)
# ----------------------------------------------------------------------


def _rm_invariant_hyps(params) -> List[Constraint]:
    """Structural invariants of reachable ``time(A, b)`` states.

    TICK and LOCAL are never disabled, so their predictions always have
    the shape ``(t0 + b_l, t0 + b_u)`` for a trigger time ``t0 ≤ Ct``;
    no pending deadline is ever in the past.
    """
    c1, c2, l = _exact(params.c1), _exact(params.c2), _exact(params.l)
    now = var("now")
    ft_tick, lt_tick = var("ft_tick"), var("lt_tick")
    ft_local, lt_local = var("ft_local"), var("lt_local")
    return [
        ge(now, 0),
        eq(lt_tick, ft_tick + (c2 - c1)),
        le(ft_tick, now + c1),
        ge(ft_tick, 0),
        eq(lt_local, ft_local + l),
        le(ft_local, now),
        ge(ft_local, 0),
        le(now, lt_tick),
        le(now, lt_local),
    ]


def _rm_step_hyps() -> List[Constraint]:
    """A step at time ``t``: time advances and beats no deadline."""
    t = var("t")
    return [ge(t, var("now")), le(t, var("lt_tick")), le(t, var("lt_local"))]


def _rm_mapping_hyps_positive(params) -> List[Constraint]:
    """The Section 4.3 mapping at ``TIMER = T ≥ 1``, with ``(ft_R,
    lt_R)`` the prediction of the *active* requirement condition (G1
    before the first GRANT, G2 after; the inactive one holds the
    default prediction and so never dominates the min/max)."""
    c1, c2, l = _exact(params.c1), _exact(params.c2), _exact(params.l)
    T = var("T")
    return [
        ge(var("lt_R"), var("lt_tick") + c2 * T - c2 + l),
        le(var("ft_R"), var("ft_tick") + c1 * T - c1),
        ge(var("ft_R"), 0),
        ge(var("lt_R"), 0),
    ]


def _rm_obligations(system_name: str, label: str, system) -> List[ObligationResult]:
    from repro.systems import resource_manager_mapping

    params = system.params
    c1, c2, l = _exact(params.c1), _exact(params.c2), _exact(params.l)
    k = int(params.k)
    mapping = resource_manager_mapping(system)

    t = var("t")
    ft_tick, lt_tick = var("ft_tick"), var("lt_tick")
    ft_local, lt_local = var("ft_local"), var("lt_local")
    ft_R, lt_R = var("ft_R"), var("lt_R")
    T = var("T")

    inv = _rm_invariant_hyps(params)
    step = _rm_step_hyps()

    # --- Lemma 4.1: TIMER >= 0, and TIMER = 0 implies
    #     Ft(TICK) >= Lt(LOCAL) + c1 - l. ---
    lemma_cases = [
        _Case(
            name="tick-at-zero-impossible",
            hypotheses=tuple(
                inv
                + step
                + [
                    # Invariant at TIMER = 0 plus TICK's firing window:
                    # t >= Ft(TICK) >= Lt(LOCAL) + c1 - l > Lt(LOCAL) >= t.
                    ge(ft_tick, lt_local + (c1 - l)),
                    ge(t, ft_tick),
                    gt(const(c1), const(l)),
                ]
            ),
            impossible=True,
        ),
        _Case(
            name="tick-establishes-at-one",
            hypotheses=tuple(inv + step + [ge(t, ft_tick)]),
            # Post state: TIMER' = 0, Ft'(TICK) = t + c1, LOCAL's
            # prediction unchanged (TICK is outside the LOCAL class and
            # leaves it enabled).  Goal is the Lemma 4.1 inequality.
            goals=(ge(t + c1, lt_local + (c1 - l)),),
        ),
        _Case(
            name="grant-and-else-vacuous",
            hypotheses=(),
            goals=(),  # GRANT resets TIMER to k >= 1; ELSE keeps TIMER >= 1.
        ),
    ]
    lemma = _discharge_cases(
        system_name,
        "{}/invariant:lemma-4.1".format(label),
        lemma_cases,
        mapping_label=label,
        detail="TIMER >= 0 and TIMER = 0 implies Ft(TICK) >= Lt(LOCAL) + c1 - l; "
        "TICK cannot overtake a pending GRANT deadline",
    )

    # --- Step correspondence of the Section 4.3 mapping. ---
    m_pos = _rm_mapping_hyps_positive(params)
    m_zero = [ge(lt_R, lt_local), le(ft_R, var("now")), ge(ft_R, 0)]
    gl = k * c1 - l  # G2 lower bound (k*c1 - l)
    gu = k * c2 + l  # G2 upper bound (k*c2 + l)
    step_cases = [
        _Case(
            # TICK with TIMER = T >= 2: requirement predictions are
            # untouched; the mapping must still hold at T' = T - 1
            # against TICK's refreshed prediction (t + c1, t + c2).
            name="tick-countdown",
            hypotheses=tuple(inv + step + m_pos + [ge(T, 2), ge(t, ft_tick)]),
            goals=(
                le(t, lt_R),
                ge(lt_R, t + c2 * T - c2 + l),
                le(ft_R, t + c1 * T - c1),
            ),
        ),
        _Case(
            # TICK with TIMER = 1: the mapping's T = 0 clause takes
            # over — min Lt >= Lt(LOCAL), max Ft <= Ct' = t.
            name="tick-to-zero",
            hypotheses=tuple(
                inv
                + step
                + [
                    ge(lt_R, lt_tick + l),
                    le(ft_R, ft_tick),
                    ge(ft_R, 0),
                    ge(t, ft_tick),
                ]
            ),
            goals=(le(t, lt_R), ge(lt_R, lt_local), le(ft_R, t)),
        ),
        _Case(
            # GRANT at TIMER = 0: B's G2 is triggered to
            # (t + k*c1 - l, t + k*c2 + l) and must cover the mapping at
            # TIMER' = k.  The Ft direction is exactly where Lemma 4.1
            # is consumed as a hypothesis.
            name="grant",
            hypotheses=tuple(
                inv
                + step
                + m_zero
                + [
                    ge(t, ft_local),
                    ge(ft_tick, lt_local + (c1 - l)),  # Lemma 4.1
                ]
            ),
            goals=(
                le(t, lt_R),
                ge(t + gu, lt_tick + (k - 1) * c2 + l),
                le(t + gl, ft_tick + (k - 1) * c1),
                ge(ft_tick + (k - 1) * c1, 0),
            ),
        ),
        _Case(
            # ELSE at TIMER = T >= 1: nothing in B moves; the mapping
            # inequality carries over verbatim (and the target deadline
            # is respected).
            name="else",
            hypotheses=tuple(inv + step + m_pos + [ge(T, 1), ge(t, ft_local)]),
            goals=(
                le(t, lt_R),
                ge(lt_R, lt_tick + c2 * T - c2 + l),
                le(ft_R, ft_tick + c1 * T - c1),
            ),
        ),
    ]
    steps = _discharge_cases(
        system_name,
        "{}/steps".format(label),
        step_cases,
        mapping_label=label,
        detail="Section 4.3 inequality mapping preserved across TICK, GRANT "
        "and ELSE (Lemma 4.2)",
    )

    return [
        _base_identity(system_name, label, mapping),
        _initial(system_name, label, mapping),
        lemma,
        steps,
    ]


# ----------------------------------------------------------------------
# Relay / chain level mappings (paper Section 6.3, Lemma 6.2)
# ----------------------------------------------------------------------


def _level_cases(Q, R, sig) -> List[_Case]:
    """Step cases for a level mapping ``f_k : B_k → B_{k-1}``.

    ``Q`` is the bound of the target condition ``U_{k-1}``, ``R`` the
    bound of the source condition ``U_k``, and ``sig`` the class bound
    of the hand-off event ``SIGNAL_k``.  Phases follow the at-most-one
    -flag-up structural lemma: A (a later flag is up, predictions
    correspond directly), B (flag k is up, the target tracks
    ``SIGNAL_k``'s prediction shifted by ``R``), C (no flag at or past
    ``k`` — both conditions inactive)."""
    Q_lo, Q_hi = _exact(Q.lo), _exact(Q.hi)
    R_lo, R_hi = _exact(R.lo), _exact(R.hi)
    s_lo, s_hi = _exact(sig.lo), _exact(sig.hi)
    t = var("t")
    ft_u, lt_u = var("ft_u"), var("lt_u")  # target U_{k-1}
    ft_s, lt_s = var("ft_s"), var("lt_s")  # source U_k
    ft_sig, lt_sig = var("ft_sig"), var("lt_sig")  # source SIGNAL_k class
    nonneg = [ge(v, 0) for v in (t, ft_u, ft_s, ft_sig)]
    phase_a = [ge(lt_u, lt_s), le(ft_u, ft_s)]
    phase_b = [ge(lt_u, lt_sig + R_hi), le(ft_u, ft_sig + R_lo)]
    return [
        _Case(
            # SIGNAL_{k-1} fires: U_{k-1} is triggered to (t + Q_l,
            # t + Q_u) while SIGNAL_k's class condition is triggered to
            # (t + sig_l, t + sig_u); the phase-B relation demands
            # exactly the Minkowski identity Q = sig + R.
            name="handoff",
            hypotheses=(),
            goals=(
                eq(const(Q_hi), const(s_hi + R_hi)),
                eq(const(Q_lo), const(s_lo + R_lo)),
            ),
        ),
        _Case(
            # SIGNAL_k fires in phase B: the source triggers U_k to
            # (t + R_l, t + R_u); the target's standing prediction must
            # already cover it, and its deadline must not be beaten.
            name="advance",
            hypotheses=tuple(
                nonneg + phase_b + [ge(t, ft_sig), le(t, lt_sig)]
            ),
            goals=(le(t, lt_u), ge(lt_u, t + R_hi), le(ft_u, t + R_lo)),
        ),
        _Case(
            # SIGNAL_j with k < j < n in phase A: neither condition
            # moves; direct correspondence carries over.
            name="pass",
            hypotheses=tuple(nonneg + phase_a + [le(t, lt_s)]),
            goals=(le(t, lt_u), ge(lt_u, lt_s), le(ft_u, ft_s)),
        ),
        _Case(
            # SIGNAL_n in phase A: both conditions fire and reset to
            # the default prediction; the target step's legality window
            # Ft(U_{k-1}) <= t <= Lt(U_{k-1}) follows from the source's.
            name="finish",
            hypotheses=tuple(nonneg + phase_a + [ge(t, ft_s), le(t, lt_s)]),
            goals=(le(t, lt_u), ge(t, ft_u)),
        ),
        _Case(
            # Any other action in phase B (NULL, earlier signals): the
            # target deadline Lt(U_{k-1}) is covered by SIGNAL_k's own
            # class deadline, which the source step already respects.
            name="stutter-deadline",
            hypotheses=tuple(nonneg + phase_b + [le(t, lt_sig)]),
            goals=(le(t, lt_u),),
        ),
        _Case(
            # Phase C (flags below k only): both conditions hold the
            # default prediction and shared conditions update
            # identically — nothing to prove.
            name="prefix",
            hypotheses=(),
            goals=(),
        ),
    ]


def _relay_obligations(system_name: str, system) -> List[ObligationResult]:
    from repro.systems import relay_hierarchy

    params = system.params
    n = params.n
    chain = relay_hierarchy(system)
    results: List[ObligationResult] = []
    for level, mapping in enumerate(chain):
        label = "relay[{}]".format(level)
        results.append(_base_identity(system_name, label, mapping))
        results.append(_initial(system_name, label, mapping))
        if level == 0 or level == len(chain.mappings) - 1:
            results.append(
                _projection_steps(
                    system_name,
                    label,
                    mapping,
                    lemma="Lemma 6.1 (at most one flag is up)",
                )
            )
        else:
            # chain is [entry, f_{n-1}, ..., f_1, exit]; mapping at
            # position `level` (1-based inside the levels) is f_k with
            # k = n - level.
            k = n - level
            cases = _level_cases(
                Q=params.hop_interval(k - 1),
                R=params.hop_interval(k),
                sig=system.timed.boundmap["SIGNAL_{}".format(k)],
            )
            results.append(
                _discharge_cases(
                    system_name,
                    "{}/steps".format(label),
                    cases,
                    mapping_label=label,
                    detail="level mapping f_{} : B_{} -> B_{} (Lemma 6.2)".format(
                        k, k, k - 1
                    ),
                )
            )
    return results


def _chain_obligations(system_name: str, system) -> List[ObligationResult]:
    from repro.systems.extensions.chain import partial_sum_interval

    stages = system.stages
    m = system.m
    chain = system.hierarchy()
    results: List[ObligationResult] = []
    for level, mapping in enumerate(chain):
        label = "chain[{}]".format(level)
        results.append(_base_identity(system_name, label, mapping))
        results.append(_initial(system_name, label, mapping))
        if level == 0 or level == len(chain.mappings) - 1:
            results.append(
                _projection_steps(
                    system_name,
                    label,
                    mapping,
                    lemma="the chain analogue of Lemma 6.1 (one event in "
                    "flight at a time)",
                )
            )
        else:
            k = m - level
            cases = _level_cases(
                Q=partial_sum_interval(stages, k - 1),
                R=partial_sum_interval(stages, k),
                sig=stages[k - 1],
            )
            results.append(
                _discharge_cases(
                    system_name,
                    "{}/steps".format(label),
                    cases,
                    mapping_label=label,
                    detail="chain level mapping f_{} (Theorem 6.4 instance)".format(k),
                )
            )
    return results


# ----------------------------------------------------------------------
# Fischer mutual exclusion: an attack encoding
# ----------------------------------------------------------------------


def _fischer_obligation(system_name: str, params) -> ObligationResult:
    """The canonical overwrite race, as a constraint system whose
    *feasibility* is a violating schedule.

    Both processes TRY at time 0.  Process i SETs ``x := i`` within
    ``[0, a]``, then CHECKs within ``[b, 2b]`` of its SET; for i to
    ENTER, j must not yet have SET, so ``t_set_j >= t_check_i`` — but
    j's own SET deadline forces ``t_set_j <= a``.  Then j checks,
    reads ``x = j`` and ENTERs too.  Feasible iff ``a >= b``, matching
    the known safety threshold ``b > a``.
    """
    a, b = _exact(params.a), _exact(params.b)
    ts_i, tc_i = var("t_set_i"), var("t_check_i")
    ts_j, tc_j = var("t_set_j"), var("t_check_j")
    race = [
        ge(ts_i, 0),
        le(ts_i, a),
        ge(tc_i, ts_i + b),
        le(tc_i, ts_i + 2 * b),
        ge(ts_j, tc_i),
        le(ts_j, a),
        ge(tc_j, ts_j + b),
        le(tc_j, ts_j + 2 * b),
    ]
    result = decide(race)
    if result.feasible:
        return ObligationResult(
            system=system_name,
            obligation="mutex-race",
            verdict=Verdict.REFUTED,
            method="fourier-motzkin",
            detail="mutual exclusion violated: the overwrite race is "
            "schedulable (a = {} >= b = {}); witness times satisfy every "
            "window".format(a, b),
            witness=result.witness,
        )
    return ObligationResult(
        system=system_name,
        obligation="mutex-race",
        verdict=Verdict.PROVED,
        method="fourier-motzkin",
        detail="overwrite race infeasible: {} (b = {} > a = {})".format(
            result.refutation, b, a
        ),
    )


# ----------------------------------------------------------------------
# Peterson / tournament
# ----------------------------------------------------------------------


def _peterson_obligation(system_name: str, params) -> ObligationResult:
    from repro.analysis.recurrence import peterson_first_entry_chain

    derived = params.step_interval.scale(3)
    declared = peterson_first_entry_chain(params.step_interval).total()
    if derived == declared:
        return ObligationResult(
            system=system_name,
            obligation="entry-bound",
            verdict=Verdict.PROVED,
            method="closed-form",
            detail="first CS entry in 3*[s1, s2] = {!r}, matching the "
            "recurrence milestone chain".format(derived),
        )
    return ObligationResult(
        system=system_name,
        obligation="entry-bound",
        verdict=Verdict.REFUTED,
        method="closed-form",
        detail="derived {!r} != recurrence total {!r}".format(derived, declared),
    )


def _tournament_obligations(system_name: str, params) -> List[ObligationResult]:
    """The tournament bracket's static obligations.

    The winner climbs ``height`` levels taking three protocol steps per
    level, each in ``[s1, s2]``:

    * **entry-lower** — an FM entailment: 3·height step windows force
      first entry no earlier than ``3·height·s1`` (any width).
    * **entry-bound** (width 2 only) — the bracket degenerates to
      Peterson, so the closed form ``3·[s1, s2]`` must match the
      recurrence milestone chain, exactly as for ``peterson``.
    * **entry-upper** (width ≥ 4) — a *structured deferral*: upper
      entry bounds under contention depend on the guard-based mutex
      argument, which is not a linear timing property.  The verdict is
      UNKNOWN with ``method="deferred"`` so gates never fail on it and
      downstream tooling can recognise the deferral.
    """
    from repro.analysis.recurrence import peterson_first_entry_chain

    height = params.height
    step = params.step_interval
    steps = 3 * height
    gaps = [var("t_step_{}".format(i)) for i in range(steps)]
    hypotheses = []
    for gap in gaps:
        hypotheses.append(ge(gap, _exact(step.lo)))
        hypotheses.append(le(gap, _exact(step.hi)))
    total = gaps[0]
    for gap in gaps[1:]:
        total = total + gap
    results = [
        _discharge_cases(
            system_name,
            "entry-lower",
            [
                _Case(
                    name="winner-milestones",
                    hypotheses=tuple(hypotheses),
                    goals=(ge(total, steps * _exact(step.lo)),),
                )
            ],
            mapping_label=None,
            detail="the winner takes {} steps of at least {} each, so first "
            "entry is no earlier than {}".format(steps, step.lo, steps * step.lo),
        )
    ]
    if params.n == 2:
        derived = step.scale(3)
        declared = peterson_first_entry_chain(step).total()
        if derived == declared:
            results.append(
                ObligationResult(
                    system=system_name,
                    obligation="entry-bound",
                    verdict=Verdict.PROVED,
                    method="closed-form",
                    detail="width-2 bracket is Peterson: first CS entry in "
                    "3*[s1, s2] = {!r}, matching the recurrence milestone "
                    "chain".format(derived),
                )
            )
        else:
            results.append(
                ObligationResult(
                    system=system_name,
                    obligation="entry-bound",
                    verdict=Verdict.REFUTED,
                    method="closed-form",
                    detail="derived {!r} != recurrence total {!r}".format(
                        derived, declared
                    ),
                )
            )
    else:
        results.append(
            ObligationResult(
                system=system_name,
                obligation="entry-upper",
                verdict=Verdict.UNKNOWN,
                method="deferred",
                detail="deferred: upper entry bounds for a width-{} bracket "
                "rest on the guard-based mutex argument (not a linear timing "
                "property); zone exploration carries the evidence; the FM "
                "lower milestone {} stands".format(params.n, steps * step.lo),
            )
        )
    return results


# ----------------------------------------------------------------------
# Per-system dispatch
# ----------------------------------------------------------------------


def obligation_systems() -> Tuple[str, ...]:
    from repro.par.surface import surface_names

    return surface_names()


def discharge_system(name: str) -> List[ObligationResult]:
    """All obligations of one shipped or generated system, discharged
    statically."""
    from repro.gen.names import is_gen_name
    from repro.par.surface import build_system

    if is_gen_name(name):
        from repro.gen.families import build_bundle

        return build_bundle(name).obligations()
    system = build_system(name)
    if name == "rm":
        return _rm_obligations(name, "rm", system)
    if name == "relay":
        return _relay_obligations(name, system)
    if name == "chain":
        return _chain_obligations(name, system)
    if name in ("fischer", "fischer-tight"):
        return [_fischer_obligation(name, system)]
    if name == "peterson":
        return [_peterson_obligation(name, system)]
    if name == "tournament":
        return _tournament_obligations(name, system)
    raise AnalyzeError("no static obligations registered for {!r}".format(name))


def discharge_all() -> Dict[str, List[ObligationResult]]:
    return {name: discharge_system(name) for name in obligation_systems()}
