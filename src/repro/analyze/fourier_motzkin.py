"""A small Fourier–Motzkin elimination engine over exact rationals.

Decides feasibility of conjunctions of linear constraints
(:class:`~repro.analyze.constraints.Constraint`) and, when feasible,
produces a concrete witness assignment by back-substitution.  This is
the decision procedure behind symbolic obligation discharge: a mapping
obligation ``H ⇒ g`` holds exactly when ``H ∧ ¬g`` is infeasible, and a
*feasible* negation of a self-contained attack encoding (the Fischer
race) yields a concrete counterexample schedule.

Everything is :class:`~fractions.Fraction` arithmetic — no floats, no
external solvers, no state enumeration.  Worst-case Fourier–Motzkin is
doubly exponential, so a row budget guards against pathological inputs
(:class:`~repro.errors.AnalyzeError` — surfaced as an ``UNKNOWN``
verdict, never a wrong one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalyzeError
from repro.obs import instrument as _telemetry
from repro.analyze.constraints import Constraint, EQ, LE, LT, negate

__all__ = ["FMResult", "EntailmentResult", "decide", "entails", "DEFAULT_MAX_ROWS"]

#: Row budget: systems produced by the obligation compilers are tiny
#: (tens of rows); anything past this is a misuse, not a proof.
DEFAULT_MAX_ROWS = 20_000


class _Row:
    """``Σ coeffs·x + const ≤ 0`` (``< 0`` when strict)."""

    __slots__ = ("coeffs", "const", "strict")

    def __init__(self, coeffs: Dict[str, Fraction], const: Fraction, strict: bool):
        self.coeffs = coeffs
        self.const = const
        self.strict = strict


@dataclass
class FMResult:
    """Outcome of a feasibility decision."""

    feasible: bool
    witness: Optional[Dict[str, Fraction]] = None
    #: The constant row that certified infeasibility, rendered.
    refutation: str = ""
    eliminated: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.feasible


@dataclass
class EntailmentResult:
    """Outcome of an implication check ``H ⊨ g₁ ∧ … ∧ gₙ``."""

    holds: bool
    #: The first goal whose negation was satisfiable (when not holds).
    failing_goal: Optional[Constraint] = None
    #: A model of ``H ∧ ¬g`` for that goal.
    counterexample: Optional[Dict[str, Fraction]] = None


def _normalise(constraints: Sequence[Constraint]) -> List[_Row]:
    rows: List[_Row] = []
    for c in constraints:
        coeffs = {name: coeff for name, coeff in c.expr.coeffs}
        const = c.expr.constant
        if c.rel == LE:
            rows.append(_Row(dict(coeffs), const, strict=False))
        elif c.rel == LT:
            rows.append(_Row(dict(coeffs), const, strict=True))
        elif c.rel == EQ:
            rows.append(_Row(dict(coeffs), const, strict=False))
            rows.append(
                _Row({n: -v for n, v in coeffs.items()}, -const, strict=False)
            )
        else:  # pragma: no cover - Constraint validates rel
            raise AnalyzeError("unknown relation {!r}".format(c.rel))
    return rows


def _constant_row_infeasible(row: _Row) -> bool:
    if row.strict:
        return row.const >= 0
    return row.const > 0


def _render_row(row: _Row) -> str:
    parts = []
    for name in sorted(row.coeffs):
        coeff = row.coeffs[name]
        parts.append("{}*{}".format(coeff, name))
    parts.append(str(row.const))
    return " + ".join(parts) + (" < 0" if row.strict else " <= 0")


def _pick_variable(rows: List[_Row], order: Optional[Sequence[str]]) -> Optional[str]:
    """The next variable to eliminate: the one minimising the number of
    combination rows (#lower × #upper), names breaking ties so the run
    is deterministic.  An explicit ``order`` overrides the heuristic."""
    present: Dict[str, Tuple[int, int]] = {}
    for row in rows:
        for name, coeff in row.coeffs.items():
            lowers, uppers = present.get(name, (0, 0))
            if coeff < 0:
                lowers += 1
            else:
                uppers += 1
            present[name] = (lowers, uppers)
    if not present:
        return None
    if order:
        for name in order:
            if name in present:
                return name
    return min(
        present,
        key=lambda name: (present[name][0] * present[name][1], name),
    )


def decide(
    constraints: Sequence[Constraint],
    order: Optional[Sequence[str]] = None,
    max_rows: int = DEFAULT_MAX_ROWS,
) -> FMResult:
    """Decide feasibility of the conjunction; return a witness if any.

    ``order`` optionally fixes the elimination order (useful in tests);
    by default a fewest-combinations heuristic with a name tie-break
    keeps runs deterministic.
    """
    _telemetry.incr("analyze.fm.decisions")
    rows = _normalise(constraints)

    # Peel off variable-free rows eagerly at every stage.
    def split(rows: List[_Row]) -> Tuple[List[_Row], Optional[_Row]]:
        keep: List[_Row] = []
        for row in rows:
            if row.coeffs:
                keep.append(row)
            elif _constant_row_infeasible(row):
                return keep, row
        return keep, None

    rows, bad = split(rows)
    if bad is not None:
        return FMResult(feasible=False, refutation=_render_row(bad))

    #: (variable, rows mentioning it at elimination time) — consumed in
    #: reverse for witness back-substitution.
    trail: List[Tuple[str, List[_Row]]] = []

    while True:
        name = _pick_variable(rows, order)
        if name is None:
            break
        _telemetry.incr("analyze.fm.eliminations")
        with_var = [row for row in rows if name in row.coeffs]
        without = [row for row in rows if name not in row.coeffs]
        lowers = [row for row in with_var if row.coeffs[name] < 0]
        uppers = [row for row in with_var if row.coeffs[name] > 0]
        combined: List[_Row] = []
        for low in lowers:
            for up in uppers:
                # low: a·x + r ≤ 0 with a < 0  →  x ≥ r / (−a)
                # up:  b·x + s ≤ 0 with b > 0  →  x ≤ −s / b
                # Combine scaled so x cancels: b·low − a·up (a<0 so −a>0).
                a = low.coeffs[name]
                b = up.coeffs[name]
                coeffs: Dict[str, Fraction] = {}
                for n, v in low.coeffs.items():
                    coeffs[n] = coeffs.get(n, Fraction(0)) + b * v
                for n, v in up.coeffs.items():
                    coeffs[n] = coeffs.get(n, Fraction(0)) - a * v
                coeffs = {n: v for n, v in coeffs.items() if v != 0}
                coeffs.pop(name, None)
                combined.append(
                    _Row(
                        coeffs,
                        b * low.const - a * up.const,
                        strict=low.strict or up.strict,
                    )
                )
        rows = without + combined
        if len(rows) > max_rows:
            raise AnalyzeError(
                "Fourier-Motzkin row budget exceeded ({} rows > {})".format(
                    len(rows), max_rows
                )
            )
        trail.append((name, with_var))
        rows, bad = split(rows)
        if bad is not None:
            return FMResult(
                feasible=False,
                refutation=_render_row(bad),
                eliminated=tuple(n for n, _ in trail),
            )

    # Feasible: back-substitute a witness in reverse elimination order.
    witness: Dict[str, Fraction] = {}
    for name, with_var in reversed(trail):
        lb: Optional[Fraction] = None
        lb_strict = False
        ub: Optional[Fraction] = None
        ub_strict = False
        for row in with_var:
            coeff = row.coeffs[name]
            rest = row.const
            for n, v in row.coeffs.items():
                if n != name:
                    rest += v * witness[n]
            # coeff·x + rest ≤ 0
            bound = -rest / coeff
            if coeff < 0:  # lower bound
                if lb is None or bound > lb or (bound == lb and row.strict):
                    lb, lb_strict = bound, row.strict
            else:  # upper bound
                if ub is None or bound < ub or (bound == ub and row.strict):
                    ub, ub_strict = bound, row.strict
        witness[name] = _choose(lb, lb_strict, ub, ub_strict)
    return FMResult(
        feasible=True,
        witness=witness,
        eliminated=tuple(n for n, _ in trail),
    )


def _choose(
    lb: Optional[Fraction],
    lb_strict: bool,
    ub: Optional[Fraction],
    ub_strict: bool,
) -> Fraction:
    """A value inside the (guaranteed nonempty) interval of bounds."""
    if lb is None and ub is None:
        return Fraction(0)
    if lb is None:
        assert ub is not None
        return ub - 1 if ub_strict else ub
    if ub is None:
        return lb + 1 if lb_strict else lb
    if lb == ub:
        # Both bounds non-strict, else elimination would have refuted.
        return lb
    if not lb_strict and Fraction(0) <= lb:
        # Prefer the crisp endpoint when available: witnesses read
        # better ("t_set_j = 1") than midpoints.
        return lb
    return (lb + ub) / 2


def entails(
    hypotheses: Sequence[Constraint],
    goals: Sequence[Constraint],
    order: Optional[Sequence[str]] = None,
    max_rows: int = DEFAULT_MAX_ROWS,
) -> EntailmentResult:
    """Check ``H ⊨ g`` for every goal ``g``: each holds exactly when
    ``H ∧ ¬g`` is infeasible.  EQ goals split into both inequalities;
    the first failing goal is reported with a model of its negation."""
    hyp_list = list(hypotheses)
    for goal in goals:
        for disjunct in negate(goal):
            result = decide(hyp_list + [disjunct], order=order, max_rows=max_rows)
            if result.feasible:
                return EntailmentResult(
                    holds=False, failing_goal=goal, counterexample=result.witness
                )
    return EntailmentResult(holds=True)
