"""Exact-rational linear constraints over named variables.

The static analyzer (paper Section 4.3) reduces mapping obligations to
systems of linear inequalities over the predictive variables ``Ct``,
``Ft(U)`` and ``Lt(U)``.  This module is the vocabulary: a
:class:`LinExpr` is an affine expression ``Σ cᵢ·xᵢ + c`` with
:class:`~fractions.Fraction` coefficients; a :class:`Constraint`
relates such an expression to zero with one of ``≤``, ``<`` or ``=``.

No infinities appear here.  The ``Lt = ∞`` (inactive) predictions of
the timed semantics are handled upstream by discrete case splits: an
inactive condition simply contributes no constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Tuple, Union

from repro.errors import AnalyzeError

__all__ = [
    "LinExpr",
    "Constraint",
    "var",
    "const",
    "le",
    "lt",
    "ge",
    "gt",
    "eq",
    "LE",
    "LT",
    "EQ",
]

Numberish = Union[int, Fraction]

#: Relation tags: the constraint reads ``expr REL 0``.
LE = "<="
LT = "<"
EQ = "=="


def _frac(value) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        # Finite floats convert exactly (binary expansion); infinities
        # and NaN have no rational value and must never get here —
        # unbounded constraints should simply be omitted.
        if value != value or value in (float("inf"), float("-inf")):
            raise AnalyzeError(
                "non-finite bound {!r} cannot enter a linear constraint; "
                "drop the constraint instead".format(value)
            )
        return Fraction(value)
    raise AnalyzeError(
        "expected an exact number, got {!r} ({})".format(value, type(value).__name__)
    )


@dataclass(frozen=True)
class LinExpr:
    """An affine expression ``Σ coeffs[v]·v + constant``."""

    coeffs: Tuple[Tuple[str, Fraction], ...]
    constant: Fraction

    @classmethod
    def build(cls, coeffs: Mapping[str, Numberish], constant: Numberish = 0) -> "LinExpr":
        cleaned: Dict[str, Fraction] = {}
        for name, coeff in coeffs.items():
            exact = _frac(coeff)
            if exact != 0:
                cleaned[name] = exact
        return cls(tuple(sorted(cleaned.items())), _frac(constant))

    def as_dict(self) -> Dict[str, Fraction]:
        return dict(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __add__(self, other: Union["LinExpr", Numberish]) -> "LinExpr":
        if not isinstance(other, LinExpr):
            other = const(other)
        merged = self.as_dict()
        for name, coeff in other.coeffs:
            merged[name] = merged.get(name, Fraction(0)) + coeff
        return LinExpr.build(merged, self.constant + other.constant)

    def __radd__(self, other: Numberish) -> "LinExpr":
        return self.__add__(other)

    def __neg__(self) -> "LinExpr":
        return LinExpr.build({n: -c for n, c in self.coeffs}, -self.constant)

    def __sub__(self, other: Union["LinExpr", Numberish]) -> "LinExpr":
        if not isinstance(other, LinExpr):
            other = const(other)
        return self + (-other)

    def __rsub__(self, other: Numberish) -> "LinExpr":
        return const(other) + (-self)

    def __mul__(self, factor: Numberish) -> "LinExpr":
        exact = _frac(factor)
        return LinExpr.build(
            {n: c * exact for n, c in self.coeffs}, self.constant * exact
        )

    def __rmul__(self, factor: Numberish) -> "LinExpr":
        return self.__mul__(factor)

    def evaluate(self, assignment: Mapping[str, Numberish]) -> Fraction:
        total = self.constant
        for name, coeff in self.coeffs:
            if name not in assignment:
                raise AnalyzeError("assignment is missing variable {!r}".format(name))
            total += coeff * _frac(assignment[name])
        return total

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def __repr__(self) -> str:
        parts = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append("-" + name)
            else:
                parts.append("{}*{}".format(coeff, name))
        if self.constant != 0 or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts)


def var(name: str) -> LinExpr:
    """The expression consisting of a single variable."""
    return LinExpr.build({name: 1})


def const(value: Numberish) -> LinExpr:
    """A constant expression."""
    return LinExpr.build({}, value)


def _coerce(value: Union[LinExpr, Numberish]) -> LinExpr:
    return value if isinstance(value, LinExpr) else const(value)


@dataclass(frozen=True)
class Constraint:
    """``expr REL 0`` with ``REL`` one of ``<=``, ``<``, ``==``."""

    expr: LinExpr
    rel: str

    def __post_init__(self) -> None:
        if self.rel not in (LE, LT, EQ):
            raise AnalyzeError("unknown relation {!r}".format(self.rel))

    def satisfied_by(self, assignment: Mapping[str, Numberish]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.rel == LE:
            return value <= 0
        if self.rel == LT:
            return value < 0
        return value == 0

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def __repr__(self) -> str:
        return "{!r} {} 0".format(self.expr, self.rel)


def le(a: Union[LinExpr, Numberish], b: Union[LinExpr, Numberish]) -> Constraint:
    """``a ≤ b``."""
    return Constraint(_coerce(a) - _coerce(b), LE)


def lt(a: Union[LinExpr, Numberish], b: Union[LinExpr, Numberish]) -> Constraint:
    """``a < b``."""
    return Constraint(_coerce(a) - _coerce(b), LT)


def ge(a: Union[LinExpr, Numberish], b: Union[LinExpr, Numberish]) -> Constraint:
    """``a ≥ b``."""
    return le(b, a)


def gt(a: Union[LinExpr, Numberish], b: Union[LinExpr, Numberish]) -> Constraint:
    """``a > b``."""
    return lt(b, a)


def eq(a: Union[LinExpr, Numberish], b: Union[LinExpr, Numberish]) -> Constraint:
    """``a = b``."""
    return Constraint(_coerce(a) - _coerce(b), EQ)


def negate(constraint: Constraint) -> Tuple[Constraint, ...]:
    """The negation of a constraint, as a *disjunction* of constraints.

    ``¬(e ≤ 0)`` is ``e > 0`` (one disjunct); ``¬(e < 0)`` is ``e ≥ 0``;
    ``¬(e = 0)`` is ``e < 0 ∨ e > 0`` (two disjuncts).
    """
    if constraint.rel == LE:
        return (Constraint(-constraint.expr, LT),)
    if constraint.rel == LT:
        return (Constraint(-constraint.expr, LE),)
    return (
        Constraint(constraint.expr, LT),
        Constraint(-constraint.expr, LT),
    )
