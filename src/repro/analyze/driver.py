"""The static-analysis driver: one report per shipped system.

``analyze_system`` runs the three passes — symbolic obligation
discharge, timing-interference linting (R015–R019), closed-form bound
derivation — and folds them into one :class:`AnalyzeReport` with the
same gate semantics as the lint/check commands (``fails(strict)``,
expected-broken handling for ``fischer-tight``).

Statically **proved** mappings can be recorded in the verdict cache
(:func:`record_proved_mappings`); a warm ``repro check`` then skips the
exhaustive grid sweep for those mappings entirely
(:func:`lookup_static_mapping`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import instrument as _telemetry
from repro.lint.diagnostics import LintReport
# The waiver semantics must match the lint driver exactly, so the
# private helpers are shared rather than reimplemented.
from repro.lint.driver import _apply_waivers, _run
from repro.lint.registry import ruleset_version
from repro.analyze.composition import DerivedBound, closed_form_tolerance, derived_bounds
from repro.analyze.interference import InterferenceContext
from repro.analyze.obligations import (
    ObligationResult,
    Verdict,
    discharge_system,
    obligation_systems,
)

__all__ = [
    "AnalyzeReport",
    "analyze_names",
    "analyze_system",
    "analyze_all",
    "record_proved_mappings",
    "lookup_static_mapping",
    "ANALYZE_SCHEMA_VERSION",
]

ANALYZE_SCHEMA_VERSION = 1

#: Systems shipped deliberately broken: their analysis is *expected* to
#: refute (mirrors the check/perturb expectation set).
_EXPECTED_BROKEN = frozenset({"fischer-tight"})

#: Interference waivers, same shape as SystemTarget waivers: known,
#: deliberate modelling choices that must not fail a strict gate.
_WAIVERS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    # Sequential pipeline stages legitimately meet at their boundary
    # (stage k's latest completion equals stage k+1's earliest): not a
    # race, the stages are never co-enabled.
    "chain": (("R018", "'EVENT_1'"),),
}


def _requirement_conditions(name: str, system) -> Tuple[object, ...]:
    from repro.gen.names import is_gen_name

    if is_gen_name(name):
        from repro.gen.families import build_bundle

        return build_bundle(name).requirements()
    if name == "rm":
        return (system.g1, system.g2)
    if name in ("relay", "chain"):
        return (system.requirement,)
    return ()


def _interference_waivers(name: str) -> Tuple[Tuple[str, str], ...]:
    from repro.gen.names import is_gen_name

    if is_gen_name(name):
        from repro.gen.families import build_bundle

        return build_bundle(name).analyze_waivers
    return _WAIVERS.get(name, ())


@dataclass
class AnalyzeReport:
    """Everything the static analyzer concluded about one system."""

    system: str
    obligations: List[ObligationResult]
    interference: LintReport
    bounds: List[DerivedBound]
    tolerance: Optional[Fraction]
    expected_broken: bool
    wall: float = 0.0

    # ------------------------------------------------------------------
    # Verdict accounting
    # ------------------------------------------------------------------

    def _count(self, verdict: Verdict) -> int:
        return sum(1 for o in self.obligations if o.verdict is verdict)

    @property
    def proved(self) -> int:
        return self._count(Verdict.PROVED)

    @property
    def refuted(self) -> int:
        return self._count(Verdict.REFUTED)

    @property
    def unknown(self) -> int:
        return self._count(Verdict.UNKNOWN)

    @property
    def discharged(self) -> int:
        return self.proved + self.refuted

    @property
    def discharge_ratio(self) -> Fraction:
        if not self.obligations:
            return Fraction(1)
        return Fraction(self.discharged, len(self.obligations))

    @property
    def bounds_agree(self) -> bool:
        return all(bound.agrees for bound in self.bounds)

    def fails(self, strict: bool = False) -> bool:
        """Gate verdict: refuted obligations and bound mismatches always
        fail; interference warnings fail under ``strict``.  UNKNOWN
        never fails — it defers to exploration, it does not refute."""
        if self.refuted:
            return True
        if not self.bounds_agree:
            return True
        return self.interference.fails(strict=strict)

    @property
    def unexpected(self) -> bool:
        """True when the verdict contradicts the shipped expectation
        (a broken system analyzed clean, or vice versa)."""
        return self.fails() == (not self.expected_broken)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def sorted_obligations(self) -> List[ObligationResult]:
        return sorted(self.obligations, key=lambda o: (o.obligation, o.verdict.value))

    def summary(self) -> Dict[str, int]:
        return {
            "obligations": len(self.obligations),
            "proved": self.proved,
            "refuted": self.refuted,
            "unknown": self.unknown,
        }

    def summary_line(self) -> str:
        return (
            "{}/{} obligations discharged ({} proved, {} refuted, "
            "{} unknown), {} interference finding(s), bounds {}".format(
                self.discharged,
                len(self.obligations),
                self.proved,
                self.refuted,
                self.unknown,
                len(self.interference),
                "agree" if self.bounds_agree else "DISAGREE",
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ANALYZE_SCHEMA_VERSION,
            "system": self.system,
            "expected_broken": self.expected_broken,
            "summary": self.summary(),
            "discharge_ratio": float(self.discharge_ratio),
            "obligations": [o.to_dict() for o in self.sorted_obligations()],
            "interference": {
                "diagnostics": self.interference.to_dicts(),
                "summary": self.interference.summary(),
            },
            "bounds": [b.to_dict() for b in sorted(self.bounds, key=lambda b: b.label)],
            "tolerance": None if self.tolerance is None else str(self.tolerance),
            "fails": {"default": self.fails(), "strict": self.fails(strict=True)},
            "wall": self.wall,
        }

    def render(self) -> str:
        lines = ["{}: {}".format(self.system, self.summary_line())]
        for o in self.sorted_obligations():
            lines.append(
                "  {:<8} {} [{}]".format(o.verdict.value, o.obligation, o.method)
            )
            if o.verdict is Verdict.REFUTED and o.witness:
                lines.append(
                    "           witness: {}".format(
                        ", ".join(
                            "{} = {}".format(k, v)
                            for k, v in sorted(o.witness.items())
                        )
                    )
                )
        if len(self.interference):
            lines.append(self.interference.render())
        for bound in sorted(self.bounds, key=lambda b: b.label):
            lines.append(
                "  bound {:<24} derived {!r} {} declared {!r}".format(
                    bound.label,
                    bound.derived,
                    "==" if bound.agrees else "!=",
                    bound.declared,
                )
            )
        if self.tolerance is not None:
            lines.append("  closed-form tolerance: {}".format(self.tolerance))
        return "\n".join(lines)


def analyze_names() -> Tuple[str, ...]:
    """The systems the analyzer covers (the verification surface)."""
    return obligation_systems()


def analyze_system(name: str) -> AnalyzeReport:
    """Run all three static passes over one system."""
    from repro.par.surface import build_system, build_timed

    started = time.perf_counter()
    with _telemetry.span("analyze.discharge"):
        obligations = discharge_system(name)
    for result in obligations:
        _telemetry.incr("analyze.obligations")
        _telemetry.incr("analyze." + result.verdict.value.lower())

    bounds = derived_bounds(name)
    system = build_system(name)
    ctx = InterferenceContext(
        name=name,
        timed=build_timed(name),
        requirements=_requirement_conditions(name, system),
        bounds=tuple(bounds),
    )
    with _telemetry.span("analyze.interference"):
        report = _apply_waivers(_run("interference", ctx), _interference_waivers(name))
    _telemetry.incr("analyze.findings", len(report))

    return AnalyzeReport(
        system=name,
        obligations=obligations,
        interference=report,
        bounds=bounds,
        tolerance=closed_form_tolerance(name),
        expected_broken=name in _EXPECTED_BROKEN,
        wall=time.perf_counter() - started,
    )


def analyze_all() -> List[AnalyzeReport]:
    return [analyze_system(name) for name in analyze_names()]


# ----------------------------------------------------------------------
# Verdict-cache integration: statically proved mappings let a warm
# ``repro check`` skip the exhaustive sweep.
# ----------------------------------------------------------------------

_CACHE_KIND = "analyze-mapping"


def _proved_labels(report: AnalyzeReport) -> List[str]:
    by_label: Dict[str, List[ObligationResult]] = {}
    for o in report.obligations:
        if o.mapping_label is not None:
            by_label.setdefault(o.mapping_label, []).append(o)
    return sorted(
        label
        for label, results in by_label.items()
        if all(r.verdict is Verdict.PROVED for r in results)
    )


def record_proved_mappings(cache, report: AnalyzeReport) -> List[str]:
    """Store one cache entry per fully-proved mapping; returns the
    labels recorded.  No-op without a cache."""
    labels = _proved_labels(report)
    if cache is None:
        return labels
    version = ruleset_version()
    for label in labels:
        cache.store(
            _CACHE_KIND,
            report.system,
            {"mapping": label, "ruleset": version},
            {
                "ok": True,
                "system": report.system,
                "mapping": label,
                "obligations": sorted(
                    o.obligation
                    for o in report.obligations
                    if o.mapping_label == label
                ),
            },
        )
    return labels


def lookup_static_mapping(cache, system: str, label: str) -> Optional[Dict[str, Any]]:
    """The cached static proof for one mapping, if any.  The key folds
    in the rule-set version and (via the cache fingerprint) the package
    source, so a stale proof is unreachable."""
    if cache is None:
        return None
    hit = cache.lookup(
        _CACHE_KIND, system, {"mapping": label, "ruleset": ruleset_version()}
    )
    if hit and hit.get("ok") and hit.get("mapping") == label:
        return hit
    return None
