"""``repro.cache`` — the content-addressed on-disk verdict cache.

Warm re-runs of lint, check, perturb and bench skip settled work: a
verdict is stored under a key derived from the *dependency closure* of
the modules that produced it
(:func:`~repro.cache.fingerprint.closure_fingerprint`), the engine
version, and the parameters of the check itself — so editing an
unrelated subsystem (say ``repro.serve``) leaves ``check rm`` verdicts
warm, while touching anything the verdict can actually reach (the
system's own modules, the zone engine, …) invalidates it.  See
:mod:`repro.cache.store` for layout and atomicity, and
``docs/performance.md`` for the CI wiring.
"""

from repro.cache.fingerprint import (
    ENGINE_VERSION,
    KIND_ROOTS,
    SYSTEM_SEEDS,
    closure_fingerprint,
    dependency_closure,
    source_fingerprint,
    verdict_key,
)
from repro.cache.store import (
    DEFAULT_CACHE_DIR,
    BackendError,
    DirBackend,
    VerdictCache,
    cache_enabled,
    default_cache,
)

__all__ = [
    "ENGINE_VERSION",
    "KIND_ROOTS",
    "SYSTEM_SEEDS",
    "closure_fingerprint",
    "dependency_closure",
    "source_fingerprint",
    "verdict_key",
    "DEFAULT_CACHE_DIR",
    "BackendError",
    "DirBackend",
    "VerdictCache",
    "cache_enabled",
    "default_cache",
]
