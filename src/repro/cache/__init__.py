"""``repro.cache`` — the content-addressed on-disk verdict cache.

Warm re-runs of lint, check, perturb and bench skip settled work: a
verdict is stored under a key derived from the *whole package source*
(:func:`~repro.cache.fingerprint.source_fingerprint`), the engine
version, and the parameters of the check itself — so any code change
invalidates everything, while an unchanged tree answers from disk in
microseconds.  See :mod:`repro.cache.store` for layout and atomicity,
and ``docs/performance.md`` for the CI wiring.
"""

from repro.cache.fingerprint import ENGINE_VERSION, source_fingerprint, verdict_key
from repro.cache.store import (
    DEFAULT_CACHE_DIR,
    BackendError,
    DirBackend,
    VerdictCache,
    cache_enabled,
    default_cache,
)

__all__ = [
    "ENGINE_VERSION",
    "source_fingerprint",
    "verdict_key",
    "DEFAULT_CACHE_DIR",
    "BackendError",
    "DirBackend",
    "VerdictCache",
    "cache_enabled",
    "default_cache",
]
