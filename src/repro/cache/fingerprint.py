"""Content-addressing for the verdict cache.

A cached verdict is only reusable while *nothing that produced it*
changed.  The fingerprint therefore hashes the entire ``repro`` package
source (every ``.py`` under the installed package root, sorted by
relative path, path and bytes both fed to SHA-256) together with
:data:`ENGINE_VERSION` — a manual escape hatch for when semantics
change without a source diff (e.g. a data-file format).  Any edit to
any module invalidates every entry at once: coarse, but sound, and
exactly the key CI uses for its ``actions/cache`` restore.

:func:`verdict_key` then derives one entry's address from the
fingerprint plus the job's own identity: kind, system, and canonical
JSON of the parameters that feed the check (budget caps, seeds, grid…).
The *engine* (serial/parallel) is deliberately **not** part of the key:
the engines are byte-identical by construction (and tested to be), so
either may consume a verdict the other produced.
"""

from __future__ import annotations

import hashlib
import json
import os
from fractions import Fraction
from typing import Any, Dict, Optional

__all__ = ["ENGINE_VERSION", "source_fingerprint", "verdict_key"]

#: Bump to invalidate every cached verdict without touching source.
ENGINE_VERSION = 1

#: ``source root -> hex digest`` memo; the package source cannot change
#: under a running process, so one walk per process suffices.
_FINGERPRINTS: Dict[str, str] = {}


def source_fingerprint(root: Optional[str] = None) -> str:
    """SHA-256 over the ``repro`` package source + engine version."""
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    cached = _FINGERPRINTS.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update("engine:{}".format(ENGINE_VERSION).encode("ascii"))
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                sources.append(os.path.join(dirpath, filename))
    sources.sort(key=lambda path: os.path.relpath(path, root))
    for path in sources:
        digest.update(b"\x00")
        digest.update(os.path.relpath(path, root).encode("utf-8"))
        digest.update(b"\x00")
        with open(path, "rb") as fh:
            digest.update(fh.read())
    _FINGERPRINTS[root] = digest.hexdigest()
    return _FINGERPRINTS[root]


def _canonical(value: Any) -> Any:
    """Project key parts to canonical plain JSON: exact fractions as
    ``"p/q"`` strings, dicts sorted by :func:`json.dumps` later, any
    other non-primitive stringified via ``str``."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, Fraction):
        return "{}/{}".format(value.numerator, value.denominator)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    return str(value)


def verdict_key(kind: str, system: str, parts: Dict[str, Any]) -> str:
    """The content address of one verdict: SHA-256 of the source
    fingerprint + kind + system + canonical parameter JSON."""
    body = {
        "fingerprint": source_fingerprint(),
        "kind": kind,
        "system": system,
        "parts": _canonical(parts),
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
