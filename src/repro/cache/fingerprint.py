"""Content-addressing for the verdict cache.

A cached verdict is only reusable while *nothing that produced it*
changed.  Verdict keys therefore fold in a **dependency-closure
fingerprint**: every module is hashed individually, an AST-level import
graph is extracted once per process, and each ``(kind, system)`` pair
is fingerprinted over just the modules its computation can actually
reach — the kind's engine modules (:data:`KIND_ROOTS`), the system's
defining modules (:data:`SYSTEM_SEEDS`), and everything they
transitively import.  Editing ``repro.serve`` no longer invalidates a
cached ``check rm`` verdict; editing ``repro.systems.resource_manager``
or ``repro.zones.dbm`` still does.

Three properties keep this sound:

* **Name-level resolution through the systems package.**  Registry
  modules (``repro.par.surface``, ``repro.lint.targets``, …) import
  *every* system, which at module granularity would weld all systems
  together.  Imports into ``repro.systems``'s package ``__init__``\\ s
  are resolved per-name to the defining submodule, and edges into
  system modules are then admitted only for the system under test
  (plus its genuine intra-``systems`` dependencies, which are followed
  transitively — e.g. ``interrupt`` depends on ``resource_manager``).
* **Whole-package fallback.**  An unknown kind or system (a bench
  profile like ``serve-throughput``, a fuzz shard) falls back to the
  closure over *all* modules — exactly the old whole-package key, so
  unknown work is never under-keyed.
* **ENGINE_VERSION escape hatch.**  Orchestration-only modules
  (``repro.cli``, ``repro.runner``, ``repro.serve``, ``repro.dist``)
  are deliberately outside the closures of the kinds they drive; a
  semantic change there (or in any non-``.py`` input) must bump
  :data:`ENGINE_VERSION`, which invalidates every entry at once.

:func:`source_fingerprint` (the old whole-package hash) is retained —
CI still uses it as its ``actions/cache`` restore key, and it remains
the fallback fingerprint.  :func:`verdict_key` derives one entry's
address from the closure fingerprint plus the job's own identity:
kind, system, and canonical JSON of the parameters that feed the check
(budget caps, seeds, grid…).  The *engine* (serial/parallel) is
deliberately **not** part of the key: the engines are byte-identical
by construction (and tested to be), so either may consume a verdict
the other produced.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from fractions import Fraction
from typing import Any, Dict, FrozenSet, Iterable, Optional, Set, Tuple

__all__ = [
    "ENGINE_VERSION",
    "KIND_ROOTS",
    "SYSTEM_SEEDS",
    "closure_fingerprint",
    "dependency_closure",
    "source_fingerprint",
    "verdict_key",
]

#: Bump to invalidate every cached verdict without touching source.
#: v2: flat-matrix zone engine + dependency-closure fingerprints.
ENGINE_VERSION = 2

#: ``kind -> package-relative module/package roots`` of the computation
#: that produces the verdict.  A root naming a package pulls in every
#: module under it.  Kinds absent here fall back to the whole package.
KIND_ROOTS: Dict[str, Tuple[str, ...]] = {
    "lint": ("lint",),
    "analyze": ("analyze",),
    "analyze-mapping": ("analyze",),
    "check": ("analyze", "core", "faults", "ioa", "par.surface"),
    "perturb": ("faults",),
    "bench": ("obs.bench",),
    "fuzz": ("gen",),
}

#: ``system -> package-relative modules defining it`` inside the
#: partitioned ``systems`` package.  Intra-``systems`` imports of these
#: seeds are followed transitively, so only entry modules are listed.
#: ``gen:*`` names are handled structurally (see :func:`_allowed`);
#: systems absent here fall back to the whole package.
SYSTEM_SEEDS: Dict[str, Tuple[str, ...]] = {
    "rm": ("systems.resource_manager", "systems.mappings_rm"),
    "relay": ("systems.signal_relay", "systems.mappings_relay"),
    "fischer": ("systems.extensions.fischer",),
    "fischer-tight": ("systems.extensions.fischer",),
    "peterson": ("systems.extensions.peterson",),
    "tournament": ("systems.extensions.tournament",),
    "chain": ("systems.extensions.chain",),
    "request-grant": ("systems.extensions.request_grant",),
    "interrupt": ("systems.extensions.interrupt_manager",),
}

#: ``source root -> hex digest`` memo; the package source cannot change
#: under a running process, so one walk per process suffices.
_FINGERPRINTS: Dict[str, str] = {}

#: ``(root, kind-or-*, system-class) -> hex digest`` memo for closures.
_CLOSURE_FINGERPRINTS: Dict[Tuple[str, str, str], str] = {}

#: ``root -> scan`` memo (module hashes + import graph).
_SCANS: Dict[str, "_Scan"] = {}


def source_fingerprint(root: Optional[str] = None) -> str:
    """SHA-256 over the ``repro`` package source + engine version.

    The whole-package hash: any edit anywhere changes it.  Still used
    as CI's ``actions/cache`` restore key and as the fallback
    fingerprint for unknown kinds/systems."""
    root = _default_root(root)
    cached = _FINGERPRINTS.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update("engine:{}".format(ENGINE_VERSION).encode("ascii"))
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                sources.append(os.path.join(dirpath, filename))
    sources.sort(key=lambda path: os.path.relpath(path, root))
    for path in sources:
        digest.update(b"\x00")
        digest.update(os.path.relpath(path, root).encode("utf-8"))
        digest.update(b"\x00")
        with open(path, "rb") as fh:
            digest.update(fh.read())
    _FINGERPRINTS[root] = digest.hexdigest()
    return _FINGERPRINTS[root]


# ----------------------------------------------------------------------
# Module scan: per-module hashes + AST import graph
# ----------------------------------------------------------------------


class _Scan:
    """One walk of a package root: per-module content hashes, the
    intra-package import graph (name-resolved through the partitioned
    ``systems`` ``__init__``\\ s), and the partition metadata."""

    __slots__ = (
        "package",
        "hashes",
        "edges",
        "barrier_inits",
        "opaque_inits",
    )

    def __init__(self, package: str):
        self.package = package
        #: dotted module name -> sha256 hex of its source bytes
        self.hashes: Dict[str, str] = {}
        #: dotted module name -> imported dotted module names
        self.edges: Dict[str, Set[str]] = {}
        #: partitioned package ``__init__``\\ s whose re-exports were
        #: all name-resolved — their own edges need not be followed.
        self.barrier_inits: Set[str] = set()
        #: partitioned ``__init__``\\ s with at least one unresolved
        #: import — followed conservatively.
        self.opaque_inits: Set[str] = set()

    # -- partition helpers ------------------------------------------------

    @property
    def systems_prefix(self) -> str:
        return self.package + ".systems"

    def partitioned(self, module: str) -> bool:
        """True for modules inside the per-system partition (everything
        under ``<pkg>.systems``, the package ``__init__``\\ s included)."""
        prefix = self.systems_prefix
        return module == prefix or module.startswith(prefix + ".")

    def under(self, prefix: str) -> Tuple[str, ...]:
        """All scanned modules at or under a dotted prefix."""
        return tuple(
            name
            for name in self.hashes
            if name == prefix or name.startswith(prefix + ".")
        )


def _default_root(root: Optional[str]) -> str:
    if root is None:
        import repro

        return os.path.dirname(os.path.abspath(repro.__file__))
    return os.path.abspath(root)


def _module_name(package: str, relpath: str) -> str:
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join([package] + parts)


def _scan(root: str) -> _Scan:
    cached = _SCANS.get(root)
    if cached is not None:
        return cached
    package = os.path.basename(root.rstrip(os.sep)) or "repro"
    scan = _Scan(package)
    paths: Dict[str, str] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            name = _module_name(package, os.path.relpath(path, root))
            paths[name] = path
    for name, path in paths.items():
        with open(path, "rb") as fh:
            source = fh.read()
        scan.hashes[name] = hashlib.sha256(source).hexdigest()
        scan.edges[name] = set()
        tree = _import_tree(source, path)
        if tree is None:
            # Unparseable sources can't contribute edges; the content
            # hash still tracks them wherever they land in a closure.
            continue
        _collect_edges(scan, name, tree)
    # Resolve re-exports through partitioned package __init__s so a
    # registry's `from <pkg>.systems import X` points at X's defining
    # module instead of welding every system together.
    _resolve_init_edges(scan)
    _SCANS[root] = scan
    return scan


#: Lines that can *start* an import statement (indentation included:
#: lazy in-function imports count — they still affect behaviour).
_IMPORT_LINE = re.compile(rb"^\s*(?:from|import)\s")


def _import_tree(source: bytes, path: str) -> Optional[ast.Module]:
    """The module's import statements as a (tiny) parsed AST.

    Parsing whole files just to read their imports costs ~0.4s over
    the package — 100x the hashing itself — so candidate lines are
    sliced out lexically first (an ``import``/``from`` line plus its
    parenthesised or backslash continuations) and only those are
    parsed.  A docstring line that merely *looks* like an import
    either parses (adding a phantom edge — sound, closures only grow)
    or fails, which demotes the module to a full parse: lexical
    shortcuts can only ever widen a closure, never drop a real import.
    """
    statements = []
    lines = source.splitlines()
    index, total = 0, len(lines)
    while index < total:
        line = lines[index]
        index += 1
        if not _IMPORT_LINE.match(line):
            continue
        statement = [line.strip()]
        depth = line.count(b"(") - line.count(b")")
        while (depth > 0 or statement[-1].endswith(b"\\")) and index < total:
            if statement[-1].endswith(b"\\"):
                statement[-1] = statement[-1][:-1]
            extra = lines[index]
            index += 1
            depth += extra.count(b"(") - extra.count(b")")
            statement.append(extra.strip())
        statements.append(b" ".join(statement))
    nodes = []
    for statement in statements:
        try:
            parsed = ast.parse(statement.decode("utf-8", "replace"))
        except SyntaxError:
            # Not actually an import (docstring text, broken slice):
            # re-parse the whole module rather than risk dropping one.
            try:
                return ast.parse(source, filename=path)
            except SyntaxError:
                return None
        nodes.extend(parsed.body)
    return ast.Module(body=nodes, type_ignores=[])


def _collect_edges(scan: _Scan, name: str, tree: ast.AST) -> None:
    """Raw intra-package import edges of one module (whole AST: lazy
    in-function imports count — they still affect behaviour)."""
    package, edges = scan.package, scan.edges[name]
    prefix = package + "."
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                if target == package or target.startswith(prefix):
                    edges.add(target)
        elif isinstance(node, ast.ImportFrom):
            # Package sources use absolute imports throughout; a
            # relative import (level>0) is resolved against `name`.
            base = node.module or ""
            if node.level:
                anchor = name.split(".")
                anchor = anchor[: len(anchor) - node.level + 1]
                base = ".".join(anchor + ([base] if base else []))
            if not (base == package or base.startswith(prefix)):
                continue
            edges.add(base)
            for alias in node.names:
                # `from P import sub` where P.sub is a module.
                edges.add("{}.{}".format(base, alias.name))


def _resolve_init_edges(scan: _Scan) -> None:
    """Split each edge into real-module edges; name-resolve edges that
    point *through* a partitioned ``__init__`` at a re-exported name."""
    modules = scan.hashes
    # Export maps of partitioned package __init__s: name -> module.
    exports: Dict[str, Dict[str, str]] = {}
    for init in [m for m in modules if scan.partitioned(m) and scan.under(m) != (m,)]:
        table: Dict[str, str] = {}
        ok = True
        # The __init__'s own raw edges look like `P.sub.Name` for
        # `from P.sub import Name`; invert them via the AST again —
        # cheaper to reuse the speculative edges: `P.sub` is a module,
        # `P.sub.Name` is not, so map Name -> P.sub.
        for edge in scan.edges.get(init, ()):
            if edge in modules:
                continue
            owner, _, exported = edge.rpartition(".")
            if owner in modules and owner != init:
                table[exported] = owner
            else:
                ok = False
        exports[init] = table
        (scan.barrier_inits if ok else scan.opaque_inits).add(init)
    for name, raw in scan.edges.items():
        resolved: Set[str] = set()
        for edge in raw:
            if edge in modules:
                resolved.add(edge)
                continue
            owner, _, leaf = edge.rpartition(".")
            if owner not in modules:
                continue
            resolved.add(owner)
            mapped = exports.get(owner, {}).get(leaf)
            if mapped is not None:
                resolved.add(mapped)
            elif owner in scan.barrier_inits and scan.partitioned(owner):
                # A name the export map doesn't know: stop treating
                # this __init__ as a barrier.
                scan.barrier_inits.discard(owner)
                scan.opaque_inits.add(owner)
        scan.edges[name] = resolved


# ----------------------------------------------------------------------
# Closures
# ----------------------------------------------------------------------


def _allowed(scan: _Scan, system: str) -> Optional[FrozenSet[str]]:
    """The partitioned modules admissible for one system: its seeds
    plus their transitive intra-``systems`` dependencies, plus the
    (barrier) package ``__init__``\\ s.  ``None`` = unknown system →
    caller falls back to the whole package."""
    seeds: Iterable[str]
    if system.startswith("gen:"):
        # Generated systems are built by <pkg>.gen, whose families
        # import their building-block systems directly — those edges
        # *are* the seed set.
        gen_modules = scan.under(scan.package + ".gen")
        if not gen_modules:
            return None
        seeds = {
            edge
            for mod in gen_modules
            for edge in scan.edges.get(mod, ())
            if scan.partitioned(edge)
        }
    else:
        relative = SYSTEM_SEEDS.get(system)
        if relative is None:
            return None
        seeds = ["{}.{}".format(scan.package, mod) for mod in relative]
        if any(seed not in scan.hashes for seed in seeds):
            return None
    allowed: Set[str] = set()
    frontier = [s for s in seeds if s in scan.hashes]
    while frontier:
        module = frontier.pop()
        if module in allowed:
            continue
        allowed.add(module)
        if module in scan.barrier_inits:
            continue
        frontier.extend(
            e for e in scan.edges.get(module, ()) if scan.partitioned(e)
        )
    # The package __init__s are thin re-export shims every import path
    # crosses; keep them in-key so editing them stays invalidating.
    for init in (scan.systems_prefix, scan.systems_prefix + ".extensions"):
        if init in scan.hashes:
            allowed.add(init)
    return frozenset(allowed)


def dependency_closure(
    kind: str, system: str, root: Optional[str] = None
) -> Tuple[str, ...]:
    """The sorted module names whose content keys a ``(kind, system)``
    verdict.  Unknown kinds/systems close over the whole package."""
    root = _default_root(root)
    scan = _scan(root)
    roots = KIND_ROOTS.get(kind)
    allowed = _allowed(scan, system)
    if roots is None or allowed is None:
        return tuple(sorted(scan.hashes))
    frontier: Set[str] = set(allowed)
    for rel in roots:
        absolute = "{}.{}".format(scan.package, rel)
        expanded = scan.under(absolute)
        if not expanded:
            # A kind root that no longer exists: the map is stale —
            # fall back to the whole package rather than under-key.
            return tuple(sorted(scan.hashes))
        frontier.update(expanded)
    if system.startswith("gen:"):
        frontier.update(scan.under(scan.package + ".gen"))
    # The package root __init__ configures import-time behaviour for
    # everything; it is always in-key.
    frontier.add(scan.package)
    closure: Set[str] = set()
    stack = [m for m in frontier if m in scan.hashes]
    while stack:
        module = stack.pop()
        if module in closure:
            continue
        closure.add(module)
        if module in scan.barrier_inits:
            # Fully name-resolved re-export shim: every import through
            # it already points at the defining submodule.
            continue
        for edge in scan.edges.get(module, ()):
            if scan.partitioned(edge) and edge not in allowed:
                continue
            if edge in scan.hashes and edge not in closure:
                stack.append(edge)
    return tuple(sorted(closure))


def closure_fingerprint(
    kind: str, system: str, root: Optional[str] = None
) -> str:
    """SHA-256 over engine version + the ``(module, hash)`` pairs of
    the ``(kind, system)`` dependency closure."""
    root = _default_root(root)
    # All gen systems share one closure; unknowns share the fallback.
    if kind in KIND_ROOTS:
        if system.startswith("gen:"):
            system_class = "gen:*"
        elif system in SYSTEM_SEEDS:
            system_class = system
        else:
            system_class = "*"
        memo_kind = kind
    else:
        memo_kind, system_class = "*", "*"
    memo_key = (root, memo_kind, system_class)
    cached = _CLOSURE_FINGERPRINTS.get(memo_key)
    if cached is not None:
        return cached
    scan = _scan(root)
    digest = hashlib.sha256()
    digest.update("engine:{}".format(ENGINE_VERSION).encode("ascii"))
    for module in dependency_closure(kind, system, root):
        digest.update(b"\x00")
        digest.update(module.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(scan.hashes[module].encode("ascii"))
    _CLOSURE_FINGERPRINTS[memo_key] = digest.hexdigest()
    return _CLOSURE_FINGERPRINTS[memo_key]


def _canonical(value: Any) -> Any:
    """Project key parts to canonical plain JSON: exact fractions as
    ``"p/q"`` strings, dicts sorted by :func:`json.dumps` later, any
    other non-primitive stringified via ``str``."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, Fraction):
        return "{}/{}".format(value.numerator, value.denominator)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    return str(value)


def verdict_key(kind: str, system: str, parts: Dict[str, Any]) -> str:
    """The content address of one verdict: SHA-256 of the dependency-
    closure fingerprint + kind + system + canonical parameter JSON."""
    body = {
        "fingerprint": closure_fingerprint(kind, system),
        "kind": kind,
        "system": system,
        "parts": _canonical(parts),
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
