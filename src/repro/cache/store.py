"""The content-addressed on-disk verdict cache.

Layout: ``<root>/v1/<first two hex chars>/<full key>.json``, one entry
per settled verdict, written atomically (temp file + ``os.replace``) so
concurrent writers — campaign workers share the directory — can only
ever race to write *identical* content.  Entries are self-describing
(:func:`repro.serialize.cache_entry_to_json`); anything torn, stale or
misfiled reads as a miss and is recomputed, never trusted.

What gets cached is a policy of the callers, with two hard rules
enforced here: only plain-JSON payloads, and only under a real key from
:func:`repro.cache.fingerprint.verdict_key` (so every entry is
invalidated by any source change).  Callers additionally skip storing
inconclusive outcomes (budget cuts) and chaos-mode jobs.

Telemetry: ``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
``cache.errors`` counters on the active recorder, mirrored as instance
counts for CLI summaries.

Environment: ``REPRO_CACHE=0`` disables the cache process-wide;
``REPRO_CACHE_DIR`` moves the root (default ``.repro-cache``).
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Dict, Optional

from repro.cache.fingerprint import verdict_key
from repro.obs import instrument as _telemetry
from repro.serialize import (
    SerializationError,
    cache_entry_from_json,
    cache_entry_to_json,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "BackendError",
    "DirBackend",
    "VerdictCache",
    "cache_enabled",
    "default_cache",
]

#: Default on-disk root, relative to the working directory (CI persists
#: exactly this path via ``actions/cache``).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory per entry-schema version: a future format bump reads
#: from a fresh namespace instead of tripping over old entries.
_VERSION_DIR = "v1"

_FALSE_WORDS = ("0", "false", "no", "off")


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` is set to 0/false/no/off."""
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _FALSE_WORDS


def default_cache(enabled: Optional[bool] = None) -> Optional["VerdictCache"]:
    """The environment-configured cache, or ``None`` when disabled.

    ``enabled`` overrides the environment gate (the CLI's ``--no-cache``
    passes ``False``); the root honours ``REPRO_CACHE_DIR``.
    """
    on = cache_enabled() if enabled is None else enabled
    if not on:
        return None
    return VerdictCache(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class BackendError(Exception):
    """A storage backend failed in a way that is not a plain miss.

    The :class:`VerdictCache` converts these into ``cache.errors``-
    counted no-ops — a cache must never fail the check it fronts."""


class DirBackend:
    """The original on-disk layout as a pluggable backend.

    Layout: ``<root>/v1/<first two hex chars>/<full key>.json``; writes
    are atomic (temp file + ``os.replace``), so concurrent writers can
    only ever race to write *identical* content.
    """

    kind = "dir"

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, _VERSION_DIR, key[:2], key + ".json")

    def get(self, key: str) -> Optional[str]:
        """The stored entry text, or ``None`` when absent/unreadable."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                return fh.read()
        except OSError:
            return None

    def put(self, key: str, text: str) -> None:
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise BackendError(str(exc))

    def describe(self) -> str:
        return "dir:{}".format(self.root)


class VerdictCache:
    """One verdict pool: lookup and store by ``(kind, system, parts)``.

    Storage is delegated to a *backend* (``get``/``put`` of entry text
    by key).  The default backend is the original per-key-file directory
    store; :mod:`repro.serve.backends` adds a sqlite backend safe for
    many serving processes sharing one pool.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR, backend=None):
        self.backend = backend if backend is not None else DirBackend(root)
        self.root = getattr(self.backend, "root", root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    # -- operations ----------------------------------------------------

    def lookup(
        self, kind: str, system: str, parts: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The cached payload for this work item, or ``None`` (a miss —
        also on any unreadable/torn/mismatched entry)."""
        key = verdict_key(kind, system, parts)
        try:
            text = self.backend.get(key)
            if text is None:
                self.misses += 1
                _telemetry.incr("cache.misses")
                return None
            payload = cache_entry_from_json(text, expected_key=key)
        except (BackendError, SerializationError):
            self.errors += 1
            self.misses += 1
            _telemetry.incr("cache.errors")
            _telemetry.incr("cache.misses")
            return None
        self.hits += 1
        _telemetry.incr("cache.hits")
        return payload

    def store(
        self,
        kind: str,
        system: str,
        parts: Dict[str, Any],
        payload: Dict[str, Any],
    ) -> bool:
        """Persist ``payload`` under this work item's key; atomic, and
        failure (read-only disk, full disk) degrades to a no-op with a
        ``cache.errors`` count — a cache must never fail the check."""
        key = verdict_key(kind, system, parts)
        meta = {"kind": kind, "system": system}
        try:
            text = cache_entry_to_json(key, payload, meta)
            self.backend.put(key, text)
        except (BackendError, SerializationError):
            self.errors += 1
            _telemetry.incr("cache.errors")
            return False
        self.stores += 1
        _telemetry.incr("cache.stores")
        return True

    # -- reporting -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }

    def stats_line(self) -> str:
        return "cache: hits={hits} misses={misses} stores={stores} errors={errors}".format(
            **self.stats()
        )

    def __repr__(self) -> str:
        return "<VerdictCache {} {}>".format(
            self.backend.describe()
            if hasattr(self.backend, "describe")
            else self.root,
            self.stats(),
        )
