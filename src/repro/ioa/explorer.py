"""Reachability exploration and invariant checking for I/O automata.

A breadth-first explorer over the (possibly truncated) reachable state
space, with parent pointers so that invariant violations come with a
concrete counterexample execution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import AutomatonError
from repro.ioa.automaton import IOAutomaton
from repro.ioa.execution import Execution
from repro.obs import instrument as _telemetry
from repro.par import engine as _engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults uses ioa)
    from repro.faults.budget import Budget
    from repro.par.engine import EngineConfig

__all__ = [
    "ExplorationResult",
    "explore",
    "iter_steps",
    "InvariantReport",
    "check_invariant",
]


@dataclass
class ExplorationResult:
    """Outcome of a (possibly truncated) breadth-first exploration."""

    reachable: Set[Hashable]
    transitions_explored: int
    truncated: bool
    #: parent[s] = (predecessor state, action) for counterexample paths.
    parents: Dict[Hashable, Tuple[Optional[Hashable], Optional[Hashable]]] = field(
        default_factory=dict
    )
    #: True when a Budget (not max_states/max_depth) stopped the search.
    exhausted_budget: bool = False

    def path_to(self, state: Hashable) -> Execution:
        """Reconstruct an execution from a start state to ``state``."""
        if state not in self.parents:
            raise AutomatonError("state {!r} was not reached".format(state))
        states: List[Hashable] = [state]
        actions: List[Hashable] = []
        current = state
        while True:
            pred, action = self.parents[current]
            if pred is None:
                break
            states.append(pred)
            actions.append(action)
            current = pred
        states.reverse()
        actions.reverse()
        return Execution(tuple(states), tuple(actions))


def explore(
    automaton: IOAutomaton,
    max_states: int = 100_000,
    max_depth: Optional[int] = None,
    budget: Optional["Budget"] = None,
    engine: Optional["EngineConfig"] = None,
) -> ExplorationResult:
    """Breadth-first exploration of the reachable states of ``automaton``.

    Stops (and flags ``truncated``) when ``max_states`` distinct states
    have been found or ``max_depth`` levels expanded.  A ``budget``
    additionally caps states, transitions and wall time; budget
    exhaustion returns the partial result with ``exhausted_budget`` set
    rather than raising.

    ``engine`` picks the execution engine (``"serial"``, ``"parallel"``
    or an :class:`~repro.par.engine.EngineConfig`); ``None`` defers to
    the process-wide choice.  The parallel engine returns byte-identical
    results — see :mod:`repro.par.explorer`.
    """
    config = _engine.resolve_engine(engine)
    if config.parallel:
        from repro.par.explorer import explore_parallel

        return explore_parallel(
            automaton,
            max_states=max_states,
            max_depth=max_depth,
            budget=budget,
            config=config,
        )
    rec = _telemetry._ACTIVE
    result = ExplorationResult(reachable=set(), transitions_explored=0, truncated=False)
    frontier: deque = deque()
    for s0 in automaton.start_states():
        if s0 not in result.reachable:
            if budget is not None and not budget.charge_state():
                result.truncated = True
                result.exhausted_budget = True
                return result
            result.reachable.add(s0)
            result.parents[s0] = (None, None)
            frontier.append((s0, 0))
    if rec is not None:
        rec.incr("explore.states", len(result.reachable))
    while frontier:
        if rec is not None:
            rec.gauge("explore.frontier", len(frontier))
        state, depth = frontier.popleft()
        if max_depth is not None and depth >= max_depth:
            result.truncated = True
            continue
        for action in automaton.enabled_actions(state):
            for post in automaton.transitions(state, action):
                if budget is not None and not budget.charge_step():
                    result.truncated = True
                    result.exhausted_budget = True
                    return result
                result.transitions_explored += 1
                if rec is not None:
                    rec.incr("explore.transitions")
                if post in result.reachable:
                    continue
                if len(result.reachable) >= max_states:
                    result.truncated = True
                    return result
                if budget is not None and not budget.charge_state():
                    result.truncated = True
                    result.exhausted_budget = True
                    return result
                result.reachable.add(post)
                result.parents[post] = (state, action)
                if rec is not None:
                    rec.incr("explore.states")
                frontier.append((post, depth + 1))
    return result


def iter_steps(
    automaton: IOAutomaton, states: Iterable[Hashable]
) -> Iterable[Tuple[Hashable, Hashable, Hashable]]:
    """All steps ``(pre, action, post)`` of ``automaton`` whose
    pre-state lies in ``states`` — typically the reachable set of an
    :func:`explore` call.  Used by invariant-style checks (e.g. the lint
    pass) that quantify over reachable steps."""
    for state in states:
        for action in automaton.enabled_actions(state):
            for post in automaton.transitions(state, action):
                yield (state, action, post)


@dataclass(frozen=True)
class InvariantReport:
    """The result of an invariant check."""

    holds: bool
    states_checked: int
    truncated: bool
    counterexample: Optional[Execution] = None
    #: True when a Budget stopped the check before the frontier emptied;
    #: ``holds`` then covers only the states actually visited.
    exhausted_budget: bool = False

    def __bool__(self) -> bool:
        return self.holds


def check_invariant(
    automaton: IOAutomaton,
    predicate: Callable[[Hashable], bool],
    max_states: int = 100_000,
    max_depth: Optional[int] = None,
    budget: Optional["Budget"] = None,
    engine: Optional["EngineConfig"] = None,
) -> InvariantReport:
    """Check ``predicate`` on every reachable state (up to the limits).

    On a violation, returns a report carrying a shortest-path
    counterexample execution.  With a ``budget``, exhaustion yields a
    partial ``holds=True`` report flagged ``exhausted_budget`` — the
    invariant held on everything visited, but the check is inconclusive.

    ``engine`` selects the serial or parallel engine exactly as in
    :func:`explore`; verdicts and counterexamples are identical.
    """
    config = _engine.resolve_engine(engine)
    if config.parallel:
        from repro.par.explorer import check_invariant_parallel

        return check_invariant_parallel(
            automaton,
            predicate,
            max_states=max_states,
            max_depth=max_depth,
            budget=budget,
            config=config,
        )
    rec = _telemetry._ACTIVE
    result = ExplorationResult(reachable=set(), transitions_explored=0, truncated=False)
    frontier: deque = deque()
    checked = 0
    for s0 in automaton.start_states():
        if s0 in result.reachable:
            continue
        if budget is not None and not budget.charge_state():
            return InvariantReport(True, checked, True, None, exhausted_budget=True)
        result.reachable.add(s0)
        result.parents[s0] = (None, None)
        checked += 1
        if rec is not None:
            rec.incr("explore.states")
        if not predicate(s0):
            return InvariantReport(False, checked, False, result.path_to(s0))
        frontier.append((s0, 0))
    truncated = False
    while frontier:
        if rec is not None:
            rec.gauge("explore.frontier", len(frontier))
        state, depth = frontier.popleft()
        if max_depth is not None and depth >= max_depth:
            truncated = True
            continue
        for action in automaton.enabled_actions(state):
            for post in automaton.transitions(state, action):
                if budget is not None and not budget.charge_step():
                    return InvariantReport(True, checked, True, None, exhausted_budget=True)
                if rec is not None:
                    rec.incr("explore.transitions")
                if post in result.reachable:
                    continue
                if len(result.reachable) >= max_states:
                    return InvariantReport(True, checked, True, None)
                if budget is not None and not budget.charge_state():
                    return InvariantReport(True, checked, True, None, exhausted_budget=True)
                result.reachable.add(post)
                result.parents[post] = (state, action)
                checked += 1
                if rec is not None:
                    rec.incr("explore.states")
                if not predicate(post):
                    return InvariantReport(False, checked, truncated, result.path_to(post))
                frontier.append((post, depth + 1))
    return InvariantReport(True, checked, truncated, None)
