"""Actions and action signatures for I/O automata (paper Section 2.1).

An I/O automaton classifies its actions as *input*, *output* or
*internal*; input and output actions are *external*, output and
internal actions are *locally controlled*.  Actions themselves may be
any hashable value; :class:`Act` is a convenience for parameterised
action families such as ``SIGNAL_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Tuple

from repro.errors import SignatureError

__all__ = ["Act", "act", "Kind", "ActionSignature"]


@dataclass(frozen=True, order=True)
class Act:
    """A named, optionally parameterised action token.

    ``Act("SIGNAL", 3)`` models the paper's ``SIGNAL_3``.  Instances are
    immutable, hashable and ordered, so they can live in signatures,
    partitions and explored state sets.
    """

    name: str
    args: Tuple[Hashable, ...] = ()

    def __repr__(self) -> str:
        if not self.args:
            return self.name
        return "{}({})".format(self.name, ", ".join(repr(a) for a in self.args))


def act(name: str, *args: Hashable) -> Act:
    """Build an :class:`Act`; ``act("SIGNAL", i)`` reads like the paper."""
    return Act(name, tuple(args))


class Kind:
    """Action kind constants (string-valued for readable reprs)."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"

    ALL = (INPUT, OUTPUT, INTERNAL)


@dataclass(frozen=True)
class ActionSignature:
    """The action signature of an I/O automaton.

    Holds three disjoint finite sets of actions.  ``external`` and
    ``locally_controlled`` follow the paper's terminology: external =
    input ∪ output, locally controlled = output ∪ internal.
    """

    inputs: FrozenSet[Hashable] = field(default_factory=frozenset)
    outputs: FrozenSet[Hashable] = field(default_factory=frozenset)
    internals: FrozenSet[Hashable] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", frozenset(self.inputs))
        object.__setattr__(self, "outputs", frozenset(self.outputs))
        object.__setattr__(self, "internals", frozenset(self.internals))
        overlap = (
            (self.inputs & self.outputs)
            | (self.inputs & self.internals)
            | (self.outputs & self.internals)
        )
        if overlap:
            raise SignatureError(
                "actions appear under more than one kind: {!r}".format(sorted(map(repr, overlap)))
            )

    @property
    def external(self) -> FrozenSet[Hashable]:
        """Input and output actions (visible in behaviors)."""
        return self.inputs | self.outputs

    @property
    def locally_controlled(self) -> FrozenSet[Hashable]:
        """Output and internal actions (the ones the partition covers)."""
        return self.outputs | self.internals

    @property
    def all_actions(self) -> FrozenSet[Hashable]:
        """Every action in the signature."""
        return self.inputs | self.outputs | self.internals

    def kind_of(self, action: Hashable) -> str:
        """Return the :class:`Kind` of ``action``.

        Raises :class:`SignatureError` if the action is not in the
        signature at all.
        """
        if action in self.inputs:
            return Kind.INPUT
        if action in self.outputs:
            return Kind.OUTPUT
        if action in self.internals:
            return Kind.INTERNAL
        raise SignatureError("action {!r} is not in the signature".format(action))

    def contains(self, action: Hashable) -> bool:
        """True if ``action`` belongs to any of the three sets."""
        return action in self.inputs or action in self.outputs or action in self.internals

    def is_external(self, action: Hashable) -> bool:
        """True if ``action`` is an input or output action."""
        return action in self.inputs or action in self.outputs

    def is_locally_controlled(self, action: Hashable) -> bool:
        """True if ``action`` is an output or internal action."""
        return action in self.outputs or action in self.internals

    def hide(self, actions: Iterable[Hashable]) -> "ActionSignature":
        """Reclassify the given output actions as internal (the paper's
        hiding operator); non-output actions in ``actions`` are rejected."""
        hidden = frozenset(actions)
        not_outputs = hidden - self.outputs
        if not_outputs:
            raise SignatureError(
                "cannot hide non-output actions: {!r}".format(sorted(map(repr, not_outputs)))
            )
        return ActionSignature(
            inputs=self.inputs,
            outputs=self.outputs - hidden,
            internals=self.internals | hidden,
        )

    def describe(self) -> str:
        """Human-readable one-line summary, for diagnostics."""
        return "inputs={} outputs={} internals={}".format(
            sorted(map(repr, self.inputs)),
            sorted(map(repr, self.outputs)),
            sorted(map(repr, self.internals)),
        )
