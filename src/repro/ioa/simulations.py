"""Untimed possibilities mappings between I/O automata.

The paper's technique extends the classical mapping method for safety
properties of asynchronous systems ([La83, Ly86, LT87] in its
introduction).  This module provides that classical substrate in the
same-action-alphabet form the paper builds on:

a *possibilities mapping* ``f`` from automaton ``A`` to automaton ``B``
maps each state of ``A`` to a set of states of ``B`` such that

1. every start state of ``A`` has some start state of ``B`` in its
   image, and
2. for every reachable step ``(s', π, s)`` of ``A`` and every reachable
   ``u' ∈ f(s')``, some step ``(u', π, u)`` of ``B`` has ``u ∈ f(s)``.

The existence of such a mapping implies every schedule of ``A`` is a
schedule of ``B`` — checked here both ways: an exhaustive checker for
the mapping conditions over finite automata, and a brute-force schedule
inclusion comparator used to validate the implication in tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, Optional, Set, Tuple

from repro.errors import MappingError
from repro.ioa.automaton import IOAutomaton

__all__ = [
    "UntimedCheckOutcome",
    "check_possibilities_mapping",
    "schedules_up_to",
    "schedule_inclusion",
]


@dataclass(frozen=True)
class UntimedCheckOutcome:
    """Result of an exhaustive possibilities-mapping check."""

    ok: bool
    pairs_checked: int
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


def check_possibilities_mapping(
    source: IOAutomaton,
    target: IOAutomaton,
    mapping: Callable[[Hashable], FrozenSet[Hashable]],
    max_pairs: int = 200_000,
) -> UntimedCheckOutcome:
    """Exhaustively check conditions 1–2 over the reachable pairs
    ``(s, u)`` with ``u ∈ f(s)``.

    Pairs are explored forward: starting from start-state pairs, each
    source step is matched in the target and the reached pair enqueued,
    so only *jointly reachable* pairs generate obligations — exactly the
    quantification in the classical definition.
    """
    frontier: deque = deque()
    seen: Set[Tuple[Hashable, Hashable]] = set()
    target_starts = set(target.start_states())
    for s0 in source.start_states():
        image = mapping(s0)
        witnesses = [u0 for u0 in image if u0 in target_starts]
        if not witnesses:
            return UntimedCheckOutcome(
                False,
                0,
                "start condition fails: f({!r}) contains no start state of "
                "{}".format(s0, target.name),
            )
        for u0 in witnesses:
            pair = (s0, u0)
            if pair not in seen:
                seen.add(pair)
                frontier.append(pair)
    checked = 0
    while frontier:
        s_pre, u_pre = frontier.popleft()
        for action in source.enabled_actions(s_pre):
            for s_post in source.transitions(s_pre, action):
                checked += 1
                matches = [
                    u_post
                    for u_post in target.transitions(u_pre, action)
                    if u_post in mapping(s_post)
                ]
                if not matches:
                    return UntimedCheckOutcome(
                        False,
                        checked,
                        "step condition fails: ({!r}, {!r}, {!r}) with witness "
                        "{!r} has no matching step into f({!r})".format(
                            s_pre, action, s_post, u_pre, s_post
                        ),
                    )
                for u_post in matches:
                    pair = (s_post, u_post)
                    if pair in seen:
                        continue
                    if len(seen) >= max_pairs:
                        return UntimedCheckOutcome(
                            True, checked, "truncated at {} pairs".format(max_pairs)
                        )
                    seen.add(pair)
                    frontier.append(pair)
    return UntimedCheckOutcome(True, checked, "exhaustive")


def schedules_up_to(automaton: IOAutomaton, depth: int) -> FrozenSet[Tuple]:
    """All schedules (action sequences) of length ≤ ``depth``."""
    results: Set[Tuple] = set()
    frontier = [((), s0) for s0 in automaton.start_states()]
    results.add(())
    for _ in range(depth):
        next_frontier = []
        for sched, state in frontier:
            for action in automaton.enabled_actions(state):
                for post in automaton.transitions(state, action):
                    extended = sched + (action,)
                    results.add(extended)
                    next_frontier.append((extended, post))
        frontier = next_frontier
    return frozenset(results)


def schedule_inclusion(
    source: IOAutomaton, target: IOAutomaton, depth: int
) -> Optional[Tuple]:
    """Brute-force check that every schedule of ``source`` up to
    ``depth`` is a schedule of ``target``; returns a counterexample
    schedule or None.

    Exponential — a validation oracle for the mapping checker, not a
    verification method.
    """
    source_schedules = schedules_up_to(source, depth)
    target_schedules = schedules_up_to(target, depth)
    missing = source_schedules - target_schedules
    if missing:
        return min(missing, key=lambda sched: (len(sched), repr(sched)))
    return None
