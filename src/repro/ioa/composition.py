"""Composition and hiding of I/O automata (paper Section 2.1).

Composition requires *strong compatibility*: no action is an output of
more than one component, internal actions are not shared, and (trivially
here) no action is shared by infinitely many components.  A composed
state is the tuple of component states; on a shared action every
component having it in its signature takes a step simultaneously.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import CompositionError
from repro.ioa.actions import ActionSignature
from repro.ioa.automaton import IOAutomaton
from repro.ioa.partition import Partition, PartitionClass

__all__ = ["Composition", "compose", "HiddenAutomaton", "hide"]


class Composition(IOAutomaton):
    """The composition of finitely many strongly compatible automata."""

    def __init__(self, components: Sequence[IOAutomaton], name: str = "composition"):
        if not components:
            raise CompositionError("cannot compose zero components")
        self.name = name
        self._components: Tuple[IOAutomaton, ...] = tuple(components)
        self._check_strong_compatibility()
        inputs: set = set()
        outputs: set = set()
        internals: set = set()
        for comp in self._components:
            sig = comp.signature
            outputs |= sig.outputs
            internals |= sig.internals
            inputs |= sig.inputs
        # An input of one component driven by another's output becomes
        # an output of the composition, not an input.
        inputs -= outputs
        self._signature = ActionSignature(
            inputs=frozenset(inputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )
        self._partition = self._merge_partitions()
        # Per-component incidence: which components participate in each action.
        self._participants: Dict[Hashable, Tuple[int, ...]] = {}
        for idx, comp in enumerate(self._components):
            for action in comp.signature.all_actions:
                self._participants.setdefault(action, ())
                self._participants[action] += (idx,)

    def _check_strong_compatibility(self) -> None:
        for i, a in enumerate(self._components):
            for j, b in enumerate(self._components):
                if i >= j:
                    continue
                shared_outputs = a.signature.outputs & b.signature.outputs
                if shared_outputs:
                    raise CompositionError(
                        "components {} and {} share output actions {!r}".format(
                            a.name, b.name, sorted(map(repr, shared_outputs))
                        )
                    )
                leaked = (a.signature.internals & b.signature.all_actions) | (
                    b.signature.internals & a.signature.all_actions
                )
                if leaked:
                    raise CompositionError(
                        "internal actions shared between {} and {}: {!r}".format(
                            a.name, b.name, sorted(map(repr, leaked))
                        )
                    )

    def _merge_partitions(self) -> Partition:
        classes: List[PartitionClass] = []
        seen_names: set = set()
        for comp in self._components:
            for cls in comp.partition:
                if cls.name in seen_names:
                    raise CompositionError(
                        "partition class name collision on {!r}; rename a "
                        "component class before composing".format(cls.name)
                    )
                seen_names.add(cls.name)
                classes.append(cls)
        return Partition(classes)

    @property
    def components(self) -> Tuple[IOAutomaton, ...]:
        return self._components

    def component_index(self, name: str) -> int:
        """Index of the component named ``name`` in composed state tuples."""
        for idx, comp in enumerate(self._components):
            if comp.name == name:
                return idx
        raise CompositionError("no component named {!r}".format(name))

    def component_state(self, state: Tuple, name: str) -> Hashable:
        """Project a composed state onto the named component."""
        return state[self.component_index(name)]

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    @property
    def partition(self) -> Partition:
        return self._partition

    def start_states(self) -> Iterator[Tuple]:
        per_component = [list(comp.start_states()) for comp in self._components]
        for combo in itertools.product(*per_component):
            yield tuple(combo)

    def transitions(self, state: Tuple, action: Hashable) -> Iterator[Tuple]:
        participants = self._participants.get(action)
        if participants is None:
            return iter(())
        return self._transitions(state, action, participants)

    def _transitions(
        self, state: Tuple, action: Hashable, participants: Tuple[int, ...]
    ) -> Iterator[Tuple]:
        choices: List[List[Hashable]] = []
        for idx in participants:
            posts = list(self._components[idx].transitions(state[idx], action))
            if not posts:
                # A locally controlled participant is not enabled: the
                # composed action cannot occur.
                return
            choices.append(posts)
        for combo in itertools.product(*choices):
            post = list(state)
            for idx, comp_post in zip(participants, combo):
                post[idx] = comp_post
            yield tuple(post)

    def is_enabled(self, state: Tuple, action: Hashable) -> bool:
        participants = self._participants.get(action)
        if participants is None:
            return False
        return all(
            self._components[idx].is_enabled(state[idx], action) for idx in participants
        )


def compose(*components: IOAutomaton, name: str = "composition") -> Composition:
    """Convenience wrapper: ``compose(a, b, c)``."""
    return Composition(components, name=name)


class HiddenAutomaton(IOAutomaton):
    """The paper's hiding operator: reclassify outputs as internal.

    Steps, states and the partition are untouched; only the signature
    changes (and hence which actions appear in behaviors).
    """

    def __init__(self, inner: IOAutomaton, hidden: Iterable[Hashable]):
        self._inner = inner
        self._signature = inner.signature.hide(hidden)
        self.name = "hide({})".format(inner.name)

    @property
    def inner(self) -> IOAutomaton:
        return self._inner

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    @property
    def partition(self) -> Partition:
        return self._inner.partition

    def start_states(self) -> Iterator[Hashable]:
        return self._inner.start_states()

    def transitions(self, state: Hashable, action: Hashable) -> Iterable[Hashable]:
        return self._inner.transitions(state, action)

    def is_enabled(self, state: Hashable, action: Hashable) -> bool:
        return self._inner.is_enabled(state, action)


def hide(automaton: IOAutomaton, actions: Iterable[Hashable]) -> HiddenAutomaton:
    """Hide the given output actions of ``automaton``."""
    return HiddenAutomaton(automaton, actions)
