"""The I/O automaton abstraction (paper Section 2.1).

An :class:`IOAutomaton` is a *description*: a signature, a set of start
states, a transition relation and a partition of the locally controlled
actions.  States are arbitrary hashable values; the automaton object
itself is immutable and holds no execution state, which makes
exploration, simulation and lockstep replay straightforward.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import AutomatonError, NotEnabledError
from repro.ioa.actions import ActionSignature
from repro.ioa.partition import Partition, PartitionClass

__all__ = ["IOAutomaton", "Step"]

#: A step is a (pre-state, action, post-state) triple, as in the paper.
Step = Tuple[Hashable, Hashable, Hashable]


class IOAutomaton(ABC):
    """Abstract base class for I/O automata.

    Subclasses implement :meth:`start_states`, :attr:`signature`,
    :meth:`transitions` and (for timed use) :attr:`partition`.  All
    derived notions — enabledness, steps, enabled classes — are provided
    here.
    """

    #: Optional human-readable name, used in diagnostics.
    name: str = "automaton"

    @property
    @abstractmethod
    def signature(self) -> ActionSignature:
        """The action signature of the automaton."""

    @abstractmethod
    def start_states(self) -> Iterator[Hashable]:
        """Iterate over the start states (``start(A)``)."""

    @abstractmethod
    def transitions(self, state: Hashable, action: Hashable) -> Iterable[Hashable]:
        """All post-states ``s`` with ``(state, action, s) ∈ steps(A)``.

        Must return an empty iterable when the action is not enabled.
        Input actions must be enabled in every state (input enabledness);
        :meth:`check_input_enabled` spot-checks this.
        """

    @property
    def partition(self) -> Partition:
        """``part(A)``: by default, one singleton class per locally
        controlled action.  Subclasses modelling multi-action processes
        override this."""
        return Partition.singletons(sorted(self.signature.locally_controlled, key=repr))

    # ------------------------------------------------------------------
    # Derived notions
    # ------------------------------------------------------------------

    def is_enabled(self, state: Hashable, action: Hashable) -> bool:
        """True if some step ``(state, action, s)`` exists."""
        for _ in self.transitions(state, action):
            return True
        return False

    def enabled_actions(self, state: Hashable) -> List[Hashable]:
        """All actions enabled in ``state`` (signature order is not
        significant; the result is sorted by repr for determinism)."""
        return [
            a
            for a in sorted(self.signature.all_actions, key=repr)
            if self.is_enabled(state, a)
        ]

    def is_step(self, pre: Hashable, action: Hashable, post: Hashable) -> bool:
        """True if ``(pre, action, post) ∈ steps(A)``."""
        return any(post == s for s in self.transitions(pre, action))

    def unique_transition(self, state: Hashable, action: Hashable) -> Hashable:
        """The unique post-state for a deterministic action.

        Raises :class:`NotEnabledError` if no step exists and
        :class:`AutomatonError` if the action is nondeterministic here.
        """
        posts = list(self.transitions(state, action))
        if not posts:
            raise NotEnabledError(
                "action {!r} is not enabled in state {!r} of {}".format(
                    action, state, self.name
                )
            )
        if len(posts) > 1:
            raise AutomatonError(
                "action {!r} is nondeterministic in state {!r} of {} "
                "({} successors)".format(action, state, self.name, len(posts))
            )
        return posts[0]

    def class_enabled(self, state: Hashable, cls: PartitionClass) -> bool:
        """``state ∈ enabled(A, C)``: some action of class ``cls`` is
        enabled."""
        return any(self.is_enabled(state, a) for a in cls.actions)

    def enabled_classes(self, state: Hashable) -> List[PartitionClass]:
        """The partition classes with an enabled action in ``state``."""
        return [c for c in self.partition if self.class_enabled(state, c)]

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def validate(self, sample_states: Optional[Iterable[Hashable]] = None) -> None:
        """Cheap well-formedness checks: the partition matches the
        signature, and input enabledness holds on ``sample_states``
        (default: the start states)."""
        self.partition.validate_against(self.signature)
        states = list(sample_states) if sample_states is not None else list(self.start_states())
        self.check_input_enabled(states)

    def check_input_enabled(self, states: Iterable[Hashable]) -> None:
        """Assert that every input action is enabled in each given state."""
        for state in states:
            for action in self.signature.inputs:
                if not self.is_enabled(state, action):
                    raise AutomatonError(
                        "{} is not input-enabled: input {!r} disabled in "
                        "state {!r}".format(self.name, action, state)
                    )

    def __repr__(self) -> str:
        return "<{} {!r}>".format(type(self).__name__, self.name)
