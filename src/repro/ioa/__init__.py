"""I/O automaton substrate (paper Section 2.1).

Exports the kernel types: actions and signatures, partitions, the
:class:`IOAutomaton` base class, guarded and table automata,
composition/hiding, executions and the reachability explorer.
"""

from repro.ioa.actions import Act, ActionSignature, Kind, act
from repro.ioa.automaton import IOAutomaton, Step
from repro.ioa.composition import Composition, HiddenAutomaton, compose, hide
from repro.ioa.execution import Execution, validate_execution
from repro.ioa.explorer import (
    ExplorationResult,
    InvariantReport,
    check_invariant,
    explore,
)
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition, PartitionClass
from repro.ioa.rename import RenamedAutomaton, rename_actions
from repro.ioa.simulations import (
    UntimedCheckOutcome,
    check_possibilities_mapping,
    schedule_inclusion,
    schedules_up_to,
)
from repro.ioa.table import TableAutomaton

__all__ = [
    "Act",
    "act",
    "Kind",
    "ActionSignature",
    "IOAutomaton",
    "Step",
    "Partition",
    "PartitionClass",
    "ActionSpec",
    "GuardedAutomaton",
    "TableAutomaton",
    "Composition",
    "compose",
    "HiddenAutomaton",
    "hide",
    "RenamedAutomaton",
    "rename_actions",
    "UntimedCheckOutcome",
    "check_possibilities_mapping",
    "schedule_inclusion",
    "schedules_up_to",
    "Execution",
    "validate_execution",
    "ExplorationResult",
    "explore",
    "InvariantReport",
    "check_invariant",
]
