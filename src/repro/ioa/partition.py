"""Partitions of locally controlled actions (paper Section 2.1).

``part(A)`` groups the locally controlled actions of an automaton into
equivalence classes, one per underlying "process".  Boundmaps (Section
2.2) assign a time interval to each class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.errors import PartitionError
from repro.ioa.actions import ActionSignature

__all__ = ["PartitionClass", "Partition"]


@dataclass(frozen=True)
class PartitionClass:
    """A named equivalence class of locally controlled actions."""

    name: str
    actions: FrozenSet[Hashable]

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", frozenset(self.actions))
        if not self.actions:
            raise PartitionError("partition class {!r} is empty".format(self.name))

    def __contains__(self, action: Hashable) -> bool:
        return action in self.actions

    def __repr__(self) -> str:
        return "PartitionClass({!r}, {{{}}})".format(
            self.name, ", ".join(sorted(repr(a) for a in self.actions))
        )


class Partition:
    """An ordered collection of disjoint :class:`PartitionClass` objects
    that together cover a signature's locally controlled actions.

    The class order is preserved (it fixes the layout of ``Ft``/``Lt``
    components in predictive-time states).
    """

    def __init__(self, classes: Iterable[PartitionClass]):
        self._classes: Tuple[PartitionClass, ...] = tuple(classes)
        seen_names: Dict[str, PartitionClass] = {}
        seen_actions: Dict[Hashable, PartitionClass] = {}
        for cls in self._classes:
            if cls.name in seen_names:
                raise PartitionError("duplicate partition class name {!r}".format(cls.name))
            seen_names[cls.name] = cls
            for action in cls.actions:
                if action in seen_actions:
                    raise PartitionError(
                        "action {!r} appears in classes {!r} and {!r}".format(
                            action, seen_actions[action].name, cls.name
                        )
                    )
                seen_actions[action] = cls
        self._by_name = seen_names
        self._by_action = seen_actions

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, Iterable[Hashable]]]) -> "Partition":
        """Build a partition from ``(name, actions)`` pairs."""
        return cls(PartitionClass(name, frozenset(actions)) for name, actions in pairs)

    @classmethod
    def singletons(cls, actions: Iterable[Hashable]) -> "Partition":
        """One class per action, named by the action's repr — the default
        partition when the modeller does not group actions."""
        return cls(PartitionClass(repr(a), frozenset([a])) for a in actions)

    @property
    def classes(self) -> Tuple[PartitionClass, ...]:
        return self._classes

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._classes)

    def __iter__(self):
        return iter(self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    def __getitem__(self, name: str) -> PartitionClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise PartitionError("no partition class named {!r}".format(name)) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def class_of(self, action: Hashable) -> Optional[PartitionClass]:
        """The class containing ``action``, or None (e.g. for inputs)."""
        return self._by_action.get(action)

    def covered_actions(self) -> FrozenSet[Hashable]:
        """The union of all classes."""
        return frozenset(self._by_action)

    def validate_against(self, signature: ActionSignature) -> None:
        """Check the paper's requirement: the partition covers exactly the
        locally controlled actions of ``signature``."""
        covered = self.covered_actions()
        local = signature.locally_controlled
        missing = local - covered
        extra = covered - local
        if missing:
            raise PartitionError(
                "locally controlled actions not covered by the partition: "
                "{!r}".format(sorted(map(repr, missing)))
            )
        if extra:
            raise PartitionError(
                "partition covers actions that are not locally controlled: "
                "{!r}".format(sorted(map(repr, extra)))
            )

    def __repr__(self) -> str:
        return "Partition([{}])".format(", ".join(repr(c.name) for c in self._classes))
