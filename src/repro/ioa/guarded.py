"""Precondition/effect style automata (the paper's pseudocode notation).

The paper describes each automaton by listing, per action, a
*precondition* (the set of states in which the action is enabled) and
an *effect* (the state change).  :class:`GuardedAutomaton` is the
executable form of that notation.  Input actions have no precondition —
they are enabled everywhere, which makes the automaton input-enabled by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Iterator, Optional, Sequence

from repro.errors import AutomatonError
from repro.ioa.actions import ActionSignature, Kind
from repro.ioa.automaton import IOAutomaton
from repro.ioa.partition import Partition

__all__ = ["ActionSpec", "GuardedAutomaton"]


def _identity(state: Hashable) -> Hashable:
    return state


@dataclass(frozen=True)
class ActionSpec:
    """One action's precondition/effect entry.

    ``precondition`` must be omitted (None) for input actions and may be
    omitted for always-enabled local actions.  Exactly one of ``effect``
    (deterministic) or ``effects`` (nondeterministic, yields post-states)
    may be given; by default the action has no effect on the state.
    """

    action: Hashable
    kind: str
    precondition: Optional[Callable[[Hashable], bool]] = None
    effect: Optional[Callable[[Hashable], Hashable]] = None
    effects: Optional[Callable[[Hashable], Iterable[Hashable]]] = None

    def __post_init__(self) -> None:
        if self.kind not in Kind.ALL:
            raise AutomatonError("unknown action kind {!r}".format(self.kind))
        if self.kind == Kind.INPUT and self.precondition is not None:
            raise AutomatonError(
                "input action {!r} must not have a precondition "
                "(inputs are always enabled)".format(self.action)
            )
        if self.effect is not None and self.effects is not None:
            raise AutomatonError(
                "action {!r}: give either effect or effects, not both".format(self.action)
            )

    def enabled(self, state: Hashable) -> bool:
        """True if this action is enabled in ``state``."""
        if self.precondition is None:
            return True
        return bool(self.precondition(state))

    def successors(self, state: Hashable) -> Iterator[Hashable]:
        """Post-states of taking this action from ``state`` (assumes
        enabled)."""
        if self.effects is not None:
            for post in self.effects(state):
                yield post
        else:
            yield (self.effect or _identity)(state)


class GuardedAutomaton(IOAutomaton):
    """An I/O automaton assembled from :class:`ActionSpec` entries.

    Parameters
    ----------
    name:
        Diagnostic name.
    start:
        The start states (any non-empty finite sequence of hashables).
    specs:
        One :class:`ActionSpec` per action.
    partition:
        Optional explicit :class:`Partition`; defaults to singleton
        classes.
    """

    def __init__(
        self,
        name: str,
        start: Sequence[Hashable],
        specs: Sequence[ActionSpec],
        partition: Optional[Partition] = None,
    ):
        self.name = name
        self._start = tuple(start)
        if not self._start:
            raise AutomatonError("{}: at least one start state is required".format(name))
        self._specs: Dict[Hashable, ActionSpec] = {}
        inputs, outputs, internals = set(), set(), set()
        for spec in specs:
            if spec.action in self._specs:
                raise AutomatonError(
                    "{}: duplicate spec for action {!r}".format(name, spec.action)
                )
            self._specs[spec.action] = spec
            {Kind.INPUT: inputs, Kind.OUTPUT: outputs, Kind.INTERNAL: internals}[
                spec.kind
            ].add(spec.action)
        self._signature = ActionSignature(
            inputs=frozenset(inputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )
        self._partition = partition
        if partition is not None:
            partition.validate_against(self._signature)

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    @property
    def partition(self) -> Partition:
        if self._partition is not None:
            return self._partition
        return super().partition

    def start_states(self) -> Iterator[Hashable]:
        return iter(self._start)

    def spec(self, action: Hashable) -> ActionSpec:
        """The :class:`ActionSpec` for ``action``."""
        try:
            return self._specs[action]
        except KeyError:
            raise AutomatonError(
                "{} has no action {!r}".format(self.name, action)
            ) from None

    def transitions(self, state: Hashable, action: Hashable) -> Iterator[Hashable]:
        spec = self._specs.get(action)
        if spec is None or not spec.enabled(state):
            return iter(())
        return spec.successors(state)

    def is_enabled(self, state: Hashable, action: Hashable) -> bool:
        # Cheaper than the base class: consult the guard, not the effects.
        spec = self._specs.get(action)
        return spec is not None and spec.enabled(state)
