"""Action renaming for I/O automata.

Composing two copies of the same automaton (e.g. two relay lines, or a
clock shared by several managers) needs their action names pulled
apart; :class:`RenamedAutomaton` applies an injective action map while
leaving states, steps and the partition structure untouched.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping

from repro.errors import AutomatonError
from repro.ioa.actions import ActionSignature
from repro.ioa.automaton import IOAutomaton
from repro.ioa.partition import Partition, PartitionClass

__all__ = ["RenamedAutomaton", "rename_actions"]


class RenamedAutomaton(IOAutomaton):
    """``inner`` with actions renamed through an injective map.

    Actions absent from the map keep their names.  Partition classes
    keep their names unless ``class_map`` renames them (needed when two
    renamed copies are composed, since class names must stay unique).
    """

    def __init__(
        self,
        inner: IOAutomaton,
        action_map: Mapping[Hashable, Hashable],
        class_map: Mapping[str, str] = None,
        name: str = None,
    ):
        self._inner = inner
        self._forward: Dict[Hashable, Hashable] = dict(action_map)
        unknown = set(self._forward) - set(inner.signature.all_actions)
        if unknown:
            raise AutomatonError(
                "renaming refers to unknown actions: {!r}".format(
                    sorted(map(repr, unknown))
                )
            )
        images = [self._forward.get(a, a) for a in inner.signature.all_actions]
        if len(set(images)) != len(images):
            raise AutomatonError("action renaming must be injective on the signature")
        self._backward: Dict[Hashable, Hashable] = {}
        for action in inner.signature.all_actions:
            self._backward[self._forward.get(action, action)] = action
        sig = inner.signature
        self._signature = ActionSignature(
            inputs=frozenset(self._forward.get(a, a) for a in sig.inputs),
            outputs=frozenset(self._forward.get(a, a) for a in sig.outputs),
            internals=frozenset(self._forward.get(a, a) for a in sig.internals),
        )
        class_map = dict(class_map or {})
        unknown_classes = set(class_map) - set(inner.partition.names)
        if unknown_classes:
            raise AutomatonError(
                "renaming refers to unknown classes: {!r}".format(sorted(unknown_classes))
            )
        self._partition = Partition(
            PartitionClass(
                class_map.get(cls.name, cls.name),
                frozenset(self._forward.get(a, a) for a in cls.actions),
            )
            for cls in inner.partition
        )
        self.name = name or "renamed({})".format(inner.name)

    @property
    def inner(self) -> IOAutomaton:
        return self._inner

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    @property
    def partition(self) -> Partition:
        return self._partition

    def start_states(self) -> Iterator[Hashable]:
        return self._inner.start_states()

    def transitions(self, state: Hashable, action: Hashable) -> Iterable[Hashable]:
        original = self._backward.get(action)
        if original is None:
            return iter(())
        return self._inner.transitions(state, original)

    def is_enabled(self, state: Hashable, action: Hashable) -> bool:
        original = self._backward.get(action)
        return original is not None and self._inner.is_enabled(state, original)


def rename_actions(
    automaton: IOAutomaton,
    action_map: Mapping[Hashable, Hashable],
    class_map: Mapping[str, str] = None,
    name: str = None,
) -> RenamedAutomaton:
    """Convenience wrapper around :class:`RenamedAutomaton`."""
    return RenamedAutomaton(automaton, action_map, class_map=class_map, name=name)
