"""Executions, schedules and behaviors of I/O automata (Section 2.1).

An execution is an alternating sequence ``s0, π1, s1, …`` with every
``(s_{i-1}, π_i, s_i)`` a step.  ``sched`` drops the states; ``beh``
additionally drops internal actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Sequence, Tuple

from repro.errors import ExecutionError
from repro.ioa.automaton import IOAutomaton, Step

__all__ = ["Execution", "validate_execution"]


@dataclass(frozen=True)
class Execution:
    """A finite execution fragment: ``len(states) == len(actions) + 1``."""

    states: Tuple[Hashable, ...]
    actions: Tuple[Hashable, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "states", tuple(self.states))
        object.__setattr__(self, "actions", tuple(self.actions))
        if len(self.states) != len(self.actions) + 1:
            raise ExecutionError(
                "an execution with {} actions needs {} states, got {}".format(
                    len(self.actions), len(self.actions) + 1, len(self.states)
                )
            )

    @classmethod
    def initial(cls, state: Hashable) -> "Execution":
        """The zero-step execution sitting in ``state``."""
        return cls((state,), ())

    @property
    def first_state(self) -> Hashable:
        return self.states[0]

    @property
    def last_state(self) -> Hashable:
        return self.states[-1]

    def __len__(self) -> int:
        """Number of steps."""
        return len(self.actions)

    def steps(self) -> Iterator[Step]:
        """Iterate over the (pre, action, post) steps."""
        for i, action in enumerate(self.actions):
            yield (self.states[i], action, self.states[i + 1])

    def extend(self, action: Hashable, state: Hashable) -> "Execution":
        """A new execution with one more step appended."""
        return Execution(self.states + (state,), self.actions + (action,))

    def sched(self) -> Tuple[Hashable, ...]:
        """The schedule: the action subsequence."""
        return self.actions

    def beh(self, automaton: IOAutomaton) -> Tuple[Hashable, ...]:
        """The behavior: external actions only."""
        sig = automaton.signature
        return tuple(a for a in self.actions if sig.is_external(a))

    def prefix(self, steps: int) -> "Execution":
        """The prefix with the given number of steps."""
        if steps < 0 or steps > len(self.actions):
            raise ExecutionError("prefix length {} out of range".format(steps))
        return Execution(self.states[: steps + 1], self.actions[:steps])


def validate_execution(
    automaton: IOAutomaton, execution: Execution, require_start: bool = True
) -> None:
    """Check that ``execution`` really is an execution (fragment) of
    ``automaton``; raises :class:`ExecutionError` otherwise."""
    if require_start and execution.first_state not in set(automaton.start_states()):
        raise ExecutionError(
            "execution does not begin in a start state of {}: {!r}".format(
                automaton.name, execution.first_state
            )
        )
    for index, (pre, action, post) in enumerate(execution.steps()):
        if not automaton.is_step(pre, action, post):
            raise ExecutionError(
                "step {} = ({!r}, {!r}, {!r}) is not a step of {}".format(
                    index, pre, action, post, automaton.name
                )
            )
