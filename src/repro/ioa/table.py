"""Explicit-table automata: finite automata given by enumerated steps.

Useful for tests, tiny specification automata and for materialising the
result of an exploration.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AutomatonError
from repro.ioa.actions import ActionSignature
from repro.ioa.automaton import IOAutomaton, Step
from repro.ioa.partition import Partition

__all__ = ["TableAutomaton"]


class TableAutomaton(IOAutomaton):
    """An I/O automaton defined by an explicit finite list of steps."""

    def __init__(
        self,
        name: str,
        signature: ActionSignature,
        start: Sequence[Hashable],
        steps: Iterable[Step],
        partition: Optional[Partition] = None,
        states: Optional[Iterable[Hashable]] = None,
    ):
        self.name = name
        self._signature = signature
        self._start = tuple(start)
        if not self._start:
            raise AutomatonError("{}: at least one start state is required".format(name))
        self._table: Dict[Tuple[Hashable, Hashable], List[Hashable]] = {}
        known_states = set(states) if states is not None else None
        for pre, action, post in steps:
            if not signature.contains(action):
                raise AutomatonError(
                    "{}: step uses action {!r} outside the signature".format(name, action)
                )
            if known_states is not None and (pre not in known_states or post not in known_states):
                raise AutomatonError(
                    "{}: step ({!r}, {!r}, {!r}) uses a state outside the "
                    "declared state set".format(name, pre, action, post)
                )
            self._table.setdefault((pre, action), []).append(post)
        self._partition = partition
        if partition is not None:
            partition.validate_against(signature)

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    @property
    def partition(self) -> Partition:
        if self._partition is not None:
            return self._partition
        return super().partition

    def start_states(self) -> Iterator[Hashable]:
        return iter(self._start)

    def transitions(self, state: Hashable, action: Hashable) -> Iterator[Hashable]:
        return iter(self._table.get((state, action), ()))

    def all_steps(self) -> Iterator[Step]:
        """Iterate over every step in the table."""
        for (pre, action), posts in self._table.items():
            for post in posts:
                yield (pre, action, post)

    def states_mentioned(self) -> frozenset:
        """All states that appear in the table or as start states."""
        seen = set(self._start)
        for (pre, _), posts in self._table.items():
            seen.add(pre)
            seen.update(posts)
        return frozenset(seen)
