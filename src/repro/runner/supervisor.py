"""The campaign supervisor: isolated workers, watchdogs, retry/backoff.

Long verification campaigns die in boring ways — one worker segfaults,
one zone build hangs, one result gets garbled — and a campaign that
dies with them wastes everything already proved.  The
:class:`Supervisor` makes the fleet survive its members:

- every job runs in a **spawned subprocess** (fresh interpreter; a
  worker can die arbitrarily without touching the supervisor);
- every attempt has a **wall-clock watchdog**; an overdue worker is
  killed and the attempt classified ``timeout``;
- every failure is **classified** (see
  :data:`repro.runner.report.FAILURE_CLASSES`): transient classes are
  retried with capped exponential backoff + deterministic jitter,
  ``budget`` retries escalate the job's
  :class:`~repro.faults.budget.Budget`, and deterministic classes
  (``verdict``, ``error``) are quarantined — retrying would re-prove
  the same failure;
- progress streams to a :class:`~repro.runner.ledger.Ledger`, so a
  killed campaign resumes from its checkpoint instead of restarting;
- worker telemetry snapshots are folded into the supervisor's
  :class:`~repro.obs.instrument.Recorder` (``runner.*`` counters,
  per-job timers) — cross-process aggregation via ``Recorder.merge``.

``run()`` always returns a complete :class:`CampaignReport`; it never
raises for anything a worker did.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.obs import instrument as _telemetry
from repro.obs.instrument import Recorder
from repro.runner.jobs import RESULT_SCHEMA_VERSION, Job, execute_job
from repro.runner.ledger import Ledger
from repro.runner.report import TRANSIENT_CLASSES, CampaignReport, JobOutcome

__all__ = [
    "RetryPolicy",
    "Supervisor",
    "CHAOS_MODES",
    "classify_payload",
    "payload_detail",
]

#: The chaos self-test battery: with ``chaos=True`` the supervisor
#: assigns one mode per job, cycling, to the first three jobs — one
#: guaranteed crash, hang, and malformed result per campaign.
CHAOS_MODES = ("crash", "hang", "malformed")


def classify_payload(job_id: str, payload) -> str:
    """Map a worker's (possibly absent or garbled) result payload to a
    failure class from :data:`repro.runner.report.FAILURE_CLASSES`.

    Shared by the campaign :class:`Supervisor` and the serving worker
    pool (:mod:`repro.serve.workers`) so both sides of the repo speak
    one taxonomy: ``malformed`` for anything that is not a current-schema
    payload for this job, ``error`` for an escaped library error,
    ``verdict`` for a completed-and-failed check, ``budget`` for a
    partial (inconclusive) verdict, ``ok`` otherwise.
    """
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != RESULT_SCHEMA_VERSION
        or payload.get("job_id") != job_id
    ):
        return "malformed"
    if payload.get("error"):
        return "error"
    if not payload.get("ok"):
        return "verdict"
    if payload.get("exhausted_budget") and not payload.get("conclusive", True):
        return "budget"
    return "ok"


def payload_detail(payload) -> str:
    """A human-readable one-liner for a classified payload."""
    if isinstance(payload, dict):
        return str(payload.get("detail", ""))
    return "unintelligible worker result: {!r}".format(payload)[:200]


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt ``n`` (0-based, the attempt that just
    failed) is ``min(cap, base · 2ⁿ)`` stretched by up to ``jitter``
    fraction — jitter is drawn from a seeded RNG so campaigns are
    reproducible and retry storms still decorrelate.
    """

    def __init__(
        self,
        max_retries: int = 2,
        base: float = 0.1,
        cap: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base < 0 or cap < 0 or jitter < 0:
            raise ValueError("base, cap and jitter must be >= 0")
        self.max_retries = max_retries
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        return min(self.cap, self.base * (2 ** attempt)) * (
            1.0 + self.jitter * self._rng.random()
        )


@dataclass
class _JobState:
    """Supervisor-side bookkeeping for one job across its attempts."""

    job: Job
    attempt: int = 0
    eligible_at: float = 0.0
    budget_scale: int = 1
    retries: int = 0
    classifications: List[str] = field(default_factory=list)
    wall: float = 0.0


@dataclass
class _Running:
    state: _JobState
    process: Any
    queue: Any
    deadline: float
    started: float


class Supervisor:
    """Runs a job list to a complete :class:`CampaignReport`.

    ``workers >= 1`` is the supervised mode (subprocess isolation +
    watchdogs).  ``workers == 0`` executes jobs inline in this process —
    no isolation, no hang protection, chaos refused — which exists for
    debugging and fast tests of the classification logic only.
    """

    def __init__(
        self,
        jobs: List[Job],
        workers: int = 2,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        ledger: Optional[Ledger] = None,
        chaos: bool = False,
        campaign_id: Optional[str] = None,
        prior_outcomes: Optional[Dict[str, JobOutcome]] = None,
        write_header: bool = True,
        stop_after: Optional[int] = None,
        poll_interval: float = 0.02,
        recorder: Optional[Recorder] = None,
        engine: Optional[str] = None,
        engine_workers: Optional[int] = None,
        cache: Optional[bool] = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if chaos and workers == 0:
            raise ReproError("chaos needs isolated workers (workers >= 1)")
        self.jobs = list(jobs)
        self.workers = workers
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self.ledger = ledger
        self.chaos = chaos
        self.campaign_id = campaign_id or uuid.uuid4().hex[:12]
        self.prior_outcomes = dict(prior_outcomes or {})
        self.write_header = write_header
        self.stop_after = stop_after
        self.poll_interval = poll_interval
        self.engine = engine
        self.engine_workers = engine_workers
        self.cache = cache
        self.recorder = recorder if recorder is not None else Recorder(
            name="runner." + self.campaign_id, max_events=0
        )
        if chaos:
            self.jobs = [
                job.with_chaos(CHAOS_MODES[i % len(CHAOS_MODES)]) if i < len(CHAOS_MODES) else job
                for i, job in enumerate(self.jobs)
            ]
        self._ctx = multiprocessing.get_context("spawn")

    # -- classification ------------------------------------------------

    def _classify_payload(self, state: _JobState, payload) -> str:
        return classify_payload(state.job.job_id, payload)

    def _payload_detail(self, payload) -> str:
        return payload_detail(payload)

    # -- attempt lifecycle ---------------------------------------------

    def _job_body(self, state: _JobState) -> Dict[str, Any]:
        body = state.job.to_dict()
        params = dict(body["params"])
        params["budget_scale"] = state.budget_scale
        params["timeout"] = self.timeout
        # Campaign-wide engine/cache choices travel as job params so
        # they survive the spawn boundary (workers reuse the cache and
        # rebuild the engine from scratch in their fresh interpreters).
        if self.engine is not None:
            params["engine"] = self.engine
            if self.engine_workers is not None:
                params["workers"] = self.engine_workers
        if self.cache is not None:
            params["cache"] = self.cache
        body["params"] = params
        return body

    def _settle(
        self, state: _JobState, classification: str, detail: str, payload
    ) -> Optional[JobOutcome]:
        """Record one classified attempt; returns the terminal outcome
        or ``None`` when the job was rescheduled for retry."""
        state.classifications.append(classification)
        retryable = (
            classification in TRANSIENT_CLASSES
            and state.attempt < self.retry.max_retries
        )
        backoff = self.retry.delay(state.attempt) if retryable else None
        if self.ledger is not None:
            self.ledger.attempt(
                state.job.job_id,
                state.attempt,
                classification,
                detail,
                backoff=backoff,
                budget_scale=state.budget_scale,
            )
        counter = {
            "crash": "runner.crashes",
            "timeout": "runner.timeouts",
            "malformed": "runner.malformed",
            "budget": "runner.budget_cuts",
        }.get(classification)
        if counter is not None:
            self.recorder.incr(counter)
        if isinstance(payload, dict) and isinstance(payload.get("telemetry"), dict):
            self.recorder.merge(payload["telemetry"])
        if retryable:
            if classification == "budget":
                state.budget_scale *= 4
                self.recorder.incr("runner.budget_escalations")
            state.retries += 1
            state.attempt += 1
            state.eligible_at = time.monotonic() + backoff
            self.recorder.incr("runner.retries")
            return None
        return self._terminal(state, classification, detail, payload)

    def _terminal(
        self, state: _JobState, classification: str, detail: str, payload
    ) -> JobOutcome:
        job = state.job
        conclusive = True
        error = payload.get("error") if isinstance(payload, dict) else None
        if classification == "ok":
            if job.expect_failure:
                status, ok = "unexpected-pass", False
                detail = detail or "expected this system to fail; it passed"
            else:
                status, ok = "ok", True
        elif classification == "verdict":
            if job.expect_failure:
                status, ok = "expected-failure", True
            else:
                status, ok = "verdict", False
        elif classification == "budget":
            # Retries (with escalated budgets) ran out: keep the partial
            # verdict, flagged inconclusive, rather than losing the job.
            status = "budget"
            ok = bool(isinstance(payload, dict) and payload.get("ok"))
            conclusive = False
        else:
            status, ok = classification, False
        if not ok or classification in ("verdict", "error"):
            if not ok:
                self.recorder.incr("runner.failed")
            if classification in ("verdict", "error") and not job.expect_failure:
                self.recorder.incr("runner.quarantined")
        outcome = JobOutcome(
            job_id=job.job_id,
            kind=job.kind,
            system=job.system,
            status=status,
            ok=ok,
            attempts=state.attempt + 1,
            retries=state.retries,
            detail=detail,
            wall=state.wall,
            conclusive=conclusive,
            expect_failure=job.expect_failure,
            classifications=list(state.classifications),
            error=error,
        )
        if self.ledger is not None:
            self.ledger.done(outcome)
        return outcome

    # -- execution -----------------------------------------------------

    def _launch(self, state: _JobState) -> _Running:
        from repro.runner.worker import worker_main

        queue = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=worker_main,
            args=(self._job_body(state), state.attempt, queue),
            daemon=True,
        )
        process.start()
        self.recorder.incr("runner.launched")
        now = time.monotonic()
        return _Running(
            state=state,
            process=process,
            queue=queue,
            deadline=now + self.timeout,
            started=now,
        )

    def _reap(self, running: _Running, timed_out: bool):
        """Collect a finished (or overdue) worker into a classification."""
        state = running.state
        state.wall += time.monotonic() - running.started
        payload = None
        if timed_out:
            running.process.terminate()
            running.process.join(0.5)
            if running.process.is_alive():
                running.process.kill()
                running.process.join(1.0)
            classification, detail = "timeout", (
                "watchdog: no result within {:.1f}s".format(self.timeout)
            )
        else:
            running.process.join()
            try:
                payload = None if running.queue.empty() else running.queue.get()
            except Exception as exc:  # torn pipe write from a dying worker
                payload, detail = None, "result unreadable: {}".format(exc)
            if payload is None:
                classification = "crash"
                detail = "worker exited (code {}) without a result".format(
                    running.process.exitcode
                )
            else:
                classification = self._classify_payload(state, payload)
                detail = self._payload_detail(payload)
        if hasattr(running.queue, "close"):
            running.queue.close()
        return self._settle(state, classification, detail, payload)

    def _run_inline(self, state: _JobState) -> Optional[JobOutcome]:
        start = time.monotonic()
        payload = execute_job(Job.from_dict(self._job_body(state)))
        state.wall += time.monotonic() - start
        classification = self._classify_payload(state, payload)
        return self._settle(state, classification, self._payload_detail(payload), payload)

    def run(self) -> CampaignReport:
        """Drive every job to a terminal outcome; never raises for
        worker behaviour.  ``stop_after=N`` (and Ctrl-C) interrupt the
        campaign after ``N`` terminal outcomes — the ledger then holds
        a resumable checkpoint and the report says ``interrupted``."""
        started = time.monotonic()
        self.recorder.incr("runner.jobs", len(self.jobs))
        if self.ledger is not None:
            if self.write_header:
                self.ledger.begin(
                    self.campaign_id,
                    self.jobs,
                    {
                        "workers": self.workers,
                        "timeout": self.timeout,
                        "max_retries": self.retry.max_retries,
                        "chaos": self.chaos,
                    },
                )
            else:
                self.ledger.resume(
                    self.campaign_id, [job.job_id for job in self.jobs]
                )
        pending: List[_JobState] = [_JobState(job=job) for job in self.jobs]
        running: List[_Running] = []
        outcomes: List[JobOutcome] = list(self.prior_outcomes.values())
        settled = 0
        interrupted = False
        try:
            while pending or running:
                if (
                    self.stop_after is not None
                    and settled >= self.stop_after
                    and not running
                ):
                    interrupted = bool(pending)
                    break
                now = time.monotonic()
                stop_launching = (
                    self.stop_after is not None and settled >= self.stop_after
                )
                while (
                    not stop_launching
                    and self.workers > 0
                    and len(running) < self.workers
                ):
                    index = next(
                        (
                            i
                            for i, state in enumerate(pending)
                            if state.eligible_at <= now
                        ),
                        None,
                    )
                    if index is None:
                        break
                    running.append(self._launch(pending.pop(index)))
                if self.workers == 0 and pending and not stop_launching:
                    index = next(
                        (
                            i
                            for i, state in enumerate(pending)
                            if state.eligible_at <= now
                        ),
                        None,
                    )
                    if index is not None:
                        state = pending.pop(index)
                        settled_outcome = self._run_inline(state)
                        if settled_outcome is None:
                            pending.append(state)
                        else:
                            outcomes.append(settled_outcome)
                            settled += 1
                        continue
                reaped = False
                for entry in list(running):
                    now = time.monotonic()
                    finished = not entry.process.is_alive()
                    overdue = not finished and now >= entry.deadline
                    if not finished and not overdue:
                        continue
                    running.remove(entry)
                    reaped = True
                    outcome = self._reap(entry, timed_out=overdue)
                    if outcome is None:
                        pending.append(entry.state)
                    else:
                        outcomes.append(outcome)
                        settled += 1
                if not reaped and (running or pending):
                    time.sleep(self.poll_interval)
        except KeyboardInterrupt:
            interrupted = True
            for entry in running:
                entry.process.terminate()
                entry.process.join(0.5)
        report = CampaignReport(
            campaign_id=self.campaign_id,
            outcomes=outcomes,
            interrupted=interrupted,
            wall=time.monotonic() - started,
        )
        for outcome in outcomes:
            self.recorder.merge(
                {
                    "timers": {
                        "runner.job." + outcome.job_id: {
                            "total_s": outcome.wall,
                            "calls": 1,
                        }
                    }
                }
            )
        report.telemetry = self.recorder.snapshot()
        parent = _telemetry.active()
        if parent is not None and parent is not self.recorder:
            parent.merge(self.recorder)
        if self.ledger is not None:
            self.ledger.end(
                {
                    "ok": report.ok,
                    "interrupted": interrupted,
                    "jobs": len(outcomes),
                    "retries": report.total_retries(),
                    "counts": report.counts(),
                }
            )
        return report
