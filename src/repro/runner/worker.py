"""The crash-isolated side of a supervised campaign.

:func:`worker_main` is the sole entry point a worker subprocess runs
(``multiprocessing`` *spawn* context: a fresh interpreter, no inherited
engine state, so one worker's segfault or runaway recursion cannot
corrupt its siblings or the supervisor).  It executes one job via
:func:`repro.runner.jobs.execute_job` and ships the result payload back
over a queue.

Chaos self-test modes (``--chaos``) are injected *here*, below the
supervisor's recovery machinery, so the recovery paths are proven
against real process misbehaviour rather than mocks:

- ``crash``     — hard ``os._exit`` before producing a result;
- ``hang``      — sleep far past the job's watchdog timeout;
- ``malformed`` — ship a payload the supervisor cannot interpret.

Each mode fires on the first attempt only (``attempt == 0``), so a
retried chaos job demonstrates the full classify → backoff → retry →
success loop.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro.runner.jobs import Job, execute_job

__all__ = ["worker_main", "CRASH_EXIT_CODE"]

#: Deliberate exit code for chaos crashes (distinguishable from a
#: Python traceback's exit 1 in the supervisor's logs, classified the
#: same way).
CRASH_EXIT_CODE = 23


def worker_main(job_body: Dict[str, Any], attempt: int, queue) -> None:
    """Run one job and put the result payload on ``queue``.

    ``job_body`` is ``Job.to_dict()`` output (plain JSON — spawn
    pickles only builtins this way).  Exceptions never propagate:
    :func:`execute_job` converts them into failing payloads, so a
    worker that *exits* without a payload really did die abnormally.
    """
    job = Job.from_dict(job_body)
    if job.chaos and attempt == 0:
        if job.chaos == "crash":
            os._exit(CRASH_EXIT_CODE)
        if job.chaos == "hang":
            # Sleep far past any sane watchdog; the supervisor kills us.
            timeout = float(job.params.get("timeout", 5.0))
            time.sleep(max(60.0, timeout * 20))
            os._exit(CRASH_EXIT_CODE)
        if job.chaos == "malformed":
            queue.put(["not", "a", "result", "payload"])
            return
    queue.put(execute_job(job))
