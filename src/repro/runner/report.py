"""Campaign outcomes: per-job terminal records and the final report.

A supervised campaign (see :mod:`repro.runner.supervisor`) must always
*complete*: whatever workers crash, hang, or return garbage, every job
ends in exactly one terminal :class:`JobOutcome` and the fold of those
outcomes is a :class:`CampaignReport` — built, never raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import Table

__all__ = [
    "FAILURE_CLASSES",
    "TRANSIENT_CLASSES",
    "JobOutcome",
    "CampaignReport",
]

#: The supervisor's failure taxonomy.  ``crash`` — the worker process
#: died without producing a result; ``timeout`` — the per-job watchdog
#: expired and the worker was killed; ``malformed`` — the worker
#: produced a result the supervisor cannot interpret; ``budget`` — the
#: check itself degraded to a partial verdict (``exhausted_budget``);
#: ``verdict`` — the check ran to completion and failed; ``error`` — a
#: structured library error escaped the check; ``ok`` — success.
FAILURE_CLASSES = ("ok", "crash", "timeout", "malformed", "budget", "verdict", "error")

#: Classes worth retrying: process-level losses are presumed transient,
#: and a budget cut is retried with an escalated budget.  ``verdict``
#: and ``error`` are deterministic — retrying re-proves the same
#: failure — so those jobs are quarantined instead.
TRANSIENT_CLASSES = frozenset({"crash", "timeout", "malformed", "budget"})


@dataclass
class JobOutcome:
    """One job's terminal record.

    ``status`` is the last attempt's classification, except for the
    expectation twist: a deliberately-broken system (``expect_failure``)
    that fails on the merits reports ``expected-failure`` and *counts
    as success*, while one that passes reports ``unexpected-pass`` and
    counts as failure.  ``ok`` is the campaign-level success flag.
    """

    job_id: str
    kind: str
    system: str
    status: str
    ok: bool
    attempts: int
    retries: int
    detail: str = ""
    wall: float = 0.0
    conclusive: bool = True
    expect_failure: bool = False
    #: Per-attempt classification history, e.g. ``["crash", "ok"]``.
    classifications: List[str] = field(default_factory=list)
    #: Structured library error (``ReproError.to_dict()``), if any.
    error: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "system": self.system,
            "status": self.status,
            "ok": self.ok,
            "attempts": self.attempts,
            "retries": self.retries,
            "detail": self.detail,
            "wall": self.wall,
            "conclusive": self.conclusive,
            "expect_failure": self.expect_failure,
            "classifications": list(self.classifications),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, body: Dict[str, Any]) -> "JobOutcome":
        return cls(
            job_id=body["job_id"],
            kind=body["kind"],
            system=body["system"],
            status=body["status"],
            ok=bool(body["ok"]),
            attempts=int(body["attempts"]),
            retries=int(body["retries"]),
            detail=body.get("detail", ""),
            wall=float(body.get("wall", 0.0)),
            conclusive=bool(body.get("conclusive", True)),
            expect_failure=bool(body.get("expect_failure", False)),
            classifications=list(body.get("classifications", [])),
            error=body.get("error"),
        )


@dataclass
class CampaignReport:
    """The fold of every job's terminal outcome.

    Always complete: the supervisor guarantees one outcome per job, so
    ``len(report.outcomes)`` equals the campaign's job count even after
    crashes, kills, and resumes.
    """

    campaign_id: str
    outcomes: List[JobOutcome] = field(default_factory=list)
    interrupted: bool = False
    wall: float = 0.0
    telemetry: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every terminal outcome counts as success (and the
        campaign was not interrupted before covering every job)."""
        return not self.interrupted and all(o.ok for o in self.outcomes)

    def counts(self) -> Dict[str, int]:
        """Outcome statuses histogrammed (sorted keys for stable JSON)."""
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return {k: tally[k] for k in sorted(tally)}

    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign_id": self.campaign_id,
            "ok": self.ok,
            "interrupted": self.interrupted,
            "jobs": [o.to_dict() for o in sorted(self.outcomes, key=lambda o: o.job_id)],
            "counts": self.counts(),
            "total_retries": self.total_retries(),
            "wall": self.wall,
            "telemetry": self.telemetry,
        }

    def render(self) -> str:
        table = Table(
            "campaign {} — {}".format(
                self.campaign_id, "ok" if self.ok else "FAILED"
            ),
            ["job", "status", "attempts", "retries", "detail"],
        )
        for outcome in sorted(self.outcomes, key=lambda o: o.job_id):
            detail = outcome.detail
            if len(detail) > 60:
                detail = detail[:57] + "..."
            table.add_row(
                outcome.job_id,
                outcome.status + ("" if outcome.ok else " !"),
                outcome.attempts,
                outcome.retries,
                detail,
            )
        lines = [table.render()]
        lines.append(
            "jobs: {}  retries: {}  verdict: {}{}".format(
                len(self.outcomes),
                self.total_retries(),
                "ok" if self.ok else "FAILED",
                " [interrupted]" if self.interrupted else "",
            )
        )
        return "\n".join(lines)
