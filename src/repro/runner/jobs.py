"""Serializable verification jobs over every shipped system.

A :class:`Job` is the unit a supervised campaign schedules: one check
kind applied to one system, with plain-JSON parameters so it can cross
a process boundary (``multiprocessing`` spawn) and a checkpoint ledger
unchanged.  Four kinds decompose the repo's whole verification surface:

- ``check``   — the system's full nominal proof battery (mapping/chain
  checks on adversarial runs, Lemma 2.1 acceptance, exact zone bounds)
  via :func:`repro.faults.build_perturb_target` at ε = 0;
- ``perturb`` — the same battery under one fixed drift ε;
- ``lint``    — the static diagnostics pass of :mod:`repro.lint`;
- ``bench``   — one :func:`repro.obs.bench.run_profile` iteration;
- ``fuzz``    — one shard of a differential proof-method fuzz campaign
  (:func:`repro.gen.fuzzer.run_campaign`) under the synthetic system
  name ``gen``; shards with the same seed partition one campaign's
  index range, so a crashed shard resumes from the ledger without
  re-fuzzing its siblings.

:func:`execute_job` runs a job *in the current process* and reduces
whatever happened to a plain result payload — the worker wrapper in
:mod:`repro.runner.worker` adds process isolation and chaos injection
on top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.instrument import Recorder, recording

__all__ = [
    "FUZZ_SYSTEM",
    "JOB_KINDS",
    "RESULT_SCHEMA_VERSION",
    "Job",
    "default_jobs",
    "execute_job",
    "fuzz_shards",
    "job_cache_parts",
]

#: Job kinds in campaign-scheduling order (cheap static checks first;
#: fuzz campaigns are the most expensive unit and go last).
JOB_KINDS = ("lint", "analyze", "check", "perturb", "bench", "fuzz")

#: The synthetic "system" every fuzz shard runs against: a campaign
#: fuzzes *random* instances, so no shipped system name applies.
FUZZ_SYSTEM = "gen"

#: Version stamp on worker result payloads; a payload without it (or
#: with a future one) is classified ``malformed`` by the supervisor.
RESULT_SCHEMA_VERSION = 1

#: Systems whose *verdict failure* is the expected finding (the repo
#: deliberately ships a broken Fischer variant to prove the checkers
#: catch it) — the supervisor inverts success for these jobs.
_EXPECTED_FAILURES = {
    ("analyze", "fischer-tight"),
    ("check", "fischer-tight"),
    ("perturb", "fischer-tight"),
}


@dataclass(frozen=True)
class Job:
    """One schedulable unit of verification work.

    ``params`` must stay plain JSON (exact fractions ride as ``"p/q"``
    strings); ``chaos`` is the self-test fault mode injected by the
    supervisor's ``--chaos`` flag (``crash`` / ``hang`` / ``malformed``,
    applied on the first attempt only so recovery is provable).
    """

    job_id: str
    kind: str
    system: str
    params: Dict[str, Any] = field(default_factory=dict)
    expect_failure: bool = False
    chaos: Optional[str] = None

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ReproError(
                "unknown job kind {!r}; expected one of {}".format(
                    self.kind, ", ".join(JOB_KINDS)
                )
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "system": self.system,
            "params": dict(self.params),
            "expect_failure": self.expect_failure,
            "chaos": self.chaos,
        }

    @classmethod
    def from_dict(cls, body: Dict[str, Any]) -> "Job":
        return cls(
            job_id=body["job_id"],
            kind=body["kind"],
            system=body["system"],
            params=dict(body.get("params", {})),
            expect_failure=bool(body.get("expect_failure", False)),
            chaos=body.get("chaos"),
        )

    def with_chaos(self, chaos: Optional[str]) -> "Job":
        return replace(self, chaos=chaos)


def _campaign_systems(requested: Optional[Sequence[str]]) -> Optional[List[str]]:
    if requested is None:
        return None
    systems = list(dict.fromkeys(requested))
    if "all" in systems:
        return None
    return systems


def default_jobs(
    systems: Optional[Sequence[str]] = None,
    kinds: Iterable[str] = JOB_KINDS,
    seeds: int = 2,
    steps: int = 40,
    seed: int = 0,
    epsilon: Fraction = Fraction(1, 32),
    iterations: int = 1,
    max_states: int = 200_000,
    max_steps: int = 2_000_000,
    wall_time: float = 60.0,
    fuzz_count: int = 100,
    fuzz_shard: int = 50,
) -> List[Job]:
    """Decompose the requested verification surface into jobs.

    ``systems=None`` (or a list containing ``"all"``) means every
    system each kind knows about; otherwise each kind keeps the
    intersection of the request with its own registry, and a request
    matching *no* kind at all raises.
    """
    from repro.analyze import analyze_names
    from repro.faults.targets import perturb_names
    from repro.gen import is_gen_name, parse as parse_gen_name
    from repro.lint.targets import system_names as lint_names
    from repro.obs.bench import bench_names

    chosen = _campaign_systems(systems)
    kinds = [k for k in JOB_KINDS if k in set(kinds)]
    if not kinds:
        raise ReproError("no job kinds selected")
    registry = {
        "lint": list(lint_names()),
        "analyze": list(analyze_names()),
        "check": list(perturb_names()),
        "perturb": list(perturb_names()),
        "bench": list(bench_names()),
        "fuzz": [FUZZ_SYSTEM],
    }
    known = set().union(*registry.values())
    if chosen is not None:
        for name in chosen:
            if is_gen_name(name):
                # Raises with a precise message on a malformed or
                # out-of-range generated name; a valid one joins every
                # registry whose check applies to generated systems.
                parse_gen_name(name)
                for kind in ("lint", "analyze", "check", "perturb"):
                    registry[kind].append(name)
                known.add(name)
        unknown = [name for name in chosen if name not in known]
        if unknown:
            raise ReproError(
                "unknown system(s) {}; known: {}".format(
                    ", ".join(unknown), ", ".join(sorted(known))
                )
            )
    budget = {
        "max_states": max_states,
        "max_steps": max_steps,
        "wall_time": wall_time,
    }
    jobs: List[Job] = []
    for kind in kinds:
        for name in registry[kind]:
            if chosen is not None and name not in chosen:
                continue
            if kind == "fuzz":
                jobs.extend(fuzz_shards(seed=seed, count=fuzz_count, shard=fuzz_shard))
                continue
            if kind in ("check", "perturb"):
                params: Dict[str, Any] = dict(budget)
                params.update(seeds=seeds, steps=steps, seed=seed)
                params["epsilon"] = str(epsilon if kind == "perturb" else Fraction(0))
            elif kind == "bench":
                params = {"iterations": iterations}
            else:  # lint/analyze: purely static, no budget to thread
                params = {"strict": False}
            jobs.append(
                Job(
                    job_id="{}:{}".format(kind, name),
                    kind=kind,
                    system=name,
                    params=params,
                    expect_failure=(kind, name) in _EXPECTED_FAILURES,
                )
            )
    if not jobs:
        raise ReproError("the requested systems/kinds produced no jobs")
    return jobs


def fuzz_shards(seed: int = 0, count: int = 100, shard: int = 50) -> List[Job]:
    """Split one ``count``-instance fuzz campaign into shard jobs.

    Shards share the campaign ``seed`` and partition the index range
    ``0 .. count-1``, so their union is instance-for-instance identical
    to one unsharded campaign — a shard that crashed mid-flight reruns
    alone (process isolation plus the ledger), without invalidating its
    siblings' results.
    """
    if count <= 0:
        raise ReproError("fuzz campaign needs a positive instance count")
    if shard <= 0:
        raise ReproError("fuzz shard size must be positive")
    jobs: List[Job] = []
    for number, start in enumerate(range(0, count, shard)):
        jobs.append(
            Job(
                job_id="fuzz:{}:s{}".format(FUZZ_SYSTEM, number),
                kind="fuzz",
                system=FUZZ_SYSTEM,
                params={
                    "count": min(shard, count - start),
                    "seed": seed,
                    "start": start,
                },
            )
        )
    return jobs


# ----------------------------------------------------------------------
# In-process execution
# ----------------------------------------------------------------------


def _scaled_budget(params: Dict[str, Any]):
    """A fresh :class:`~repro.faults.budget.Budget` from job params,
    multiplied by the supervisor's escalation factor (set on retries
    classified ``budget``: same job, more room)."""
    from repro.faults.budget import Budget

    scale = int(params.get("budget_scale", 1))
    max_states = params.get("max_states")
    max_steps = params.get("max_steps")
    wall_time = params.get("wall_time")
    return Budget(
        max_states=None if max_states is None else int(max_states) * scale,
        max_steps=None if max_steps is None else int(max_steps) * scale,
        wall_time=None if wall_time is None else float(wall_time) * scale,
    )


def _run_lint(job: Job) -> Tuple[bool, bool, bool, str]:
    from repro.lint import DEFAULT_MAX_STATES, build_target, lint_system

    report = lint_system(
        build_target(job.system),
        max_states=int(job.params.get("max_states", DEFAULT_MAX_STATES)),
    )
    strict = bool(job.params.get("strict", False))
    summary = report.summary()
    detail = ", ".join("{}={}".format(k, v) for k, v in sorted(summary.items()))
    return (not report.fails(strict=strict), True, False, detail)


def _run_analyze(job: Job) -> Tuple[bool, bool, bool, str]:
    from repro.analyze import analyze_system

    report = analyze_system(job.system)
    strict = bool(job.params.get("strict", False))
    return (not report.fails(strict=strict), True, False, report.summary_line())


def _run_battery(job: Job) -> Tuple[bool, bool, bool, str]:
    from repro.faults.targets import build_perturb_target

    target = build_perturb_target(
        job.system,
        seeds=int(job.params.get("seeds", 2)),
        steps=int(job.params.get("steps", 40)),
        seed=int(job.params.get("seed", 0)),
    )
    outcome = target.evaluate(
        Fraction(job.params.get("epsilon", "0")), _scaled_budget(job.params)
    )
    return (outcome.ok, outcome.conclusive, outcome.exhausted_budget, outcome.detail)


def _run_bench(job: Job) -> Tuple[bool, bool, bool, str]:
    from repro.obs.bench import run_profile

    record = run_profile(
        job.system, iterations=int(job.params.get("iterations", 1))
    )
    detail = "wall={:.3f}s iterations={}".format(record.wall_time, record.iterations)
    return (bool(record.meta.get("ok", True)), True, False, detail)


def _run_fuzz(job: Job) -> Tuple[bool, bool, bool, str]:
    from repro.gen.fuzzer import run_campaign

    report = run_campaign(
        count=int(job.params.get("count", 100)),
        seed=int(job.params.get("seed", 0)),
        start=int(job.params.get("start", 0)),
        artifact_dir=job.params.get("artifacts"),
    )
    # Every instance completed: the shard is conclusive either way; a
    # disagreement is a *verdict* failure, reported via ``ok``.
    return (report.ok, True, False, report.detail)


_EXECUTORS = {
    "lint": _run_lint,
    "analyze": _run_analyze,
    "check": _run_battery,
    "perturb": _run_battery,
    "bench": _run_bench,
    "fuzz": _run_fuzz,
}

#: Job params that change *how* a verdict is computed, never *what* it
#: is — excluded from the verdict-cache key.  ``engine`` and ``workers``
#: stay out by design (the engines are byte-identical); ``timeout`` is
#: the supervisor's watchdog, not part of the check; ``cache`` is the
#: gate itself.
_UNCACHED_PARAMS = frozenset({"engine", "workers", "timeout", "cache", "artifacts"})


def job_cache_parts(job: Job) -> Optional[Dict[str, Any]]:
    """The canonical verdict-cache key parts for ``job``, or ``None``
    when the job is uncacheable by nature: bench jobs (their product
    *is* a wall time) and chaos-injected attempts (the self-test must
    actually run).  The parts deliberately exclude the job id and the
    :data:`_UNCACHED_PARAMS`, so any cache holding an entry under these
    parts may serve it to *any* request for the same work — this is the
    key contract :mod:`repro.serve` relies on for warm requests."""
    if job.kind == "bench" or job.chaos is not None:
        return None
    parts = {
        key: value
        for key, value in job.params.items()
        if key not in _UNCACHED_PARAMS
    }
    if job.kind in ("lint", "analyze"):
        # Rule-backed verdicts go stale when the rule set grows; fold
        # its version into the key so new rules force a recompute.
        from repro.lint.registry import ruleset_version

        parts["ruleset"] = ruleset_version()
    from repro.gen import cache_parts as gen_cache_parts
    from repro.gen import is_gen_name
    from repro.gen.names import GEN_VERSION

    if is_gen_name(job.system):
        # Generated instances key on (family, params, generator
        # version) so a generator change invalidates their verdicts.
        parts.update(gen_cache_parts(job.system))
    elif job.kind == "fuzz":
        parts["gen_version"] = GEN_VERSION
    return parts


def _job_cache(job: Job):
    """The verdict cache and canonical key parts for this job, or
    ``(None, None)`` when the job must not touch the cache: uncacheable
    jobs (see :func:`job_cache_parts`) or an explicit ``cache: False``."""
    if job.params.get("cache") is False:
        return None, None
    parts = job_cache_parts(job)
    if parts is None:
        return None, None
    from repro.cache import default_cache

    cache = default_cache()
    if cache is None:
        return None, None
    return cache, parts


def execute_job(job: Job) -> Dict[str, Any]:
    """Run one job to a plain result payload — never raises.

    The payload carries the verdict (``ok`` / ``conclusive`` /
    ``exhausted_budget`` / ``detail``), a structured ``error`` dict when
    a library error escaped the check, and the job's telemetry snapshot
    for cross-process aggregation (``Recorder.merge`` on the parent).

    Settled verdicts (conclusive, no error, no budget cut) round-trip
    through the content-addressed verdict cache: a warm hit returns the
    stored payload with ``cached: True`` and a telemetry snapshot
    reduced to ``cache.hits`` — replaying the original work counters
    would double-count work that did not happen.  ``params["engine"]``
    (with optional ``params["workers"]``) scopes the parallel engine
    for the duration of the job.
    """
    start = time.perf_counter()
    cache, cache_parts = _job_cache(job)
    if cache is not None:
        hit = cache.lookup(job.kind, job.system, cache_parts)
        if hit is not None and hit.get("job_id") == job.job_id:
            hit_recorder = Recorder(name="job." + job.job_id, max_events=0)
            hit_recorder.incr("cache.hits")
            payload = dict(hit)
            payload["cached"] = True
            payload["wall"] = time.perf_counter() - start
            payload["telemetry"] = hit_recorder.snapshot()
            return payload
    recorder = Recorder(name="job." + job.job_id, max_events=0)
    error: Optional[Dict[str, Any]] = None
    ok, conclusive, exhausted, detail = False, True, False, ""
    try:
        engine = job.params.get("engine")
        workers = job.params.get("workers")
        with recording(recorder):
            if engine is None:
                # No opinion: leave whatever engine the process has.
                ok, conclusive, exhausted, detail = _EXECUTORS[job.kind](job)
            else:
                from repro.par.engine import engine_scope

                with engine_scope(
                    engine, workers=None if workers is None else int(workers)
                ):
                    ok, conclusive, exhausted, detail = _EXECUTORS[job.kind](job)
    except ReproError as exc:
        error = exc.to_dict()
        detail = str(exc)
    except Exception as exc:  # infra: anything non-library is still a record
        error = {"type": type(exc).__name__, "message": str(exc)}
        detail = "{}: {}".format(type(exc).__name__, exc)
    payload = {
        "schema": RESULT_SCHEMA_VERSION,
        "job_id": job.job_id,
        "ok": ok,
        "conclusive": conclusive,
        "exhausted_budget": exhausted,
        "detail": detail,
        "error": error,
        "wall": time.perf_counter() - start,
        "telemetry": recorder.snapshot(),
    }
    if cache is not None and error is None and conclusive and not exhausted:
        stored = {key: value for key, value in payload.items() if key != "wall"}
        cache.store(job.kind, job.system, cache_parts, stored)
    return payload
