"""The JSONL checkpoint ledger behind ``repro run --resume``.

Every supervised campaign streams its progress to an append-only JSONL
file, one self-describing entry per line (schema-stamped via
:mod:`repro.serialize`), flushed as written so a SIGKILL loses at most
the line in flight:

- ``campaign`` — the first line: campaign id, options, and the full
  job list (the resume contract: the job set is fixed at campaign
  start);
- ``attempt``  — one per classified attempt, with retry/backoff data;
- ``done``     — one per job reaching a terminal outcome;
- ``resume``   — appended each time a campaign is picked back up;
- ``end``      — the campaign summary (absent after a mid-run kill).

Resuming loads the ledger, keeps every ``done`` outcome, and re-runs
exactly the jobs without one — an interrupted campaign continues where
it stopped instead of starting over.
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.runner.jobs import Job
from repro.runner.report import JobOutcome
from repro.serialize import ledger_entries_from_jsonl, ledger_entry_to_line

__all__ = ["Ledger", "LedgerState", "load_ledger"]


class Ledger:
    """Append-only JSONL writer for one campaign's progress.

    Every entry is stamped with the *writer's* identity (hostname +
    pid): on a single host that is provenance, and in a distributed
    campaign it makes the ledger a cross-host audit trail — and lets
    ``run --resume`` notice it was handed a ledger written elsewhere.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = None
        self.host = socket.gethostname()
        self.pid = os.getpid()

    def _write(self, entry: Dict[str, Any]) -> None:
        entry = dict(entry)
        entry.setdefault("host", self.host)
        entry.setdefault("pid", self.pid)
        line = ledger_entry_to_line(entry)
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def begin(self, campaign_id: str, jobs: List[Job], options: Dict[str, Any]) -> None:
        self._write(
            {
                "kind": "campaign",
                "campaign_id": campaign_id,
                "options": dict(options),
                "jobs": [job.to_dict() for job in jobs],
            }
        )

    def resume(self, campaign_id: str, pending: List[str]) -> None:
        self._write(
            {"kind": "resume", "campaign_id": campaign_id, "pending": list(pending)}
        )

    def attempt(
        self,
        job_id: str,
        attempt: int,
        classification: str,
        detail: str,
        backoff: Optional[float] = None,
        budget_scale: int = 1,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """``extra`` carries layer-specific fields (the dist coordinator
        adds worker identity and the lease epoch); reserved entry keys
        cannot be overridden by it."""
        entry = dict(extra or {})
        entry.update(
            {
                "kind": "attempt",
                "job_id": job_id,
                "attempt": attempt,
                "classification": classification,
                "detail": detail,
                "backoff": backoff,
                "budget_scale": budget_scale,
            }
        )
        self._write(entry)

    def done(self, outcome: JobOutcome) -> None:
        self._write(
            {"kind": "done", "job_id": outcome.job_id, "outcome": outcome.to_dict()}
        )

    def end(self, summary: Dict[str, Any]) -> None:
        self._write({"kind": "end", "summary": dict(summary)})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class LedgerState:
    """A parsed ledger: what a resume needs to continue the campaign."""

    campaign_id: str
    options: Dict[str, Any]
    jobs: List[Job]
    outcomes: Dict[str, JobOutcome] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    ended: bool = False
    #: Identity of the host/process that wrote the campaign header
    #: (``None`` for schema-1 ledgers, which predate stamping).
    host: Optional[str] = None
    pid: Optional[int] = None

    def foreign_to(self, hostname: Optional[str] = None) -> bool:
        """Was this ledger written on a different host?  ``False`` for
        unstamped (schema-1) ledgers — absence of evidence is not
        evidence of another host."""
        if self.host is None:
            return False
        if hostname is None:
            hostname = socket.gethostname()
        return self.host != hostname

    @property
    def pending(self) -> List[Job]:
        """Jobs without a terminal outcome, in campaign order."""
        return [job for job in self.jobs if job.job_id not in self.outcomes]

    @property
    def complete(self) -> bool:
        return not self.pending


def load_ledger(path: str) -> LedgerState:
    """Parse a campaign ledger back into resumable state.

    Torn final lines (mid-write kill) are tolerated; a ledger without
    its ``campaign`` header — or with several, which would mean two
    campaigns interleaved one file — is rejected.
    """
    if not os.path.exists(path):
        raise ReproError("no ledger at {!r}".format(path))
    with open(path) as fh:
        entries = ledger_entries_from_jsonl(fh.read())
    header = None
    outcomes: Dict[str, JobOutcome] = {}
    attempts: Dict[str, int] = {}
    ended = False
    for entry in entries:
        kind = entry["kind"]
        if kind == "campaign":
            if header is not None:
                raise ReproError(
                    "ledger {!r} holds more than one campaign".format(path)
                )
            header = entry
        elif kind == "attempt":
            job_id = entry["job_id"]
            attempts[job_id] = attempts.get(job_id, 0) + 1
        elif kind == "done":
            outcomes[entry["job_id"]] = JobOutcome.from_dict(entry["outcome"])
        elif kind == "end":
            ended = True
        # "resume" markers (and future informational kinds) are skipped.
    if header is None:
        raise ReproError(
            "ledger {!r} has no campaign header (nothing to resume)".format(path)
        )
    return LedgerState(
        campaign_id=header["campaign_id"],
        options=dict(header.get("options", {})),
        jobs=[Job.from_dict(body) for body in header.get("jobs", [])],
        outcomes=outcomes,
        attempts=attempts,
        ended=ended,
        host=header.get("host"),
        pid=header.get("pid"),
    )
