"""repro.runner — supervised, crash-isolated verification campaigns.

The substrate for running the repo's whole verification surface —
mapping checks, perturbation batteries, lints, benchmarks — as a fleet
of isolated jobs that survives worker crashes, hangs, and garbled
results (``python -m repro run``):

- :mod:`repro.runner.jobs` — the serializable :class:`Job` catalog and
  in-process execution;
- :mod:`repro.runner.worker` — the spawned-subprocess entry point and
  chaos self-test modes;
- :mod:`repro.runner.supervisor` — watchdogs, failure classification,
  retry/backoff, quarantine;
- :mod:`repro.runner.ledger` — the JSONL checkpoint ledger behind
  ``repro run --resume``;
- :mod:`repro.runner.report` — per-job outcomes and the always-complete
  :class:`CampaignReport`.
"""

from repro.runner.jobs import JOB_KINDS, Job, default_jobs, execute_job
from repro.runner.ledger import Ledger, LedgerState, load_ledger
from repro.runner.report import (
    FAILURE_CLASSES,
    TRANSIENT_CLASSES,
    CampaignReport,
    JobOutcome,
)
from repro.runner.supervisor import (
    CHAOS_MODES,
    RetryPolicy,
    Supervisor,
    classify_payload,
    payload_detail,
)

__all__ = [
    "classify_payload",
    "payload_detail",
    "JOB_KINDS",
    "FAILURE_CLASSES",
    "TRANSIENT_CLASSES",
    "CHAOS_MODES",
    "Job",
    "default_jobs",
    "execute_job",
    "Ledger",
    "LedgerState",
    "load_ledger",
    "JobOutcome",
    "CampaignReport",
    "RetryPolicy",
    "Supervisor",
]
