"""Exception hierarchy shared by all :mod:`repro` subpackages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SignatureError",
    "PartitionError",
    "AutomatonError",
    "NotEnabledError",
    "CompositionError",
    "ExecutionError",
    "TimedSequenceError",
    "TimingConditionError",
    "TimingViolationError",
    "SchedulingDeadlockError",
    "MappingError",
    "MappingCheckError",
    "ZoneError",
    "PerturbationError",
    "LintError",
    "AnalyzeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    def to_dict(self) -> dict:
        """A machine-readable projection for ledgers and reports.

        Values are JSON-native (strings, numbers, ``None``); rich
        payloads (states, steps) are rendered via ``repr`` so failure
        records never need string-parsing of the message to recover
        the error *type*, yet stay serialisable without pulling in the
        tagged :mod:`repro.serialize` encoding.
        """
        return {"type": type(self).__name__, "message": str(self)}


class SignatureError(ReproError):
    """An action signature is malformed (e.g. overlapping action kinds)."""


class PartitionError(ReproError):
    """A partition of locally controlled actions is malformed."""


class AutomatonError(ReproError):
    """An automaton definition is malformed or used inconsistently."""


class NotEnabledError(AutomatonError):
    """A step was requested for an action that is not enabled."""


class CompositionError(ReproError):
    """Components are not strongly compatible or otherwise uncomposable."""


class ExecutionError(ReproError):
    """A sequence of states and actions is not an execution of an automaton."""


class TimedSequenceError(ReproError):
    """A timed sequence is malformed (e.g. decreasing time components)."""


class TimingConditionError(ReproError):
    """A timing condition violates the paper's technical requirements."""


class TimingViolationError(ReproError):
    """A timed step violates the predictive Ft/Lt bounds of time(A, U)."""


class SchedulingDeadlockError(ReproError):
    """The simulator reached a state with a pending deadline but no
    schedulable action — the modelled system cannot satisfy its own
    timing conditions from here.

    Carries the blocking state, the name(s) of the expired condition or
    class, and the missed deadline, so fault-injection failures (dropped
    actions starving a deadline-bearing class, over-tightened bounds)
    are diagnosable from the exception alone.
    """

    def __init__(self, message, *, state=None, condition=None, deadline=None):
        super().__init__(message)
        #: The time(A, U) state in which scheduling got stuck.
        self.state = state
        #: Name(s) of the condition/class whose deadline cannot be met.
        self.condition = condition
        #: The pending Lt deadline that no schedulable action can satisfy.
        self.deadline = deadline

    def to_dict(self) -> dict:
        body = super().to_dict()
        body["state"] = None if self.state is None else repr(self.state)
        body["condition"] = (
            None if self.condition is None else str(self.condition)
        )
        body["deadline"] = None if self.deadline is None else str(self.deadline)
        return body


class MappingError(ReproError):
    """A strong possibilities mapping is malformed."""


class MappingCheckError(MappingError):
    """A strong possibilities mapping check failed; carries the failing
    step for diagnosis."""

    def __init__(self, message, *, step=None, source_state=None, target_state=None):
        super().__init__(message)
        self.step = step
        self.source_state = source_state
        self.target_state = target_state

    def to_dict(self) -> dict:
        body = super().to_dict()
        body["step"] = None if self.step is None else repr(self.step)
        body["source_state"] = (
            None if self.source_state is None else repr(self.source_state)
        )
        body["target_state"] = (
            None if self.target_state is None else repr(self.target_state)
        )
        return body


class ZoneError(ReproError):
    """A DBM/zone operation was applied to incompatible operands."""


class PerturbationError(ReproError):
    """A perturbation collapsed a bound interval (or condition) into an
    ill-formed one — e.g. tightening drove ``b_l`` past ``b_u``.  The
    perturbed system has no well-formed timed semantics at this ε."""


class LintError(ReproError):
    """The lint driver or registry was used incorrectly (unknown rule
    id, unknown target, duplicate registration)."""


class AnalyzeError(ReproError):
    """The static analyzer was used incorrectly or blew a resource cap
    (e.g. the Fourier–Motzkin row budget)."""
