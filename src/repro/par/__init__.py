"""``repro.par`` — the opt-in parallel verification engine.

Frontier-sharded reachability (:mod:`repro.par.explorer`) and a
parallel obligation scheduler for the mapping checkers
(:mod:`repro.par.obligations`), both built on the fork-pool substrate
of :mod:`repro.par.engine` and both **byte-identical** to their serial
counterparts — state sets, transition counts, verdicts, details and
seeded telemetry all match, including under mid-stream Budget cuts.

Select the engine per call (``explore(..., engine="parallel")``),
process-wide (:func:`set_engine`) or scoped (:func:`engine_scope`, what
the ``--engine`` CLI flags use).  Where no fork pool can exist (inside
the daemonic campaign workers of :mod:`repro.runner`, or on platforms
without ``fork``) every entry point degrades to the serial engine and
counts ``par.fallbacks``.

The explorer and obligation modules import the serial engines, which
in turn import :mod:`repro.par.engine` for dispatch — so this package
root stays import-light and loads them lazily.
"""

from repro.par.engine import (
    ENGINE_KINDS,
    EngineConfig,
    EngineUnavailable,
    current_engine,
    default_workers,
    engine_scope,
    resolve_engine,
    set_engine,
)

__all__ = [
    "ENGINE_KINDS",
    "EngineConfig",
    "EngineUnavailable",
    "current_engine",
    "default_workers",
    "engine_scope",
    "resolve_engine",
    "set_engine",
    "explore_parallel",
    "check_invariant_parallel",
    "check_mapping_exhaustive_parallel",
    "surface_names",
    "explore_automaton",
    "mapping_specs",
]

_LAZY = {
    "explore_parallel": "repro.par.explorer",
    "check_invariant_parallel": "repro.par.explorer",
    "check_mapping_exhaustive_parallel": "repro.par.obligations",
    "surface_names": "repro.par.surface",
    "explore_automaton": "repro.par.surface",
    "mapping_specs": "repro.par.surface",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError("module {!r} has no attribute {!r}".format(__name__, name))
