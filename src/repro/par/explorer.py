"""Frontier-sharded parallel reachability, byte-identical to serial.

The breadth-first loops of :mod:`repro.ioa.explorer` interleave three
concerns: *expansion* (``enabled_actions`` / ``transitions`` — pure and
expensive), *bookkeeping* (dedup, parent pointers, telemetry) and
*policy* (budget charges, ``max_states`` / ``max_depth`` cuts, verdict
returns).  Only expansion parallelises safely: the other two are
order-sensitive — a Budget cut one transition earlier changes the
verdict payload.

So the engine here is **expand-then-replay**: each BFS level is hash-
sharded (:func:`repro.par.engine.shard_items`) across a fork pool that
returns every state's expansion, and the parent then *replays* those
expansions in exactly the order the serial loop would have produced
them, performing every charge, dedup, parent assignment, counter and
gauge update itself.  The replayed gauge uses the identity that when
the serial loop pops the ``i``-th state (0-based) of a level of ``L``
states having discovered ``g`` next-level states so far, its frontier
deque holds ``(L - i) + g`` entries.  The result — state set,
transition count, parent map, truncation flags, and telemetry — is
byte-identical to the serial engine, including mid-stream Budget cuts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable, List, Optional, Sequence

from repro.ioa.automaton import IOAutomaton
from repro.ioa.explorer import ExplorationResult, InvariantReport, explore, check_invariant
from repro.obs import instrument as _telemetry
from repro.par.engine import (
    EngineConfig,
    EngineUnavailable,
    ForkPool,
    default_workers,
    shard_items,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.budget import Budget

__all__ = ["explore_parallel", "check_invariant_parallel"]


def _expand_states(automaton: IOAutomaton, batch: List[Any]) -> List[Any]:
    """Worker task: fully expand each ``(index, state)`` of ``batch``.

    Pure computation only — every policy decision happens in the
    parent's replay.  ``enabled_actions`` and ``transitions`` iterate
    deterministically (forked children share the parent's hash seed),
    so the expansion list per state is exactly what the serial loop
    would have enumerated.
    """
    # Interning repeated actions/posts to one representative object lets
    # pickle's memo ship each distinct value once per batch — expansion
    # lists repeat successors heavily, and raw shipping would otherwise
    # dominate the wall time the pool is meant to save.
    intern: dict = {}
    out = []
    for index, state in batch:
        expansion = []
        for action in automaton.enabled_actions(state):
            action = intern.setdefault(action, action)
            for post in automaton.transitions(state, action):
                expansion.append((action, intern.setdefault(post, post)))
        out.append((index, expansion))
    return out


def _open_pool(automaton: IOAutomaton, config: EngineConfig) -> ForkPool:
    workers = config.workers if config.workers is not None else default_workers()
    return ForkPool(_expand_states, automaton, workers)


def _expand_level(
    level: Sequence[Hashable],
    pool: ForkPool,
    automaton: IOAutomaton,
    config: EngineConfig,
    rec,
) -> List[List[Any]]:
    """Expansions of ``level`` in level order, pooled when it pays."""
    if len(level) < config.min_batch:
        return [
            expansion
            for _, expansion in _expand_states(automaton, list(enumerate(level)))
        ]
    batches = shard_items(level, pool.workers)
    expansions: List[Optional[List[Any]]] = [None] * len(level)
    for result in pool.map(batches):
        for index, expansion in result:
            expansions[index] = expansion
    if rec is not None:
        rec.incr("par.levels")
        rec.incr("par.tasks", len(batches))
        rec.incr("par.states", len(level))
    return expansions  # type: ignore[return-value]


def explore_parallel(
    automaton: IOAutomaton,
    max_states: int = 100_000,
    max_depth: Optional[int] = None,
    budget: Optional["Budget"] = None,
    config: Optional[EngineConfig] = None,
) -> ExplorationResult:
    """Parallel :func:`repro.ioa.explorer.explore` — same contract,
    same result, bit for bit.  Falls back to the serial engine (and
    counts ``par.fallbacks``) where a fork pool cannot exist."""
    config = config if config is not None else EngineConfig(kind="parallel")
    rec = _telemetry._ACTIVE
    try:
        pool = _open_pool(automaton, config)
    except EngineUnavailable:
        if rec is not None:
            rec.incr("par.fallbacks")
        return explore(
            automaton,
            max_states=max_states,
            max_depth=max_depth,
            budget=budget,
            engine="serial",
        )
    with pool:
        return _explore_replay(
            automaton, max_states, max_depth, budget, pool, config, rec
        )


def _explore_replay(
    automaton, max_states, max_depth, budget, pool, config, rec
) -> ExplorationResult:
    result = ExplorationResult(reachable=set(), transitions_explored=0, truncated=False)
    level: List[Hashable] = []
    for s0 in automaton.start_states():
        if s0 not in result.reachable:
            if budget is not None and not budget.charge_state():
                result.truncated = True
                result.exhausted_budget = True
                return result
            result.reachable.add(s0)
            result.parents[s0] = (None, None)
            level.append(s0)
    if rec is not None:
        rec.incr("explore.states", len(result.reachable))
    depth = 0
    while level:
        expand = not (max_depth is not None and depth >= max_depth)
        expansions = (
            _expand_level(level, pool, automaton, config, rec) if expand else None
        )
        width = len(level)
        next_level: List[Hashable] = []
        for i, state in enumerate(level):
            if rec is not None:
                rec.gauge("explore.frontier", (width - i) + len(next_level))
            if not expand:
                result.truncated = True
                continue
            for action, post in expansions[i]:
                if budget is not None and not budget.charge_step():
                    result.truncated = True
                    result.exhausted_budget = True
                    return result
                result.transitions_explored += 1
                if rec is not None:
                    rec.incr("explore.transitions")
                if post in result.reachable:
                    continue
                if len(result.reachable) >= max_states:
                    result.truncated = True
                    return result
                if budget is not None and not budget.charge_state():
                    result.truncated = True
                    result.exhausted_budget = True
                    return result
                result.reachable.add(post)
                result.parents[post] = (state, action)
                if rec is not None:
                    rec.incr("explore.states")
                next_level.append(post)
        level = next_level
        depth += 1
    return result


def check_invariant_parallel(
    automaton: IOAutomaton,
    predicate: Callable[[Hashable], bool],
    max_states: int = 100_000,
    max_depth: Optional[int] = None,
    budget: Optional["Budget"] = None,
    config: Optional[EngineConfig] = None,
) -> InvariantReport:
    """Parallel :func:`repro.ioa.explorer.check_invariant` — identical
    verdicts, counterexamples, and telemetry.  The predicate runs in
    the parent only (once per newly reached state, like serial), so it
    may close over anything."""
    config = config if config is not None else EngineConfig(kind="parallel")
    rec = _telemetry._ACTIVE
    try:
        pool = _open_pool(automaton, config)
    except EngineUnavailable:
        if rec is not None:
            rec.incr("par.fallbacks")
        return check_invariant(
            automaton,
            predicate,
            max_states=max_states,
            max_depth=max_depth,
            budget=budget,
            engine="serial",
        )
    with pool:
        return _invariant_replay(
            automaton, predicate, max_states, max_depth, budget, pool, config, rec
        )


def _invariant_replay(
    automaton, predicate, max_states, max_depth, budget, pool, config, rec
) -> InvariantReport:
    result = ExplorationResult(reachable=set(), transitions_explored=0, truncated=False)
    level: List[Hashable] = []
    checked = 0
    for s0 in automaton.start_states():
        if s0 in result.reachable:
            continue
        if budget is not None and not budget.charge_state():
            return InvariantReport(True, checked, True, None, exhausted_budget=True)
        result.reachable.add(s0)
        result.parents[s0] = (None, None)
        checked += 1
        if rec is not None:
            rec.incr("explore.states")
        if not predicate(s0):
            return InvariantReport(False, checked, False, result.path_to(s0))
        level.append(s0)
    truncated = False
    depth = 0
    while level:
        expand = not (max_depth is not None and depth >= max_depth)
        expansions = (
            _expand_level(level, pool, automaton, config, rec) if expand else None
        )
        width = len(level)
        next_level: List[Hashable] = []
        for i, state in enumerate(level):
            if rec is not None:
                rec.gauge("explore.frontier", (width - i) + len(next_level))
            if not expand:
                truncated = True
                continue
            for action, post in expansions[i]:
                if budget is not None and not budget.charge_step():
                    return InvariantReport(
                        True, checked, True, None, exhausted_budget=True
                    )
                if rec is not None:
                    rec.incr("explore.transitions")
                if post in result.reachable:
                    continue
                if len(result.reachable) >= max_states:
                    return InvariantReport(True, checked, True, None)
                if budget is not None and not budget.charge_state():
                    return InvariantReport(
                        True, checked, True, None, exhausted_budget=True
                    )
                result.reachable.add(post)
                result.parents[post] = (state, action)
                checked += 1
                if rec is not None:
                    rec.incr("explore.states")
                if not predicate(post):
                    return InvariantReport(False, checked, truncated, result.path_to(post))
                next_level.append(post)
        level = next_level
        depth += 1
    return InvariantReport(True, checked, truncated, None)
