"""The per-system verification surface the engines are raced on.

One registry, three consumers: ``python -m repro check`` (engine-aware
reachability sweep + mapping obligations per system), the
serial/parallel equivalence tests, and the ``par-speedup`` bench
profile.  Parameters mirror the canonical builds used by
:mod:`repro.faults.targets` and :mod:`repro.obs.bench`, so a cache key
derived from this surface describes the same work those paths do.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Tuple

from repro.errors import ReproError

__all__ = [
    "surface_names",
    "explore_automaton",
    "mapping_specs",
    "build_system",
    "build_timed",
    "exhaustive_spec",
]


def _rm_system():
    from repro.systems import ResourceManagerParams, ResourceManagerSystem

    return ResourceManagerSystem(
        ResourceManagerParams(k=3, c1=Fraction(2), c2=Fraction(3), l=Fraction(1))
    )


def _relay_system():
    from repro.systems import RelayParams, RelaySystem

    return RelaySystem(RelayParams(n=3, d1=Fraction(1), d2=Fraction(2)))


def _chain_system():
    from repro.systems.extensions import ChainSystem
    from repro.timed.interval import Interval

    return ChainSystem([Interval(1, 2), Interval(2, 3)])


def _automaton_rm():
    return _rm_system().timed.automaton


def _automaton_relay():
    return _relay_system().timed.automaton


def _automaton_chain():
    return _chain_system().timed.automaton


def _fischer_params():
    from repro.systems.extensions import FischerParams

    return FischerParams(n=2, a=Fraction(1), b=Fraction(2))


def _fischer_tight_params():
    from repro.systems.extensions import FischerParams

    return FischerParams(n=2, a=Fraction(1), b=Fraction(1))


def _peterson_params():
    from repro.systems.extensions import PetersonParams

    return PetersonParams(s1=Fraction(1), s2=Fraction(2))


def _tournament_params():
    from repro.systems.extensions import TournamentParams

    return TournamentParams(n=2, s1=Fraction(1), s2=Fraction(2))


def _timed_fischer():
    from repro.systems.extensions import fischer_system

    return fischer_system(_fischer_params())


def _timed_fischer_tight():
    from repro.systems.extensions import fischer_system

    return fischer_system(_fischer_tight_params())


def _timed_peterson():
    from repro.systems.extensions import peterson_system

    return peterson_system(_peterson_params())


def _timed_tournament():
    from repro.systems.extensions import tournament_system

    return tournament_system(_tournament_params())


def _automaton_fischer():
    return _timed_fischer().automaton


def _automaton_fischer_tight():
    return _timed_fischer_tight().automaton


def _automaton_peterson():
    return _timed_peterson().automaton


def _automaton_tournament():
    return _timed_tournament().automaton


def _mappings_rm() -> List[Tuple[str, Any]]:
    from repro.systems import resource_manager_mapping

    return [("rm", resource_manager_mapping(_rm_system()))]


def _mappings_relay() -> List[Tuple[str, Any]]:
    from repro.systems import relay_hierarchy

    chain = relay_hierarchy(_relay_system())
    return [
        ("relay[{}]".format(level), mapping) for level, mapping in enumerate(chain)
    ]


def _mappings_chain() -> List[Tuple[str, Any]]:
    chain = _chain_system().hierarchy()
    return [
        ("chain[{}]".format(level), mapping) for level, mapping in enumerate(chain)
    ]


#: name -> (automaton builder, mapping-spec builder, explore cap,
#: exhaustive grid, exhaustive horizon).  Zone-only systems have no
#: mappings; their surface is the reachability sweep alone.
_SURFACE: Dict[str, Dict[str, Any]] = {
    "rm": {
        "automaton": _automaton_rm,
        "system": _rm_system,
        "timed": lambda: _rm_system().timed,
        "mappings": _mappings_rm,
        "max_states": 4_000,
        "grid": Fraction(1, 2),
        "horizon": Fraction(8),
    },
    "relay": {
        "automaton": _automaton_relay,
        "system": _relay_system,
        "timed": lambda: _relay_system().timed,
        "mappings": _mappings_relay,
        "max_states": 4_000,
        "grid": Fraction(1, 2),
        "horizon": Fraction(5),
    },
    "chain": {
        "automaton": _automaton_chain,
        "system": _chain_system,
        "timed": lambda: _chain_system().timed,
        "mappings": _mappings_chain,
        "max_states": 4_000,
        "grid": Fraction(1, 2),
        "horizon": Fraction(6),
    },
    "fischer": {
        "automaton": _automaton_fischer,
        "system": _fischer_params,
        "timed": _timed_fischer,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
    "fischer-tight": {
        "automaton": _automaton_fischer_tight,
        "system": _fischer_tight_params,
        "timed": _timed_fischer_tight,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
    "peterson": {
        "automaton": _automaton_peterson,
        "system": _peterson_params,
        "timed": _timed_peterson,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
    "tournament": {
        "automaton": _automaton_tournament,
        "system": _tournament_params,
        "timed": _timed_tournament,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
}


def surface_names() -> Tuple[str, ...]:
    """The seven shipped systems, in registry order."""
    return tuple(_SURFACE)


def _gen_entry(name: str) -> Dict[str, Any]:
    """A surface entry synthesised from a generated-system bundle, so
    ``gen:`` names flow through every accessor unchanged."""
    from repro.gen.families import build_bundle

    bundle = build_bundle(name)
    mappings = None
    if bundle.mappings_factory is not None:
        mappings = bundle.mappings
    return {
        "automaton": lambda: bundle.timed().automaton,
        "system": bundle.system,
        "timed": bundle.timed,
        "mappings": mappings,
        "max_states": bundle.max_states,
        "grid": bundle.grid,
        "horizon": bundle.horizon,
    }


def _entry(name: str) -> Dict[str, Any]:
    from repro.gen.names import is_gen_name

    if is_gen_name(name):
        return _gen_entry(name)
    if name not in _SURFACE:
        raise ReproError(
            "unknown system {!r}; expected one of {}".format(
                name, ", ".join(_SURFACE)
            )
        )
    return _SURFACE[name]


def explore_automaton(name: str) -> Tuple[Any, int]:
    """The system's base automaton and its canonical exploration cap."""
    entry = _entry(name)
    return entry["automaton"](), entry["max_states"]


def mapping_specs(name: str) -> List[Tuple[str, Any, Fraction, Fraction]]:
    """The system's exhaustive mapping obligations as
    ``(label, mapping, grid, horizon)`` tuples (empty for zone-only
    systems)."""
    entry = _entry(name)
    if entry["mappings"] is None:
        return []
    return [
        (label, mapping, entry["grid"], entry["horizon"])
        for label, mapping in entry["mappings"]()
    ]


def build_system(name: str) -> Any:
    """The system's canonical bundle: the full system object for the
    mapping-bearing systems (rm/relay/chain), the parameter record for
    the zone-only ones.  This is what the static analyzer compiles
    obligations from, so its params are — by construction — the same
    ones the exploratory surface checks."""
    return _entry(name)["system"]()


def build_timed(name: str) -> Any:
    """The system's canonical ``(A, b)`` timed automaton — the object
    the timing-interference lint rules inspect."""
    return _entry(name)["timed"]()


def exhaustive_spec(name: str) -> Tuple[Fraction, Fraction]:
    """The canonical (grid, horizon) used for exhaustive mapping checks
    (None for zone-only systems)."""
    entry = _entry(name)
    return entry["grid"], entry["horizon"]
