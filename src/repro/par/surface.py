"""The per-system verification surface the engines are raced on.

One registry, three consumers: ``python -m repro check`` (engine-aware
reachability sweep + mapping obligations per system), the
serial/parallel equivalence tests, and the ``par-speedup`` bench
profile.  Parameters mirror the canonical builds used by
:mod:`repro.faults.targets` and :mod:`repro.obs.bench`, so a cache key
derived from this surface describes the same work those paths do.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Tuple

from repro.errors import ReproError

__all__ = [
    "surface_names",
    "explore_automaton",
    "mapping_specs",
]


def _rm_system():
    from repro.systems import ResourceManagerParams, ResourceManagerSystem

    return ResourceManagerSystem(
        ResourceManagerParams(k=3, c1=Fraction(2), c2=Fraction(3), l=Fraction(1))
    )


def _relay_system():
    from repro.systems import RelayParams, RelaySystem

    return RelaySystem(RelayParams(n=3, d1=Fraction(1), d2=Fraction(2)))


def _chain_system():
    from repro.systems.extensions import ChainSystem
    from repro.timed.interval import Interval

    return ChainSystem([Interval(1, 2), Interval(2, 3)])


def _automaton_rm():
    return _rm_system().timed.automaton


def _automaton_relay():
    return _relay_system().timed.automaton


def _automaton_chain():
    return _chain_system().timed.automaton


def _automaton_fischer():
    from repro.systems.extensions import FischerParams, fischer_system

    return fischer_system(
        FischerParams(n=2, a=Fraction(1), b=Fraction(2))
    ).automaton


def _automaton_fischer_tight():
    from repro.systems.extensions import FischerParams, fischer_system

    return fischer_system(
        FischerParams(n=2, a=Fraction(1), b=Fraction(1))
    ).automaton


def _automaton_peterson():
    from repro.systems.extensions import PetersonParams, peterson_system

    return peterson_system(PetersonParams(s1=Fraction(1), s2=Fraction(2))).automaton


def _automaton_tournament():
    from repro.systems.extensions import TournamentParams, tournament_system

    return tournament_system(
        TournamentParams(n=2, s1=Fraction(1), s2=Fraction(2))
    ).automaton


def _mappings_rm() -> List[Tuple[str, Any]]:
    from repro.systems import resource_manager_mapping

    return [("rm", resource_manager_mapping(_rm_system()))]


def _mappings_relay() -> List[Tuple[str, Any]]:
    from repro.systems import relay_hierarchy

    chain = relay_hierarchy(_relay_system())
    return [
        ("relay[{}]".format(level), mapping) for level, mapping in enumerate(chain)
    ]


def _mappings_chain() -> List[Tuple[str, Any]]:
    chain = _chain_system().hierarchy()
    return [
        ("chain[{}]".format(level), mapping) for level, mapping in enumerate(chain)
    ]


#: name -> (automaton builder, mapping-spec builder, explore cap,
#: exhaustive grid, exhaustive horizon).  Zone-only systems have no
#: mappings; their surface is the reachability sweep alone.
_SURFACE: Dict[str, Dict[str, Any]] = {
    "rm": {
        "automaton": _automaton_rm,
        "mappings": _mappings_rm,
        "max_states": 4_000,
        "grid": Fraction(1, 2),
        "horizon": Fraction(8),
    },
    "relay": {
        "automaton": _automaton_relay,
        "mappings": _mappings_relay,
        "max_states": 4_000,
        "grid": Fraction(1, 2),
        "horizon": Fraction(5),
    },
    "chain": {
        "automaton": _automaton_chain,
        "mappings": _mappings_chain,
        "max_states": 4_000,
        "grid": Fraction(1, 2),
        "horizon": Fraction(6),
    },
    "fischer": {
        "automaton": _automaton_fischer,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
    "fischer-tight": {
        "automaton": _automaton_fischer_tight,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
    "peterson": {
        "automaton": _automaton_peterson,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
    "tournament": {
        "automaton": _automaton_tournament,
        "mappings": None,
        "max_states": 4_000,
        "grid": None,
        "horizon": None,
    },
}


def surface_names() -> Tuple[str, ...]:
    """The seven shipped systems, in registry order."""
    return tuple(_SURFACE)


def _entry(name: str) -> Dict[str, Any]:
    if name not in _SURFACE:
        raise ReproError(
            "unknown system {!r}; expected one of {}".format(
                name, ", ".join(_SURFACE)
            )
        )
    return _SURFACE[name]


def explore_automaton(name: str) -> Tuple[Any, int]:
    """The system's base automaton and its canonical exploration cap."""
    entry = _entry(name)
    return entry["automaton"](), entry["max_states"]


def mapping_specs(name: str) -> List[Tuple[str, Any, Fraction, Fraction]]:
    """The system's exhaustive mapping obligations as
    ``(label, mapping, grid, horizon)`` tuples (empty for zone-only
    systems)."""
    entry = _entry(name)
    if entry["mappings"] is None:
        return []
    return [
        (label, mapping, entry["grid"], entry["horizon"])
        for label, mapping in entry["mappings"]()
    ]
