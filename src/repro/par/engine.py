"""Engine selection and the fork-pool substrate of :mod:`repro.par`.

The parallel engine is *opt-in and process-wide*, mirroring the
telemetry pattern of :mod:`repro.obs.instrument`: engines consult
:func:`current_engine` (serial unless something was installed) and the
CLI scopes a choice with :func:`engine_scope`.  Individual calls can
still override via their ``engine=`` keyword.

Parallelism uses the ``fork`` start method deliberately:

- shipped automata close over :class:`~fractions.Fraction` parameters
  and local helper functions, which do not pickle — ``fork`` inherits
  them by memory image instead of by value;
- the forked children inherit the parent's hash seed, so set/dict
  iteration order inside a worker matches what the same code would do
  serially in the parent — a prerequisite for the byte-identical
  deterministic merges of :mod:`repro.par.explorer` and
  :mod:`repro.par.obligations`.

Where ``fork`` is unavailable (non-POSIX platforms, or inside the
daemonic workers of :mod:`repro.runner`, which may not have children)
the engine degrades to serial and counts ``par.fallbacks`` — callers
always get the same verdicts, just without the speedup.
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.obs import instrument as _telemetry

__all__ = [
    "ENGINE_KINDS",
    "EngineConfig",
    "EngineUnavailable",
    "current_engine",
    "set_engine",
    "engine_scope",
    "resolve_engine",
    "default_workers",
    "shard_items",
    "ForkPool",
]

#: Engine kinds accepted by ``--engine`` flags and ``engine=`` keywords.
ENGINE_KINDS = ("serial", "parallel")

#: Hard cap on worker processes (beyond this the per-level merge cost
#: dominates any speedup on the shipped workloads).
MAX_WORKERS = 16


class EngineUnavailable(ReproError):
    """Raised internally when a fork pool cannot be built here (no
    ``fork`` start method, daemonic process, or too few workers) — the
    parallel entry points catch it and fall back to serial."""


@dataclass(frozen=True)
class EngineConfig:
    """One resolved engine choice.

    ``workers=None`` means "pick from the machine" (see
    :func:`default_workers`); ``min_batch`` is the frontier size below
    which a level is expanded inline — shipping a two-state level to a
    pool costs more than expanding it.
    """

    kind: str = "serial"
    workers: Optional[int] = None
    min_batch: int = 8

    def __post_init__(self):
        if self.kind not in ENGINE_KINDS:
            raise ReproError(
                "unknown engine {!r}; expected one of {}".format(
                    self.kind, ", ".join(ENGINE_KINDS)
                )
            )
        if self.workers is not None and self.workers < 1:
            raise ReproError("engine workers must be >= 1")
        if self.min_batch < 1:
            raise ReproError("engine min_batch must be >= 1")

    @property
    def parallel(self) -> bool:
        return self.kind == "parallel"


#: The process-wide engine; serial unless the CLI (or a test) installs
#: a parallel config.  Checkers read this through
#: :func:`current_engine` when their ``engine=`` keyword is ``None``.
_ENGINE = EngineConfig()


def current_engine() -> EngineConfig:
    """The process-wide engine configuration."""
    return _ENGINE


def set_engine(config: Optional[Union[str, EngineConfig]]) -> EngineConfig:
    """Install ``config`` (or a kind name; ``None`` resets to serial)
    as the process-wide engine and return it."""
    global _ENGINE
    _ENGINE = _coerce(config)
    return _ENGINE


@contextmanager
def engine_scope(
    config: Optional[Union[str, EngineConfig]],
    workers: Optional[int] = None,
) -> Iterator[EngineConfig]:
    """Scope an engine choice: install for the ``with`` block, then
    restore whatever was active before (scopes nest)."""
    global _ENGINE
    chosen = _coerce(config)
    if workers is not None:
        chosen = replace(chosen, workers=workers)
    previous = _ENGINE
    _ENGINE = chosen
    try:
        yield chosen
    finally:
        _ENGINE = previous


def _coerce(config: Optional[Union[str, EngineConfig]]) -> EngineConfig:
    if config is None:
        return EngineConfig()
    if isinstance(config, EngineConfig):
        return config
    return EngineConfig(kind=str(config))


def resolve_engine(
    engine: Optional[Union[str, EngineConfig]],
) -> EngineConfig:
    """What an ``engine=`` keyword means *here*: an explicit value wins,
    ``None`` defers to the process-wide choice."""
    if engine is None:
        return _ENGINE
    return _coerce(engine)


def default_workers() -> int:
    """Worker count when the config leaves it open: every core but one
    (the parent replays the merge), within [2, MAX_WORKERS]."""
    cores = os.cpu_count() or 1
    return max(2, min(MAX_WORKERS, cores - 1 if cores > 2 else cores))


def shard_items(items: Sequence[Any], shards: int) -> List[List[Tuple[int, Any]]]:
    """Hash-partition ``items`` into at most ``shards`` non-empty
    batches of ``(original_index, item)`` pairs.

    Partitioning uses ``crc32`` of the item's ``repr`` — stable across
    processes and runs, unlike builtin ``hash`` — so the same frontier
    always shards the same way.  The original index lets the parent
    reassemble results in serial order regardless of which worker
    expanded what.
    """
    buckets: List[List[Tuple[int, Any]]] = [[] for _ in range(max(1, shards))]
    for index, item in enumerate(items):
        key = zlib.crc32(repr(item).encode("utf-8", "backslashreplace"))
        buckets[key % len(buckets)].append((index, item))
    return [bucket for bucket in buckets if bucket]


# ----------------------------------------------------------------------
# Fork pool with memory-image task inheritance
# ----------------------------------------------------------------------

#: The task the *next* forked pool will run: ``(fn, payload)``.  Workers
#: inherit it through the fork memory image — the payload (an automaton,
#: a mapping) never crosses a pickle boundary.  Pools are built and used
#: one at a time per process, so a single slot suffices.
_TASK: Optional[Tuple[Callable[[Any, List[Any]], Any], Any]] = None


def _pool_initializer() -> None:
    # The child inherited the parent's active recorder (if any) in its
    # memory image; detach it so worker-side telemetry never double
    # counts — workers report work back as explicit data instead.
    _telemetry._ACTIVE = None


def _pool_run(batch: List[Any]) -> Any:
    fn, payload = _TASK  # inherited at fork
    return fn(payload, batch)


class ForkPool:
    """A ``fork``-context worker pool bound to one ``(fn, payload)``
    task.

    ``fn(payload, batch)`` runs in the workers; ``payload`` is inherited
    by memory image, ``batch`` items and results cross by pickle.  Use
    as a context manager; :meth:`map` dispatches one batch per task and
    returns results in batch order.
    """

    def __init__(
        self,
        fn: Callable[[Any, List[Any]], Any],
        payload: Any,
        workers: int,
    ):
        global _TASK
        if workers < 2:
            raise EngineUnavailable("parallel engine needs at least 2 workers")
        if multiprocessing.current_process().daemon:
            raise EngineUnavailable(
                "daemonic processes cannot fork worker pools"
            )
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise EngineUnavailable("no fork start method: {}".format(exc))
        self.workers = workers
        _TASK = (fn, payload)
        try:
            self._pool = context.Pool(
                processes=workers, initializer=_pool_initializer
            )
        except OSError as exc:  # pragma: no cover - fork exhaustion
            _TASK = None
            raise EngineUnavailable("could not fork workers: {}".format(exc))

    def map(self, batches: Sequence[List[Any]]) -> List[Any]:
        return self._pool.map(_pool_run, batches, chunksize=1)

    def close(self) -> None:
        global _TASK
        self._pool.terminate()
        self._pool.join()
        _TASK = None

    def __enter__(self) -> "ForkPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
