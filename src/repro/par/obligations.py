"""Parallel obligation scheduler for the mapping checkers.

:func:`repro.core.checker.check_mapping_exhaustive` walks the product
of source states and deterministic witnesses breadth-first, and at each
``(state, witness)`` pair discharges the two Definition 3.2 obligations
(enabledness + containment) for every discrete option — independent,
Fraction-heavy work that dominates the check.  This module fans those
obligations out per reachable time-state batch and replays the results
in serial order, the same expand-then-replay discipline as
:mod:`repro.par.explorer`.

Workers evaluate :func:`~repro.core.checker._witness_step` under a
private recorder and ship back, per obligation, the *counter delta* it
produced (``check.steps``, ``mapping.evals``) together with the witness
successor or failure outcome.  The parent replays deltas as it charges
the budget, so a run cut after *k* obligations carries exactly the
telemetry of the serial run cut at the same point — verdicts, details,
steps and counters are byte-identical.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.core import checker as _checker
from repro.core.discretize import discrete_options
from repro.core.mappings import StrongPossibilitiesMapping
from repro.obs import instrument as _telemetry
from repro.obs.instrument import Recorder, recording
from repro.par.engine import (
    EngineConfig,
    EngineUnavailable,
    ForkPool,
    default_workers,
    shard_items,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.checker import CheckOutcome
    from repro.faults.budget import Budget

__all__ = ["check_mapping_exhaustive_parallel"]


def _expand_pairs(payload: Tuple[Any, Any, Any], batch: List[Any]) -> List[Any]:
    """Worker task: discharge every obligation of each ``(index, pair)``.

    Returns, per pair, the serial-ordered list of
    ``(counter_delta, source_post, next_witness, failure)`` tuples —
    everything the parent's replay needs to reproduce the serial loop
    without re-evaluating a single inequality.
    """
    mapping, grid, horizon = payload
    # Equal time-states and equal counter deltas are interned to one
    # representative object so pickle's memo ships each distinct value
    # once per batch — witnesses repeat heavily across obligations and
    # raw shipping would eat the speedup.
    intern: dict = {}
    deltas: dict = {}
    out = []
    for index, (source_state, witness) in batch:
        obligations = []
        rec = Recorder(name="par.obligations", max_events=0)
        with recording(rec):
            for action, time in discrete_options(
                mapping.source, source_state, grid, horizon
            ):
                for source_post in mapping.source.successors(
                    source_state, action, time
                ):
                    before = dict(rec.counters)
                    next_witness, failure = _checker._witness_step(
                        mapping, witness, action, time, source_post, 0
                    )
                    delta = {
                        name: count - before.get(name, 0)
                        for name, count in rec.counters.items()
                        if count != before.get(name, 0)
                    }
                    delta = deltas.setdefault(
                        tuple(sorted(delta.items())), delta
                    )
                    if next_witness is not None:
                        next_witness = intern.setdefault(next_witness, next_witness)
                    obligations.append(
                        (
                            delta,
                            intern.setdefault(source_post, source_post),
                            next_witness,
                            failure,
                        )
                    )
        out.append((index, obligations))
    return out


def check_mapping_exhaustive_parallel(
    mapping: StrongPossibilitiesMapping,
    grid,
    horizon,
    max_pairs: int = 200_000,
    budget: Optional["Budget"] = None,
    config: Optional[EngineConfig] = None,
) -> "CheckOutcome":
    """Parallel :func:`repro.core.checker.check_mapping_exhaustive` —
    same verdict, detail, step count and telemetry.  Falls back to the
    serial checker (counting ``par.fallbacks``) where no fork pool can
    exist."""
    config = config if config is not None else EngineConfig(kind="parallel")
    rec = _telemetry._ACTIVE
    workers = config.workers if config.workers is not None else default_workers()
    try:
        pool = ForkPool(_expand_pairs, (mapping, grid, horizon), workers)
    except EngineUnavailable:
        if rec is not None:
            rec.incr("par.fallbacks")
        return _checker.check_mapping_exhaustive(
            mapping,
            grid,
            horizon,
            max_pairs=max_pairs,
            budget=budget,
            engine="serial",
        )
    with pool:
        return _obligation_replay(
            mapping, grid, horizon, max_pairs, budget, pool, config, rec
        )


def _expand_pair_level(
    level: List[Any], pool: ForkPool, payload, config: EngineConfig, rec
) -> List[List[Any]]:
    if len(level) < config.min_batch:
        return [
            obligations
            for _, obligations in _expand_pairs(payload, list(enumerate(level)))
        ]
    batches = shard_items(level, pool.workers)
    expansions: List[Optional[List[Any]]] = [None] * len(level)
    for result in pool.map(batches):
        for index, obligations in result:
            expansions[index] = obligations
    if rec is not None:
        rec.incr("par.levels")
        rec.incr("par.tasks", len(batches))
        rec.incr("par.obligations", sum(len(e) for e in expansions if e))
    return expansions  # type: ignore[return-value]


def _obligation_replay(
    mapping, grid, horizon, max_pairs, budget, pool, config, rec
) -> "CheckOutcome":
    emit = _checker._emit_outcome
    cut = _checker._budget_cut
    seen = set()
    level: List[Any] = []
    for source_start in mapping.source.start_states():
        witness, failure = _checker._initial_witness(mapping, source_start)
        if failure is not None:
            return emit("mapping_exhaustive", failure)
        pair = (source_start, witness)
        if pair not in seen:
            if budget is not None and not budget.charge_state():
                return emit("mapping_exhaustive", cut(0))
            seen.add(pair)
            level.append(pair)
    steps = 0
    payload = (mapping, grid, horizon)
    while level:
        expansions = _expand_pair_level(level, pool, payload, config, rec)
        next_level: List[Any] = []
        for i in range(len(level)):
            for delta, source_post, next_witness, failure in expansions[i]:
                if budget is not None and not budget.charge_step():
                    return emit("mapping_exhaustive", cut(steps))
                if rec is not None:
                    for name, count in delta.items():
                        rec.incr(name, count)
                if failure is not None:
                    return emit(
                        "mapping_exhaustive", replace(failure, steps_checked=steps)
                    )
                steps += 1
                pair = (source_post, next_witness)
                if pair in seen:
                    if rec is not None:
                        rec.incr("check.cache_hits")
                    continue
                if len(seen) >= max_pairs:
                    return emit(
                        "mapping_exhaustive",
                        _checker.CheckOutcome(
                            True,
                            steps,
                            "truncated at {} state pairs".format(max_pairs),
                        ),
                    )
                if budget is not None and not budget.charge_state():
                    return emit("mapping_exhaustive", cut(steps))
                seen.add(pair)
                next_level.append(pair)
        level = next_level
    return emit(
        "mapping_exhaustive",
        _checker.CheckOutcome(
            True, steps, "exhaustive over grid={!r} horizon={!r}".format(grid, horizon)
        ),
    )
