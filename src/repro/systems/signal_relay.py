"""The signal relay example (paper Section 6).

A line of processes ``P_0, …, P_n``: ``P_0`` emits ``SIGNAL_0`` once;
each ``P_i`` raises a flag on ``SIGNAL_{i-1}`` and then emits
``SIGNAL_i`` (class bound ``[d1, d2]``; ``SIGNAL_0``'s class is
unconstrained, ``[0, ∞]``).

Requirement (Section 6.2, ``U_{0,n}``): a ``SIGNAL_n`` follows each
``SIGNAL_0`` within ``[n·d1, n·d2]``.  The proof is hierarchical:
intermediate automata ``B_k`` carry ``U_{k,n}`` with bound
``[(n−k)·d1, (n−k)·d2]`` plus the boundmap conditions of
``SIGNAL_0 … SIGNAL_k`` and the dummy's ``NULL`` class; Section 6.4's
mappings ``f_k : B_k → B_{k−1}`` encode the recurrence step.

The relay has *finite* timed executions (nothing is enabled after
``SIGNAL_n``), so the system is dummified before the ``time``
construction (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.composition import compose, hide
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition, cond_of_class
from repro.timed.interval import INFINITY, Interval
from repro.core.dummification import dummify, dummify_condition
from repro.core.time_automaton import (
    PredictiveTimeAutomaton,
    time_of_boundmap,
    time_of_conditions,
)

__all__ = [
    "SIGNAL",
    "signal_class_name",
    "RelayParams",
    "sender_automaton",
    "relay_automaton",
    "signal_relay",
    "relay_condition",
    "RelaySystem",
    "flags_of",
    "lemma_6_1_predicate",
]


def SIGNAL(i: int) -> Act:
    """The action ``SIGNAL_i``."""
    return Act("SIGNAL", (i,))


def signal_class_name(i: int) -> str:
    """The partition class name of ``{SIGNAL_i}``."""
    return "SIGNAL_{}".format(i)


@dataclass(frozen=True)
class RelayParams:
    """``n`` relay hops with per-hop bound ``[d1, d2]``; the paper
    assumes ``0 ≤ d1 ≤ d2 < ∞`` (we additionally need ``d2 > 0`` for a
    well-formed boundmap)."""

    n: int
    d1: object
    d2: object

    def __post_init__(self) -> None:
        if self.n < 1:
            raise AutomatonError("the line needs n >= 1")
        if not (0 <= self.d1 <= self.d2):
            raise AutomatonError("need 0 <= d1 <= d2")
        if self.d2 <= 0:
            raise AutomatonError("need d2 > 0 (boundmap upper bounds are nonzero)")

    @property
    def end_to_end_interval(self) -> Interval:
        """The requirement bound ``[n·d1, n·d2]``."""
        return Interval(self.n * self.d1, self.n * self.d2)

    def hop_interval(self, k: int) -> Interval:
        """The ``U_{k,n}`` bound ``[(n−k)·d1, (n−k)·d2]``."""
        hops = self.n - k
        if hops < 1:
            raise AutomatonError("U_{k,n} needs 0 <= k <= n-1")
        return Interval(hops * self.d1, hops * self.d2)


def sender_automaton() -> GuardedAutomaton:
    """``P_0``: FLAG initially true; ``SIGNAL_0`` clears it."""
    return GuardedAutomaton(
        name="P0",
        start=[True],
        specs=[
            ActionSpec(
                SIGNAL(0),
                Kind.OUTPUT,
                precondition=lambda flag: flag,
                effect=lambda _flag: False,
            )
        ],
        partition=Partition.from_pairs([(signal_class_name(0), [SIGNAL(0)])]),
    )


def relay_automaton(i: int) -> GuardedAutomaton:
    """``P_i`` (``1 ≤ i``): raises FLAG on ``SIGNAL_{i-1}``, emits
    ``SIGNAL_i`` while the flag is up."""
    if i < 1:
        raise AutomatonError("relay processes are P_1 … P_n")
    return GuardedAutomaton(
        name="P{}".format(i),
        start=[False],
        specs=[
            ActionSpec(SIGNAL(i - 1), Kind.INPUT, effect=lambda _flag: True),
            ActionSpec(
                SIGNAL(i),
                Kind.OUTPUT,
                precondition=lambda flag: flag,
                effect=lambda _flag: False,
            ),
        ],
        partition=Partition.from_pairs([(signal_class_name(i), [SIGNAL(i)])]),
    )


def signal_relay(params: RelayParams) -> TimedAutomaton:
    """The timed automaton ``(A, b)``: ``P_0 ∥ … ∥ P_n`` with the
    intermediate signals hidden; ``SIGNAL_0 ↦ [0, ∞]``, others
    ``[d1, d2]``."""
    processes = [sender_automaton()] + [relay_automaton(i) for i in range(1, params.n + 1)]
    composed = compose(*processes, name="signal-relay")
    hidden_actions = [SIGNAL(i) for i in range(1, params.n)]
    automaton = hide(composed, hidden_actions) if hidden_actions else composed
    bounds = {signal_class_name(0): Interval(0, INFINITY)}
    for i in range(1, params.n + 1):
        bounds[signal_class_name(i)] = Interval(params.d1, params.d2)
    return TimedAutomaton(automaton, Boundmap(bounds))


def relay_condition(params: RelayParams, k: int) -> TimingCondition:
    """``U_{k,n}``: from every ``SIGNAL_k`` step to the next
    ``SIGNAL_n``, within ``[(n−k)·d1, (n−k)·d2]``.

    Triggers and targets are pure action predicates, so the same
    condition applies verbatim to the dummified automaton.
    """
    return TimingCondition.after_action(
        "U[{},{}]".format(k, params.n),
        params.hop_interval(k),
        SIGNAL(k),
        [SIGNAL(params.n)],
    )


def flags_of(dummified_astate) -> Tuple[bool, ...]:
    """The relay FLAG tuple inside a dummified ``Ã``-state."""
    return dummified_astate[0]


class RelaySystem:
    """Everything Section 6 builds: ``(A, b)``, its dummification
    ``(Ã, b̃)``, ``time(Ã, b̃)``, the requirements automaton
    ``B = time(Ã, {Ũ_{0,n}})`` and the intermediate automata ``B_k``.

    ``B_k`` instances are cached so hierarchy levels share identity
    (:class:`~repro.core.mappings.MappingChain` requires it).
    """

    def __init__(self, params: RelayParams, dummy_interval: Interval = Interval(0, 1)):
        self.params = params
        self.timed = signal_relay(params)
        self.dummified = dummify(self.timed, dummy_interval)
        self.algorithm: PredictiveTimeAutomaton = time_of_boundmap(self.dummified)
        self.requirement = dummify_condition(relay_condition(params, 0))
        self.requirements: PredictiveTimeAutomaton = time_of_conditions(
            self.dummified.automaton, [self.requirement], name="B"
        )
        self._intermediates: Dict[int, PredictiveTimeAutomaton] = {}

    def start_astate(self):
        (start,) = self.dummified.automaton.start_states()
        return start

    def _class_condition(self, class_name: str) -> TimingCondition:
        cls = self.dummified.automaton.partition[class_name]
        return cond_of_class(self.dummified, cls)

    def intermediate(self, k: int) -> PredictiveTimeAutomaton:
        """``B_k = time(Ã, U_k)`` where ``U_k`` contains ``Ũ_{k,n}``,
        the boundmap conditions of ``SIGNAL_0 … SIGNAL_k`` and ``NULL``
        (Section 6.3)."""
        if not (0 <= k <= self.params.n - 1):
            raise AutomatonError("B_k is defined for 0 <= k <= n-1")
        if k not in self._intermediates:
            conditions: List[TimingCondition] = [
                dummify_condition(relay_condition(self.params, k))
            ]
            for j in range(k + 1):
                conditions.append(self._class_condition(signal_class_name(j)))
            conditions.append(self._class_condition("NULL"))
            self._intermediates[k] = time_of_conditions(
                self.dummified.automaton,
                conditions,
                name="B_{}".format(k),
            )
        return self._intermediates[k]

    def condition_name(self, k: int) -> str:
        """The name of ``U_{k,n}`` inside ``B_k``."""
        return "U[{},{}]".format(k, self.params.n)


def lemma_6_1_predicate(params: RelayParams):
    """Lemma 6.1 as a predicate on (undummified) relay states: at most
    one ``SIGNAL_i`` is enabled, i.e. at most one flag is raised."""

    def predicate(astate) -> bool:
        return sum(1 for flag in astate if flag) <= 1

    return predicate
