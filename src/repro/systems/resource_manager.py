"""The resource manager example (paper Section 4).

Two components: a *clock* whose ``TICK`` output is always enabled and
fires with inter-tick times in ``[c1, c2]``, and a *manager* that counts
``k`` ticks down on a ``TIMER`` and then issues a ``GRANT`` (its
``ELSE`` internal action keeps it stepping at its own pace, class
``LOCAL`` with bound ``[0, l]``; the paper assumes ``c1 > l``).

Requirements (Section 4.2): the first ``GRANT`` at a time in
``[k·c1, k·c2 + l]`` (condition ``G1``), and consecutive ``GRANT``\\ s
separated by ``[k·c1 − l, k·c2 + l]`` (condition ``G2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import AutomatonError
from repro.ioa.actions import Act, Kind
from repro.ioa.composition import HiddenAutomaton, compose, hide
from repro.ioa.guarded import ActionSpec, GuardedAutomaton
from repro.ioa.partition import Partition
from repro.timed.boundmap import Boundmap, TimedAutomaton
from repro.timed.conditions import TimingCondition
from repro.timed.interval import Interval
from repro.core.time_automaton import (
    PredictiveTimeAutomaton,
    time_of_boundmap,
    time_of_conditions,
)
from repro.core.time_state import TimeState

__all__ = [
    "TICK",
    "GRANT",
    "ELSE",
    "CLOCK_STATE",
    "ResourceManagerParams",
    "clock_automaton",
    "manager_automaton",
    "resource_manager",
    "grant_conditions",
    "ResourceManagerSystem",
    "timer_of",
    "lemma_4_1_predicate",
]

TICK = Act("TICK")
GRANT = Act("GRANT")
ELSE = Act("ELSE")

#: The clock's only state.
CLOCK_STATE = "clockstate"


@dataclass(frozen=True)
class ResourceManagerParams:
    """Parameters ``k``, ``[c1, c2]`` (tick bound) and ``l`` (manager
    step bound); the paper assumes ``0 < c1 ≤ c2 < ∞``, ``0 ≤ l < ∞``
    and ``c1 > l``."""

    k: int
    c1: object
    c2: object
    l: object

    def __post_init__(self) -> None:
        if self.k < 1:
            raise AutomatonError("k must be at least 1")
        if not (0 < self.c1 <= self.c2):
            raise AutomatonError("need 0 < c1 <= c2")
        if self.l <= 0:
            # The paper writes 0 ≤ l, but boundmap intervals require a
            # nonzero upper end, so l = 0 is not a valid boundmap.
            raise AutomatonError("need l > 0 (boundmap upper bounds are nonzero)")
        if not (self.c1 > self.l):
            raise AutomatonError("the paper's analysis assumes c1 > l")

    @property
    def first_grant_interval(self) -> Interval:
        """The ``G1`` bound ``[k·c1, k·c2 + l]``."""
        return Interval(self.k * self.c1, self.k * self.c2 + self.l)

    @property
    def grant_gap_interval(self) -> Interval:
        """The ``G2`` bound ``[k·c1 − l, k·c2 + l]``."""
        return Interval(self.k * self.c1 - self.l, self.k * self.c2 + self.l)


def clock_automaton() -> GuardedAutomaton:
    """The clock: one state, ``TICK`` always enabled, no effect."""
    return GuardedAutomaton(
        name="clock",
        start=[CLOCK_STATE],
        specs=[ActionSpec(TICK, Kind.OUTPUT)],
        partition=Partition.from_pairs([("TICK", [TICK])]),
    )


def manager_automaton(k: int) -> GuardedAutomaton:
    """The manager: ``TIMER`` integer state, initially ``k``.

    ``TICK`` decrements; ``GRANT`` (enabled when ``TIMER ≤ 0``) resets
    to ``k``; ``ELSE`` (enabled when ``TIMER > 0``) keeps the local
    process stepping.  ``GRANT`` and ``ELSE`` share class ``LOCAL``.
    """
    return GuardedAutomaton(
        name="manager",
        start=[k],
        specs=[
            ActionSpec(TICK, Kind.INPUT, effect=lambda timer: timer - 1),
            ActionSpec(
                GRANT,
                Kind.OUTPUT,
                precondition=lambda timer: timer <= 0,
                effect=lambda _timer: k,
            ),
            ActionSpec(ELSE, Kind.INTERNAL, precondition=lambda timer: timer > 0),
        ],
        partition=Partition.from_pairs([("LOCAL", [GRANT, ELSE])]),
    )


def resource_manager(params: ResourceManagerParams) -> TimedAutomaton:
    """The timed automaton ``(A, b)``: clock ∥ manager with ``TICK``
    hidden, ``TICK ↦ [c1, c2]``, ``LOCAL ↦ [0, l]``."""
    composed = compose(clock_automaton(), manager_automaton(params.k), name="resource-manager")
    hidden = hide(composed, [TICK])
    boundmap = Boundmap(
        {
            "TICK": Interval(params.c1, params.c2),
            "LOCAL": Interval(0, params.l),
        }
    )
    return TimedAutomaton(hidden, boundmap)


def timer_of(astate: Tuple) -> int:
    """The manager's ``TIMER`` in a composed ``A``-state."""
    return astate[1]


def grant_conditions(params: ResourceManagerParams) -> Tuple[TimingCondition, TimingCondition]:
    """The requirement conditions ``G1`` and ``G2`` (Section 4.2)."""
    g1 = TimingCondition.from_start("G1", params.first_grant_interval, [GRANT])
    g2 = TimingCondition.after_action("G2", params.grant_gap_interval, GRANT, [GRANT])
    return g1, g2


class ResourceManagerSystem:
    """Everything Section 4 builds, bundled: ``(A, b)``, the algorithm
    automaton ``time(A, b)``, and the requirements automaton
    ``B = time(A, {G1, G2})`` over the same base ``A``."""

    def __init__(self, params: ResourceManagerParams):
        self.params = params
        self.timed = resource_manager(params)
        self.algorithm: PredictiveTimeAutomaton = time_of_boundmap(self.timed)
        g1, g2 = grant_conditions(params)
        self.g1 = g1
        self.g2 = g2
        self.requirements: PredictiveTimeAutomaton = time_of_conditions(
            self.timed.automaton, [g1, g2], name="B"
        )

    def start_astate(self) -> Tuple:
        (start,) = self.timed.automaton.start_states()
        return start


def lemma_4_1_predicate(system: ResourceManagerSystem):
    """Lemma 4.1 as a predicate on states of ``time(A, b)``:

    1. ``TIMER ≥ 0``;
    2. ``TIMER = 0  ⇒  Ft(TICK) ≥ Lt(LOCAL) + c1 − l``.
    """
    algorithm = system.algorithm
    c1 = system.params.c1
    l = system.params.l

    def predicate(state: TimeState) -> bool:
        timer = timer_of(state.astate)
        if timer < 0:
            return False
        if timer == 0:
            return algorithm.ft(state, "TICK") >= algorithm.lt(state, "LOCAL") + c1 - l
        return True

    return predicate
